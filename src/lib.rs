//! # pase — facade crate
//!
//! Re-exports the entire PaSE workspace behind a single dependency. See the
//! repository README for an architecture overview, and the `examples/`
//! directory for runnable entry points.
//!
//! ```
//! use pase::core::Search;
//! use pase::cost::MachineSpec;
//! use pase::models::{mlp, MlpConfig};
//! use pase::sim::{simulate_step, SimOptions, Topology};
//!
//! // Model → search (tables are built internally) → simulate.
//! let graph = mlp(&MlpConfig::default());
//! let machine = MachineSpec::gtx1080ti();
//! let run = Search::new(&graph).devices(8).machine(machine.clone()).run();
//! let result = run.outcome().found().expect("search");
//! let strategy = run.tables().ids_to_strategy(&result.config_ids);
//!
//! let topology = Topology::cluster(machine, 8).unwrap();
//! let report = simulate_step(&graph, &strategy, &topology, &SimOptions::default());
//! assert!(report.throughput > 0.0);
//! ```

pub use pase_baselines as baselines;
pub use pase_core as core;
pub use pase_cost as cost;
pub use pase_graph as graph;
pub use pase_models as models;
pub use pase_obs as obs;
pub use pase_pipeline as pipeline;
pub use pase_serve as serve;
pub use pase_sim as sim;
