//! Search under a per-device memory budget: the paper's §I motivation that
//! large models cannot be trained with pure data parallelism because every
//! device holds a full weight replica — and the §II observation that the
//! communication-minimal strategy is *also* (nearly) memory-minimal, so
//! tightening the budget excludes data parallelism long before it affects
//! the found optimum.
//!
//! ```text
//! cargo run --release --example memory_constrained
//! ```

use pase::baselines::data_parallel;
use pase::core::Search;
use pase::cost::{validate_strategy, ConfigRule, CostTables, MachineSpec};
use pase::models::{vgg16, VggConfig};
use pase::sim::{memory_per_device, Topology};

fn main() {
    let p = 16;
    // VGG-16 at batch 128: 138M parameters, dominated by the 102M-element
    // fc6 weight — the classic "does not fit replicated" model.
    let graph = vgg16(&VggConfig::paper());
    let machine = MachineSpec::gtx1080ti();
    let topo = Topology::cluster(machine.clone(), p).unwrap();
    println!(
        "VGG-16, p = {p}: {:.0}M params; replicating them (with gradients and\n\
         optimizer state) costs {:.0} MiB per device before any activations.\n",
        graph.total_params() / 1e6,
        3.0 * graph.total_params() * 4.0 / (1 << 20) as f64
    );

    let dp = data_parallel(&graph, p);
    let dp_mem = memory_per_device(&graph, &dp, &topo);
    println!(
        "pure data parallelism needs {:.0} MiB per device\n",
        dp_mem / (1 << 20) as f64
    );

    println!(
        "{:>12} {:>13} {:>12}   {:<14} {:<14}",
        "budget", "search cost", "mem/device", "fc6 config", "DP in space?"
    );
    for budget_mib in [f64::INFINITY, 1024.0, 512.0, 256.0] {
        let mut rule = ConfigRule::new(p);
        if budget_mib.is_finite() {
            rule = rule.with_memory_limit(budget_mib * (1 << 20) as f64);
        }
        let tables = CostTables::build(&graph, rule, &machine);
        let result = Search::new(&graph)
            .tables(&tables)
            .run()
            .expect_found("vgg search");
        let strategy = tables.ids_to_strategy(&result.config_ids);
        let mem = memory_per_device(&graph, &strategy, &topo);
        let fc6 = graph
            .iter()
            .find(|(_, n)| n.name == "fc6")
            .map(|(id, _)| id)
            .unwrap();
        let dp_fits = tables.strategy_to_ids(&dp).is_some();
        let label = if budget_mib.is_finite() {
            format!("{budget_mib:.0} MiB")
        } else {
            "unlimited".to_string()
        };
        println!(
            "{:>12} {:>13.4e} {:>9.0} MiB   {:<14} {}",
            label,
            result.cost,
            mem / (1 << 20) as f64,
            format!("{}", strategy.config(fc6)),
            if dp_fits {
                "yes"
            } else {
                "no — replicas over budget"
            }
        );
    }

    // Sanity: the strategies above remain valid under the base rule.
    let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
    let r = Search::new(&graph)
        .tables(&tables)
        .run()
        .expect_found("base");
    validate_strategy(
        &graph,
        &tables.ids_to_strategy(&r.config_ids),
        &ConfigRule::new(p),
    )
    .expect("found strategy validates");

    println!("\nThe optimum is unchanged down to budgets that already exclude data");
    println!("parallelism: minimizing communication sharded the big weights anyway");
    println!("(§II: the objective 'indirectly minimizes the space requirements').");
}
