//! Quickstart: find an efficient parallelization strategy for a small MLP
//! and inspect it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pase::core::Search;
use pase::cost::{ConfigRule, CostTables, MachineSpec};
use pase::models::{mlp, MlpConfig};

fn main() {
    // 1. Describe the model as a computation graph. Every layer carries an
    //    iteration space; a parallelization configuration will pick a split
    //    factor per dimension.
    let graph = mlp(&MlpConfig {
        batch: 256,
        input: 1024,
        hidden: vec![4096, 4096],
        classes: 1000,
    });
    println!(
        "model: {} layers, {:.2} GFLOP/step",
        graph.len(),
        graph.total_step_flops() / 1e9
    );

    // 2. Pick a machine (sets the FLOP-to-byte ratio r = F/B of Eq. (1))
    //    and a device count, and precompute the cost tables.
    let machine = MachineSpec::gtx1080ti();
    let p = 8;
    let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
    println!(
        "devices: {p}, machine: {} (r = {:.0} FLOP/byte), K = {} configs/layer max",
        machine.name,
        machine.flop_byte_ratio(),
        tables.max_k()
    );

    // 3. Run FindBestStrategy (GenerateSeq ordering + the recurrence-(4)
    //    dynamic program).
    let result = Search::new(&graph)
        .tables(&tables)
        .run()
        .expect_found("mlp search fits any budget");
    println!(
        "search: {:?}, {} states evaluated, minimum cost {:.4e} FLOP-units\n",
        result.stats.elapsed, result.stats.states_evaluated, result.cost
    );

    // 4. Inspect the strategy: which dimension each layer splits.
    let strategy = tables.ids_to_strategy(&result.config_ids);
    print!("{}", strategy.report(&graph));
}
