//! The §VI composition: split the graph into PipeDream-style stages, run
//! PaSE's data+parameter search *inside* each stage, and compare the
//! pipelined schedules against the plain (stage-less) PaSE strategy under
//! the cluster simulator.
//!
//! ```text
//! cargo run --release --example pipeline_composition
//! ```

use pase::core::Search;
use pase::cost::{ConfigRule, CostTables, MachineSpec};
use pase::models::{transformer, TransformerConfig};
use pase::pipeline::{plan_pipeline, simulate_pipeline, PipelineOptions};
use pase::sim::{simulate_step, SimOptions, Topology};

fn main() {
    let p = 16u32;
    let graph = transformer(&TransformerConfig {
        batch: 64 * u64::from(p),
        ..TransformerConfig::paper()
    });
    let machine = MachineSpec::rtx2080ti();
    let opts = SimOptions::default();
    println!(
        "Transformer on p = {p} ({}): plain PaSE vs PipeDream-style stages\n",
        machine.name
    );

    // Plain PaSE: all p devices on every layer.
    let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
    let plain = Search::new(&graph)
        .tables(&tables)
        .run()
        .expect_found("plain search");
    let plain_rep = simulate_step(
        &graph,
        &tables.ids_to_strategy(&plain.config_ids),
        &Topology::cluster(machine.clone(), p).unwrap(),
        &opts,
    );
    println!(
        "{:<24} step {:>8.2} ms  throughput {:>8.0} samples/s",
        "plain PaSE (S = 1)",
        plain_rep.step_seconds * 1e3,
        plain_rep.throughput
    );

    // Pipelines: S stages × (p/S devices), PaSE within each stage.
    for stages in [2usize, 4, 8] {
        let plan = plan_pipeline(
            &graph,
            p,
            &machine,
            &PipelineOptions {
                stages,
                microbatches: 8,
                ..Default::default()
            },
        )
        .expect("pipeline plan");
        let stage_topo = Topology::cluster(machine.clone(), p / stages as u32).unwrap();
        let rep = simulate_pipeline(&graph, &plan, &stage_topo, &opts);
        println!(
            "{:<24} step {:>8.2} ms  throughput {:>8.0} samples/s  \
             (slowest stage {:.2} ms, bubble ×{:.2}, boundary {:.1} MiB)",
            format!("pipeline S = {stages}"),
            rep.step_seconds * 1e3,
            rep.throughput,
            rep.stage_seconds.iter().copied().fold(0.0, f64::max) * 1e3,
            rep.bubble_factor,
            rep.boundary_bytes / (1 << 20) as f64
        );
    }

    println!("\nPipelining shrinks each stage's all-reduce groups (p/S devices) at");
    println!("the price of fill/drain bubbles — the §VI composition makes the");
    println!("trade-off explicit instead of baking pipelining into the search.");
}
