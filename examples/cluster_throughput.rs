//! Sweep device counts and machine profiles for one model, printing the
//! simulated scaling curves of data parallelism vs the PaSE strategy —
//! the per-model slice of Fig. 6, plus absolute step times.
//!
//! ```text
//! cargo run --release --example cluster_throughput [-- rnnlm|alexnet|inception|transformer]
//! ```

use pase::baselines::data_parallel;
use pase::core::Search;
use pase::cost::{ConfigRule, CostTables, MachineSpec};
use pase::models::Benchmark;
use pase::sim::{simulate_step, SimOptions, Topology};

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "rnnlm".to_string());
    let bench = match which.as_str() {
        "alexnet" => Benchmark::AlexNet,
        "inception" => Benchmark::InceptionV3,
        "rnnlm" => Benchmark::Rnnlm,
        "transformer" => Benchmark::Transformer,
        other => panic!("unknown model: {other}"),
    };
    println!(
        "scaling curves for {} (weak scaling, Fig. 6 methodology)\n",
        bench.name()
    );

    for machine in [MachineSpec::gtx1080ti(), MachineSpec::rtx2080ti()] {
        println!("--- {} ---", machine.name);
        println!(
            "{:>4} {:>14} {:>14} {:>9}",
            "p", "DP samples/s", "PaSE samples/s", "speedup"
        );
        for p in [4u32, 8, 16, 32, 64] {
            let graph = bench.build_for(p);
            let topo = Topology::cluster(machine.clone(), p).unwrap();
            let opts = SimOptions::default();
            let dp = simulate_step(&graph, &data_parallel(&graph, p), &topo, &opts);
            let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
            let result = Search::new(&graph)
                .tables(&tables)
                .run()
                .expect_found("search");
            let ours = tables.ids_to_strategy(&result.config_ids);
            let rep = simulate_step(&graph, &ours, &topo, &opts);
            println!(
                "{:>4} {:>14.0} {:>14.0} {:>8.2}x",
                p,
                dp.throughput,
                rep.throughput,
                rep.throughput / dp.throughput
            );
        }
        println!();
    }
}
