//! Search the full InceptionV3 graph (≈219 nodes) and compare the found
//! strategy against data parallelism and the OWT expert strategy under the
//! cluster simulator — the paper's benchmark (b) end to end.
//!
//! ```text
//! cargo run --release --example inception_strategy
//! ```

use pase::baselines::{data_parallel, owt};
use pase::core::{dependent_set_sizes, generate_seq, Search};
use pase::cost::{ConfigRule, CostTables, MachineSpec};
use pase::models::{inception_v3, InceptionConfig};
use pase::sim::{memory_per_device, simulate_step, SimOptions, Topology};

fn main() {
    let p = 32;
    // Weak-scaling batch: 128 samples per device, as in the throughput
    // protocol of §IV-B.
    let graph = inception_v3(&InceptionConfig {
        batch: 128 * u64::from(p),
        classes: 1000,
    });
    println!(
        "InceptionV3: {} nodes, {} edges, {:.1}M params",
        graph.len(),
        graph.edge_count(),
        graph.total_params() / 1e6
    );

    // The ordering is what makes the search tractable (§III-C).
    let order = generate_seq(&graph);
    let m = dependent_set_sizes(&graph, &order)
        .into_iter()
        .max()
        .unwrap();
    println!("GenerateSeq max dependent set: {m} (breadth-first reaches ~11 and OOMs)");

    let machine = MachineSpec::gtx1080ti();
    let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
    let result = Search::new(&graph)
        .tables(&tables)
        .run()
        .expect_found("inception search");
    let ours = tables.ids_to_strategy(&result.config_ids);
    println!("search took {:?}\n", result.stats.elapsed);

    // Simulated throughput comparison (Fig. 6 methodology).
    let topo = Topology::cluster(machine, p).unwrap();
    let opts = SimOptions::default();
    for (name, strategy) in [
        ("data parallel", data_parallel(&graph, p)),
        ("OWT expert", owt(&graph, p)),
        ("PaSE (ours)", ours),
    ] {
        let rep = simulate_step(&graph, &strategy, &topo, &opts);
        println!(
            "{name:<14} step {:.1} ms  throughput {:>8.0} samples/s  mem/device {:>6.0} MiB",
            rep.step_seconds * 1e3,
            rep.throughput,
            memory_per_device(&graph, &strategy, &topo) / (1 << 20) as f64
        );
    }
}
