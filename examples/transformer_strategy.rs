//! Find a hybrid strategy for the Transformer NMT model and print it at
//! module granularity (the paper's Table II reporting style), then compare
//! against the Mesh-TensorFlow expert strategy under the simulator.
//!
//! ```text
//! cargo run --release --example transformer_strategy
//! ```

use pase::baselines::{data_parallel, mesh_tf_expert};
use pase::core::Search;
use pase::cost::{ConfigRule, CostTables, MachineSpec};
use pase::models::{transformer, TransformerConfig};
use pase::sim::{simulate_step, SimOptions, Topology};

fn main() {
    let p = 16;
    let graph = transformer(&TransformerConfig {
        batch: 64 * u64::from(p),
        ..TransformerConfig::paper()
    });
    println!(
        "Transformer: {} nodes (enc–dec), {:.0}M params",
        graph.len(),
        graph.total_params() / 1e6
    );

    let machine = MachineSpec::rtx2080ti();
    let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
    let result = Search::new(&graph)
        .tables(&tables)
        .run()
        .expect_found("transformer search");
    let ours = tables.ids_to_strategy(&result.config_ids);
    println!(
        "search took {:?} (M = {}, the encoder output's long live range is why\n\
         Transformer searches are the slowest of the four benchmarks, §IV-A)\n",
        result.stats.elapsed, result.stats.max_dependent_set
    );

    // Print one encoder layer, one decoder layer and the head — the rest
    // repeats.
    println!("{:<20} {:<7} configuration", "layer", "dims");
    for (id, node) in graph.iter() {
        let interesting = node.name.starts_with("enc0/")
            || node.name.starts_with("dec0/")
            || !node.name.contains('/');
        if interesting {
            println!(
                "{:<20} {:<7} {}",
                node.name,
                node.dims_string(),
                ours.config(id)
            );
        }
    }

    let topo = Topology::cluster(machine, p).unwrap();
    let opts = SimOptions::default();
    println!();
    for (name, strategy) in [
        ("data parallel", data_parallel(&graph, p)),
        ("Mesh-TF expert", mesh_tf_expert(&graph, p)),
        ("PaSE (ours)", ours),
    ] {
        let rep = simulate_step(&graph, &strategy, &topo, &opts);
        println!(
            "{name:<15} step {:.1} ms  throughput {:>8.0} samples/s",
            rep.step_seconds * 1e3,
            rep.throughput
        );
    }
}
