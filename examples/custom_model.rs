//! Build a *custom* model with the public graph API — a two-tower
//! recommender-style network whose towers share a final interaction layer —
//! and let PaSE find its strategy. Demonstrates everything a downstream
//! user needs: node constructors, graph wiring, search, and simulation.
//!
//! ```text
//! cargo run --release --example custom_model
//! ```

use pase::baselines::data_parallel;
use pase::core::Search;
use pase::cost::{ConfigRule, CostTables, MachineSpec};
use pase::graph::GraphBuilder;
use pase::models::ops;
use pase::sim::{simulate_step, SimOptions, Topology};

fn main() {
    let b = 2048; // batch
    let mut builder = GraphBuilder::new();

    // User tower: sparse-id embedding into two FC layers.
    let user_embed = builder.add_node(ops::embedding("user/embed", b, 1, 256, 1 << 20));
    let user_fc1 = builder.add_node(ops::projection("user/fc1", b, 1, 1024, 256));
    let user_fc2 = builder.add_node(ops::projection("user/fc2", b, 1, 512, 1024));
    builder.connect(user_embed, user_fc1);
    builder.connect(user_fc1, user_fc2);

    // Item tower, same shape, separate parameters.
    let item_embed = builder.add_node(ops::embedding("item/embed", b, 1, 256, 1 << 22));
    let item_fc1 = builder.add_node(ops::projection("item/fc1", b, 1, 1024, 256));
    let item_fc2 = builder.add_node(ops::projection("item/fc2", b, 1, 512, 1024));
    builder.connect(item_embed, item_fc1);
    builder.connect(item_fc1, item_fc2);

    // Interaction: concat-free two-input elementwise + scoring head.
    let join = builder.add_node(ops::add_seq("interact", b, 1, 512, 2));
    builder.connect(user_fc2, join);
    builder.connect(item_fc2, join);
    let score = builder.add_node(ops::projection("score", b, 1, 1, 512));
    builder.connect(join, score);

    let graph = builder.build().expect("custom graph is well-formed");
    println!(
        "custom two-tower model: {} nodes, {:.1}M params (embedding-dominated)",
        graph.len(),
        graph.total_params() / 1e6
    );

    let p = 16;
    let machine = MachineSpec::gtx1080ti();
    let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
    let result = Search::new(&graph)
        .tables(&tables)
        .run()
        .expect_found("search");
    let ours = tables.ids_to_strategy(&result.config_ids);
    println!("\nfound strategy (cost {:.3e}):", result.cost);
    print!("{}", ours.report(&graph));

    // With 4M+16M embedding rows, PaSE should shard the embedding tables
    // (vocabulary splits) instead of replicating them like data parallelism.
    let topo = Topology::cluster(machine, p).unwrap();
    let opts = SimOptions::default();
    let dp = simulate_step(&graph, &data_parallel(&graph, p), &topo, &opts);
    let rep = simulate_step(&graph, &ours, &topo, &opts);
    println!(
        "\nsimulated: DP {:.2} ms/step vs PaSE {:.2} ms/step ({:.2}x)",
        dp.step_seconds * 1e3,
        rep.step_seconds * 1e3,
        dp.step_seconds / rep.step_seconds
    );
}
