//! Canonical span names for the search-pipeline phases.
//!
//! Producers (`pase-cost`, `pase-core`) and consumers (the CLI's trace
//! smoke test, report tooling) agree on these strings; free-form span
//! names are still allowed for anything outside the standard pipeline.

/// Per-node configuration enumeration (`enumerate_configs` over the layer
/// representatives).
pub const ENUMERATION: &str = "enumeration";

/// Structural interning: node/edge classing by structural key.
pub const INTERNING: &str = "interning";

/// Cost-table construction: layer-cost vectors and edge transfer matrices.
pub const TABLE_BUILD: &str = "table_build";

/// Exact dominance pruning of the configuration space.
pub const PRUNE: &str = "prune";

/// Vertex ordering plus connected/dependent-set structure construction.
pub const STRUCTURE: &str = "structure";

/// The DP's sequential budget-accounting pass (table sizing, OOM checks).
pub const PLAN: &str = "plan";

/// Prefix of the per-wavefront DP fill spans: wavefront `w` is recorded as
/// `"wavefront <w>"` (see [`wavefront_name`]).
pub const WAVEFRONT_PREFIX: &str = "wavefront ";

/// Strategy extraction by back-substitution from the filled tables.
pub const BACKTRACK: &str = "backtrack";

/// The whole table-fill loop of the sequential (`parallel = false`) DP
/// path, which fills in position order rather than by wavefront.
pub const SEQUENTIAL_FILL: &str = "sequential_fill";

/// The tiled min-plus microkernel's time inside a fill span — a *nested*
/// sub-span of the enclosing `"wavefront <w>"` (or
/// [`SEQUENTIAL_FILL`]) span, recorded only when the DP runs with
/// `DpKernel::Tiled`. Consumers summing disjoint pipeline phases must
/// exclude it (its time is already counted by the parent span).
pub const KERNEL: &str = "kernel";

/// Span name of DP wavefront `w`.
pub fn wavefront_name(w: usize) -> String {
    format!("{WAVEFRONT_PREFIX}{w}")
}

/// Whether `name` is a per-wavefront fill span.
pub fn is_wavefront(name: &str) -> bool {
    name.starts_with(WAVEFRONT_PREFIX)
}
