//! The [`Trace`] collector: phase spans and counter samples.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A span or counter argument value.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (entry counts, byte counts, ids).
    U64(u64),
    /// Float (rates, seconds).
    F64(f64),
    /// Free-form string.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

/// One completed phase span: a named wall-clock interval relative to the
/// owning trace's epoch, with optional counter arguments.
#[derive(Clone, Debug)]
pub struct Span {
    /// Span name (a `pase_obs::phase` constant for pipeline phases).
    pub name: String,
    /// Start offset from the trace epoch.
    pub start: Duration,
    /// Duration of the interval.
    pub dur: Duration,
    /// Counter/annotation arguments attached while the span was open.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// One sample of a named monotonic counter (e.g. the table-memory
/// high-water mark after each wavefront).
#[derive(Clone, Debug)]
pub struct CounterSample {
    /// Offset from the trace epoch at which the sample was taken.
    pub at: Duration,
    /// Counter name.
    pub name: &'static str,
    /// Sampled value.
    pub value: u64,
}

/// Collects spans and counter samples for one pipeline run.
///
/// Thread-safe: spans may be opened and finished from any thread (the DP
/// records wavefront spans from the coordinating thread, table builders
/// from wherever the build runs). Recording locks a mutex once per span —
/// spans are phase-granular, so contention is irrelevant.
#[derive(Debug)]
pub struct Trace {
    epoch: Instant,
    spans: Mutex<Vec<Span>>,
    counters: Mutex<Vec<CounterSample>>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// A new, empty trace whose epoch is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            counters: Mutex::new(Vec::new()),
        }
    }

    /// Open a span named `name`; it is recorded when the guard drops.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard<'_> {
        SpanGuard {
            trace: self,
            name: name.into(),
            start: self.epoch.elapsed(),
            args: Vec::new(),
        }
    }

    /// Record a sample of counter `name` at the current time.
    pub fn counter(&self, name: &'static str, value: u64) {
        let at = self.epoch.elapsed();
        self.counters
            .lock()
            .expect("trace lock")
            .push(CounterSample { at, name, value });
    }

    /// Time elapsed since the trace epoch.
    pub fn elapsed(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Snapshot of all spans recorded so far, in completion order.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().expect("trace lock").clone()
    }

    /// Snapshot of all counter samples recorded so far.
    pub fn counters(&self) -> Vec<CounterSample> {
        self.counters.lock().expect("trace lock").clone()
    }

    /// Sum of the durations of all spans whose name satisfies `pred`.
    pub fn span_time_where(&self, pred: impl Fn(&str) -> bool) -> Duration {
        self.spans
            .lock()
            .expect("trace lock")
            .iter()
            .filter(|s| pred(&s.name))
            .map(|s| s.dur)
            .sum()
    }

    fn record(&self, span: Span) {
        self.spans.lock().expect("trace lock").push(span);
    }
}

/// An open span; records itself into the owning [`Trace`] on drop.
#[must_use = "a span measures until it is dropped; binding it to _ drops it immediately"]
pub struct SpanGuard<'a> {
    trace: &'a Trace,
    name: String,
    start: Duration,
    args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard<'_> {
    /// Attach an argument (entry count, byte count, …) to the span.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        self.args.push((key, value.into()));
    }

    /// [`SpanGuard::arg`] with an explicit `u64` (avoids inference churn at
    /// call sites mixing integer types).
    pub fn arg_u64(&mut self, key: &'static str, value: u64) {
        self.arg(key, value);
    }

    /// Close the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = self.trace.epoch.elapsed();
        self.trace.record(Span {
            name: std::mem::take(&mut self.name),
            start: self.start,
            dur: end.saturating_sub(self.start),
            args: std::mem::take(&mut self.args),
        });
    }
}

/// Open a span on an optional trace — the idiom for instrumented hot paths
/// where tracing is usually off: `None` costs exactly this one check.
pub fn span_in<'a>(trace: Option<&'a Trace>, name: impl Into<String>) -> Option<SpanGuard<'a>> {
    trace.map(|t| t.span(name))
}

/// Argument attachment on `Option<SpanGuard>` (the [`span_in`] result)
/// without unwrapping at every call site.
pub trait OptSpan {
    /// Attach an argument if the span exists; no-op when tracing is off.
    fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>);
}

impl OptSpan for Option<SpanGuard<'_>> {
    fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(g) = self.as_mut() {
            g.arg(key, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop() {
        let t = Trace::new();
        {
            let mut s = t.span("prune");
            s.arg_u64("k_before", 40);
            s.arg("hit_rate", 0.5);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "prune");
        assert_eq!(spans[0].args[0], ("k_before", ArgValue::U64(40)));
        assert_eq!(spans[0].args[1], ("hit_rate", ArgValue::F64(0.5)));
    }

    #[test]
    fn span_ordering_is_consistent() {
        let t = Trace::new();
        t.span("a").finish();
        std::thread::sleep(Duration::from_millis(2));
        let s = t.span("b");
        std::thread::sleep(Duration::from_millis(2));
        drop(s);
        let spans = t.spans();
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[1].name, "b");
        assert!(spans[1].start >= spans[0].start + spans[0].dur);
        assert!(spans[1].dur >= Duration::from_millis(1));
        assert!(t.elapsed() >= spans[1].start + spans[1].dur);
    }

    #[test]
    fn counters_sample_with_timestamps() {
        let t = Trace::new();
        t.counter("table_bytes", 10);
        t.counter("table_bytes", 30);
        let cs = t.counters();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].value, 10);
        assert_eq!(cs[1].value, 30);
        assert!(cs[1].at >= cs[0].at);
    }

    #[test]
    fn optional_span_is_free_when_off() {
        let mut none = span_in(None, "x");
        none.arg("k", 1u64); // must be a no-op, not a panic
        assert!(none.is_none());
        let t = Trace::new();
        let mut some = span_in(Some(&t), "x");
        some.arg("k", 1u64);
        drop(some);
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.spans()[0].args.len(), 1);
    }

    #[test]
    fn span_time_where_sums_matching_spans() {
        let t = Trace::new();
        t.span("wavefront 0").finish();
        t.span("wavefront 1").finish();
        t.span("backtrack").finish();
        let waves = t.span_time_where(crate::phase::is_wavefront);
        let all = t.span_time_where(|_| true);
        assert!(waves <= all);
        assert_eq!(t.span_time_where(|n| n == "nope"), Duration::ZERO);
    }

    #[test]
    fn trace_is_shareable_across_threads() {
        let t = Trace::new();
        std::thread::scope(|scope| {
            for i in 0..4 {
                let t = &t;
                scope.spawn(move || {
                    let mut s = t.span(format!("worker {i}"));
                    s.arg("i", i as u64);
                });
            }
        });
        assert_eq!(t.spans().len(), 4);
    }
}
