//! # pase-obs — search observability (phase spans, counters, Chrome traces)
//!
//! The search pipeline (`enumerate configs → build cost tables → intern →
//! dominance-prune → wavefront DP fill → backtrack`) is instrumented with
//! *phase-scoped spans*: wall-clock intervals named after the pipeline
//! phase, carrying entry/byte counters as arguments. A [`Trace`] collects
//! spans and counter samples; [`chrome_trace_json`] serializes them into
//! the JSON event format `chrome://tracing` and Perfetto load directly.
//!
//! Everything is `std`-only (the workspace builds offline) and designed so
//! that a *disabled* trace costs one `Option` check per phase — spans are
//! recorded at phase/wavefront granularity, never per DP entry, so enabling
//! tracing is cheap and disabling it is free.
//!
//! ```
//! use pase_obs::{chrome_trace_json, Trace};
//!
//! let trace = Trace::new();
//! {
//!     let mut span = trace.span("prune");
//!     span.arg_u64("k_before", 40);
//! } // recorded on drop
//! trace.counter("table_bytes", 1024);
//! let json = chrome_trace_json(&trace);
//! assert!(json.contains("\"name\": \"prune\""));
//! ```

#![warn(missing_docs)]

mod chrome;
pub mod json;
pub mod phase;
mod trace;

pub use chrome::chrome_trace_json;
pub use trace::{span_in, ArgValue, CounterSample, OptSpan, Span, SpanGuard, Trace};
