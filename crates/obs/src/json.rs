//! RFC 8259-conformant JSON string escaping.
//!
//! A JSON string may not contain unescaped control characters
//! (U+0000–U+001F), `"` or `\`; everything else passes through verbatim.
//! The named short escapes are used where they exist (`\n`, `\t`, `\r`,
//! `\b`, `\f`), the generic `\u00XX` form otherwise.

use std::fmt::Write;

/// Append the RFC 8259 escaping of `s` to `out` (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// The RFC 8259 escaping of `s` as a new string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Format `v` as a JSON number: finite floats in shortest round-trip form,
/// non-finite values (which JSON cannot represent) as `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` is Rust's shortest round-trip float form and always
        // contains a '.' or 'e', keeping the token unambiguously a float.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(escape("conv1/3x3"), "conv1/3x3");
        assert_eq!(escape(""), "");
        assert_eq!(escape("déjà-vu λ"), "déjà-vu λ");
    }

    #[test]
    fn quotes_and_backslashes() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
    }

    #[test]
    fn named_control_escapes() {
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\tb"), "a\\tb");
        assert_eq!(escape("a\rb"), "a\\rb");
        assert_eq!(escape("a\u{8}b"), "a\\bb");
        assert_eq!(escape("a\u{c}b"), "a\\fb");
    }

    #[test]
    fn generic_control_escapes() {
        assert_eq!(escape("\u{0}"), "\\u0000");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("\u{1f}"), "\\u001f");
        // U+007F DEL is *not* required to be escaped by RFC 8259.
        assert_eq!(escape("\u{7f}"), "\u{7f}");
    }

    #[test]
    fn numbers_are_finite_or_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.0), "0.0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        let back: f64 = number(1234.5678e9).parse().unwrap();
        assert_eq!(back, 1234.5678e9);
    }
}
