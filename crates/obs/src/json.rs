//! Hand-rolled RFC 8259 JSON machinery shared across the workspace.
//!
//! *Escaping*: a JSON string may not contain unescaped control characters
//! (U+0000–U+001F), `"` or `\`; everything else passes through verbatim.
//! The named short escapes are used where they exist (`\n`, `\t`, `\r`,
//! `\b`, `\f`), the generic `\u00XX` form otherwise.
//!
//! *Parsing*: [`parse`] covers the JSON subset every producer in the
//! workspace emits — objects, arrays, strings with the full RFC 8259
//! escape set (including surrogate pairs), integers, floats, booleans,
//! and `null` — so sharding specs, search reports, cache entries, and the
//! planner-service wire protocol all round-trip without an external
//! dependency.

use std::fmt::Write;

/// Append the RFC 8259 escaping of `s` to `out` (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// The RFC 8259 escaping of `s` as a new string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Format `v` as a JSON number: finite floats in shortest round-trip form,
/// non-finite values (which JSON cannot represent) as `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` is Rust's shortest round-trip float form and always
        // contains a '.' or 'e', keeping the token unambiguously a float.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value (see [`parse`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// An object, as key/value pairs in document order (duplicates kept;
    /// [`Value::get`] returns the first).
    Object(Vec<(String, Value)>),
    /// An array.
    Array(Vec<Value>),
    /// A string (escapes already resolved).
    Str(String),
    /// A non-negative integer that fits `u64`.
    Num(u64),
    /// Any other number (floats, negatives, exponents).
    Float(f64),
    /// `true` or `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Value {
    /// Member `key` of an object (`None` for other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Any numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Maximum container nesting the parser accepts. The parser recurses once
/// per `[`/`{`, so untrusted input (e.g. a request line of 100k `[`s)
/// must be bounded before it overflows the stack and aborts the process.
const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos, depth),
        Some(b'[') => array(b, pos, depth),
        Some(b'"') => string(b, pos).map(Value::Str),
        Some(b't') => literal(b, pos, "true", Value::Bool(true)),
        Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
        Some(b'n') => literal(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        other => Err(format!(
            "unexpected {:?} at byte {pos}",
            other.map(|&c| c as char)
        )),
    }
}

fn object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth >= MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    expect(b, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(pairs));
    }
    loop {
        skip_ws(b, pos);
        let key = string(b, pos)?;
        expect(b, pos, b':')?;
        pairs.push((key, value(b, pos, depth + 1)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth >= MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

/// Parse the four hex digits of a `\uXXXX` escape.
fn hex4(b: &[u8], pos: &mut usize) -> Result<u16, String> {
    let digits = b
        .get(*pos..*pos + 4)
        .and_then(|d| std::str::from_utf8(d).ok())
        .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
    let v = u16::from_str_radix(digits, 16).map_err(|_| format!("bad \\u escape at byte {pos}"))?;
    *pos += 4;
    Ok(v)
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    // Unescaped spans are copied as byte slices, so multi-byte UTF-8
    // sequences survive intact (byte-at-a-time `c as char` would not).
    let mut run = *pos;
    let flush = |out: &mut String, run: usize, end: usize| -> Result<(), String> {
        out.push_str(std::str::from_utf8(&b[run..end]).map_err(|_| "invalid UTF-8 in string")?);
        Ok(())
    };
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                flush(&mut out, run, *pos)?;
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                flush(&mut out, run, *pos)?;
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        *pos += 1;
                        let hi = hex4(b, pos)?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a second \uXXXX must follow.
                            if b.get(*pos) != Some(&b'\\') || b.get(*pos + 1) != Some(&b'u') {
                                return Err(format!("unpaired surrogate at byte {pos}"));
                            }
                            *pos += 2;
                            let lo = hex4(b, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(format!("bad low surrogate at byte {pos}"));
                            }
                            0x10000 + ((u32::from(hi) - 0xD800) << 10) + (u32::from(lo) - 0xDC00)
                        } else {
                            u32::from(hi)
                        };
                        out.push(
                            char::from_u32(cp)
                                .ok_or_else(|| format!("bad code point at byte {pos}"))?,
                        );
                        run = *pos;
                        continue;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
                run = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number bytes")?;
    if !is_float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::Num(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(escape("conv1/3x3"), "conv1/3x3");
        assert_eq!(escape(""), "");
        assert_eq!(escape("déjà-vu λ"), "déjà-vu λ");
    }

    #[test]
    fn quotes_and_backslashes() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
    }

    #[test]
    fn named_control_escapes() {
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\tb"), "a\\tb");
        assert_eq!(escape("a\rb"), "a\\rb");
        assert_eq!(escape("a\u{8}b"), "a\\bb");
        assert_eq!(escape("a\u{c}b"), "a\\fb");
    }

    #[test]
    fn generic_control_escapes() {
        assert_eq!(escape("\u{0}"), "\\u0000");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("\u{1f}"), "\\u001f");
        // U+007F DEL is *not* required to be escaped by RFC 8259.
        assert_eq!(escape("\u{7f}"), "\u{7f}");
    }

    #[test]
    fn numbers_are_finite_or_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.0), "0.0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        let back: f64 = number(1234.5678e9).parse().unwrap();
        assert_eq!(back, 1234.5678e9);
    }

    #[test]
    fn parser_handles_objects_arrays_and_numbers() {
        let v = parse("{\"a\": [1, -2.5, \"x\"], \"b\": {\"c\": 3}}").unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_str(), Some("x"));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_u64),
            Some(3)
        );
    }

    #[test]
    fn parser_handles_literals() {
        let v = parse("{\"t\": true, \"f\": false, \"n\": null}").unwrap();
        assert_eq!(v.get("t").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("f").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("n"), Some(&Value::Null));
        assert!(parse("tru").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parser_round_trips_escaped_strings() {
        let original = "weird\n\tname \u{1} λ 😀 \"q\" \\";
        let mut doc = String::from("\"");
        escape_into(&mut doc, original);
        doc.push('"');
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "[1,2", "{\"k\": }", "\"\\ud83d\"", "", "1 2"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_bounds_nesting_depth() {
        // Recursion must be bounded: 100k brackets would otherwise
        // overflow the stack and abort the process, not unwind.
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).unwrap_err().contains("nesting"));
        let at_limit = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&at_limit).is_ok());
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&over).is_err());
    }
}
