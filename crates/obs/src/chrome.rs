//! Chrome-trace (`chrome://tracing` / Perfetto) serialization.
//!
//! Emits the JSON object format: a `traceEvents` array of complete-duration
//! (`"ph": "X"`) events for spans and counter (`"ph": "C"`) events for
//! counter samples, timestamps in microseconds relative to the trace epoch.
//! Load the file via `chrome://tracing` → *Load*, or <https://ui.perfetto.dev>.

use crate::json;
use crate::trace::{ArgValue, Trace};
use std::fmt::Write;
use std::time::Duration;

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": ", json::escape(k));
        match v {
            ArgValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::F64(x) => out.push_str(&json::number(*x)),
            ArgValue::Str(s) => {
                let _ = write!(out, "\"{}\"", json::escape(s));
            }
        }
    }
}

/// Serialize `trace` as a Chrome-trace JSON document.
///
/// All events carry `pid` 1 and `tid` 1: the pipeline phases are
/// sequential on the coordinating thread (worker-level parallelism lives
/// *inside* the spans), so a single row renders the timeline faithfully.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let spans = trace.spans();
    let counters = trace.counters();
    let mut out = String::with_capacity(256 * (spans.len() + counters.len()) + 64);
    out.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    let mut first = true;
    for s in &spans {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"cat\": \"search\", \"ph\": \"X\", \
             \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": 1, \"args\": {{",
            json::escape(&s.name),
            micros(s.start),
            micros(s.dur)
        );
        write_args(&mut out, &s.args);
        out.push_str("}}");
    }
    for c in &counters {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"cat\": \"search\", \"ph\": \"C\", \
             \"ts\": {:.3}, \"pid\": 1, \"args\": {{\"value\": {}}}}}",
            json::escape(c.name),
            micros(c.at),
            c.value
        );
    }
    out.push_str("\n]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let t = Trace::new();
        {
            let mut s = t.span("table_build");
            s.arg_u64("entries", 123);
            s.arg("note", "a \"quoted\"\nname");
        }
        t.span("wavefront 0").finish();
        t.counter("table_bytes", 4096);
        t
    }

    #[test]
    fn output_contains_span_and_counter_events() {
        let out = chrome_trace_json(&sample_trace());
        assert!(out.contains("\"name\": \"table_build\""));
        assert!(out.contains("\"ph\": \"X\""));
        assert!(out.contains("\"name\": \"wavefront 0\""));
        assert!(out.contains("\"ph\": \"C\""));
        assert!(out.contains("\"entries\": 123"));
        assert!(out.contains("\"value\": 4096"));
    }

    #[test]
    fn output_is_structurally_balanced_json() {
        let out = chrome_trace_json(&sample_trace());
        // Control characters in span args must have been escaped away.
        assert!(!out.chars().any(|c| (c as u32) < 0x20 && c != '\n'));
        assert!(out.contains("\\n"));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        assert_eq!(out.matches('[').count(), out.matches(']').count());
        assert!(out.trim_start().starts_with('{') && out.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_trace_is_valid() {
        let out = chrome_trace_json(&Trace::new());
        assert!(out.contains("\"traceEvents\": [\n\n]"));
    }
}
