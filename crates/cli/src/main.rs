//! `pase` — find, compare, and export DNN parallelization strategies from
//! the command line.
//!
//! ```text
//! pase search  --model alexnet --devices 32 [--machine 1080ti] [--json]
//!              [--memory-limit-gb 8] [--weak-scaling]
//! pase compare --model rnnlm --devices 32 [--machine 2080ti]
//! pase stats   --model inception
//! pase export  --model transformer --devices 16 [--out strategy.json]
//! ```

mod args;

use args::Args;
use pase_baselines::{data_parallel, gnmt_expert, mesh_tf_expert, owt};
use pase_core::{
    dependent_set_sizes, find_best_strategy_pruned_traced, find_best_strategy_traced, generate_seq,
    optcnn_search, DpOptions, ReductionOutcome, SearchOutcome, SearchReport, SearchResult,
};
use pase_cost::{
    from_sharding_json, to_sharding_json, to_sharding_json_with, validate_strategy, ConfigRule,
    CostTables, MachineSpec, PruneOptions, Strategy, TableOptions,
};
use pase_graph::{bfs_order, Graph, GraphStats};
use pase_models as models;
use pase_obs::{chrome_trace_json, Trace};
use pase_sim::{memory_per_device, simulate_step, simulate_step_trace, SimOptions, Topology};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
pase — parallelization strategies for efficient DNN training

USAGE:
  pase <search|compare|stats|export|simulate|trace|pipeline> [options]

OPTIONS:
  --model <alexnet|inception|rnnlm|rnnlm-unrolled|gnmt|transformer|densenet|resnet|vgg|bert|mlp>
  --devices <p>            device count (default 8)
  --machine <1080ti|2080ti> cluster profile (default 1080ti)
  --memory-limit-gb <g>    per-device memory cap for the search
  --algorithm <pase|optcnn> search algorithm (default pase; optcnn fails on
                           graphs outside its reducible class, cf. paper §VI)
  --weak-scaling           scale the global batch with the device count
  --search-threads <n>     worker threads for the wavefront-parallel search
                           (default: all cores)
  --no-intern              disable structural cost-table interning (A/B
                           measurement; results are identical either way)
  --no-prune               disable exact dominance pruning of the per-layer
                           configuration space (A/B measurement; pruning is
                           exact, so results are identical either way)
  --prune-epsilon <e>      prune configs dominated within (1+e) — faster on
                           large p but only (1+e)-optimal (default 0 = exact)
  --json                   print the strategy as a GShard-style sharding spec
                           with an embedded \"search_report\" object
  --trace-out <file>       (search) write a Chrome-trace JSON timeline of the
                           search pipeline (open in chrome://tracing or
                           https://ui.perfetto.dev)
  --out <file>             write output to a file instead of stdout
  --strategy <file>        (simulate) sharding spec produced by `pase export`
  --top <k>                (trace) show the k most expensive layers (default 10)
  --stages <s>             (pipeline) stage count, must divide p (default 2)
  --microbatches <m>       (pipeline) GPipe chunks per step (default 8)
";

fn build_model(name: &str, p: u32, weak_scaling: bool) -> Result<Graph, String> {
    let scale = |b: u64| if weak_scaling { b * u64::from(p) } else { b };
    Ok(match name {
        "alexnet" => models::alexnet(&models::AlexNetConfig {
            batch: scale(128),
            ..models::AlexNetConfig::paper()
        }),
        "inception" => models::inception_v3(&models::InceptionConfig {
            batch: scale(128),
            ..models::InceptionConfig::paper()
        }),
        "rnnlm" => models::rnnlm(&models::RnnlmConfig {
            batch: scale(64),
            ..models::RnnlmConfig::paper()
        }),
        "rnnlm-unrolled" => models::rnnlm_unrolled(&models::RnnlmConfig {
            batch: scale(64),
            ..models::RnnlmConfig::paper()
        }),
        "transformer" => models::transformer(&models::TransformerConfig {
            batch: scale(64),
            ..models::TransformerConfig::paper()
        }),
        "densenet" => models::densenet(&models::DenseNetConfig {
            batch: scale(128),
            ..models::DenseNetConfig::paper()
        }),
        "resnet" => models::resnet(&models::ResNetConfig {
            batch: scale(128),
            ..models::ResNetConfig::paper()
        }),
        "gnmt" => models::gnmt(&models::GnmtConfig {
            batch: scale(64),
            ..models::GnmtConfig::paper()
        }),
        "vgg" => models::vgg16(&models::VggConfig {
            batch: scale(128),
            ..models::VggConfig::paper()
        }),
        "bert" => models::bert_encoder(&models::BertConfig {
            batch: scale(64),
            ..models::BertConfig::paper()
        }),
        "mlp" => models::mlp(&models::MlpConfig {
            batch: scale(64),
            ..Default::default()
        }),
        other => return Err(format!("unknown model '{other}'\n\n{USAGE}")),
    })
}

fn machine_profile(name: &str) -> Result<MachineSpec, String> {
    match name {
        "1080ti" => Ok(MachineSpec::gtx1080ti()),
        "2080ti" => Ok(MachineSpec::rtx2080ti()),
        other => Err(format!("unknown machine '{other}' (use 1080ti or 2080ti)")),
    }
}

/// Engine knobs shared by every searching subcommand.
#[derive(Clone, Copy, Debug)]
struct SearchKnobs {
    /// Worker threads for table building and the wavefront fill (0 = all
    /// cores).
    threads: usize,
    /// Structural cost-table interning (`--no-intern` turns it off).
    intern: bool,
    /// Dominance pruning of the configuration space (`--no-prune` turns it
    /// off).
    prune: bool,
    /// Dominance slack ε for `--prune-epsilon` (0 = exact).
    prune_epsilon: f64,
}

impl SearchKnobs {
    fn from_args(args: &Args) -> Result<Self, String> {
        let prune_epsilon: f64 = args.get_or("prune-epsilon", 0.0)?;
        if !(prune_epsilon >= 0.0) {
            return Err(format!("--prune-epsilon must be ≥ 0, got {prune_epsilon}"));
        }
        Ok(Self {
            threads: args.get_or("search-threads", 0usize)?,
            intern: !args.has("no-intern"),
            prune: !args.has("no-prune"),
            prune_epsilon,
        })
    }
}

fn search_strategy(
    graph: &Graph,
    p: u32,
    machine: &MachineSpec,
    memory_limit_gb: Option<f64>,
    knobs: SearchKnobs,
    trace: Option<&Trace>,
) -> Result<(Strategy, f64, pase_core::SearchStats, CostTables), String> {
    let mut rule = ConfigRule::new(p);
    if let Some(gb) = memory_limit_gb {
        rule = rule.with_memory_limit(gb * (1u64 << 30) as f64);
    }
    let table_opts = TableOptions {
        intern: knobs.intern,
        ..TableOptions::default()
    };
    let pipeline_start = Instant::now();
    let run = || {
        let tables = CostTables::build_traced(graph, rule, machine, &table_opts, trace);
        let outcome = if knobs.prune {
            find_best_strategy_pruned_traced(
                graph,
                &tables,
                &DpOptions::default(),
                &PruneOptions {
                    epsilon: knobs.prune_epsilon,
                    ..PruneOptions::default()
                },
                trace,
            )
        } else {
            find_best_strategy_traced(graph, &tables, &DpOptions::default(), trace)
        };
        (tables, outcome)
    };
    let (tables, mut outcome) = if knobs.threads > 0 {
        rayon::ThreadPoolBuilder::new()
            .num_threads(knobs.threads)
            .build()
            .map_err(|e| format!("cannot build thread pool: {e}"))?
            .install(run)
    } else {
        run()
    };
    // Report elapsed over the whole pipeline (table build + prune + DP),
    // matching what the recorded phase spans cover.
    let elapsed = pipeline_start.elapsed();
    match &mut outcome {
        SearchOutcome::Found(r) => r.stats.elapsed = elapsed,
        SearchOutcome::Oom { stats, .. } | SearchOutcome::Timeout { stats } => {
            stats.elapsed = elapsed;
        }
    }
    match outcome {
        SearchOutcome::Found(r) => {
            let s = tables.ids_to_strategy(&r.config_ids);
            Ok((s, r.cost, r.stats, tables))
        }
        other => Err(format!("search failed: {}", other.tag())),
    }
}

fn emit(out_path: Option<&str>, content: &str) -> Result<(), String> {
    match out_path {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1))?;
    let Some(command) = args.command.clone() else {
        return Err(USAGE.to_string());
    };
    let model = args.get("model").unwrap_or("mlp").to_string();
    let p: u32 = args.get_or("devices", 8)?;
    let machine = machine_profile(args.get("machine").unwrap_or("1080ti"))?;
    let weak = args.has("weak-scaling");
    let knobs = SearchKnobs::from_args(&args)?;
    let graph = build_model(&model, p, weak)?;

    match command.as_str() {
        "search" => {
            let memory_limit = args.get("memory-limit-gb").map(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("invalid --memory-limit-gb: {v}"))
            });
            let memory_limit = memory_limit.transpose()?;
            if args.get("algorithm") == Some("optcnn") {
                let tables = CostTables::build(&graph, ConfigRule::new(p), &machine);
                return match optcnn_search(&graph, &tables) {
                    ReductionOutcome::Reduced {
                        cost,
                        config_ids,
                        eliminations,
                    } => {
                        let strategy = tables.ids_to_strategy(&config_ids);
                        let mut content = format!(
                            "model {model}, p = {p} — OptCNN graph reduction \
                             ({eliminations} eliminations)\nminimum cost {cost:.4e} \
                             FLOP-units\n\n"
                        );
                        content.push_str(&strategy.report(&graph));
                        emit(args.get("out"), &content)
                    }
                    ReductionOutcome::Irreducible { remaining } => Err(format!(
                        "optcnn: graph is irreducible ({} vertices remain) — \
                         use the default PaSE algorithm (paper §VI)",
                        remaining.len()
                    )),
                };
            }
            // A trace is recorded whenever it has a consumer: an explicit
            // --trace-out file, or the per-phase breakdown of the --json
            // search report.
            let trace = (args.get("trace-out").is_some() || args.has("json")).then(Trace::new);
            let (strategy, cost, stats, tables) =
                search_strategy(&graph, p, &machine, memory_limit, knobs, trace.as_ref())?;
            if let Some(path) = args.get("trace-out") {
                let t = trace.as_ref().expect("trace was created for --trace-out");
                std::fs::write(path, chrome_trace_json(t))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            if args.has("json") {
                let outcome = SearchOutcome::Found(SearchResult {
                    cost,
                    config_ids: vec![],
                    stats: stats.clone(),
                });
                let report = SearchReport::new(model.as_str(), p, &outcome, trace.as_ref());
                let report_json = report.to_json();
                emit(
                    args.get("out"),
                    &to_sharding_json_with(&graph, &strategy, &[("search_report", &report_json)]),
                )?;
            } else {
                let intern = tables.intern_stats();
                let prune_line = if stats.k_before > stats.max_configs {
                    format!(
                        "dominance pruning: K {} -> {} in {:?}\n",
                        stats.k_before, stats.max_configs, stats.prune_time
                    )
                } else {
                    String::new()
                };
                let mut content = format!(
                    "model {model}, p = {p}, machine {} — search {:?} (K = {}, M = {})\n\
                     wavefronts {} (max width {}), intern hit rate {:.0}%\n\
                     {prune_line}\
                     minimum cost {cost:.4e} FLOP-units\n\n",
                    machine.name,
                    stats.elapsed,
                    stats.max_configs,
                    stats.max_dependent_set,
                    stats.wavefronts,
                    stats.max_wavefront_width,
                    intern.hit_rate() * 100.0
                );
                content.push_str(&strategy.report(&graph));
                emit(args.get("out"), &content)?;
            }
        }
        "compare" => {
            let topo = Topology::cluster(machine.clone(), p);
            let opts = SimOptions::default();
            let (ours, _, _, _) = search_strategy(&graph, p, &machine, None, knobs, None)?;
            let expert = match model.as_str() {
                "rnnlm" | "rnnlm-unrolled" | "gnmt" => gnmt_expert(&graph, p),
                "transformer" => mesh_tf_expert(&graph, p),
                _ => owt(&graph, p),
            };
            let mut content = format!(
                "{:<16} {:>12} {:>14} {:>12}\n",
                "strategy", "step (ms)", "samples/s", "mem (MiB)"
            );
            for (name, s) in [
                ("data-parallel", data_parallel(&graph, p)),
                ("expert", expert),
                ("pase", ours),
            ] {
                let rep = simulate_step(&graph, &s, &topo, &opts);
                let mem = memory_per_device(&graph, &s, &topo) / (1 << 20) as f64;
                content.push_str(&format!(
                    "{:<16} {:>12.2} {:>14.0} {:>12.0}\n",
                    name,
                    rep.step_seconds * 1e3,
                    rep.throughput,
                    mem
                ));
            }
            emit(args.get("out"), &content)?;
        }
        "stats" => {
            let stats = GraphStats::of(&graph);
            let order = generate_seq(&graph);
            let gs = dependent_set_sizes(&graph, &order);
            let bf = dependent_set_sizes(&graph, &bfs_order(&graph));
            let structure = pase_core::VertexStructure::build(
                &graph,
                &order,
                pase_core::ConnectedSetMode::Exact,
            );
            let tables = CostTables::build_with(
                &graph,
                ConfigRule::new(p),
                &machine,
                &TableOptions {
                    intern: knobs.intern,
                    ..TableOptions::default()
                },
            );
            let intern = tables.intern_stats();
            let content = format!(
                "model {model}: {} nodes, {} edges\n\
                 degrees: max {}, mean {:.2}, high-degree (≥5) {}\n\
                 step flops: {:.3e}, parameters: {:.3e}\n\
                 max |D(i)|: GenerateSeq {}, breadth-first {}\n\
                 wavefronts: {} (max width {})\n\
                 cost tables (p = {p}): {} layer tables for {} nodes, \
                 {} edge tables for {} edges — intern hit rate {:.0}%\n",
                stats.nodes,
                stats.edges,
                stats.degrees.max,
                stats.degrees.mean,
                stats.degrees.high_degree,
                stats.step_flops,
                stats.params,
                gs.iter().max().unwrap_or(&0),
                bf.iter().max().unwrap_or(&0),
                structure.wavefronts().len(),
                structure.max_wavefront_width(),
                intern.unique_layer_tables,
                intern.nodes,
                intern.unique_edge_tables,
                intern.edges,
                intern.hit_rate() * 100.0,
            );
            emit(args.get("out"), &content)?;
        }
        "export" => {
            let (strategy, _, _, _) = search_strategy(&graph, p, &machine, None, knobs, None)?;
            emit(args.get("out"), &to_sharding_json(&graph, &strategy))?;
        }
        "simulate" => {
            // Load a user-provided sharding spec, validate it, and time it
            // on the chosen cluster — the round trip a framework
            // integration would take.
            let path = args
                .get("strategy")
                .ok_or("simulate needs --strategy <file>")?;
            let json =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let strategy = from_sharding_json(&graph, &json)?;
            validate_strategy(&graph, &strategy, &ConfigRule::new(p))?;
            let topo = Topology::cluster(machine.clone(), p);
            let rep = simulate_step(&graph, &strategy, &topo, &SimOptions::default());
            let content = format!(
                "model {model}, p = {p}, machine {}\n\
                 step time      {:.3} ms\n\
                 compute        {:.3} ms\n\
                 intra-layer    {:.3} ms\n\
                 transfers      {:.3} ms\n\
                 gradient sync  {:.3} ms\n\
                 throughput     {:.0} samples/s\n\
                 memory/device  {:.0} MiB\n",
                machine.name,
                rep.step_seconds * 1e3,
                rep.compute_seconds * 1e3,
                rep.intra_layer_seconds * 1e3,
                rep.transfer_seconds * 1e3,
                rep.gradient_sync_seconds * 1e3,
                rep.throughput,
                memory_per_device(&graph, &strategy, &topo) / (1 << 20) as f64,
            );
            emit(args.get("out"), &content)?;
        }
        "trace" => {
            // Per-layer timing of the searched strategy: where does the
            // step time actually go?
            let (strategy, _, _, _) = search_strategy(&graph, p, &machine, None, knobs, None)?;
            let topo = Topology::cluster(machine.clone(), p);
            let (rep, mut rows) =
                simulate_step_trace(&graph, &strategy, &topo, &SimOptions::default());
            let top: usize = args.get_or("top", 10)?;
            rows.sort_by(|a, b| {
                let ta = a.compute + a.intra_layer + a.gradient_sync;
                let tb = b.compute + b.intra_layer + b.gradient_sync;
                tb.partial_cmp(&ta).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut content = format!(
                "model {model}, p = {p}: step {:.2} ms (compute {:.2}, comm {:.2})\n\n\
                 {:<28} {:<12} {:>11} {:>11} {:>11}\n",
                rep.step_seconds * 1e3,
                rep.compute_seconds * 1e3,
                rep.comm_seconds() * 1e3,
                "layer",
                "config",
                "compute ms",
                "intra ms",
                "sync ms"
            );
            for row in rows.iter().take(top) {
                let node = graph.node(row.node);
                content.push_str(&format!(
                    "{:<28} {:<12} {:>11.3} {:>11.3} {:>11.3}\n",
                    node.name,
                    format!("{}", strategy.config(row.node)),
                    row.compute * 1e3,
                    row.intra_layer * 1e3,
                    row.gradient_sync * 1e3
                ));
            }
            emit(args.get("out"), &content)?;
        }
        "pipeline" => {
            // §VI composition: PipeDream-style stages, PaSE inside each.
            use pase_pipeline::{plan_pipeline, simulate_pipeline, PipelineOptions};
            let stages: usize = args.get_or("stages", 2)?;
            let microbatches: u32 = args.get_or("microbatches", 8)?;
            let plan = plan_pipeline(
                &graph,
                p,
                &machine,
                &PipelineOptions {
                    stages,
                    microbatches,
                    ..Default::default()
                },
            )?;
            let stage_topo = Topology::cluster(machine.clone(), plan.devices_per_stage);
            let rep = simulate_pipeline(&graph, &plan, &stage_topo, &SimOptions::default());
            let mut content = format!(
                "model {model}, p = {p}: {stages} stages x {} devices, \
                 {microbatches} microbatches\n\
                 step {:.2} ms (bubble x{:.2}, boundary {:.1} MiB) -> \
                 {:.0} samples/s\n\nper-stage times:\n",
                plan.devices_per_stage,
                rep.step_seconds * 1e3,
                rep.bubble_factor,
                rep.boundary_bytes / (1 << 20) as f64,
                rep.throughput,
            );
            for (i, t) in rep.stage_seconds.iter().enumerate() {
                let (sub, _) = &plan.stage_graphs[i];
                content.push_str(&format!(
                    "  stage {i}: {:>8.2} ms  ({} layers)\n",
                    t * 1e3,
                    sub.len()
                ));
            }
            emit(args.get("out"), &content)?;
        }
        other => return Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_advertised_model_builds() {
        for m in [
            "alexnet",
            "inception",
            "rnnlm",
            "rnnlm-unrolled",
            "gnmt",
            "transformer",
            "densenet",
            "resnet",
            "vgg",
            "bert",
            "mlp",
        ] {
            let g = build_model(m, 4, false).unwrap_or_else(|e| panic!("{m}: {e}"));
            assert!(!g.is_empty(), "{m}");
        }
        assert!(build_model("nope", 4, false).is_err());
    }

    #[test]
    fn weak_scaling_multiplies_the_batch() {
        let g1 = build_model("rnnlm", 8, false).unwrap();
        let g8 = build_model("rnnlm", 8, true).unwrap();
        assert_eq!(pase_sim::batch_size(&g8), 8 * pase_sim::batch_size(&g1));
    }

    #[test]
    fn machine_profiles_resolve() {
        assert_eq!(machine_profile("1080ti").unwrap().name, "1080ti");
        assert_eq!(machine_profile("2080ti").unwrap().name, "2080ti");
        assert!(machine_profile("v100").is_err());
    }

    #[test]
    fn search_strategy_produces_complete_cover() {
        let g = build_model("mlp", 4, false).unwrap();
        let knobs = SearchKnobs::from_args(&Args::default()).unwrap();
        let (s, cost, stats, _) =
            search_strategy(&g, 4, &MachineSpec::gtx1080ti(), None, knobs, None).unwrap();
        assert_eq!(s.len(), g.len());
        assert!(cost > 0.0);
        assert!(stats.max_configs > 0);
        assert!(stats.wavefronts > 0);
    }

    #[test]
    fn traced_search_spans_cover_reported_elapsed() {
        use pase_obs::phase;
        let g = build_model("mlp", 8, false).unwrap();
        let knobs = SearchKnobs::from_args(&Args::default()).unwrap();
        let trace = Trace::new();
        let (_, _, stats, _) =
            search_strategy(&g, 8, &MachineSpec::gtx1080ti(), None, knobs, Some(&trace)).unwrap();
        let names: Vec<String> = trace.spans().iter().map(|s| s.name.clone()).collect();
        for required in [
            phase::ENUMERATION,
            phase::INTERNING,
            phase::TABLE_BUILD,
            phase::PRUNE,
            phase::STRUCTURE,
            phase::BACKTRACK,
        ] {
            assert!(
                names.iter().any(|n| n == required),
                "missing {required} in {names:?}"
            );
        }
        assert!(names.iter().any(|n| phase::is_wavefront(n)));
        // The pipeline spans are disjoint phases of the same run, so their
        // sum is bounded by the full-pipeline elapsed that search_strategy
        // reports.
        let disjoint = trace.span_time_where(|n| {
            matches!(
                n,
                phase::ENUMERATION
                    | phase::INTERNING
                    | phase::TABLE_BUILD
                    | phase::PRUNE
                    | phase::STRUCTURE
                    | phase::PLAN
                    | phase::BACKTRACK
            ) || phase::is_wavefront(n)
        });
        assert!(
            disjoint <= stats.elapsed,
            "span sum {disjoint:?} exceeds pipeline elapsed {:?}",
            stats.elapsed
        );
    }

    #[test]
    fn search_knobs_parse_from_args() {
        let a = Args::parse(
            "search --search-threads 2 --no-intern --no-prune"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let k = SearchKnobs::from_args(&a).unwrap();
        assert_eq!(k.threads, 2);
        assert!(!k.intern);
        assert!(!k.prune);
        let d = SearchKnobs::from_args(&Args::default()).unwrap();
        assert_eq!(d.threads, 0);
        assert!(d.intern);
        assert!(d.prune);
        assert_eq!(d.prune_epsilon, 0.0);
        let e = Args::parse(
            "search --prune-epsilon 0.05"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(SearchKnobs::from_args(&e).unwrap().prune_epsilon, 0.05);
        let bad = Args::parse(
            "search --prune-epsilon -1"
                .split_whitespace()
                .map(String::from),
        );
        // "-1" is parsed as a flag-less value only if it doesn't look like
        // an option; either parse or knob construction must reject it.
        assert!(bad.is_err() || SearchKnobs::from_args(&bad.unwrap()).is_err());
    }

    #[test]
    fn capped_threads_and_no_intern_match_defaults() {
        let g = build_model("mlp", 4, false).unwrap();
        let m = MachineSpec::gtx1080ti();
        let base = search_strategy(
            &g,
            4,
            &m,
            None,
            SearchKnobs {
                threads: 0,
                intern: true,
                prune: true,
                prune_epsilon: 0.0,
            },
            None,
        )
        .unwrap();
        let knobbed = search_strategy(
            &g,
            4,
            &m,
            None,
            SearchKnobs {
                threads: 1,
                intern: false,
                prune: false,
                prune_epsilon: 0.0,
            },
            None,
        )
        .unwrap();
        assert_eq!(base.1.to_bits(), knobbed.1.to_bits());
        assert_eq!(base.0.configs().len(), knobbed.0.configs().len());
    }
}
