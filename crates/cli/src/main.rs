//! `pase` — find, compare, and export DNN parallelization strategies from
//! the command line.
//!
//! ```text
//! pase search  --model alexnet --devices 32 [--machine 1080ti] [--json]
//!              [--memory-limit-gb 8] [--weak-scaling]
//! pase compare --model rnnlm --devices 32 [--machine 2080ti]
//! pase stats   --model inception
//! pase export  --model transformer --devices 16 [--out strategy.json]
//! pase serve   [--addr 127.0.0.1:7878] [--workers 4] [--cache-dir DIR]
//! pase query   --model alexnet --devices 8 [--addr 127.0.0.1:7878]
//! ```

mod args;

use args::Args;
use pase_baselines::{data_parallel, gnmt_expert, mesh_tf_expert, owt};
use pase_core::{
    dependent_set_sizes, generate_seq, optcnn_search, DpKernel, FrontierPoint, PruneGate,
    ReductionOutcome, Search, SearchOutcome, SearchReport, SearchResult, SearchStats,
};
use pase_cost::{
    from_sharding_json, to_sharding_json, to_sharding_json_with, validate_strategy, ConfigRule,
    CostTables, DeviceMesh, MachineSpec, PruneOptions, Strategy, TableOptions,
};
use pase_graph::{bfs_order, Graph, GraphStats};
use pase_models as models;
use pase_obs::{chrome_trace_json, Trace};
use pase_serve::{Server, ServerConfig};
use pase_sim::{memory_per_device, simulate_step, simulate_step_trace, SimOptions, Topology};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "\
pase — parallelization strategies for efficient DNN training

USAGE:
  pase <search|compare|stats|export|simulate|trace|pipeline|serve|query> [options]

OPTIONS:
  --model <alexnet|inception|rnnlm|rnnlm-unrolled|gnmt|transformer|densenet|resnet|vgg|bert|mlp>
  --devices <p>            device count (default 8)
  --machine <1080ti|2080ti|test> named machine profile (default 1080ti)
  --machine-file <json>    plan against a machine loaded from a JSON file:
                           either a scalar profile object or a topology mesh
                           {\"name\": .., \"axes\": [{\"name\", \"size\", \"alpha\",
                           \"bandwidth\", \"peak_flops\"}, ..]} with axes listed
                           innermost first (overrides --machine)
  --memory-limit-gb <g>    per-device memory cap for the search
  --algorithm <pase|optcnn> search algorithm (default pase; optcnn fails on
                           graphs outside its reducible class, cf. paper §VI)
  --weak-scaling           scale the global batch with the device count
  --search-threads <n>     worker threads for the wavefront-parallel search
                           (default: all cores)
  --no-intern              disable structural cost-table interning (A/B
                           measurement; results are identical either way)
  --no-prune               disable exact dominance pruning of the per-layer
                           configuration space (A/B measurement; pruning is
                           exact, so results are identical either way)
  --prune-epsilon <e>      prune configs dominated within (1+e) — faster on
                           large p but only (1+e)-optimal (default 0 = exact)
  --prune-gate <on|off|auto> when to run the dominance prune: \"auto\" skips it
                           whenever its fixed cost exceeds the predicted DP
                           savings (never changes results, only time;
                           default on)
  --dp-kernel <scalar|tiled> (search, query) DP table-fill inner loop:
                           \"tiled\" packs chunk-invariant cost rows and runs
                           a blocked min+add microkernel (for frontier
                           searches, the run-blocked frontier microkernel),
                           \"scalar\" is the per-entry reference loop (A/B
                           measurement; the optimum and the frontier's
                           min-time point are bit-identical either way;
                           default tiled)
  --frontier               (search, query) compute the whole (step-time x
                           peak-memory) Pareto frontier instead of a single
                           optimum
  --max-memory <bytes>     (search, query) fastest strategy whose peak
                           per-device memory fits the cap; reports the
                           frontier's memory floor when nothing fits
  --json                   print the strategy as a GShard-style sharding spec
                           with an embedded \"search_report\" object
  --trace-out <file>       (search) write a Chrome-trace JSON timeline of the
                           search pipeline (open in chrome://tracing or
                           https://ui.perfetto.dev)
  --out <file>             write output to a file instead of stdout
  --strategy <file>        (simulate) sharding spec produced by `pase export`
  --top <k>                (trace) show the k most expensive layers (default 10)
  --stages <s>             (pipeline) stage count, must divide p (default 2)
  --microbatches <m>       (pipeline) GPipe chunks per step (default 8)
  --addr <host:port>       (serve, query) server address
                           (default 127.0.0.1:7878; serve accepts port 0)
  --workers <n>            (serve) worker-pool size (default 4)
  --deadline-ms <ms>       (serve) default per-request deadline
                           (query) per-request deadline override
  --cache-capacity <n>     (serve) in-memory strategy-cache entries (default 64)
  --cache-max-bytes <n>    (serve) approximate in-memory cache byte budget
                           (default 0 = unbounded; evicts by bytes before
                           the entry cap)
  --cache-dir <dir>        (serve) persist cache entries as JSON files
  --cache-shards <n>       (serve) cache lock stripes, rounded up to a power of
                           two (default 0 = min(16, workers rounded up to a
                           power of two); 1 = single-mutex cache)
  --no-singleflight        (serve) do not coalesce concurrent identical
                           queries into one search
  --idle-timeout-ms <ms>   (serve) close connections idle this long (default 30000)
  --frontend <event|threaded> (serve) connection front end: \"event\" is the
                           epoll readiness loop (idle connections cost bytes,
                           not threads; linux only), \"threaded\" the
                           thread-per-connection A/B baseline (default event
                           on linux, threaded elsewhere)
  --prewarm <spec>         (serve) fill the cache before accepting:
                           models:devices[:machines], each comma-separated,
                           e.g. \"mlp,resnet:4,8:1080ti\"
  --stats                  (query) ask the server for its counters instead of
                           a strategy
  --batch <n>              (query) send the query n times as one wire batch
                           (one request line, one response array)
";

fn build_model(name: &str, p: u32, weak_scaling: bool) -> Result<Graph, String> {
    models::build_named(name, p, weak_scaling).map_err(|e| format!("{e}\n\n{USAGE}"))
}

fn machine_profile(name: &str) -> Result<MachineSpec, String> {
    MachineSpec::by_name(name).ok_or_else(|| {
        format!(
            "unknown machine '{name}'; known profiles: {}",
            MachineSpec::known_names().join(", ")
        )
    })
}

/// Resolve `--machine` / `--machine-file` into the mesh the search plans
/// against plus the scalar profile the execution simulator consumes. A
/// `--machine-file` mesh degrades to its [`DeviceMesh::effective_spec`]
/// for the simulator; a named profile keeps its exact spec (including the
/// profile's internode rate) and plans on its flat mesh.
fn machine_and_mesh(args: &Args) -> Result<(MachineSpec, DeviceMesh), String> {
    match args.get("machine-file") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read --machine-file {path}: {e}"))?;
            let mesh = DeviceMesh::from_json_str(&text)
                .map_err(|e| format!("invalid machine file {path}: {e}"))?;
            Ok((mesh.effective_spec(), mesh))
        }
        None => {
            let machine = machine_profile(args.get("machine").unwrap_or("1080ti"))?;
            let mesh = DeviceMesh::flat(&machine);
            Ok((machine, mesh))
        }
    }
}

/// Engine knobs shared by every searching subcommand.
#[derive(Clone, Copy, Debug)]
struct SearchKnobs {
    /// Worker threads for table building and the wavefront fill (0 = all
    /// cores).
    threads: usize,
    /// Structural cost-table interning (`--no-intern` turns it off).
    intern: bool,
    /// Dominance pruning of the configuration space (`--no-prune` turns it
    /// off).
    prune: bool,
    /// Dominance slack ε for `--prune-epsilon` (0 = exact).
    prune_epsilon: f64,
    /// `--prune-gate`: when to run the prune (`auto` decides per graph).
    gate: PruneGate,
    /// `--dp-kernel`: which inner loop fills the DP tables.
    kernel: DpKernel,
}

impl SearchKnobs {
    fn from_args(args: &Args) -> Result<Self, String> {
        let prune_epsilon: f64 = args.get_or("prune-epsilon", 0.0)?;
        if !(prune_epsilon >= 0.0) {
            return Err(format!("--prune-epsilon must be ≥ 0, got {prune_epsilon}"));
        }
        let gate = match args.get("prune-gate") {
            None => PruneGate::default(),
            Some(s) => PruneGate::parse(s)
                .ok_or_else(|| format!("--prune-gate must be on, off, or auto, got '{s}'"))?,
        };
        let kernel = match args.get("dp-kernel") {
            None => DpKernel::default(),
            Some(s) => DpKernel::parse(s)
                .ok_or_else(|| format!("--dp-kernel must be scalar or tiled, got '{s}'"))?,
        };
        Ok(Self {
            threads: args.get_or("search-threads", 0usize)?,
            intern: !args.has("no-intern"),
            prune: !args.has("no-prune"),
            prune_epsilon,
            gate,
            kernel,
        })
    }
}

/// A completed CLI search: the strategy plus everything the subcommands
/// print about it.
struct Searched {
    strategy: Strategy,
    cost: f64,
    stats: SearchStats,
    /// `None` when the interning size gate skipped the pass entirely
    /// (printed as "n/a" — distinct from a measured 0%).
    intern_hit_rate: Option<f64>,
}

fn search_strategy(
    graph: &Graph,
    p: u32,
    mesh: &DeviceMesh,
    memory_limit_gb: Option<f64>,
    knobs: SearchKnobs,
    trace: Option<&Trace>,
) -> Result<Searched, String> {
    let mut rule = ConfigRule::new(p);
    if let Some(gb) = memory_limit_gb {
        rule = rule.with_memory_limit(gb * (1u64 << 30) as f64);
    }
    let pipeline_start = Instant::now();
    let run_search = || {
        let mut search = Search::new(graph)
            .rule(rule)
            .mesh(mesh.clone())
            // --no-prune wins over the gate: never let `auto` re-enable a
            // prune the user explicitly disabled.
            .prune_gate(if knobs.prune {
                knobs.gate
            } else {
                PruneGate::Off
            })
            .dp_kernel(knobs.kernel)
            .table_options(TableOptions {
                intern: knobs.intern,
                ..TableOptions::default()
            });
        if knobs.prune {
            search = search.pruning(PruneOptions {
                epsilon: knobs.prune_epsilon,
                ..PruneOptions::default()
            });
        }
        if let Some(t) = trace {
            search = search.trace(t);
        }
        search.run()
    };
    let run = if knobs.threads > 0 {
        rayon::ThreadPoolBuilder::new()
            .num_threads(knobs.threads)
            .build()
            .map_err(|e| format!("cannot build thread pool: {e}"))?
            .install(run_search)
    } else {
        run_search()
    };
    // Report elapsed over the whole pipeline (table build + prune + DP),
    // matching what the recorded phase spans cover.
    let elapsed = pipeline_start.elapsed();
    let intern_hit_rate = run.tables().intern_stats().hit_rate_opt();
    match run.outcome() {
        SearchOutcome::Found(r) => Ok(Searched {
            strategy: run.tables().ids_to_strategy(&r.config_ids),
            cost: r.cost,
            stats: {
                let mut stats = r.stats.clone();
                stats.elapsed = elapsed;
                stats
            },
            intern_hit_rate,
        }),
        other => Err(format!("search failed: {}", other.tag())),
    }
}

/// Run a frontier-mode search: render the (step-time × peak-memory)
/// Pareto frontier plus the selected point's layer report. With
/// `max_memory`, selection is the fastest point whose peak per-device
/// strategy memory fits the cap; an impossible cap is a clean error
/// naming the frontier's memory floor.
fn frontier_search(
    graph: &Graph,
    model: &str,
    p: u32,
    mesh: &DeviceMesh,
    memory_limit_gb: Option<f64>,
    max_memory: Option<u64>,
    knobs: SearchKnobs,
) -> Result<String, String> {
    let mut rule = ConfigRule::new(p);
    if let Some(gb) = memory_limit_gb {
        rule = rule.with_memory_limit(gb * (1u64 << 30) as f64);
    }
    let mut search = Search::new(graph)
        .rule(rule)
        .mesh(mesh.clone())
        .prune_gate(if knobs.prune {
            knobs.gate
        } else {
            PruneGate::Off
        })
        .dp_kernel(knobs.kernel)
        .table_options(TableOptions {
            intern: knobs.intern,
            ..TableOptions::default()
        })
        .frontier();
    if knobs.prune {
        search = search.pruning(PruneOptions {
            epsilon: knobs.prune_epsilon,
            ..PruneOptions::default()
        });
    }
    if let Some(bytes) = max_memory {
        search = search.max_memory_bytes(bytes);
    }
    let run = search.run();
    let points: Vec<FrontierPoint> = run
        .frontier()
        .map_or_else(Vec::new, |f| f.points().to_vec());
    match run.outcome() {
        SearchOutcome::Found(r) => {
            let mut content = format!(
                "model {model}, p = {p}, machine {} — Pareto frontier: {} points \
                 (search {:?})\n\n      {:>16}  {:>12}\n",
                mesh.name,
                points.len(),
                r.stats.elapsed,
                "cost",
                "peak memory",
            );
            for pt in &points {
                let mark = if pt.config_ids == r.config_ids {
                    '*'
                } else {
                    ' '
                };
                content.push_str(&format!(
                    "  {mark}   {:>16.4e}  {:>8.1} MiB\n",
                    pt.cost,
                    pt.memory_bytes as f64 / (1 << 20) as f64,
                ));
            }
            content.push_str(&match max_memory {
                Some(bytes) => format!(
                    "\nselected: fastest point within {bytes} bytes \
                     (cost {:.4e}, peak {} bytes)\n\n",
                    r.cost, r.stats.peak_strategy_bytes,
                ),
                None => format!("\nselected: the min-time point (cost {:.4e})\n\n", r.cost),
            });
            content.push_str(&run.tables().ids_to_strategy(&r.config_ids).report(graph));
            Ok(content)
        }
        SearchOutcome::Infeasible {
            min_memory_bytes, ..
        } => Err(format!(
            "no strategy fits --max-memory {}: the cheapest frontier point needs \
             {min_memory_bytes} bytes per device",
            max_memory.unwrap_or(0),
        )),
        other => Err(format!("search failed: {}", other.tag())),
    }
}

fn emit(out_path: Option<&str>, content: &str) -> Result<(), String> {
    match out_path {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1))?;
    let Some(command) = args.command.clone() else {
        return Err(USAGE.to_string());
    };
    let model = args.get("model").unwrap_or("mlp").to_string();
    let p: u32 = args.get_or("devices", 8)?;
    let (machine, mesh) = machine_and_mesh(&args)?;
    let weak = args.has("weak-scaling");
    let knobs = SearchKnobs::from_args(&args)?;
    let graph = build_model(&model, p, weak)?;

    match command.as_str() {
        "search" => {
            let memory_limit = args.get("memory-limit-gb").map(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("invalid --memory-limit-gb: {v}"))
            });
            let memory_limit = memory_limit.transpose()?;
            if args.get("algorithm") == Some("optcnn") {
                let tables = CostTables::build_mesh(
                    &graph,
                    ConfigRule::new(p),
                    &mesh,
                    &TableOptions::default(),
                    None,
                );
                return match optcnn_search(&graph, &tables) {
                    ReductionOutcome::Reduced {
                        cost,
                        config_ids,
                        eliminations,
                    } => {
                        let strategy = tables.ids_to_strategy(&config_ids);
                        let mut content = format!(
                            "model {model}, p = {p} — OptCNN graph reduction \
                             ({eliminations} eliminations)\nminimum cost {cost:.4e} \
                             FLOP-units\n\n"
                        );
                        content.push_str(&strategy.report(&graph));
                        emit(args.get("out"), &content)
                    }
                    ReductionOutcome::Irreducible { remaining } => Err(format!(
                        "optcnn: graph is irreducible ({} vertices remain) — \
                         use the default PaSE algorithm (paper §VI)",
                        remaining.len()
                    )),
                };
            }
            let max_memory = args
                .get("max-memory")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid --max-memory: {v}"))
                })
                .transpose()?;
            if args.has("frontier") || max_memory.is_some() {
                let content =
                    frontier_search(&graph, &model, p, &mesh, memory_limit, max_memory, knobs)?;
                return emit(args.get("out"), &content);
            }
            // A trace is recorded whenever it has a consumer: an explicit
            // --trace-out file, or the per-phase breakdown of the --json
            // search report.
            let trace = (args.get("trace-out").is_some() || args.has("json")).then(Trace::new);
            let Searched {
                strategy,
                cost,
                stats,
                intern_hit_rate,
            } = search_strategy(&graph, p, &mesh, memory_limit, knobs, trace.as_ref())?;
            if let Some(path) = args.get("trace-out") {
                let t = trace.as_ref().expect("trace was created for --trace-out");
                std::fs::write(path, chrome_trace_json(t))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            if args.has("json") {
                let outcome = SearchOutcome::Found(SearchResult {
                    cost,
                    config_ids: vec![],
                    stats: stats.clone(),
                });
                let report = SearchReport::new(model.as_str(), p, &outcome, trace.as_ref());
                let report_json = report.to_json();
                emit(
                    args.get("out"),
                    &to_sharding_json_with(&graph, &strategy, &[("search_report", &report_json)]),
                )?;
            } else {
                let prune_line = if stats.k_before > stats.max_configs {
                    format!(
                        "dominance pruning: K {} -> {} in {:?}\n",
                        stats.k_before, stats.max_configs, stats.prune_time
                    )
                } else {
                    String::new()
                };
                let hit_rate = match intern_hit_rate {
                    Some(h) => format!("{:.0}%", h * 100.0),
                    None => "n/a (interning skipped)".to_string(),
                };
                let mut content = format!(
                    "model {model}, p = {p}, machine {} — search {:?} (K = {}, M = {})\n\
                     wavefronts {} (max width {}), intern hit rate {hit_rate}\n\
                     {prune_line}\
                     minimum cost {cost:.4e} FLOP-units\n\n",
                    machine.name,
                    stats.elapsed,
                    stats.max_configs,
                    stats.max_dependent_set,
                    stats.wavefronts,
                    stats.max_wavefront_width,
                );
                content.push_str(&strategy.report(&graph));
                emit(args.get("out"), &content)?;
            }
        }
        "compare" => {
            let topo = Topology::cluster(machine.clone(), p).map_err(|e| e.to_string())?;
            let opts = SimOptions::default();
            let ours = search_strategy(&graph, p, &mesh, None, knobs, None)?.strategy;
            let expert = match model.as_str() {
                "rnnlm" | "rnnlm-unrolled" | "gnmt" => gnmt_expert(&graph, p),
                "transformer" => mesh_tf_expert(&graph, p),
                _ => owt(&graph, p),
            };
            let mut content = format!(
                "{:<16} {:>12} {:>14} {:>12}\n",
                "strategy", "step (ms)", "samples/s", "mem (MiB)"
            );
            for (name, s) in [
                ("data-parallel", data_parallel(&graph, p)),
                ("expert", expert),
                ("pase", ours),
            ] {
                let rep = simulate_step(&graph, &s, &topo, &opts);
                let mem = memory_per_device(&graph, &s, &topo) / (1 << 20) as f64;
                content.push_str(&format!(
                    "{:<16} {:>12.2} {:>14.0} {:>12.0}\n",
                    name,
                    rep.step_seconds * 1e3,
                    rep.throughput,
                    mem
                ));
            }
            emit(args.get("out"), &content)?;
        }
        "stats" => {
            let stats = GraphStats::of(&graph);
            let order = generate_seq(&graph);
            let gs = dependent_set_sizes(&graph, &order);
            let bf = dependent_set_sizes(&graph, &bfs_order(&graph));
            let structure = pase_core::VertexStructure::build(
                &graph,
                &order,
                pase_core::ConnectedSetMode::Exact,
            );
            let tables = CostTables::build_mesh(
                &graph,
                ConfigRule::new(p),
                &mesh,
                &TableOptions {
                    intern: knobs.intern,
                    ..TableOptions::default()
                },
                None,
            );
            let intern = tables.intern_stats();
            let hit_rate = match intern.hit_rate_opt() {
                Some(h) => format!("{:.0}%", h * 100.0),
                None => "n/a (interning skipped)".to_string(),
            };
            let content = format!(
                "model {model}: {} nodes, {} edges\n\
                 degrees: max {}, mean {:.2}, high-degree (≥5) {}\n\
                 step flops: {:.3e}, parameters: {:.3e}\n\
                 max |D(i)|: GenerateSeq {}, breadth-first {}\n\
                 wavefronts: {} (max width {})\n\
                 cost tables (p = {p}): {} layer tables for {} nodes, \
                 {} edge tables for {} edges — intern hit rate {hit_rate}\n",
                stats.nodes,
                stats.edges,
                stats.degrees.max,
                stats.degrees.mean,
                stats.degrees.high_degree,
                stats.step_flops,
                stats.params,
                gs.iter().max().unwrap_or(&0),
                bf.iter().max().unwrap_or(&0),
                structure.wavefronts().len(),
                structure.max_wavefront_width(),
                intern.unique_layer_tables,
                intern.nodes,
                intern.unique_edge_tables,
                intern.edges,
            );
            emit(args.get("out"), &content)?;
        }
        "export" => {
            let strategy = search_strategy(&graph, p, &mesh, None, knobs, None)?.strategy;
            emit(args.get("out"), &to_sharding_json(&graph, &strategy))?;
        }
        "simulate" => {
            // Load a user-provided sharding spec, validate it, and time it
            // on the chosen cluster — the round trip a framework
            // integration would take.
            let path = args
                .get("strategy")
                .ok_or("simulate needs --strategy <file>")?;
            let json =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let strategy = from_sharding_json(&graph, &json)?;
            validate_strategy(&graph, &strategy, &ConfigRule::new(p))?;
            let topo = Topology::cluster(machine.clone(), p).map_err(|e| e.to_string())?;
            let rep = simulate_step(&graph, &strategy, &topo, &SimOptions::default());
            let content = format!(
                "model {model}, p = {p}, machine {}\n\
                 step time      {:.3} ms\n\
                 compute        {:.3} ms\n\
                 intra-layer    {:.3} ms\n\
                 transfers      {:.3} ms\n\
                 gradient sync  {:.3} ms\n\
                 throughput     {:.0} samples/s\n\
                 memory/device  {:.0} MiB\n",
                machine.name,
                rep.step_seconds * 1e3,
                rep.compute_seconds * 1e3,
                rep.intra_layer_seconds * 1e3,
                rep.transfer_seconds * 1e3,
                rep.gradient_sync_seconds * 1e3,
                rep.throughput,
                memory_per_device(&graph, &strategy, &topo) / (1 << 20) as f64,
            );
            emit(args.get("out"), &content)?;
        }
        "trace" => {
            // Per-layer timing of the searched strategy: where does the
            // step time actually go?
            let strategy = search_strategy(&graph, p, &mesh, None, knobs, None)?.strategy;
            let topo = Topology::cluster(machine.clone(), p).map_err(|e| e.to_string())?;
            let (rep, mut rows) =
                simulate_step_trace(&graph, &strategy, &topo, &SimOptions::default());
            let top: usize = args.get_or("top", 10)?;
            rows.sort_by(|a, b| {
                let ta = a.compute + a.intra_layer + a.gradient_sync;
                let tb = b.compute + b.intra_layer + b.gradient_sync;
                tb.partial_cmp(&ta).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut content = format!(
                "model {model}, p = {p}: step {:.2} ms (compute {:.2}, comm {:.2})\n\n\
                 {:<28} {:<12} {:>11} {:>11} {:>11}\n",
                rep.step_seconds * 1e3,
                rep.compute_seconds * 1e3,
                rep.comm_seconds() * 1e3,
                "layer",
                "config",
                "compute ms",
                "intra ms",
                "sync ms"
            );
            for row in rows.iter().take(top) {
                let node = graph.node(row.node);
                content.push_str(&format!(
                    "{:<28} {:<12} {:>11.3} {:>11.3} {:>11.3}\n",
                    node.name,
                    format!("{}", strategy.config(row.node)),
                    row.compute * 1e3,
                    row.intra_layer * 1e3,
                    row.gradient_sync * 1e3
                ));
            }
            emit(args.get("out"), &content)?;
        }
        "pipeline" => {
            // §VI composition: PipeDream-style stages, PaSE inside each.
            use pase_pipeline::{plan_pipeline, simulate_pipeline, PipelineOptions};
            let stages: usize = args.get_or("stages", 2)?;
            let microbatches: u32 = args.get_or("microbatches", 8)?;
            let plan = plan_pipeline(
                &graph,
                p,
                &machine,
                &PipelineOptions {
                    stages,
                    microbatches,
                    ..Default::default()
                },
            )?;
            let stage_topo = Topology::cluster(machine.clone(), plan.devices_per_stage)
                .map_err(|e| e.to_string())?;
            let rep = simulate_pipeline(&graph, &plan, &stage_topo, &SimOptions::default());
            let mut content = format!(
                "model {model}, p = {p}: {stages} stages x {} devices, \
                 {microbatches} microbatches\n\
                 step {:.2} ms (bubble x{:.2}, boundary {:.1} MiB) -> \
                 {:.0} samples/s\n\nper-stage times:\n",
                plan.devices_per_stage,
                rep.step_seconds * 1e3,
                rep.bubble_factor,
                rep.boundary_bytes / (1 << 20) as f64,
                rep.throughput,
            );
            for (i, t) in rep.stage_seconds.iter().enumerate() {
                let (sub, _) = &plan.stage_graphs[i];
                content.push_str(&format!(
                    "  stage {i}: {:>8.2} ms  ({} layers)\n",
                    t * 1e3,
                    sub.len()
                ));
            }
            emit(args.get("out"), &content)?;
        }
        "serve" => {
            let cfg = ServerConfig {
                addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
                workers: args.get_or("workers", 4usize)?,
                deadline: Duration::from_millis(args.get_or("deadline-ms", 120_000u64)?),
                cache_capacity: args.get_or("cache-capacity", 64usize)?,
                cache_max_bytes: args.get_or("cache-max-bytes", 0u64)?,
                cache_dir: args.get("cache-dir").map(std::path::PathBuf::from),
                idle_timeout: Duration::from_millis(args.get_or("idle-timeout-ms", 30_000u64)?),
                cache_shards: args.get_or("cache-shards", 0usize)?,
                singleflight: !args.has("no-singleflight"),
                frontend: match args.get("frontend") {
                    Some(name) => pase_serve::FrontEnd::parse(name)?,
                    None => pase_serve::FrontEnd::default(),
                },
                prewarm: args.get("prewarm").map(str::to_string),
            };
            if let Some(spec) = &cfg.prewarm {
                // Fail on a bad spec before binding, not after "listening".
                pase_serve::parse_prewarm_spec(spec)?;
            }
            let server = Server::bind(cfg).map_err(|e| format!("cannot bind server: {e}"))?;
            let addr = server
                .local_addr()
                .map_err(|e| format!("cannot resolve bound address: {e}"))?;
            // Scripts read the bound address from the first stdout line
            // (ephemeral ports make this the only way to learn the port).
            println!("listening on {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            #[cfg(unix)]
            pase_serve::install_sigint(server.shutdown_handle());
            let summary = server.run().map_err(|e| format!("server error: {e}"))?;
            eprintln!(
                "served {} requests ({} cache hits, {} misses, {} coalesced, {} prewarmed)",
                summary.requests,
                summary.cache_hits,
                summary.cache_misses,
                summary.coalesced,
                summary.prewarmed
            );
        }
        "query" => {
            use std::io::{BufRead, BufReader, Write as _};
            let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
            let request = if args.has("stats") {
                "{\"stats\": true}".to_string()
            } else {
                let copies: usize = args.get_or("batch", 1usize)?;
                if copies == 0 {
                    return Err("--batch must be at least 1".into());
                }
                // With --machine-file the wire request carries the full
                // mesh inline (the server has no file to read); a named
                // profile travels as its registry name.
                let machine_field = if args.get("machine-file").is_some() {
                    mesh.to_json()
                } else {
                    format!("\"{}\"", machine.name)
                };
                let mut request = format!(
                    "{{\"model\": \"{model}\", \"devices\": {p}, \
                     \"machine\": {machine_field}, \"weak_scaling\": {weak}"
                );
                if knobs.prune && knobs.prune_epsilon > 0.0 {
                    request.push_str(&format!(
                        ", \"prune\": true, \"epsilon\": {}",
                        knobs.prune_epsilon
                    ));
                }
                if knobs.gate != PruneGate::default() {
                    request.push_str(&format!(", \"prune_gate\": \"{}\"", knobs.gate.as_str()));
                }
                if let Some(ms) = args.get("deadline-ms") {
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| format!("invalid --deadline-ms: {ms}"))?;
                    request.push_str(&format!(", \"deadline_ms\": {ms}"));
                }
                if let Some(v) = args.get("max-memory") {
                    let bytes: u64 = v
                        .parse()
                        .map_err(|_| format!("invalid --max-memory: {v}"))?;
                    request.push_str(&format!(", \"max_memory_bytes\": {bytes}"));
                }
                if args.has("frontier") {
                    request.push_str(", \"frontier\": true");
                }
                if args.get("dp-kernel").is_some() {
                    request.push_str(&format!(", \"dp_kernel\": \"{}\"", knobs.kernel.as_str()));
                }
                request.push('}');
                if copies > 1 {
                    // One wire line, one response array — the batch path.
                    let elems = vec![request; copies].join(",");
                    format!("{{\"batch\": [{elems}]}}")
                } else {
                    request
                }
            };
            let mut stream = std::net::TcpStream::connect(addr)
                .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            stream
                .write_all(request.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .map_err(|e| format!("cannot send request: {e}"))?;
            let mut response = String::new();
            BufReader::new(stream)
                .read_line(&mut response)
                .map_err(|e| format!("cannot read response: {e}"))?;
            if response.is_empty() {
                return Err("server closed the connection without responding".into());
            }
            emit(args.get("out"), &response)?;
        }
        other => return Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_advertised_model_builds() {
        for m in [
            "alexnet",
            "inception",
            "rnnlm",
            "rnnlm-unrolled",
            "gnmt",
            "transformer",
            "densenet",
            "resnet",
            "vgg",
            "bert",
            "mlp",
        ] {
            let g = build_model(m, 4, false).unwrap_or_else(|e| panic!("{m}: {e}"));
            assert!(!g.is_empty(), "{m}");
        }
        assert!(build_model("nope", 4, false).is_err());
    }

    #[test]
    fn weak_scaling_multiplies_the_batch() {
        let g1 = build_model("rnnlm", 8, false).unwrap();
        let g8 = build_model("rnnlm", 8, true).unwrap();
        assert_eq!(pase_sim::batch_size(&g8), 8 * pase_sim::batch_size(&g1));
    }

    #[test]
    fn machine_profiles_resolve() {
        for name in MachineSpec::known_names() {
            assert_eq!(machine_profile(&name).unwrap().name, name);
        }
        // Unknown names fail with the full registry listing, so the
        // message stays correct as profiles are added.
        let err = machine_profile("v100").unwrap_err();
        for name in MachineSpec::known_names() {
            assert!(err.contains(&name), "{err}");
        }
    }

    #[test]
    fn machine_file_overrides_the_profile_and_rejects_bad_meshes() {
        let dir = std::env::temp_dir().join("pase-cli-machine-file-test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("mesh.json");
        std::fs::write(
            &good,
            "{\"name\": \"testbed\", \"axes\": [\
             {\"name\": \"gpu\", \"size\": 4, \"alpha\": 5e-6, \
              \"bandwidth\": 1e10, \"peak_flops\": 1e13},\
             {\"name\": \"node\", \"size\": 2, \"alpha\": 15e-6, \
              \"bandwidth\": 1e9, \"peak_flops\": 1e13}]}",
        )
        .unwrap();
        let argv = |path: &str| {
            Args::parse(
                ["search", "--machine-file", path]
                    .into_iter()
                    .map(str::to_string),
            )
            .unwrap()
        };
        let (machine, mesh) = machine_and_mesh(&argv(good.to_str().unwrap())).unwrap();
        assert_eq!(mesh.name, "testbed");
        assert_eq!(mesh.axes.len(), 2);
        // The simulator-facing spec degrades to the mesh's weakest links.
        assert_eq!(machine.name, "testbed");
        assert_eq!(machine.internode_bandwidth, 1e9);

        // Without --machine-file the named profile wins, on its flat mesh.
        let (machine, mesh) = machine_and_mesh(&Args::default()).unwrap();
        assert_eq!(machine.name, "1080ti");
        assert_eq!(mesh, DeviceMesh::flat(&MachineSpec::gtx1080ti()));

        // Hostile meshes are clean errors naming the file, not panics.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"name\": \"x\", \"axes\": []}").unwrap();
        let err = machine_and_mesh(&argv(bad.to_str().unwrap())).unwrap_err();
        assert!(err.contains("invalid machine file"), "{err}");
        let err = machine_and_mesh(&argv("/nonexistent/mesh.json")).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn search_strategy_produces_complete_cover() {
        let g = build_model("mlp", 4, false).unwrap();
        let knobs = SearchKnobs::from_args(&Args::default()).unwrap();
        let s = search_strategy(
            &g,
            4,
            &DeviceMesh::flat(&MachineSpec::gtx1080ti()),
            None,
            knobs,
            None,
        )
        .unwrap();
        assert_eq!(s.strategy.len(), g.len());
        assert!(s.cost > 0.0);
        assert!(s.stats.max_configs > 0);
        assert!(s.stats.wavefronts > 0);
    }

    #[test]
    fn frontier_search_matches_the_scalar_optimum_and_rejects_impossible_caps() {
        let g = build_model("mlp", 4, false).unwrap();
        let knobs = SearchKnobs::from_args(&Args::default()).unwrap();
        let m = DeviceMesh::flat(&MachineSpec::gtx1080ti());
        let scalar = search_strategy(&g, 4, &m, None, knobs, None).unwrap();
        let content = frontier_search(&g, "mlp", 4, &m, None, None, knobs).unwrap();
        assert!(content.contains("Pareto frontier"));
        // The frontier's min-time point is the scalar optimum, bit for bit.
        assert!(
            content.contains(&format!("{:.4e}", scalar.cost)),
            "frontier output lacks the scalar optimum {:.4e}:\n{content}",
            scalar.cost
        );
        // A one-byte cap cannot fit any strategy: clean error, not a panic.
        let err = frontier_search(&g, "mlp", 4, &m, None, Some(1), knobs).unwrap_err();
        assert!(err.contains("no strategy fits"), "{err}");
    }

    #[test]
    fn traced_search_spans_cover_reported_elapsed() {
        use pase_obs::phase;
        let g = build_model("mlp", 8, false).unwrap();
        let knobs = SearchKnobs::from_args(&Args::default()).unwrap();
        let trace = Trace::new();
        let mesh = DeviceMesh::flat(&MachineSpec::gtx1080ti());
        let stats = search_strategy(&g, 8, &mesh, None, knobs, Some(&trace))
            .unwrap()
            .stats;
        let names: Vec<String> = trace.spans().iter().map(|s| s.name.clone()).collect();
        for required in [
            phase::ENUMERATION,
            phase::INTERNING,
            phase::TABLE_BUILD,
            phase::PRUNE,
            phase::STRUCTURE,
            phase::BACKTRACK,
        ] {
            assert!(
                names.iter().any(|n| n == required),
                "missing {required} in {names:?}"
            );
        }
        assert!(names.iter().any(|n| phase::is_wavefront(n)));
        // The pipeline spans are disjoint phases of the same run, so their
        // sum is bounded by the full-pipeline elapsed that search_strategy
        // reports.
        let disjoint = trace.span_time_where(|n| {
            matches!(
                n,
                phase::ENUMERATION
                    | phase::INTERNING
                    | phase::TABLE_BUILD
                    | phase::PRUNE
                    | phase::STRUCTURE
                    | phase::PLAN
                    | phase::BACKTRACK
            ) || phase::is_wavefront(n)
        });
        assert!(
            disjoint <= stats.elapsed,
            "span sum {disjoint:?} exceeds pipeline elapsed {:?}",
            stats.elapsed
        );
    }

    #[test]
    fn search_knobs_parse_from_args() {
        let a = Args::parse(
            "search --search-threads 2 --no-intern --no-prune"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        let k = SearchKnobs::from_args(&a).unwrap();
        assert_eq!(k.threads, 2);
        assert!(!k.intern);
        assert!(!k.prune);
        let d = SearchKnobs::from_args(&Args::default()).unwrap();
        assert_eq!(d.threads, 0);
        assert!(d.intern);
        assert!(d.prune);
        assert_eq!(d.prune_epsilon, 0.0);
        let e = Args::parse(
            "search --prune-epsilon 0.05"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(SearchKnobs::from_args(&e).unwrap().prune_epsilon, 0.05);
        let g = Args::parse(
            "search --prune-gate auto"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(SearchKnobs::from_args(&g).unwrap().gate, PruneGate::Auto);
        assert_eq!(d.gate, PruneGate::On);
        assert_eq!(d.kernel, DpKernel::Tiled);
        let k = Args::parse(
            "search --dp-kernel scalar"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(SearchKnobs::from_args(&k).unwrap().kernel, DpKernel::Scalar);
        let bad_kernel = Args::parse(
            "search --dp-kernel simd"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert!(SearchKnobs::from_args(&bad_kernel).is_err());
        let bad_gate = Args::parse(
            "search --prune-gate maybe"
                .split_whitespace()
                .map(String::from),
        )
        .unwrap();
        assert!(SearchKnobs::from_args(&bad_gate).is_err());
        let bad = Args::parse(
            "search --prune-epsilon -1"
                .split_whitespace()
                .map(String::from),
        );
        // "-1" is parsed as a flag-less value only if it doesn't look like
        // an option; either parse or knob construction must reject it.
        assert!(bad.is_err() || SearchKnobs::from_args(&bad.unwrap()).is_err());
    }

    #[test]
    fn capped_threads_and_no_intern_match_defaults() {
        let g = build_model("mlp", 4, false).unwrap();
        let m = DeviceMesh::flat(&MachineSpec::gtx1080ti());
        let base = search_strategy(
            &g,
            4,
            &m,
            None,
            SearchKnobs {
                threads: 0,
                intern: true,
                prune: true,
                prune_epsilon: 0.0,
                gate: PruneGate::On,
                kernel: DpKernel::Tiled,
            },
            None,
        )
        .unwrap();
        let knobbed = search_strategy(
            &g,
            4,
            &m,
            None,
            SearchKnobs {
                threads: 1,
                intern: false,
                prune: false,
                prune_epsilon: 0.0,
                gate: PruneGate::On,
                kernel: DpKernel::Scalar,
            },
            None,
        )
        .unwrap();
        assert_eq!(base.cost.to_bits(), knobbed.cost.to_bits());
        assert_eq!(
            base.strategy.configs().len(),
            knobbed.strategy.configs().len()
        );
    }
}
