//! Minimal flag parser for the `pase` CLI (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse an iterator of arguments (excluding `argv[0]`).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = argv.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        out.options.insert(key.to_string(), v);
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                return Err(format!("unexpected positional argument: {a}"));
            }
        }
        Ok(out)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    /// Boolean flag presence.
    pub fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse("search --model alexnet --devices 32 --json");
        assert_eq!(a.command.as_deref(), Some("search"));
        assert_eq!(a.get("model"), Some("alexnet"));
        assert_eq!(a.get_or("devices", 8u32).unwrap(), 32);
        assert!(a.has("json"));
        assert!(!a.has("weak-scaling"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("stats");
        assert_eq!(a.get_or("devices", 8u32).unwrap(), 8);
        assert_eq!(a.get("model"), None);
    }

    #[test]
    fn invalid_number_is_an_error() {
        let a = parse("search --devices banana");
        assert!(a.get_or("devices", 8u32).is_err());
    }

    #[test]
    fn extra_positional_rejected() {
        assert!(Args::parse(["a".to_string(), "b".to_string()]).is_err());
    }

    #[test]
    fn trailing_flag_without_value() {
        let a = parse("compare --machine 2080ti --verbose");
        assert_eq!(a.get("machine"), Some("2080ti"));
        assert!(a.has("verbose"));
    }
}
