//! Parallelization configurations and their enumeration.
//!
//! A configuration `C_v` of a node with a `d`-dimensional iteration space is
//! a `d`-tuple of split factors: dimension `i` is split into `c_i` equal
//! parts and the resulting `∏ c_i` pieces run on distinct devices (PaSE §II,
//! Fig. 1). The valid set is `C(v) = {(c_1,…,c_d) | ∏ c_i ≤ p}`.
//!
//! Following the standard restriction in this literature (and to match the
//! paper's reported per-vertex configuration counts — 10–30 at `p = 8`, up
//! to ~100 at `p = 64` for InceptionV3), enumeration is restricted to
//! power-of-two factors on splittable dimensions, bounded by the dimension
//! extent, and by default required to use all `p` devices (`∏ c_i = p`).
//! When no tuple can reach `p` (tiny layers), the configurations achieving
//! the maximum reachable product are returned instead, so `C(v)` is never
//! empty.

use pase_graph::Node;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum iteration-space rank supported by the inline configuration
/// representation (the largest in the paper's models is the 7-d convolution
/// space `bchwnrs`).
pub const MAX_RANK: usize = 8;

/// A parallelization configuration: split factors for each iteration-space
/// dimension, stored inline to keep search structures allocation-free.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Config {
    splits: [u16; MAX_RANK],
    rank: u8,
}

impl Config {
    /// Construct from a slice of split factors (length ≤ [`MAX_RANK`]).
    pub fn new(factors: &[u32]) -> Self {
        assert!(
            factors.len() <= MAX_RANK,
            "iteration space rank exceeds MAX_RANK"
        );
        let mut splits = [1u16; MAX_RANK];
        for (s, &f) in splits.iter_mut().zip(factors) {
            assert!(
                f >= 1 && f <= u32::from(u16::MAX),
                "split factor out of range"
            );
            *s = f as u16;
        }
        Self {
            splits,
            rank: factors.len() as u8,
        }
    }

    /// The all-ones (fully replicated / sequential) configuration of the
    /// given rank.
    pub fn ones(rank: usize) -> Self {
        assert!(rank <= MAX_RANK);
        Self {
            splits: [1; MAX_RANK],
            rank: rank as u8,
        }
    }

    /// Split factors as a slice of length `rank`.
    pub fn splits(&self) -> &[u16] {
        &self.splits[..self.rank as usize]
    }

    /// Split factor of dimension `i`.
    #[inline]
    pub fn split(&self, i: usize) -> u32 {
        debug_assert!(i < self.rank as usize);
        u32::from(self.splits[i])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Total number of pieces `∏ c_i` (= number of devices used).
    pub fn product(&self) -> u64 {
        self.splits().iter().map(|&c| u64::from(c)).product()
    }
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Config{:?}", self.splits())
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.splits().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// Rules governing which configurations are enumerated for each node.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConfigRule {
    /// Number of devices `p`.
    pub devices: u32,
    /// If `true` (default), only tuples with `∏ c_i = p` are kept — idle
    /// devices are never beneficial under the paper's cost model. If no
    /// tuple reaches `p`, the maximum reachable product is used instead.
    /// If `false`, every tuple with `∏ c_i ≤ p` is kept (the paper's
    /// unrestricted `C(v)`; used by the ablation harness).
    pub require_all_devices: bool,
    /// Cap on the split factor of any single dimension (`None` = bounded
    /// only by the dimension extent and `p`).
    pub max_split_per_dim: Option<u32>,
    /// Per-device memory budget in bytes (`None` = unconstrained).
    /// Configurations whose per-layer footprint — weights + gradients +
    /// optimizer state (3× the parameter shard) plus the output activation
    /// shard — exceeds the budget are excluded, realizing the paper's §I
    /// observation that "it might be impossible to train large models by
    /// just using data parallelism, due to memory constraints".
    pub memory_limit: Option<f64>,
}

impl ConfigRule {
    /// Default rule for `p` devices: power-of-two splits, all devices used.
    pub fn new(devices: u32) -> Self {
        assert!(devices >= 1, "need at least one device");
        Self {
            devices,
            require_all_devices: true,
            max_split_per_dim: None,
            memory_limit: None,
        }
    }

    /// Relax the rule to allow configurations that leave devices idle.
    pub fn allow_idle(mut self) -> Self {
        self.require_all_devices = false;
        self
    }

    /// Restrict the per-dimension split factor.
    pub fn with_max_split(mut self, cap: u32) -> Self {
        self.max_split_per_dim = Some(cap);
        self
    }

    /// Exclude configurations whose per-layer, per-device footprint exceeds
    /// `bytes`.
    pub fn with_memory_limit(mut self, bytes: f64) -> Self {
        self.memory_limit = Some(bytes);
        self
    }
}

/// Per-device memory footprint of one layer under `cfg`: 3× the parameter
/// shard (weights, gradients, optimizer state) plus the output activation
/// shard.
pub fn layer_footprint_bytes(node: &Node, cfg: &Config) -> f64 {
    let weights: f64 = node
        .params
        .iter()
        .map(|t| crate::sharding::shard_bytes(t, cfg))
        .sum();
    3.0 * weights + crate::sharding::shard_bytes(&node.output, cfg)
}

/// Enumerate the valid configurations `C(v)` for `node` under `rule`,
/// in lexicographic order. Never returns an empty vector: the all-ones
/// configuration is always a candidate.
pub fn enumerate_configs(node: &Node, rule: &ConfigRule) -> Vec<Config> {
    let p = u64::from(rule.devices);
    let dims = &node.iter_space;
    let rank = dims.len();
    assert!(
        rank <= MAX_RANK,
        "node '{}' has rank {} > MAX_RANK",
        node.name,
        rank
    );

    // Allowed factors per dimension: 1 and powers of two up to
    // min(extent, p, per-dim cap).
    let mut factor_lists: Vec<Vec<u32>> = Vec::with_capacity(rank);
    for d in dims {
        let mut fs = vec![1u32];
        if d.splittable {
            let cap = d
                .size
                .min(p)
                .min(u64::from(rule.max_split_per_dim.unwrap_or(u32::MAX)));
            let mut f = 2u64;
            while f <= cap {
                fs.push(f as u32);
                f *= 2;
            }
        }
        factor_lists.push(fs);
    }

    let mut out = Vec::new();
    let mut current = [1u16; MAX_RANK];
    let mut best_product = 0u64;
    enumerate_rec(&factor_lists, 0, 1, p, &mut current, &mut |cfg, product| {
        if let Some(limit) = rule.memory_limit {
            if layer_footprint_bytes(node, &cfg) > limit {
                return;
            }
        }
        if rule.require_all_devices {
            // Keep only max-product configurations (== p when reachable).
            if product > best_product {
                best_product = product;
                out.clear();
            }
            if product == best_product {
                out.push(cfg);
            }
        } else {
            out.push(cfg);
        }
    });
    // A memory limit can exclude everything (the layer simply does not fit
    // at this device count); surface that loudly rather than panicking in
    // debug only.
    assert!(
        !out.is_empty(),
        "no configuration of node '{}' fits the memory limit {:?}",
        node.name,
        rule.memory_limit
    );
    out
}

fn enumerate_rec(
    factor_lists: &[Vec<u32>],
    dim: usize,
    product: u64,
    p: u64,
    current: &mut [u16; MAX_RANK],
    emit: &mut impl FnMut(Config, u64),
) {
    if dim == factor_lists.len() {
        emit(
            Config {
                splits: *current,
                rank: factor_lists.len() as u8,
            },
            product,
        );
        return;
    }
    for &f in &factor_lists[dim] {
        let next = product * u64::from(f);
        if next > p {
            // factors are sorted ascending; later ones only grow.
            break;
        }
        current[dim] = f as u16;
        enumerate_rec(factor_lists, dim + 1, next, p, current, emit);
    }
    current[dim] = 1;
}

/// Per-node configuration enumerations for a whole graph, with id ↔
/// configuration mapping. [`crate::CostTables`] builds on this; searches
/// that do not need precomputed cost matrices (e.g. the simulator-driven
/// MCMC baseline) use it directly to avoid the quadratic edge tables.
#[derive(Clone, Debug)]
pub struct ConfigSpace {
    per_node: Vec<Vec<Config>>,
}

impl ConfigSpace {
    /// Enumerate `C(v)` for every node of `graph` under `rule`.
    pub fn build(graph: &pase_graph::Graph, rule: &ConfigRule) -> Self {
        Self {
            per_node: graph
                .nodes()
                .iter()
                .map(|n| enumerate_configs(n, rule))
                .collect(),
        }
    }

    /// Wrap precomputed per-node configuration lists.
    pub fn from_lists(per_node: Vec<Vec<Config>>) -> Self {
        Self { per_node }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.per_node.len()
    }

    /// Whether the space covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty()
    }

    /// `|C(v)|` of node `v`.
    pub fn k(&self, v: pase_graph::NodeId) -> usize {
        self.per_node[v.index()].len()
    }

    /// The largest `|C(v)|` (the paper's `K`).
    pub fn max_k(&self) -> usize {
        self.per_node.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The configuration list of node `v`.
    pub fn configs_of(&self, v: pase_graph::NodeId) -> &[Config] {
        &self.per_node[v.index()]
    }

    /// The configuration of node `v` with local id `c`.
    pub fn config(&self, v: pase_graph::NodeId, c: u16) -> &Config {
        &self.per_node[v.index()][c as usize]
    }

    /// Convert per-node configuration ids into a [`crate::Strategy`].
    pub fn ids_to_strategy(&self, ids: &[u16]) -> crate::Strategy {
        assert_eq!(ids.len(), self.per_node.len());
        crate::Strategy::new(
            ids.iter()
                .enumerate()
                .map(|(v, &c)| self.per_node[v][c as usize])
                .collect(),
        )
    }

    /// Find the configuration ids of a strategy; `None` if any node's
    /// configuration is not enumerated.
    pub fn strategy_to_ids(&self, strategy: &crate::Strategy) -> Option<Vec<u16>> {
        if strategy.len() != self.per_node.len() {
            return None;
        }
        strategy
            .configs()
            .iter()
            .enumerate()
            .map(|(v, cfg)| {
                self.per_node[v]
                    .iter()
                    .position(|c| c == cfg)
                    .map(|i| i as u16)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::{DimRole, IterDim, OpKind, TensorRef};

    fn node(dims: Vec<IterDim>) -> Node {
        let sizes: Vec<u64> = dims.iter().map(|d| d.size).collect();
        let all: Vec<u32> = (0..dims.len() as u32).collect();
        Node {
            name: "t".into(),
            op: OpKind::Matmul,
            iter_space: dims,
            inputs: vec![],
            output: TensorRef::aligned(all, &sizes),
            params: vec![],
        }
    }

    #[test]
    fn config_accessors() {
        let c = Config::new(&[1, 4, 2]);
        assert_eq!(c.rank(), 3);
        assert_eq!(c.splits(), &[1, 4, 2]);
        assert_eq!(c.split(1), 4);
        assert_eq!(c.product(), 8);
        assert_eq!(format!("{c}"), "(1, 4, 2)");
    }

    #[test]
    fn ones_config_uses_one_device() {
        let c = Config::ones(5);
        assert_eq!(c.product(), 1);
        assert_eq!(c.splits(), &[1, 1, 1, 1, 1]);
    }

    #[test]
    fn full_device_enumeration_for_gemm() {
        // b=64, n=64, c=64: every pow-2 3-way composition of 8 → C(2+3-1... )
        let n = node(vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("n", 64, DimRole::Param),
            IterDim::new("c", 64, DimRole::Reduction),
        ]);
        let cfgs = enumerate_configs(&n, &ConfigRule::new(8));
        // compositions of 2^3 over 3 dims: C(3+2,2) = 10
        assert_eq!(cfgs.len(), 10);
        assert!(cfgs.iter().all(|c| c.product() == 8));
        // lexicographic order, first is (1,1,8)
        assert_eq!(cfgs[0].splits(), &[1, 1, 8]);
        assert_eq!(cfgs.last().unwrap().splits(), &[8, 1, 1]);
    }

    #[test]
    fn extent_bounds_split_factors() {
        let n = node(vec![
            IterDim::new("b", 2, DimRole::Batch),
            IterDim::new("n", 64, DimRole::Param),
        ]);
        let cfgs = enumerate_configs(&n, &ConfigRule::new(8));
        for c in &cfgs {
            assert!(c.split(0) <= 2);
            assert_eq!(c.product(), 8);
        }
        // (1,8) and (2,4)
        assert_eq!(cfgs.len(), 2);
    }

    #[test]
    fn unsplittable_dims_stay_whole() {
        let n = node(vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::fixed("r", 64, DimRole::Reduction),
        ]);
        let cfgs = enumerate_configs(&n, &ConfigRule::new(4));
        assert_eq!(cfgs.len(), 1);
        assert_eq!(cfgs[0].splits(), &[4, 1]);
    }

    #[test]
    fn fallback_when_p_unreachable() {
        // Max product is 2·2 = 4 < p = 16 → fall back to product 4.
        let n = node(vec![
            IterDim::new("b", 2, DimRole::Batch),
            IterDim::new("n", 2, DimRole::Param),
        ]);
        let cfgs = enumerate_configs(&n, &ConfigRule::new(16));
        assert_eq!(cfgs.len(), 1);
        assert_eq!(cfgs[0].splits(), &[2, 2]);
    }

    #[test]
    fn allow_idle_includes_all_products() {
        let n = node(vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("n", 64, DimRole::Param),
        ]);
        let cfgs = enumerate_configs(&n, &ConfigRule::new(4).allow_idle());
        // products ∈ {1,2,4}: (1,1),(1,2),(1,4),(2,1),(2,2),(4,1)
        assert_eq!(cfgs.len(), 6);
        assert!(cfgs.contains(&Config::new(&[1, 1])));
        assert!(cfgs.iter().all(|c| c.product() <= 4));
    }

    #[test]
    fn per_dim_cap_applies() {
        let n = node(vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("n", 64, DimRole::Param),
        ]);
        let cfgs = enumerate_configs(&n, &ConfigRule::new(16).with_max_split(4));
        assert!(cfgs.iter().all(|c| c.split(0) <= 4 && c.split(1) <= 4));
        assert_eq!(cfgs.len(), 1); // only (4,4) reaches 16
    }

    #[test]
    fn single_device_rule_yields_all_ones() {
        let n = node(vec![IterDim::new("b", 64, DimRole::Batch)]);
        let cfgs = enumerate_configs(&n, &ConfigRule::new(1));
        assert_eq!(cfgs, vec![Config::ones(1)]);
    }

    #[test]
    fn memory_limit_excludes_replicated_configs() {
        // A big-weight GEMM: batch-split configs replicate the whole
        // 128 MiB weight; a tight memory cap leaves only the
        // parameter-sharding configurations.
        let n = {
            let dims = vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 4096, DimRole::Param),
                IterDim::new("c", 8192, DimRole::Reduction),
            ];
            let mut node = node(dims);
            node.output = TensorRef::new(vec![0, 1], vec![64, 4096]);
            node.params = vec![TensorRef::new(vec![1, 2], vec![4096, 8192])];
            node
        };
        let weight_bytes = 4096.0 * 8192.0 * 4.0;
        let unconstrained = enumerate_configs(&n, &ConfigRule::new(8));
        // a cap below one full weight copy forbids pure batch splitting
        let rule = ConfigRule::new(8).with_memory_limit(weight_bytes);
        let constrained = enumerate_configs(&n, &rule);
        assert!(constrained.len() < unconstrained.len());
        for cfg in &constrained {
            assert!(
                layer_footprint_bytes(&n, cfg) <= weight_bytes,
                "{cfg} breaks the cap"
            );
            // the weight must be sharded at least 4 ways (3× state + act)
            assert!(cfg.split(1) * cfg.split(2) >= 4, "{cfg}");
        }
        assert!(!constrained.contains(&Config::new(&[8, 1, 1])));
    }

    #[test]
    #[should_panic(expected = "fits the memory limit")]
    fn impossible_memory_limit_panics_loudly() {
        let n = node(vec![IterDim::new("b", 64, DimRole::Batch)]);
        let rule = ConfigRule::new(4).with_memory_limit(1.0); // 1 byte
        let _ = enumerate_configs(&n, &rule);
    }

    #[test]
    fn footprint_shrinks_with_splits() {
        let dims = vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("n", 1024, DimRole::Param),
            IterDim::new("c", 1024, DimRole::Reduction),
        ];
        let mut n = node(dims);
        n.params = vec![TensorRef::new(vec![1, 2], vec![1024, 1024])];
        let whole = layer_footprint_bytes(&n, &Config::ones(3));
        let split = layer_footprint_bytes(&n, &Config::new(&[1, 4, 2]));
        assert!(split < whole / 4.0);
    }

    #[test]
    fn config_space_roundtrips_ids() {
        use pase_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let n1 = node(vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("n", 64, DimRole::Param),
        ]);
        let n2 = node(vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("n", 64, DimRole::Param),
            IterDim::new("c", 64, DimRole::Reduction),
        ]);
        b.add_node(n1);
        b.add_node(n2);
        let g = b.build().unwrap();
        let space = ConfigSpace::build(&g, &ConfigRule::new(4));
        assert_eq!(space.len(), 2);
        assert!(space.max_k() >= space.k(pase_graph::NodeId(0)));
        let ids = vec![1u16, 2u16];
        let s = space.ids_to_strategy(&ids);
        assert_eq!(space.strategy_to_ids(&s), Some(ids.clone()));
        assert_eq!(
            space.config(pase_graph::NodeId(0), 1),
            s.config(pase_graph::NodeId(0))
        );
        // foreign configuration is rejected
        let foreign = crate::Strategy::new(vec![Config::ones(2), Config::ones(3)]);
        assert_eq!(space.strategy_to_ids(&foreign), None);
    }

    #[test]
    fn config_space_from_lists() {
        let lists = vec![
            vec![Config::ones(1)],
            vec![Config::new(&[2]), Config::new(&[4])],
        ];
        let space = ConfigSpace::from_lists(lists);
        assert_eq!(space.k(pase_graph::NodeId(1)), 2);
        assert!(!space.is_empty());
        assert_eq!(space.configs_of(pase_graph::NodeId(0)).len(), 1);
    }

    #[test]
    fn paper_reported_config_counts_shape() {
        // The paper reports 10–30 configs/vertex for p=8 and K ≈ 100 for
        // p=64 on InceptionV3's 7-d conv spaces. Check our enumeration is
        // in that ballpark for a representative conv layer.
        let conv = node(vec![
            IterDim::new("b", 128, DimRole::Batch),
            IterDim::new("c", 64, DimRole::Reduction),
            IterDim::new("h", 73, DimRole::Spatial),
            IterDim::new("w", 73, DimRole::Spatial),
            IterDim::new("n", 128, DimRole::Param),
            IterDim::fixed("r", 3, DimRole::Reduction),
            IterDim::fixed("s", 3, DimRole::Reduction),
        ]);
        let k8 = enumerate_configs(&conv, &ConfigRule::new(8)).len();
        let k64 = enumerate_configs(&conv, &ConfigRule::new(64)).len();
        assert!((10..=40).contains(&k8), "k8 = {k8}");
        assert!((50..=260).contains(&k64), "k64 = {k64}");
    }
}
