//! Collective-communication volume formulas.
//!
//! The analytical model charges each device the number of bytes it sends
//! plus receives under bandwidth-optimal ring algorithms. These formulas
//! are shared by the layer cost (`t_l`'s intra-layer terms) and reused by
//! the execution simulator.

/// Per-device traffic of a ring all-reduce of `bytes` across a group of
/// `group` devices: a reduce-scatter plus an all-gather, each moving
/// `(g-1)/g · bytes` per device.
pub fn all_reduce_bytes(bytes: f64, group: u32) -> f64 {
    if group <= 1 {
        return 0.0;
    }
    let g = f64::from(group);
    2.0 * (g - 1.0) / g * bytes
}

/// Per-device traffic of a ring all-gather in which each of `group` devices
/// contributes a shard and ends with the concatenation of `bytes` total.
pub fn all_gather_bytes(bytes: f64, group: u32) -> f64 {
    if group <= 1 {
        return 0.0;
    }
    let g = f64::from(group);
    (g - 1.0) / g * bytes
}

/// Per-device traffic of a ring reduce-scatter of `bytes` across `group`
/// devices.
pub fn reduce_scatter_bytes(bytes: f64, group: u32) -> f64 {
    if group <= 1 {
        return 0.0;
    }
    let g = f64::from(group);
    (g - 1.0) / g * bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_groups_are_free() {
        assert_eq!(all_reduce_bytes(1e6, 1), 0.0);
        assert_eq!(all_gather_bytes(1e6, 1), 0.0);
        assert_eq!(reduce_scatter_bytes(1e6, 1), 0.0);
    }

    #[test]
    fn all_reduce_is_reduce_scatter_plus_all_gather() {
        let (b, g) = (4096.0, 8);
        assert_eq!(
            all_reduce_bytes(b, g),
            reduce_scatter_bytes(b, g) + all_gather_bytes(b, g)
        );
    }

    #[test]
    fn two_device_all_reduce_moves_the_buffer_once_each_way() {
        assert_eq!(all_reduce_bytes(100.0, 2), 100.0);
    }

    #[test]
    fn volume_grows_monotonically_with_group_size() {
        let b = 1e6;
        let mut prev = 0.0;
        for g in 2..64 {
            let v = all_reduce_bytes(b, g);
            assert!(v > prev);
            prev = v;
        }
        // ... and approaches 2·bytes asymptotically.
        assert!(all_reduce_bytes(b, 1024) < 2.0 * b);
    }
}
