//! Structured intra-layer communication breakdown.
//!
//! [`layer_comm_events`] decomposes everything `t_l` charges beyond pure
//! compute into typed [`CommEvent`]s. The analytical cost model reduces
//! each event to per-device bytes with the flat ring formulas and
//! multiplies by `r`; the execution simulator (`pase-sim`) instead times
//! each event against the *hierarchical* topology, using the event's
//! `group_dims` to locate the participating devices (intra-node vs
//! inter-node) under the canonical placement.

use crate::comm::{all_gather_bytes, all_reduce_bytes};
use crate::config::Config;
use crate::sharding::{replication, shard_bytes};
use pase_graph::{DimRole, Node, OpKind};

/// Which collective realizes the event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Collective {
    /// Ring all-reduce of a `volume`-byte buffer held by every member.
    AllReduce,
    /// Ring all-gather producing a `volume`-byte concatenation.
    AllGather,
    /// Point-to-point neighbor exchange of `volume` bytes per device.
    PointToPoint,
}

/// Why the communication happens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommKind {
    /// Partial-sum reduction of a split contraction dimension.
    PartialReduce,
    /// Update-phase gradient all-reduce of replicated parameters.
    GradientSync,
    /// Convolution halo exchange across a split spatial dimension.
    Halo,
    /// Per-timestep hidden-state reduction of a split RNN hidden dim.
    RecurrentReduce,
    /// Hidden-state transfer across RNN pipeline-stage boundaries.
    PipelineTransfer,
    /// Key/value all-gather of a sequence-split attention operator.
    KvAllGather,
}

/// One intra-layer communication event of a configured node.
#[derive(Clone, Debug, PartialEq)]
pub struct CommEvent {
    /// Why the event occurs.
    pub kind: CommKind,
    /// How it is realized.
    pub collective: Collective,
    /// Logical buffer volume in bytes (see [`Collective`] for the
    /// per-device traffic semantics).
    pub volume: f64,
    /// Iteration-space dimensions whose split factors form the
    /// communication group (used by the simulator's placement).
    pub group_dims: Vec<u32>,
    /// Number of devices in the group.
    pub group: u32,
}

impl CommEvent {
    /// Per-device traffic in bytes under bandwidth-optimal ring algorithms
    /// (what the flat analytical model charges).
    pub fn traffic_bytes(&self) -> f64 {
        match self.collective {
            Collective::AllReduce => all_reduce_bytes(self.volume, self.group),
            Collective::AllGather => all_gather_bytes(self.volume, self.group),
            Collective::PointToPoint => self.volume,
        }
    }
}

/// Split factor of the iteration dim named `name`, or 1 if absent.
fn split_of(node: &Node, cfg: &Config, name: &str) -> u32 {
    node.dim_index(name).map_or(1, |i| cfg.split(i))
}

/// Extent of the iteration dim named `name`, or 1 if absent.
fn size_of(node: &Node, name: &str) -> f64 {
    node.dim_size(name).map_or(1.0, |s| s as f64)
}

fn dim_idx(node: &Node, name: &str) -> Vec<u32> {
    node.dim_index(name)
        .map(|i| vec![i as u32])
        .unwrap_or_default()
}

/// Compute FLOPs of `node` under `cfg`: the forward+backward work divided
/// across `∏ c_i` devices, inflated by the pipeline-bubble factor for the
/// single-vertex RNN operator.
pub fn layer_compute_flops(node: &Node, cfg: &Config) -> f64 {
    let parts = cfg.product() as f64;
    let mut compute = node.step_flops() / parts;
    if let OpKind::Lstm { .. } = node.op {
        let p_stages = f64::from(split_of(node, cfg, "l") * split_of(node, cfg, "s"));
        if p_stages > 1.0 {
            let m = size_of(node, "s");
            compute *= (m + p_stages - 1.0) / m;
        }
    }
    compute
}

/// All intra-layer communication events of `node` under `cfg`.
pub fn layer_comm_events(node: &Node, cfg: &Config) -> Vec<CommEvent> {
    let mut events = Vec::new();

    // Partial-sum reduction of split contraction dims (not mapped to the
    // output; Pipeline dims are staging decisions, not contractions).
    let mut red_group = 1u64;
    let mut red_dims = Vec::new();
    for (i, d) in node.iter_space.iter().enumerate() {
        if d.role == DimRole::Reduction && !node.output.maps_dim(i as u32) && cfg.split(i) > 1 {
            red_group *= u64::from(cfg.split(i));
            red_dims.push(i as u32);
        }
    }
    if red_group > 1 {
        events.push(CommEvent {
            kind: CommKind::PartialReduce,
            collective: Collective::AllReduce,
            volume: shard_bytes(&node.output, cfg),
            group_dims: red_dims,
            group: red_group as u32,
        });
    }

    // Update-phase gradient synchronization for replicated parameters.
    for param in &node.params {
        let repl = replication(param, cfg);
        if repl > 1 {
            let group_dims: Vec<u32> = (0..node.rank() as u32)
                .filter(|&i| !param.maps_dim(i) && cfg.split(i as usize) > 1)
                .collect();
            events.push(CommEvent {
                kind: CommKind::GradientSync,
                collective: Collective::AllReduce,
                volume: shard_bytes(param, cfg),
                group_dims,
                group: repl,
            });
        }
    }

    match &node.op {
        OpKind::Conv2d {
            kernel_h, kernel_w, ..
        } => {
            if let Some(input) = node.inputs.first() {
                let in_shard = shard_bytes(input, cfg);
                let kernels = [*kernel_h, *kernel_w];
                let mut spatial_seen = 0usize;
                for (i, d) in node.iter_space.iter().enumerate() {
                    if d.role != DimRole::Spatial {
                        continue;
                    }
                    let k = f64::from(kernels[spatial_seen.min(1)]);
                    spatial_seen += 1;
                    let c = f64::from(cfg.split(i));
                    if c > 1.0 && k > 1.0 {
                        let local = size_of_tensor_dim(node, input, i as u32) / c;
                        if local > 0.0 {
                            events.push(CommEvent {
                                kind: CommKind::Halo,
                                collective: Collective::PointToPoint,
                                volume: 2.0 * in_shard * (k - 1.0) / local,
                                group_dims: vec![i as u32],
                                group: cfg.split(i),
                            });
                        }
                    }
                }
            }
        }
        OpKind::Lstm { .. } => {
            let (cl, cb, cs, ce) = (
                split_of(node, cfg, "l"),
                split_of(node, cfg, "b"),
                split_of(node, cfg, "s"),
                split_of(node, cfg, "e"),
            );
            let (l, b, s, e) = (
                size_of(node, "l"),
                size_of(node, "b"),
                size_of(node, "s"),
                size_of(node, "e"),
            );
            let elem = f64::from(node.output.elem_bytes);
            if ce > 1 {
                let cells_per_dev = (l / f64::from(cl)) * (s / f64::from(cs));
                let gate_block = (b / f64::from(cb)) * (e / f64::from(ce)) * elem;
                events.push(CommEvent {
                    kind: CommKind::RecurrentReduce,
                    collective: Collective::AllReduce,
                    volume: cells_per_dev * gate_block,
                    group_dims: dim_idx(node, "e"),
                    group: ce,
                });
            }
            let p_stages = cl * cs;
            if p_stages > 1 {
                let h_block = (b / f64::from(cb)) * (e / f64::from(ce)) * elem;
                let crossings = (s / f64::from(cs)) * f64::from(p_stages - 1) / f64::from(p_stages);
                let mut dims = dim_idx(node, "l");
                dims.extend(dim_idx(node, "s"));
                events.push(CommEvent {
                    kind: CommKind::PipelineTransfer,
                    collective: Collective::PointToPoint,
                    volume: 2.0 * crossings * h_block,
                    group_dims: dims,
                    group: p_stages,
                });
            }
        }
        OpKind::Attention => {
            let cs = split_of(node, cfg, "s");
            if cs > 1 {
                let (b, s, h, k) = (
                    size_of(node, "b"),
                    size_of(node, "s"),
                    size_of(node, "h"),
                    size_of(node, "k"),
                );
                let (cb, ch, ck) = (
                    split_of(node, cfg, "b"),
                    split_of(node, cfg, "h"),
                    split_of(node, cfg, "k"),
                );
                let kv = (b / f64::from(cb)) * s * (h / f64::from(ch)) * (k / f64::from(ck)) * 4.0;
                events.push(CommEvent {
                    kind: CommKind::KvAllGather,
                    collective: Collective::AllGather,
                    volume: 4.0 * kv, // K and V, forward and backward
                    group_dims: dim_idx(node, "s"),
                    group: cs,
                });
            }
        }
        OpKind::FeedForward => {
            let cd = split_of(node, cfg, "d");
            if cd > 1 {
                let (b, s, e) = (size_of(node, "b"), size_of(node, "s"), size_of(node, "e"));
                let (cb, cs2, ce) = (
                    split_of(node, cfg, "b"),
                    split_of(node, cfg, "s"),
                    split_of(node, cfg, "e"),
                );
                let hidden = (b / f64::from(cb)) * (s / f64::from(cs2)) * (e / f64::from(ce)) * 4.0;
                events.push(CommEvent {
                    kind: CommKind::PartialReduce,
                    collective: Collective::AllReduce,
                    volume: hidden,
                    group_dims: dim_idx(node, "d"),
                    group: cd,
                });
            }
        }
        _ => {}
    }

    events
}

/// Extent of the tensor dimension of `t` mapped to iteration dim `iter_dim`
/// (falling back to the iteration extent if the tensor does not map it).
fn size_of_tensor_dim(node: &Node, t: &pase_graph::TensorRef, iter_dim: u32) -> f64 {
    t.dims
        .iter()
        .position(|&d| d == iter_dim)
        .map(|pos| t.sizes[pos] as f64)
        .unwrap_or_else(|| node.iter_space[iter_dim as usize].size as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::{IterDim, TensorRef};

    fn fc() -> Node {
        let dims = vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("n", 256, DimRole::Param),
            IterDim::new("c", 512, DimRole::Reduction),
        ];
        let sizes: Vec<u64> = dims.iter().map(|d| d.size).collect();
        Node {
            name: "fc".into(),
            op: OpKind::FullyConnected,
            iter_space: dims,
            inputs: vec![TensorRef::aligned(vec![0, 2], &sizes)],
            output: TensorRef::aligned(vec![0, 1], &sizes),
            params: vec![TensorRef::aligned(vec![1, 2], &sizes)],
        }
    }

    #[test]
    fn data_parallel_fc_has_one_gradient_sync_event() {
        let events = layer_comm_events(&fc(), &Config::new(&[8, 1, 1]));
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.kind, CommKind::GradientSync);
        assert_eq!(e.group, 8);
        assert_eq!(e.group_dims, vec![0]);
        assert_eq!(e.volume, 256.0 * 512.0 * 4.0);
    }

    #[test]
    fn reduction_split_fc_has_one_partial_reduce_event() {
        let events = layer_comm_events(&fc(), &Config::new(&[1, 1, 8]));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, CommKind::PartialReduce);
        assert_eq!(events[0].group_dims, vec![2]);
    }

    #[test]
    fn param_split_fc_is_event_free() {
        assert!(layer_comm_events(&fc(), &Config::new(&[1, 8, 1])).is_empty());
    }

    #[test]
    fn traffic_matches_ring_formulas() {
        let e = CommEvent {
            kind: CommKind::GradientSync,
            collective: Collective::AllReduce,
            volume: 1000.0,
            group_dims: vec![0],
            group: 4,
        };
        assert_eq!(e.traffic_bytes(), all_reduce_bytes(1000.0, 4));
        let g = CommEvent {
            collective: Collective::AllGather,
            ..e.clone()
        };
        assert_eq!(g.traffic_bytes(), all_gather_bytes(1000.0, 4));
        let p = CommEvent {
            collective: Collective::PointToPoint,
            ..e
        };
        assert_eq!(p.traffic_bytes(), 1000.0);
    }

    #[test]
    fn compute_flops_divide_evenly_without_pipeline() {
        let n = fc();
        assert_eq!(
            layer_compute_flops(&n, &Config::new(&[2, 2, 2])),
            n.step_flops() / 8.0
        );
    }

    #[test]
    fn layer_cost_equals_compute_plus_traffic_for_all_configs() {
        // layer_cost is defined as compute + r·Σ traffic; guard the
        // decomposition across the whole configuration space of a node.
        let n = fc();
        let r = 777.0;
        for cfg in crate::enumerate_configs(&n, &crate::ConfigRule::new(8).allow_idle()) {
            let direct = crate::layer_cost(&n, &cfg, r);
            let composed = layer_compute_flops(&n, &cfg)
                + r * layer_comm_events(&n, &cfg)
                    .iter()
                    .map(CommEvent::traffic_bytes)
                    .sum::<f64>();
            assert!(
                (direct - composed).abs() <= 1e-9 * direct.abs().max(1.0),
                "decomposition broke at {cfg}"
            );
        }
    }

    #[test]
    fn events_have_sane_groups_and_volumes() {
        let n = fc();
        for cfg in crate::enumerate_configs(&n, &crate::ConfigRule::new(16).allow_idle()) {
            for e in layer_comm_events(&n, &cfg) {
                assert!(e.group >= 2, "event with trivial group at {cfg}");
                assert!(e.volume > 0.0);
                assert!(!e.group_dims.is_empty());
                for &d in &e.group_dims {
                    assert!(cfg.split(d as usize) > 1, "group dim {d} unsplit at {cfg}");
                }
            }
        }
    }
}
