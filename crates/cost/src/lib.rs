//! # pase-cost — the analytical cost model of PaSE (§II)
//!
//! Implements everything Equation (1) needs:
//!
//! ```text
//! F(G, φ) = Σ_v t_l(v, φ, r)  +  Σ_(u,v)∈E  r · t_x(u, v, φ)
//! ```
//!
//! * [`Config`] / [`ConfigRule`] / [`enumerate_configs`] — the per-node
//!   configuration space `C(v) = {(c_1…c_d) | ∏ c_i ≤ p}` restricted to
//!   power-of-two splits of splittable dimensions;
//! * [`MachineSpec`] — peak per-device FLOPs `F`, link bandwidth `B`, and
//!   the FLOP-to-byte ratio `r = F/B` that converts communication bytes
//!   into FLOP-equivalent cost;
//! * [`DeviceMesh`] — the hierarchical refinement of [`MachineSpec`]: a
//!   list of mesh axes (innermost first) with per-link α/bandwidth and
//!   per-device FLOPs, charging each collective at the slowest link its
//!   group spans; [`DeviceMesh::flat`] reproduces the scalar model
//!   bit-identically;
//! * [`layer_cost`] — `t_l(v, φ, r)`: compute divided by the split product,
//!   plus intra-layer communication (gradient all-reduce, partial-sum
//!   reduction of split contraction dims, convolution halo exchange, RNN
//!   pipeline bubbles and recurrent reductions) normalized to FLOPs;
//! * [`transfer_cost`] — `t_x(u, v, φ)`: the per-device
//!   `max_d |A(v,d,φ)| − |A(v,d,φ) ∩ A(u,d,φ)|` transfer volume between
//!   adjacent layers under block sharding with aligned greedy placement;
//! * [`CostTables`] — a precomputation of all per-node layer costs and
//!   per-edge transfer-cost matrices so the dynamic program in `pase-core`
//!   runs on pure table lookups;
//! * [`Strategy`] — a complete assignment of configurations to nodes, plus
//!   the direct evaluation of `F(G, φ)` used to cross-check the DP.

#![warn(missing_docs)]

mod calibrate;
mod comm;
mod config;
mod events;
mod export;
mod layer;
mod machine;
mod memory;
mod mesh;
mod prune;
mod sharding;
mod strategy;
mod tables;
mod transfer;

pub use calibrate::{fit_machine, strategy_features, Observation};
pub use comm::{all_gather_bytes, all_reduce_bytes, reduce_scatter_bytes};
pub use config::{
    enumerate_configs, layer_footprint_bytes, Config, ConfigRule, ConfigSpace, MAX_RANK,
};
pub use events::{layer_comm_events, layer_compute_flops, Collective, CommEvent, CommKind};
pub use export::{from_sharding_json, to_sharding_json, to_sharding_json_with};
pub use layer::layer_cost;
pub use machine::MachineSpec;
pub use memory::config_memory_bytes;
pub use mesh::{mesh_layer_cost, mesh_transfer_cost, DeviceMesh, MeshAxis};
pub use prune::{estimate_prune_work, PruneOptions, PruneStats, PrunedTables};
pub use sharding::{replication, shard_bytes, shard_elements, tensor_sharding};
pub use strategy::{evaluate, validate_strategy, Strategy};
pub use tables::{CostTables, InternStats, NonFiniteCost, TableOptions};
pub use transfer::{transfer_bytes, transfer_cost, try_transfer_bytes, TransferError};
