//! Precomputed cost tables.
//!
//! The dynamic program in `pase-core` evaluates `H_V(i, φ)` for an enormous
//! number of substrategies; every evaluation touches only per-node layer
//! costs and per-edge transfer costs. [`CostTables`] precomputes both —
//! `layer[v][c]` for every configuration `c ∈ C(v)` and
//! `edge[e][c_u][c_v]` for every configuration pair of an edge's endpoints —
//! so the search's inner loop is pure dense-array lookups.

use crate::config::{enumerate_configs, Config, ConfigRule};
use crate::layer::layer_cost;
use crate::machine::MachineSpec;
use crate::strategy::Strategy;
use crate::transfer::transfer_bytes;
use pase_graph::{EdgeId, Graph, NodeId};

/// Dense transfer-cost matrix for one edge: `costs[cu * k_dst + cv]`.
#[derive(Clone, Debug)]
struct EdgeTable {
    k_dst: u32,
    costs: Vec<f64>,
}

/// Precomputed configuration lists and cost tables for a (graph, rule,
/// machine) triple.
#[derive(Clone, Debug)]
pub struct CostTables {
    rule: ConfigRule,
    r: f64,
    configs: Vec<Vec<Config>>,
    layer: Vec<Vec<f64>>,
    edges: Vec<EdgeTable>,
}

impl CostTables {
    /// Enumerate all configurations and precompute every cost entry.
    pub fn build(graph: &Graph, rule: ConfigRule, machine: &MachineSpec) -> Self {
        let r = machine.flop_byte_ratio();
        let configs: Vec<Vec<Config>> = graph
            .nodes()
            .iter()
            .map(|n| enumerate_configs(n, &rule))
            .collect();
        let layer: Vec<Vec<f64>> = graph
            .iter()
            .map(|(id, n)| {
                configs[id.index()]
                    .iter()
                    .map(|c| layer_cost(n, c, r))
                    .collect()
            })
            .collect();
        let edges: Vec<EdgeTable> = graph
            .edges()
            .iter()
            .map(|e| {
                let src = graph.node(e.src);
                let dst = graph.node(e.dst);
                let cu_list = &configs[e.src.index()];
                let cv_list = &configs[e.dst.index()];
                let mut costs = Vec::with_capacity(cu_list.len() * cv_list.len());
                for cu in cu_list {
                    for cv in cv_list {
                        costs.push(r * transfer_bytes(src, cu, dst, e.dst_slot as usize, cv));
                    }
                }
                EdgeTable {
                    k_dst: cv_list.len() as u32,
                    costs,
                }
            })
            .collect();
        Self {
            rule,
            r,
            configs,
            layer,
            edges,
        }
    }

    /// The configuration rule the tables were built under.
    pub fn rule(&self) -> &ConfigRule {
        &self.rule
    }

    /// The machine's FLOP-to-byte ratio `r`.
    pub fn flop_byte_ratio(&self) -> f64 {
        self.r
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the tables cover no nodes.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// `|C(v)|` — the number of valid configurations of node `v`.
    pub fn k(&self, v: NodeId) -> usize {
        self.configs[v.index()].len()
    }

    /// The largest `|C(v)|` over all nodes (the paper's `K`).
    pub fn max_k(&self) -> usize {
        self.configs.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The configuration list of node `v`.
    pub fn configs_of(&self, v: NodeId) -> &[Config] {
        &self.configs[v.index()]
    }

    /// The configuration of node `v` with local id `c`.
    pub fn config(&self, v: NodeId, c: u16) -> &Config {
        &self.configs[v.index()][c as usize]
    }

    /// `t_l(v, C_c, r)` in FLOPs.
    #[inline]
    pub fn layer_cost(&self, v: NodeId, c: u16) -> f64 {
        self.layer[v.index()][c as usize]
    }

    /// `r · t_x` for edge `e` under configuration ids `(cu, cv)` of its
    /// endpoints.
    #[inline]
    pub fn edge_cost(&self, e: EdgeId, cu: u16, cv: u16) -> f64 {
        let t = &self.edges[e.index()];
        t.costs[cu as usize * t.k_dst as usize + cv as usize]
    }

    /// Evaluate `F(G, φ)` for a strategy given as per-node configuration
    /// ids, using only the precomputed tables. Must agree exactly with
    /// [`crate::evaluate`] on the corresponding [`Strategy`].
    pub fn evaluate_ids(&self, graph: &Graph, ids: &[u16]) -> f64 {
        assert_eq!(ids.len(), graph.len());
        let mut total = 0.0;
        for v in graph.node_ids() {
            total += self.layer_cost(v, ids[v.index()]);
        }
        for (i, e) in graph.edges().iter().enumerate() {
            total += self.edge_cost(EdgeId(i as u32), ids[e.src.index()], ids[e.dst.index()]);
        }
        total
    }

    /// Convert per-node configuration ids into a [`Strategy`].
    pub fn ids_to_strategy(&self, ids: &[u16]) -> Strategy {
        assert_eq!(ids.len(), self.configs.len());
        Strategy::new(
            ids.iter()
                .enumerate()
                .map(|(v, &c)| self.configs[v][c as usize])
                .collect(),
        )
    }

    /// Find the configuration ids of a [`Strategy`]; `None` if any node's
    /// configuration is not in its enumerated list.
    pub fn strategy_to_ids(&self, strategy: &Strategy) -> Option<Vec<u16>> {
        if strategy.len() != self.configs.len() {
            return None;
        }
        strategy
            .configs()
            .iter()
            .enumerate()
            .map(|(v, cfg)| {
                self.configs[v]
                    .iter()
                    .position(|c| c == cfg)
                    .map(|i| i as u16)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::evaluate;
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn fc_chain(k: usize) -> Graph {
        let mk = |name: &str, ins: usize| {
            let dims = vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 128, DimRole::Param),
                IterDim::new("c", 128, DimRole::Reduction),
            ];
            Node {
                name: name.into(),
                op: OpKind::FullyConnected,
                iter_space: dims,
                inputs: (0..ins)
                    .map(|_| TensorRef::new(vec![0, 2], vec![64, 128]))
                    .collect(),
                output: TensorRef::new(vec![0, 1], vec![64, 128]),
                params: vec![TensorRef::new(vec![1, 2], vec![128, 128])],
            }
        };
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..k)
            .map(|i| b.add_node(mk(&format!("fc{i}"), usize::from(i > 0))))
            .collect();
        for w in ids.windows(2) {
            b.connect(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn tables_match_direct_evaluation_on_all_pairs() {
        let g = fc_chain(2);
        let t = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let r = t.flop_byte_ratio();
        for cu in 0..t.k(NodeId(0)) as u16 {
            for cv in 0..t.k(NodeId(1)) as u16 {
                let ids = vec![cu, cv];
                let direct = evaluate(&g, &t.ids_to_strategy(&ids), r);
                let tabled = t.evaluate_ids(&g, &ids);
                assert!(
                    (direct - tabled).abs() <= 1e-9 * direct.abs().max(1.0),
                    "mismatch at ({cu},{cv}): {direct} vs {tabled}"
                );
            }
        }
    }

    #[test]
    fn strategy_id_roundtrip() {
        let g = fc_chain(3);
        let t = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        let ids = vec![0u16, (t.k(NodeId(1)) - 1) as u16, 1u16];
        let s = t.ids_to_strategy(&ids);
        assert_eq!(t.strategy_to_ids(&s), Some(ids));
    }

    #[test]
    fn unknown_config_is_rejected() {
        let g = fc_chain(1);
        let t = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        // all-ones uses 1 device; rule requires all 8 → not enumerated
        let s = Strategy::sequential(&g);
        assert_eq!(t.strategy_to_ids(&s), None);
    }

    #[test]
    fn k_reflects_enumeration() {
        let g = fc_chain(1);
        let t = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        assert_eq!(t.k(NodeId(0)), 10); // pow-2 compositions of 8 over 3 dims
        assert_eq!(t.max_k(), 10);
    }

    #[test]
    fn edge_cost_lookup_matches_formula() {
        let g = fc_chain(2);
        let t = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let r = t.flop_byte_ratio();
        let cu = 0u16;
        let cv = 3u16;
        let expect = r * crate::transfer::transfer_bytes(
            g.node(NodeId(0)),
            t.config(NodeId(0), cu),
            g.node(NodeId(1)),
            0,
            t.config(NodeId(1), cv),
        );
        assert_eq!(t.edge_cost(EdgeId(0), cu, cv), expect);
    }
}
