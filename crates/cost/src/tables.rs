//! Precomputed cost tables.
//!
//! The dynamic program in `pase-core` evaluates `H_V(i, φ)` for an enormous
//! number of substrategies; every evaluation touches only per-node layer
//! costs and per-edge transfer costs. [`CostTables`] precomputes both —
//! `layer[v][c]` for every configuration `c ∈ C(v)` and
//! `edge[e][c_u][c_v]` for every configuration pair of an edge's endpoints —
//! so the search's inner loop is pure dense-array lookups.
//!
//! ## Structural interning
//!
//! DNN benchmark graphs repeat layer shapes heavily (InceptionV3 stacks the
//! same convolution/concat blocks, RNNLM unrolls one cell, Transformer
//! repeats identical encoder layers), and both `enumerate_configs` and the
//! cost formulas depend only on a node's *structure* — its op, iteration
//! space, and tensor maps — never on its name or identity. `build` therefore
//! keys layer tables by that structure (plus the shared [`ConfigRule`]) and
//! edge tables by `(producer class, consumer class, dst_slot)`, computes
//! each distinct table once (in parallel across distinct tables), and maps
//! nodes/edges to indices into the interned pools. Lookups stay `O(1)`;
//! results are bit-identical to an uninterned build because shared entries
//! are produced by the very same computation.

use crate::config::{enumerate_configs, Config, ConfigRule};
use crate::machine::MachineSpec;
use crate::mesh::{mesh_layer_cost, mesh_transfer_cost, DeviceMesh};
use crate::strategy::Strategy;
use pase_graph::{EdgeId, Graph, IterDim, Node, NodeId, OpKind};
use pase_obs::{phase, span_in, OptSpan, Trace};
use rayon::prelude::*;
use rustc_hash::FxHashMap;

/// How [`CostTables::build_with`] constructs the tables.
#[derive(Clone, Copy, Debug)]
pub struct TableOptions {
    /// Share tables between structurally identical nodes/edges (always
    /// bit-identical to an uninterned build; disable only for A/B
    /// measurement).
    pub intern: bool,
    /// Smallest graph (node count) on which interning is attempted. On tiny
    /// graphs the structural-key hashing costs more than the table work it
    /// could share (AlexNet/RNNLM regress with 0% hit rate), so interning is
    /// skipped below this size. Set to 0 to always intern.
    pub intern_min_nodes: usize,
    /// Compute distinct tables in parallel.
    pub parallel: bool,
}

impl Default for TableOptions {
    fn default() -> Self {
        Self {
            intern: true,
            intern_min_nodes: 16,
            parallel: true,
        }
    }
}

/// After this many structural-key probes with zero pool hits, interning
/// gives up on the rest of the graph: a prefix this long with no repeated
/// structure predicts a heterogeneous graph where keying is pure overhead.
const INTERN_PROBE_LIMIT: usize = 32;

/// Interning effectiveness counters (see [`CostTables::intern_stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InternStats {
    /// Whether structural interning was attempted at all. `false` when the
    /// build disabled it (`TableOptions::intern = false`) or the
    /// `intern_min_nodes` size gate skipped it; `true` when keying ran,
    /// even if the probe limit later abandoned a hit-free prefix (that is
    /// a *measured* ~0% hit rate, not a skipped measurement).
    pub attempted: bool,
    /// Number of graph nodes covered.
    pub nodes: usize,
    /// Distinct layer tables actually computed.
    pub unique_layer_tables: usize,
    /// Number of graph edges covered.
    pub edges: usize,
    /// Distinct edge tables actually computed.
    pub unique_edge_tables: usize,
}

impl InternStats {
    /// Fraction of all tables (layer + edge) served from the intern pool
    /// instead of being computed: `1 − unique/total`. 0 for an uninterned
    /// build or an empty graph.
    pub fn hit_rate(&self) -> f64 {
        let total = self.nodes + self.edges;
        if total == 0 {
            return 0.0;
        }
        let unique = self.unique_layer_tables + self.unique_edge_tables;
        1.0 - unique as f64 / total as f64
    }

    /// [`InternStats::hit_rate`], distinguishing "interning never ran"
    /// (`None` — the size gate or `intern: false` skipped it) from a
    /// measured rate (`Some`, possibly 0.0). Reports that would otherwise
    /// print a misleading `0.0` for a skipped pass use this.
    pub fn hit_rate_opt(&self) -> Option<f64> {
        self.attempted.then(|| self.hit_rate())
    }
}

/// Structural identity of a node for interning: everything the
/// configuration enumeration and cost formulas read, nothing else (in
/// particular not the node's name). Float op parameters are keyed by their
/// bit patterns so `Hash`/`Eq` stay consistent.
#[derive(PartialEq, Eq, Hash)]
struct NodeKey {
    op_tag: u8,
    op_bits: [u64; 3],
    iter_space: Vec<IterDim>,
    n_inputs: u32,
    tensors: Vec<(Vec<u32>, Vec<u64>, u32)>,
}

fn node_key(n: &Node) -> NodeKey {
    let (op_tag, op_bits): (u8, [u64; 3]) = match n.op {
        OpKind::Conv2d {
            kernel_h,
            kernel_w,
            stride,
        } => (0, [kernel_h.into(), kernel_w.into(), stride.into()]),
        OpKind::Pool2d { kernel, stride } => (1, [kernel.into(), stride.into(), 0]),
        OpKind::FullyConnected => (2, [0; 3]),
        OpKind::Matmul => (3, [0; 3]),
        OpKind::Softmax => (4, [0; 3]),
        OpKind::Embedding => (5, [0; 3]),
        OpKind::Lstm { layers } => (6, [layers.into(), 0, 0]),
        OpKind::Attention => (7, [0; 3]),
        OpKind::FeedForward => (8, [0; 3]),
        OpKind::LayerNorm => (9, [0; 3]),
        OpKind::BatchNorm => (10, [0; 3]),
        OpKind::Elementwise { flops_per_point } => (11, [flops_per_point.to_bits(), 0, 0]),
        OpKind::Concat => (12, [0; 3]),
    };
    let tensor = |t: &pase_graph::TensorRef| (t.dims.clone(), t.sizes.clone(), t.elem_bytes);
    NodeKey {
        op_tag,
        op_bits,
        iter_space: n.iter_space.clone(),
        n_inputs: n.inputs.len() as u32,
        tensors: n
            .inputs
            .iter()
            .chain(std::iter::once(&n.output))
            .chain(n.params.iter())
            .map(tensor)
            .collect(),
    }
}

/// One interned layer table: the configuration list, per-configuration
/// layer cost, and per-configuration memory charge of a structural node
/// class.
#[derive(Clone, Debug)]
pub(crate) struct LayerEntry {
    pub(crate) configs: Vec<Config>,
    pub(crate) costs: Vec<f64>,
    pub(crate) mem: Vec<u64>,
}

/// A non-finite entry found by [`CostTables::check_finite`]: which pool
/// (`"layer"` or `"edge"`), which interned class, the flat index within
/// that class's cost vector, and the offending value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NonFiniteCost {
    /// `"layer"` or `"edge"`.
    pub kind: &'static str,
    /// Index of the interned table class containing the entry.
    pub class: usize,
    /// Flat index of the entry within the class's cost vector.
    pub index: usize,
    /// The non-finite cost itself (NaN or ±∞).
    pub value: f64,
}

impl std::fmt::Display for NonFiniteCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "non-finite {} cost {} at class {} entry {} (check the MachineSpec rates)",
            self.kind, self.value, self.class, self.index
        )
    }
}

impl std::error::Error for NonFiniteCost {}

/// Dense transfer-cost matrix for one structural edge class:
/// `costs[cu * k_dst + cv]`.
#[derive(Clone, Debug)]
pub(crate) struct EdgeTable {
    pub(crate) k_dst: u32,
    pub(crate) costs: Vec<f64>,
}

/// Map `items` through `f`, in parallel when asked and worthwhile.
fn map_maybe_par<T, U, F>(items: Vec<T>, parallel: bool, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    if parallel && items.len() > 1 {
        items.into_par_iter().map(f).collect()
    } else {
        items.into_iter().map(f).collect()
    }
}

/// Precomputed configuration lists and cost tables for a (graph, rule,
/// mesh) triple.
#[derive(Clone, Debug)]
pub struct CostTables {
    pub(crate) rule: ConfigRule,
    pub(crate) r: f64,
    pub(crate) mesh: DeviceMesh,
    /// Node → index into `layer_pool`.
    pub(crate) node_class: Vec<u32>,
    pub(crate) layer_pool: Vec<LayerEntry>,
    /// Edge → index into `edge_pool`.
    pub(crate) edge_class: Vec<u32>,
    pub(crate) edge_pool: Vec<EdgeTable>,
    /// Whether structural interning was attempted for this build (see
    /// [`InternStats::attempted`]).
    pub(crate) intern_attempted: bool,
}

impl CostTables {
    /// Enumerate all configurations and precompute every cost entry, with
    /// structural interning and parallel table construction (the defaults
    /// of [`TableOptions`]). The scalar `machine` is costed as its flat
    /// single-axis mesh ([`DeviceMesh::flat`]) — bit-identical to the
    /// historical `compute + r·bytes` model.
    pub fn build(graph: &Graph, rule: ConfigRule, machine: &MachineSpec) -> Self {
        Self::build_with(graph, rule, machine, &TableOptions::default())
    }

    /// [`CostTables::build`] with explicit construction options.
    pub fn build_with(
        graph: &Graph,
        rule: ConfigRule,
        machine: &MachineSpec,
        opts: &TableOptions,
    ) -> Self {
        Self::build_mesh(graph, rule, &DeviceMesh::flat(machine), opts, None)
    }

    /// Build topology-aware tables for a [`DeviceMesh`], recording
    /// `interning` / `enumeration` / `table_build` phase spans (with entry
    /// and byte counters) into `trace` when one is given. The produced
    /// tables are identical with and without a trace.
    pub fn build_mesh(
        graph: &Graph,
        rule: ConfigRule,
        mesh: &DeviceMesh,
        opts: &TableOptions,
        trace: Option<&Trace>,
    ) -> Self {
        Self::build_impl(graph, rule, mesh, opts, trace, |v| {
            enumerate_configs(graph.node(v), &rule)
        })
    }

    /// [`CostTables::build_mesh`] over a pre-enumerated [`ConfigSpace`].
    ///
    /// The space must cover the same graph and have been built under the
    /// same `rule` — sweeps that reuse one enumeration across several
    /// machine profiles (figure6, the mesh sweep of `bench_search`) call
    /// this to skip the redundant `enumerate_configs` passes.
    pub fn build_mesh_with_space(
        graph: &Graph,
        rule: ConfigRule,
        mesh: &DeviceMesh,
        space: &crate::config::ConfigSpace,
        opts: &TableOptions,
    ) -> Self {
        assert_eq!(
            space.len(),
            graph.len(),
            "ConfigSpace does not cover the graph"
        );
        Self::build_impl(graph, rule, mesh, opts, None, |v| {
            space.configs_of(v).to_vec()
        })
    }

    fn build_impl(
        graph: &Graph,
        rule: ConfigRule,
        mesh: &DeviceMesh,
        opts: &TableOptions,
        trace: Option<&Trace>,
        configs_for: impl Fn(NodeId) -> Vec<Config> + Sync,
    ) -> Self {
        let r = mesh.ratio_for_group(1);

        // Phase 1 — interning: node classes (one per distinct structural
        // key when interning, one per node otherwise; `layer_reps[class]`
        // is a representative) and edge classes (keyed by endpoint classes
        // plus consumer slot — independent of the not-yet-built tables).
        // Interning is skipped outright on tiny graphs and abandoned after
        // a long hit-free probe prefix — in both regimes the keying costs
        // more than the sharing it could win, and the produced tables are
        // identical either way.
        let mut span = span_in(trace, phase::INTERNING);
        let nodes = graph.nodes();
        let mut intern = opts.intern && nodes.len() >= opts.intern_min_nodes;
        // "Attempted" is the *initial* decision: a probe-limit abandonment
        // below still measured a real (near-zero) hit rate.
        let intern_attempted = intern;
        let mut node_class = Vec::with_capacity(nodes.len());
        let mut layer_reps: Vec<NodeId> = Vec::new();
        if intern {
            let mut classes: FxHashMap<NodeKey, u32> = FxHashMap::default();
            for (i, n) in nodes.iter().enumerate() {
                if i >= INTERN_PROBE_LIMIT && layer_reps.len() == i {
                    // No hit in the whole prefix: stop keying, assign the
                    // rest fresh classes.
                    for j in i..nodes.len() {
                        node_class.push(layer_reps.len() as u32);
                        layer_reps.push(NodeId(j as u32));
                    }
                    intern = false;
                    break;
                }
                let next = layer_reps.len() as u32;
                let class = *classes.entry(node_key(n)).or_insert_with(|| {
                    layer_reps.push(NodeId(i as u32));
                    next
                });
                node_class.push(class);
            }
        } else {
            for i in 0..nodes.len() {
                node_class.push(i as u32);
                layer_reps.push(NodeId(i as u32));
            }
        }
        let edges = graph.edges();
        let mut edge_class = Vec::with_capacity(edges.len());
        let mut edge_reps: Vec<EdgeId> = Vec::new();
        if intern {
            let mut classes: FxHashMap<(u32, u32, u32), u32> = FxHashMap::default();
            for (i, e) in edges.iter().enumerate() {
                let key = (
                    node_class[e.src.index()],
                    node_class[e.dst.index()],
                    e.dst_slot,
                );
                let next = edge_reps.len() as u32;
                let class = *classes.entry(key).or_insert_with(|| {
                    edge_reps.push(EdgeId(i as u32));
                    next
                });
                edge_class.push(class);
            }
        } else {
            for i in 0..edges.len() {
                edge_class.push(i as u32);
                edge_reps.push(EdgeId(i as u32));
            }
        }
        span.arg("nodes", nodes.len());
        span.arg("unique_layer_tables", layer_reps.len());
        span.arg("edges", edges.len());
        span.arg("unique_edge_tables", edge_reps.len());
        drop(span);

        // Phase 2 — configuration enumeration, once per layer class.
        let mut span = span_in(trace, phase::ENUMERATION);
        let rep_configs: Vec<Vec<Config>> =
            map_maybe_par(layer_reps.clone(), opts.parallel, |v| configs_for(v));
        span.arg("tables", rep_configs.len());
        span.arg(
            "configs",
            rep_configs.iter().map(Vec::len).sum::<usize>() as u64,
        );
        drop(span);

        // Phase 3 — cost-table fill: layer-cost vectors, then edge
        // transfer matrices over the enumerated configuration lists.
        let mut span = span_in(trace, phase::TABLE_BUILD);
        let layer_pool: Vec<LayerEntry> = map_maybe_par(
            layer_reps.into_iter().zip(rep_configs).collect(),
            opts.parallel,
            |(v, configs)| {
                let n = graph.node(v);
                let costs = configs
                    .iter()
                    .map(|c| mesh_layer_cost(n, c, mesh))
                    .collect();
                let mem = configs
                    .iter()
                    .map(|c| crate::memory::config_memory_bytes(n, c))
                    .collect();
                LayerEntry {
                    configs,
                    costs,
                    mem,
                }
            },
        );
        let edge_pool: Vec<EdgeTable> = map_maybe_par(edge_reps, opts.parallel, |eid| {
            let e = graph.edge(eid);
            let src = graph.node(e.src);
            let dst = graph.node(e.dst);
            let cu_list = &layer_pool[node_class[e.src.index()] as usize].configs;
            let cv_list = &layer_pool[node_class[e.dst.index()] as usize].configs;
            let mut costs = Vec::with_capacity(cu_list.len() * cv_list.len());
            for cu in cu_list {
                for cv in cv_list {
                    costs.push(mesh_transfer_cost(
                        src,
                        cu,
                        dst,
                        e.dst_slot as usize,
                        cv,
                        mesh,
                    ));
                }
            }
            EdgeTable {
                k_dst: cv_list.len() as u32,
                costs,
            }
        });
        if span.is_some() {
            let entries = layer_pool.iter().map(|t| t.costs.len()).sum::<usize>()
                + edge_pool.iter().map(|t| t.costs.len()).sum::<usize>();
            span.arg("entries", entries);
            span.arg("bytes", (entries * std::mem::size_of::<f64>()) as u64);
        }
        drop(span);

        Self {
            rule,
            r,
            mesh: mesh.clone(),
            node_class,
            layer_pool,
            edge_class,
            edge_pool,
            intern_attempted,
        }
    }

    /// The configuration rule the tables were built under.
    pub fn rule(&self) -> &ConfigRule {
        &self.rule
    }

    /// The innermost-axis FLOP-to-byte ratio `r` — on flat meshes, the
    /// scalar machine balance the historical model used everywhere.
    pub fn flop_byte_ratio(&self) -> f64 {
        self.r
    }

    /// The device mesh the tables were costed against (a flat single-axis
    /// mesh when built from a scalar [`MachineSpec`]).
    pub fn mesh(&self) -> &DeviceMesh {
        &self.mesh
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.node_class.len()
    }

    /// Whether the tables cover no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_class.is_empty()
    }

    /// How much work interning shared (see [`InternStats::hit_rate`]).
    pub fn intern_stats(&self) -> InternStats {
        InternStats {
            attempted: self.intern_attempted,
            nodes: self.node_class.len(),
            unique_layer_tables: self.layer_pool.len(),
            edges: self.edge_class.len(),
            unique_edge_tables: self.edge_pool.len(),
        }
    }

    #[inline]
    fn layer_entry(&self, v: NodeId) -> &LayerEntry {
        &self.layer_pool[self.node_class[v.index()] as usize]
    }

    /// `|C(v)|` — the number of valid configurations of node `v`.
    pub fn k(&self, v: NodeId) -> usize {
        self.layer_entry(v).configs.len()
    }

    /// The largest `|C(v)|` over all nodes (the paper's `K`).
    pub fn max_k(&self) -> usize {
        self.layer_pool
            .iter()
            .map(|e| e.configs.len())
            .max()
            .unwrap_or(0)
    }

    /// The configuration list of node `v`.
    pub fn configs_of(&self, v: NodeId) -> &[Config] {
        &self.layer_entry(v).configs
    }

    /// The configuration of node `v` with local id `c`.
    pub fn config(&self, v: NodeId, c: u16) -> &Config {
        &self.layer_entry(v).configs[c as usize]
    }

    /// `t_l(v, C_c, r)` in FLOPs.
    #[inline]
    pub fn layer_cost(&self, v: NodeId, c: u16) -> f64 {
        self.layer_entry(v).costs[c as usize]
    }

    /// `r · t_x` for edge `e` under configuration ids `(cu, cv)` of its
    /// endpoints.
    #[inline]
    pub fn edge_cost(&self, e: EdgeId, cu: u16, cv: u16) -> f64 {
        let t = &self.edge_pool[self.edge_class[e.index()] as usize];
        t.costs[cu as usize * t.k_dst as usize + cv as usize]
    }

    /// Per-device memory charge in bytes of node `v` under its local
    /// configuration id `c` (see [`crate::config_memory_bytes`]).
    #[inline]
    pub fn memory_bytes(&self, v: NodeId, c: u16) -> u64 {
        self.layer_entry(v).mem[c as usize]
    }

    /// The contiguous per-configuration memory row of node `v`:
    /// `row[c] == memory_bytes(v, c)` for every `c < k(v)`.
    #[inline]
    pub fn memory_row(&self, v: NodeId) -> &[u64] {
        &self.layer_entry(v).mem
    }

    /// Peak per-device memory of a complete strategy given as per-node
    /// configuration ids: the sum of every node's charge (the additive
    /// model the frontier DP optimizes).
    pub fn strategy_memory_bytes(&self, ids: &[u16]) -> u64 {
        assert_eq!(ids.len(), self.node_class.len());
        ids.iter()
            .enumerate()
            .map(|(v, &c)| self.memory_bytes(NodeId(v as u32), c))
            .sum()
    }

    /// Verify every layer and edge cost is finite. A hostile or
    /// miscalibrated [`MachineSpec`] (zero/NaN bandwidth) yields NaN or
    /// infinite table entries that would silently poison the dominance
    /// prune (`total_cmp` sorts NaN largest, `fold(INFINITY, min)` keeps
    /// it) and the DP argmin — reject them loudly at build time instead.
    pub fn check_finite(&self) -> Result<(), NonFiniteCost> {
        for (class, entry) in self.layer_pool.iter().enumerate() {
            if let Some(c) = entry.costs.iter().position(|x| !x.is_finite()) {
                return Err(NonFiniteCost {
                    kind: "layer",
                    class,
                    index: c,
                    value: entry.costs[c],
                });
            }
        }
        for (class, table) in self.edge_pool.iter().enumerate() {
            if let Some(i) = table.costs.iter().position(|x| !x.is_finite()) {
                return Err(NonFiniteCost {
                    kind: "edge",
                    class,
                    index: i,
                    value: table.costs[i],
                });
            }
        }
        Ok(())
    }

    /// The contiguous per-configuration layer-cost row of node `v`:
    /// `row[c] == layer_cost(v, c)` for every `c < k(v)`. Lets the DP's
    /// tiled kernel hoist the row once per chunk instead of re-resolving
    /// the class indirection per entry.
    #[inline]
    pub fn layer_cost_row(&self, v: NodeId) -> &[f64] {
        &self.layer_entry(v).costs
    }

    /// The dense transfer matrix of edge `e` plus its row length:
    /// `(matrix, k_dst)` with `matrix[cu * k_dst + cv] == edge_cost(e, cu,
    /// cv)` and `matrix.len() == k(src) * k_dst`. The DP's tiled kernel
    /// packs rows (or transposed columns) of this into panel-major scratch.
    #[inline]
    pub fn edge_cost_matrix(&self, e: EdgeId) -> (&[f64], usize) {
        let t = &self.edge_pool[self.edge_class[e.index()] as usize];
        (&t.costs, t.k_dst as usize)
    }

    /// Evaluate `F(G, φ)` for a strategy given as per-node configuration
    /// ids, using only the precomputed tables. Must agree exactly with
    /// [`crate::evaluate`] on the corresponding [`Strategy`].
    pub fn evaluate_ids(&self, graph: &Graph, ids: &[u16]) -> f64 {
        assert_eq!(ids.len(), graph.len());
        let mut total = 0.0;
        for v in graph.node_ids() {
            total += self.layer_cost(v, ids[v.index()]);
        }
        for (i, e) in graph.edges().iter().enumerate() {
            total += self.edge_cost(EdgeId(i as u32), ids[e.src.index()], ids[e.dst.index()]);
        }
        total
    }

    /// Convert per-node configuration ids into a [`Strategy`].
    pub fn ids_to_strategy(&self, ids: &[u16]) -> Strategy {
        assert_eq!(ids.len(), self.node_class.len());
        Strategy::new(
            ids.iter()
                .enumerate()
                .map(|(v, &c)| self.layer_entry(NodeId(v as u32)).configs[c as usize])
                .collect(),
        )
    }

    /// Find the configuration ids of a [`Strategy`]; `None` if any node's
    /// configuration is not in its enumerated list.
    pub fn strategy_to_ids(&self, strategy: &Strategy) -> Option<Vec<u16>> {
        if strategy.len() != self.node_class.len() {
            return None;
        }
        strategy
            .configs()
            .iter()
            .enumerate()
            .map(|(v, cfg)| {
                self.configs_of(NodeId(v as u32))
                    .iter()
                    .position(|c| c == cfg)
                    .map(|i| i as u16)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::evaluate;
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn fc_chain(k: usize) -> Graph {
        let mk = |name: &str, ins: usize| {
            let dims = vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 128, DimRole::Param),
                IterDim::new("c", 128, DimRole::Reduction),
            ];
            Node {
                name: name.into(),
                op: OpKind::FullyConnected,
                iter_space: dims,
                inputs: (0..ins)
                    .map(|_| TensorRef::new(vec![0, 2], vec![64, 128]))
                    .collect(),
                output: TensorRef::new(vec![0, 1], vec![64, 128]),
                params: vec![TensorRef::new(vec![1, 2], vec![128, 128])],
            }
        };
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..k)
            .map(|i| b.add_node(mk(&format!("fc{i}"), usize::from(i > 0))))
            .collect();
        for w in ids.windows(2) {
            b.connect(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn tables_match_direct_evaluation_on_all_pairs() {
        let g = fc_chain(2);
        let t = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let r = t.flop_byte_ratio();
        for cu in 0..t.k(NodeId(0)) as u16 {
            for cv in 0..t.k(NodeId(1)) as u16 {
                let ids = vec![cu, cv];
                let direct = evaluate(&g, &t.ids_to_strategy(&ids), r);
                let tabled = t.evaluate_ids(&g, &ids);
                assert!(
                    (direct - tabled).abs() <= 1e-9 * direct.abs().max(1.0),
                    "mismatch at ({cu},{cv}): {direct} vs {tabled}"
                );
            }
        }
    }

    #[test]
    fn strategy_id_roundtrip() {
        let g = fc_chain(3);
        let t = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        let ids = vec![0u16, (t.k(NodeId(1)) - 1) as u16, 1u16];
        let s = t.ids_to_strategy(&ids);
        assert_eq!(t.strategy_to_ids(&s), Some(ids));
    }

    #[test]
    fn unknown_config_is_rejected() {
        let g = fc_chain(1);
        let t = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        // all-ones uses 1 device; rule requires all 8 → not enumerated
        let s = Strategy::sequential(&g);
        assert_eq!(t.strategy_to_ids(&s), None);
    }

    #[test]
    fn k_reflects_enumeration() {
        let g = fc_chain(1);
        let t = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        assert_eq!(t.k(NodeId(0)), 10); // pow-2 compositions of 8 over 3 dims
        assert_eq!(t.max_k(), 10);
    }

    #[test]
    fn edge_cost_lookup_matches_formula() {
        let g = fc_chain(2);
        let t = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let r = t.flop_byte_ratio();
        let cu = 0u16;
        let cv = 3u16;
        let expect = r * crate::transfer::transfer_bytes(
            g.node(NodeId(0)),
            t.config(NodeId(0), cu),
            g.node(NodeId(1)),
            0,
            t.config(NodeId(1), cv),
        );
        assert_eq!(t.edge_cost(EdgeId(0), cu, cv), expect);
    }

    /// Interning options with the size gate disabled (unit graphs here are
    /// all below the default `intern_min_nodes`).
    fn always_intern() -> TableOptions {
        TableOptions {
            intern_min_nodes: 0,
            ..TableOptions::default()
        }
    }

    #[test]
    fn interning_shares_repeated_structures() {
        // fc1..fc4 are structurally identical (fc0 differs: no input
        // tensor), and the three interior edges share one class.
        let g = fc_chain(5);
        let t = CostTables::build_with(
            &g,
            ConfigRule::new(4),
            &MachineSpec::test_machine(),
            &always_intern(),
        );
        let s = t.intern_stats();
        assert_eq!(s.nodes, 5);
        assert_eq!(s.unique_layer_tables, 2);
        assert_eq!(s.edges, 4);
        // Edge fc0→fc1 (src class differs) vs the identical fc_i→fc_{i+1}.
        assert_eq!(s.unique_edge_tables, 2);
        assert!(s.hit_rate() > 0.5, "hit rate {}", s.hit_rate());
    }

    #[test]
    fn interned_and_uninterned_tables_are_bit_identical() {
        let g = fc_chain(4);
        let rule = ConfigRule::new(8);
        let m = MachineSpec::test_machine();
        let interned = CostTables::build_with(&g, rule, &m, &always_intern());
        let plain = CostTables::build_with(
            &g,
            rule,
            &m,
            &TableOptions {
                intern: false,
                parallel: false,
                ..TableOptions::default()
            },
        );
        assert_eq!(plain.intern_stats().hit_rate(), 0.0);
        for v in g.node_ids() {
            assert_eq!(interned.k(v), plain.k(v));
            assert_eq!(interned.configs_of(v), plain.configs_of(v));
            for c in 0..interned.k(v) as u16 {
                assert_eq!(
                    interned.layer_cost(v, c).to_bits(),
                    plain.layer_cost(v, c).to_bits()
                );
            }
        }
        for (i, e) in g.edges().iter().enumerate() {
            let eid = EdgeId(i as u32);
            for cu in 0..interned.k(e.src) as u16 {
                for cv in 0..interned.k(e.dst) as u16 {
                    assert_eq!(
                        interned.edge_cost(eid, cu, cv).to_bits(),
                        plain.edge_cost(eid, cu, cv).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn node_names_do_not_affect_interning() {
        let mut b = GraphBuilder::new();
        let mk = |name: &str| {
            let mut n = fc_chain(1).nodes()[0].clone();
            n.name = name.into();
            n
        };
        b.add_node(mk("alpha"));
        b.add_node(mk("a completely different name"));
        let g = b.build().unwrap();
        let t = CostTables::build_with(
            &g,
            ConfigRule::new(4),
            &MachineSpec::test_machine(),
            &always_intern(),
        );
        assert_eq!(t.intern_stats().unique_layer_tables, 1);
    }

    #[test]
    fn small_graphs_skip_interning_by_default() {
        // Below `intern_min_nodes`, the default build produces one table
        // per node/edge (identical values, no keying overhead).
        let g = fc_chain(5);
        let t = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let s = t.intern_stats();
        assert_eq!(s.unique_layer_tables, s.nodes);
        assert_eq!(s.unique_edge_tables, s.edges);
        assert_eq!(s.hit_rate(), 0.0);
        // ... and the tables match an explicitly interned build entry-wise.
        let interned = CostTables::build_with(
            &g,
            ConfigRule::new(4),
            &MachineSpec::test_machine(),
            &always_intern(),
        );
        for v in g.node_ids() {
            assert_eq!(t.configs_of(v), interned.configs_of(v));
            for c in 0..t.k(v) as u16 {
                assert_eq!(
                    t.layer_cost(v, c).to_bits(),
                    interned.layer_cost(v, c).to_bits()
                );
            }
        }
    }

    #[test]
    fn attempted_distinguishes_skipped_from_measured_zero() {
        let g = fc_chain(5);
        let m = MachineSpec::test_machine();
        // Size gate skips interning (5 < intern_min_nodes): not attempted.
        let gated = CostTables::build(&g, ConfigRule::new(4), &m);
        assert!(!gated.intern_stats().attempted);
        assert_eq!(gated.intern_stats().hit_rate_opt(), None);
        // Explicitly disabled: not attempted either.
        let off = CostTables::build_with(
            &g,
            ConfigRule::new(4),
            &m,
            &TableOptions {
                intern: false,
                ..always_intern()
            },
        );
        assert!(!off.intern_stats().attempted);
        // Forced on: attempted, with a measured (here positive) rate.
        let on = CostTables::build_with(&g, ConfigRule::new(4), &m, &always_intern());
        let s = on.intern_stats();
        assert!(s.attempted);
        assert_eq!(s.hit_rate_opt(), Some(s.hit_rate()));
        assert!(s.hit_rate() > 0.0);
    }

    #[test]
    fn panel_accessors_match_scalar_lookups() {
        let g = fc_chain(3);
        let t = CostTables::build_with(
            &g,
            ConfigRule::new(8),
            &MachineSpec::test_machine(),
            &always_intern(),
        );
        for v in g.node_ids() {
            let row = t.layer_cost_row(v);
            assert_eq!(row.len(), t.k(v));
            for c in 0..t.k(v) as u16 {
                assert_eq!(row[c as usize].to_bits(), t.layer_cost(v, c).to_bits());
            }
        }
        for (i, e) in g.edges().iter().enumerate() {
            let eid = EdgeId(i as u32);
            let (mat, k_dst) = t.edge_cost_matrix(eid);
            assert_eq!(k_dst, t.k(e.dst));
            assert_eq!(mat.len(), t.k(e.src) * k_dst);
            for cu in 0..t.k(e.src) as u16 {
                for cv in 0..k_dst as u16 {
                    assert_eq!(
                        mat[cu as usize * k_dst + cv as usize].to_bits(),
                        t.edge_cost(eid, cu, cv).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn memory_rows_match_the_direct_model() {
        let g = fc_chain(3);
        let t = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        for v in g.node_ids() {
            let row = t.memory_row(v);
            assert_eq!(row.len(), t.k(v));
            for c in 0..t.k(v) as u16 {
                let direct = crate::memory::config_memory_bytes(g.node(v), t.config(v, c));
                assert_eq!(t.memory_bytes(v, c), direct);
                assert_eq!(row[c as usize], direct);
            }
        }
        let ids: Vec<u16> = g.node_ids().map(|_| 0).collect();
        assert_eq!(
            t.strategy_memory_bytes(&ids),
            g.node_ids().map(|v| t.memory_bytes(v, 0)).sum::<u64>()
        );
    }

    #[test]
    fn non_finite_costs_are_rejected_by_check_finite() {
        // A zero-bandwidth machine yields r = ∞, so any config with
        // nonzero communication produces an infinite layer cost; NaN
        // arises from ∞·0 in edge entries. Before check_finite existed,
        // these silently poisoned the dominance prune and the DP argmin.
        let g = fc_chain(2);
        let hostile = MachineSpec {
            name: "hostile".to_string(),
            peak_flops: 1.0,
            link_bandwidth: 0.0,
            internode_bandwidth: 0.0,
        };
        let t = CostTables::build(&g, ConfigRule::new(8), &hostile);
        let err = t.check_finite().expect_err("NaN/∞ table passed the check");
        assert!(!err.value.is_finite());
        assert!(err.to_string().contains("non-finite"));
        // ... while a sane machine passes.
        let ok = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        assert!(ok.check_finite().is_ok());
    }

    #[test]
    fn space_built_tables_match_enumerating_build() {
        let g = fc_chain(3);
        let rule = ConfigRule::new(8);
        let m = MachineSpec::test_machine();
        let space = crate::config::ConfigSpace::build(&g, &rule);
        let from_space = CostTables::build_mesh_with_space(
            &g,
            rule,
            &DeviceMesh::flat(&m),
            &space,
            &TableOptions::default(),
        );
        let direct = CostTables::build(&g, rule, &m);
        for v in g.node_ids() {
            assert_eq!(from_space.configs_of(v), direct.configs_of(v));
            for c in 0..direct.k(v) as u16 {
                assert_eq!(
                    from_space.layer_cost(v, c).to_bits(),
                    direct.layer_cost(v, c).to_bits()
                );
            }
        }
        for (i, e) in g.edges().iter().enumerate() {
            let eid = EdgeId(i as u32);
            for cu in 0..direct.k(e.src) as u16 {
                for cv in 0..direct.k(e.dst) as u16 {
                    assert_eq!(
                        from_space.edge_cost(eid, cu, cv).to_bits(),
                        direct.edge_cost(eid, cu, cv).to_bits()
                    );
                }
            }
        }
    }
}
