//! Strategy export.
//!
//! PaSE's output is a per-layer sharding decision; "frameworks such as
//! GShard can take user-specified parallelization strategies, such as the
//! ones computed by our approach, and automatically perform efficient
//! device assignment by simply aligning the sharding decisions of adjacent
//! layers" (§II). This module serializes a [`Strategy`] into a stable JSON
//! document of exactly that shape: one annotation per layer with the
//! iteration-dimension names, extents, and split factors — everything a
//! Mesh-TF/GShard-style runtime needs to materialize the device meshes.

use crate::strategy::Strategy;
use pase_graph::Graph;
use std::fmt::Write;

/// RFC 8259 string escaping (quotes, backslashes, and *all* control
/// characters — a node name containing `\n` or `\t` must still produce a
/// valid JSON document).
fn escape(s: &str) -> String {
    pase_obs::json::escape(s)
}

/// Serialize `strategy` as a GShard-style JSON sharding specification.
///
/// ```json
/// {
///   "devices": 8,
///   "layers": [
///     {"name": "fc0", "op": "fc", "dims": ["b","n","c"],
///      "sizes": [64,4096,1024], "splits": [1,4,2]},
///     ...
///   ]
/// }
/// ```
pub fn to_sharding_json(graph: &Graph, strategy: &Strategy) -> String {
    to_sharding_json_with(graph, strategy, &[])
}

/// [`to_sharding_json`] with additional top-level `(key, raw JSON value)`
/// entries injected before `"devices"` — the CLI uses this to embed the
/// machine-readable search report alongside the sharding spec. Importers
/// ([`from_sharding_json`]) ignore unknown keys, so the document remains a
/// valid input for `pase simulate`.
pub fn to_sharding_json_with(graph: &Graph, strategy: &Strategy, extra: &[(&str, &str)]) -> String {
    assert_eq!(
        strategy.len(),
        graph.len(),
        "strategy must cover every node"
    );
    let mut out = String::with_capacity(128 * graph.len());
    out.push_str("{\n");
    for (key, value) in extra {
        let _ = write!(out, "  \"{}\": {value},\n", escape(key));
    }
    let devices = strategy.max_devices_used();
    let _ = write!(out, "  \"devices\": {devices},\n  \"layers\": [\n");
    for (idx, (id, node)) in graph.iter().enumerate() {
        let cfg = strategy.config(id);
        let dims: Vec<String> = node
            .iter_space
            .iter()
            .map(|d| format!("\"{}\"", escape(d.name)))
            .collect();
        let sizes: Vec<String> = node.iter_space.iter().map(|d| d.size.to_string()).collect();
        let splits: Vec<String> = cfg.splits().iter().map(|c| c.to_string()).collect();
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"op\": \"{}\", \"dims\": [{}], \"sizes\": [{}], \"splits\": [{}]}}",
            escape(&node.name),
            node.op.tag(),
            dims.join(","),
            sizes.join(","),
            splits.join(",")
        );
        out.push_str(if idx + 1 < graph.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a sharding specification produced by [`to_sharding_json`] back
/// into a [`Strategy`] for `graph`. Layers are matched **by name**, so the
/// file may list them in any order; every graph layer must be covered and
/// split counts must match the layer's iteration-space rank.
pub fn from_sharding_json(graph: &Graph, json: &str) -> Result<Strategy, String> {
    let value = json::parse(json)?;
    let layers = value
        .get("layers")
        .and_then(json::Value::as_array)
        .ok_or("missing \"layers\" array")?;
    let mut by_name = std::collections::HashMap::new();
    for layer in layers {
        let name = layer
            .get("name")
            .and_then(json::Value::as_str)
            .ok_or("layer without \"name\"")?;
        let splits: Vec<u32> = layer
            .get("splits")
            .and_then(json::Value::as_array)
            .ok_or_else(|| format!("layer '{name}' without \"splits\""))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or_else(|| format!("layer '{name}': non-integer split"))
            })
            .collect::<Result<_, _>>()?;
        if by_name.insert(name.to_string(), splits).is_some() {
            return Err(format!("duplicate layer '{name}' in spec"));
        }
    }
    let mut configs = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        let splits = by_name
            .remove(&node.name)
            .ok_or_else(|| format!("spec does not cover layer '{}'", node.name))?;
        if splits.len() != node.rank() {
            return Err(format!(
                "layer '{}': {} splits for a rank-{} iteration space",
                node.name,
                splits.len(),
                node.rank()
            ));
        }
        configs.push(crate::config::Config::new(&splits));
    }
    Ok(Strategy::new(configs))
}

// The JSON subset parser these importers rely on is shared workspace-wide
// (sharding specs here, cache entries and the planner-service wire protocol
// in `pase-serve`) and lives in [`pase_obs::json`].
use pase_obs::json;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let fc = Node {
            name: "fc \"quoted\"".into(),
            op: OpKind::FullyConnected,
            iter_space: vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 128, DimRole::Param),
            ],
            inputs: vec![],
            output: TensorRef::new(vec![0, 1], vec![64, 128]),
            params: vec![],
        };
        b.add_node(fc);
        b.build().unwrap()
    }

    #[test]
    fn json_contains_layer_annotations() {
        let g = tiny_graph();
        let s = Strategy::new(vec![Config::new(&[4, 2])]);
        let json = to_sharding_json(&g, &s);
        assert!(json.contains("\"devices\": 8"));
        assert!(json.contains("\"splits\": [4,2]"));
        assert!(json.contains("\"sizes\": [64,128]"));
        assert!(json.contains("\"dims\": [\"b\",\"n\"]"));
        assert!(json.contains("\"op\": \"fc\""));
    }

    #[test]
    fn names_are_escaped() {
        let g = tiny_graph();
        let s = Strategy::new(vec![Config::ones(2)]);
        let json = to_sharding_json(&g, &s);
        assert!(json.contains("fc \\\"quoted\\\""));
    }

    #[test]
    fn roundtrip_through_json() {
        let mut b = GraphBuilder::new();
        let mk = |name: &str| Node {
            name: name.into(),
            op: OpKind::FullyConnected,
            iter_space: vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 128, DimRole::Param),
                IterDim::new("c", 128, DimRole::Reduction),
            ],
            inputs: vec![],
            output: TensorRef::new(vec![0, 1], vec![64, 128]),
            params: vec![],
        };
        b.add_node(mk("fc0"));
        b.add_node(mk("fc1"));
        let g = b.build().unwrap();
        let s = Strategy::new(vec![Config::new(&[2, 4, 1]), Config::new(&[1, 1, 8])]);
        let json = to_sharding_json(&g, &s);
        let back = from_sharding_json(&g, &json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn import_rejects_missing_and_mismatched_layers() {
        let g = tiny_graph();
        assert!(from_sharding_json(&g, "{\"layers\": []}")
            .unwrap_err()
            .contains("does not cover"));
        let wrong_rank = "{\"layers\": [{\"name\": \"fc \\\"quoted\\\"\", \"splits\": [2]}]}";
        assert!(from_sharding_json(&g, wrong_rank)
            .unwrap_err()
            .contains("rank"));
    }

    #[test]
    fn import_rejects_malformed_json() {
        let g = tiny_graph();
        for bad in ["{", "[1,2", "{\"layers\": [}]}", "{\"layers\": 3}", ""] {
            assert!(from_sharding_json(&g, bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn control_characters_roundtrip() {
        // Node names with \n, \t, and raw control bytes used to produce
        // invalid JSON (only '"' and '\\' were escaped). The document must
        // now be RFC 8259-clean and parse back to the same strategy.
        let mut b = GraphBuilder::new();
        b.add_node(Node {
            name: "weird\n\tname \u{1}\u{7}".into(),
            op: OpKind::FullyConnected,
            iter_space: vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 128, DimRole::Param),
            ],
            inputs: vec![],
            output: TensorRef::new(vec![0, 1], vec![64, 128]),
            params: vec![],
        });
        let g = b.build().unwrap();
        let s = Strategy::new(vec![Config::new(&[2, 2])]);
        let json = to_sharding_json(&g, &s);
        // No raw control characters other than the newlines we emit as
        // layout may remain inside the document.
        assert!(!json.chars().any(|c| (c as u32) < 0x20 && c != '\n'));
        assert!(json.contains("\\n") && json.contains("\\t") && json.contains("\\u0001"));
        let back = from_sharding_json(&g, &json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parser_handles_unicode_and_floats() {
        // Multi-byte UTF-8 must survive parsing (the old byte-wise parser
        // mangled it), and float/negative numbers must be accepted so a
        // search report can be embedded in the document.
        let v = json::parse("{\"λ名\": \"καλá\", \"x\": -1.5e2, \"n\": 7}").unwrap();
        assert_eq!(v.get("λ名").and_then(json::Value::as_str), Some("καλá"));
        assert_eq!(v.get("x").and_then(json::Value::as_f64), Some(-150.0));
        assert_eq!(v.get("n").and_then(json::Value::as_u64), Some(7));
        // Escape sequences including surrogate pairs.
        let s = json::parse("\"a\\u0041\\ud83d\\ude00\\n\\/\"").unwrap();
        assert_eq!(s.as_str(), Some("aA😀\n/"));
        // Malformed escapes are rejected, not mangled.
        for bad in ["\"\\u12\"", "\"\\ud83d\"", "\"\\q\"", "\"\\ud83d\\u0041\""] {
            assert!(json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn extra_keys_are_injected_and_ignored_by_import() {
        let g = tiny_graph();
        let s = Strategy::new(vec![Config::new(&[4, 2])]);
        let json = to_sharding_json_with(&g, &s, &[("report", "{\"elapsed\": 0.25}")]);
        assert!(json.contains("\"report\": {\"elapsed\": 0.25}"));
        let back = from_sharding_json(&g, &json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn document_is_balanced() {
        let g = tiny_graph();
        let s = Strategy::new(vec![Config::ones(2)]);
        let json = to_sharding_json(&g, &s);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.ends_with("}\n"));
    }
}
