//! Strategy export.
//!
//! PaSE's output is a per-layer sharding decision; "frameworks such as
//! GShard can take user-specified parallelization strategies, such as the
//! ones computed by our approach, and automatically perform efficient
//! device assignment by simply aligning the sharding decisions of adjacent
//! layers" (§II). This module serializes a [`Strategy`] into a stable JSON
//! document of exactly that shape: one annotation per layer with the
//! iteration-dimension names, extents, and split factors — everything a
//! Mesh-TF/GShard-style runtime needs to materialize the device meshes.

use crate::strategy::Strategy;
use pase_graph::Graph;
use std::fmt::Write;

/// RFC 8259 string escaping (quotes, backslashes, and *all* control
/// characters — a node name containing `\n` or `\t` must still produce a
/// valid JSON document).
fn escape(s: &str) -> String {
    pase_obs::json::escape(s)
}

/// Serialize `strategy` as a GShard-style JSON sharding specification.
///
/// ```json
/// {
///   "devices": 8,
///   "layers": [
///     {"name": "fc0", "op": "fc", "dims": ["b","n","c"],
///      "sizes": [64,4096,1024], "splits": [1,4,2]},
///     ...
///   ]
/// }
/// ```
pub fn to_sharding_json(graph: &Graph, strategy: &Strategy) -> String {
    to_sharding_json_with(graph, strategy, &[])
}

/// [`to_sharding_json`] with additional top-level `(key, raw JSON value)`
/// entries injected before `"devices"` — the CLI uses this to embed the
/// machine-readable search report alongside the sharding spec. Importers
/// ([`from_sharding_json`]) ignore unknown keys, so the document remains a
/// valid input for `pase simulate`.
pub fn to_sharding_json_with(graph: &Graph, strategy: &Strategy, extra: &[(&str, &str)]) -> String {
    assert_eq!(
        strategy.len(),
        graph.len(),
        "strategy must cover every node"
    );
    let mut out = String::with_capacity(128 * graph.len());
    out.push_str("{\n");
    for (key, value) in extra {
        let _ = write!(out, "  \"{}\": {value},\n", escape(key));
    }
    let devices = strategy.max_devices_used();
    let _ = write!(out, "  \"devices\": {devices},\n  \"layers\": [\n");
    for (idx, (id, node)) in graph.iter().enumerate() {
        let cfg = strategy.config(id);
        let dims: Vec<String> = node
            .iter_space
            .iter()
            .map(|d| format!("\"{}\"", escape(d.name)))
            .collect();
        let sizes: Vec<String> = node.iter_space.iter().map(|d| d.size.to_string()).collect();
        let splits: Vec<String> = cfg.splits().iter().map(|c| c.to_string()).collect();
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"op\": \"{}\", \"dims\": [{}], \"sizes\": [{}], \"splits\": [{}]}}",
            escape(&node.name),
            node.op.tag(),
            dims.join(","),
            sizes.join(","),
            splits.join(",")
        );
        out.push_str(if idx + 1 < graph.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a sharding specification produced by [`to_sharding_json`] back
/// into a [`Strategy`] for `graph`. Layers are matched **by name**, so the
/// file may list them in any order; every graph layer must be covered and
/// split counts must match the layer's iteration-space rank.
pub fn from_sharding_json(graph: &Graph, json: &str) -> Result<Strategy, String> {
    let value = json::parse(json)?;
    let layers = value
        .get("layers")
        .and_then(json::Value::as_array)
        .ok_or("missing \"layers\" array")?;
    let mut by_name = std::collections::HashMap::new();
    for layer in layers {
        let name = layer
            .get("name")
            .and_then(json::Value::as_str)
            .ok_or("layer without \"name\"")?;
        let splits: Vec<u32> = layer
            .get("splits")
            .and_then(json::Value::as_array)
            .ok_or_else(|| format!("layer '{name}' without \"splits\""))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or_else(|| format!("layer '{name}': non-integer split"))
            })
            .collect::<Result<_, _>>()?;
        if by_name.insert(name.to_string(), splits).is_some() {
            return Err(format!("duplicate layer '{name}' in spec"));
        }
    }
    let mut configs = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        let splits = by_name
            .remove(&node.name)
            .ok_or_else(|| format!("spec does not cover layer '{}'", node.name))?;
        if splits.len() != node.rank() {
            return Err(format!(
                "layer '{}': {} splits for a rank-{} iteration space",
                node.name,
                splits.len(),
                node.rank()
            ));
        }
        configs.push(crate::config::Config::new(&splits));
    }
    Ok(Strategy::new(configs))
}

/// Minimal JSON subset parser (objects, arrays, strings with the full RFC
/// 8259 escape set, integer and float numbers) — a superset of the grammar
/// [`to_sharding_json_with`] emits, so strategies round-trip without an
/// external dependency even when node names contain control characters and
/// when a search report (with float fields) is embedded in the document.
mod json {
    #[derive(Debug, PartialEq)]
    pub enum Value {
        Object(Vec<(String, Value)>),
        Array(Vec<Value>),
        Str(String),
        Num(u64),
        Float(f64),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        #[cfg_attr(not(test), allow(dead_code))]
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n as f64),
                Value::Float(x) => Some(*x),
                _ => None,
            }
        }
    }

    pub fn parse(src: &str) -> Result<Value, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && b[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => string(b, pos).map(Value::Str),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            other => Err(format!(
                "unexpected {:?} at byte {pos}",
                other.map(|&c| c as char)
            )),
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut pairs = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            expect(b, pos, b':')?;
            pairs.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    /// Parse the four hex digits of a `\uXXXX` escape.
    fn hex4(b: &[u8], pos: &mut usize) -> Result<u16, String> {
        let digits = b
            .get(*pos..*pos + 4)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
        let v =
            u16::from_str_radix(digits, 16).map_err(|_| format!("bad \\u escape at byte {pos}"))?;
        *pos += 4;
        Ok(v)
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        // Unescaped spans are copied as byte slices, so multi-byte UTF-8
        // sequences survive intact (byte-at-a-time `c as char` would not).
        let mut run = *pos;
        let flush = |out: &mut String, run: usize, end: usize| -> Result<(), String> {
            out.push_str(std::str::from_utf8(&b[run..end]).map_err(|_| "invalid UTF-8 in string")?);
            Ok(())
        };
        while let Some(&c) = b.get(*pos) {
            match c {
                b'"' => {
                    flush(&mut out, run, *pos)?;
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    flush(&mut out, run, *pos)?;
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            *pos += 1;
                            let hi = hex4(b, pos)?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if b.get(*pos) != Some(&b'\\') || b.get(*pos + 1) != Some(&b'u') {
                                    return Err(format!("unpaired surrogate at byte {pos}"));
                                }
                                *pos += 2;
                                let lo = hex4(b, pos)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(format!("bad low surrogate at byte {pos}"));
                                }
                                0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00)
                            } else {
                                u32::from(hi)
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("bad code point at byte {pos}"))?,
                            );
                            run = *pos;
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                    run = *pos;
                }
                _ => *pos += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number bytes")?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Num(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let fc = Node {
            name: "fc \"quoted\"".into(),
            op: OpKind::FullyConnected,
            iter_space: vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 128, DimRole::Param),
            ],
            inputs: vec![],
            output: TensorRef::new(vec![0, 1], vec![64, 128]),
            params: vec![],
        };
        b.add_node(fc);
        b.build().unwrap()
    }

    #[test]
    fn json_contains_layer_annotations() {
        let g = tiny_graph();
        let s = Strategy::new(vec![Config::new(&[4, 2])]);
        let json = to_sharding_json(&g, &s);
        assert!(json.contains("\"devices\": 8"));
        assert!(json.contains("\"splits\": [4,2]"));
        assert!(json.contains("\"sizes\": [64,128]"));
        assert!(json.contains("\"dims\": [\"b\",\"n\"]"));
        assert!(json.contains("\"op\": \"fc\""));
    }

    #[test]
    fn names_are_escaped() {
        let g = tiny_graph();
        let s = Strategy::new(vec![Config::ones(2)]);
        let json = to_sharding_json(&g, &s);
        assert!(json.contains("fc \\\"quoted\\\""));
    }

    #[test]
    fn roundtrip_through_json() {
        let mut b = GraphBuilder::new();
        let mk = |name: &str| Node {
            name: name.into(),
            op: OpKind::FullyConnected,
            iter_space: vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 128, DimRole::Param),
                IterDim::new("c", 128, DimRole::Reduction),
            ],
            inputs: vec![],
            output: TensorRef::new(vec![0, 1], vec![64, 128]),
            params: vec![],
        };
        b.add_node(mk("fc0"));
        b.add_node(mk("fc1"));
        let g = b.build().unwrap();
        let s = Strategy::new(vec![Config::new(&[2, 4, 1]), Config::new(&[1, 1, 8])]);
        let json = to_sharding_json(&g, &s);
        let back = from_sharding_json(&g, &json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn import_rejects_missing_and_mismatched_layers() {
        let g = tiny_graph();
        assert!(from_sharding_json(&g, "{\"layers\": []}")
            .unwrap_err()
            .contains("does not cover"));
        let wrong_rank = "{\"layers\": [{\"name\": \"fc \\\"quoted\\\"\", \"splits\": [2]}]}";
        assert!(from_sharding_json(&g, wrong_rank)
            .unwrap_err()
            .contains("rank"));
    }

    #[test]
    fn import_rejects_malformed_json() {
        let g = tiny_graph();
        for bad in ["{", "[1,2", "{\"layers\": [}]}", "{\"layers\": 3}", ""] {
            assert!(from_sharding_json(&g, bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn control_characters_roundtrip() {
        // Node names with \n, \t, and raw control bytes used to produce
        // invalid JSON (only '"' and '\\' were escaped). The document must
        // now be RFC 8259-clean and parse back to the same strategy.
        let mut b = GraphBuilder::new();
        b.add_node(Node {
            name: "weird\n\tname \u{1}\u{7}".into(),
            op: OpKind::FullyConnected,
            iter_space: vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 128, DimRole::Param),
            ],
            inputs: vec![],
            output: TensorRef::new(vec![0, 1], vec![64, 128]),
            params: vec![],
        });
        let g = b.build().unwrap();
        let s = Strategy::new(vec![Config::new(&[2, 2])]);
        let json = to_sharding_json(&g, &s);
        // No raw control characters other than the newlines we emit as
        // layout may remain inside the document.
        assert!(!json.chars().any(|c| (c as u32) < 0x20 && c != '\n'));
        assert!(json.contains("\\n") && json.contains("\\t") && json.contains("\\u0001"));
        let back = from_sharding_json(&g, &json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parser_handles_unicode_and_floats() {
        // Multi-byte UTF-8 must survive parsing (the old byte-wise parser
        // mangled it), and float/negative numbers must be accepted so a
        // search report can be embedded in the document.
        let v = json::parse("{\"λ名\": \"καλá\", \"x\": -1.5e2, \"n\": 7}").unwrap();
        assert_eq!(v.get("λ名").and_then(json::Value::as_str), Some("καλá"));
        assert_eq!(v.get("x").and_then(json::Value::as_f64), Some(-150.0));
        assert_eq!(v.get("n").and_then(json::Value::as_u64), Some(7));
        // Escape sequences including surrogate pairs.
        let s = json::parse("\"a\\u0041\\ud83d\\ude00\\n\\/\"").unwrap();
        assert_eq!(s.as_str(), Some("aA😀\n/"));
        // Malformed escapes are rejected, not mangled.
        for bad in ["\"\\u12\"", "\"\\ud83d\"", "\"\\q\"", "\"\\ud83d\\u0041\""] {
            assert!(json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn extra_keys_are_injected_and_ignored_by_import() {
        let g = tiny_graph();
        let s = Strategy::new(vec![Config::new(&[4, 2])]);
        let json = to_sharding_json_with(&g, &s, &[("report", "{\"elapsed\": 0.25}")]);
        assert!(json.contains("\"report\": {\"elapsed\": 0.25}"));
        let back = from_sharding_json(&g, &json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn document_is_balanced() {
        let g = tiny_graph();
        let s = Strategy::new(vec![Config::ones(2)]);
        let json = to_sharding_json(&g, &s);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.ends_with("}\n"));
    }
}
