//! Machine descriptions.
//!
//! The cost function needs only two numbers per machine (PaSE §II): the
//! average peak floating-point rate `F` per device and the average
//! communication bandwidth `B` per link; their ratio `r = F/B` converts
//! communication bytes into FLOP-equivalent cost. The execution simulator
//! (`pase-sim`) consumes richer topology information, but builds it on top
//! of these profiles.

use serde::{Deserialize, Serialize};

/// Per-device compute and per-link communication characteristics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Profile name (reports / logs). Owned, so calibrated fits, wire
    /// requests, and `--machine-file` profiles can carry arbitrary names.
    pub name: String,
    /// Peak FLOP/s per device (`F`).
    pub peak_flops: f64,
    /// Intra-node per-link bandwidth in bytes/s (`B`) — the bandwidth the
    /// analytical model uses for `r`.
    pub link_bandwidth: f64,
    /// Inter-node per-link bandwidth in bytes/s (used by the simulator's
    /// hierarchical topology; the flat analytical model ignores it).
    pub internode_bandwidth: f64,
}

impl MachineSpec {
    /// FLOP-to-byte ratio `r = F/B`: how many FLOPs a device can execute in
    /// the time one byte crosses a link. The paper's "machine balance" is
    /// the inverse of this.
    pub fn flop_byte_ratio(&self) -> f64 {
        self.peak_flops / self.link_bandwidth
    }

    /// GeForce GTX 1080 Ti cluster profile (§IV-B system a): 8 GPUs per
    /// node, fully connected over PCIe *with* peer-to-peer access, nodes
    /// linked by InfiniBand. Relatively high machine balance.
    pub fn gtx1080ti() -> Self {
        Self {
            name: "1080ti".to_string(),
            peak_flops: 11.3e12,
            link_bandwidth: 12.0e9,
            internode_bandwidth: 6.0e9,
        }
    }

    /// GeForce RTX 2080 Ti cluster profile (§IV-B system b): PCIe without
    /// peer-to-peer access (traffic staged through host memory) and a
    /// higher compute peak — a very low machine balance, which is why the
    /// paper sees up to 4× gains over data parallelism there.
    pub fn rtx2080ti() -> Self {
        Self {
            name: "2080ti".to_string(),
            peak_flops: 13.4e12,
            link_bandwidth: 5.0e9,
            internode_bandwidth: 6.0e9,
        }
    }

    /// Conservative profile for a *heterogeneous* cluster (§V): "the peak
    /// FLOP and bandwidth, of the weakest computation node and
    /// communication link, respectively, are used to compute t_l and t_x,
    /// as they form the primary bottlenecks."
    pub fn heterogeneous(name: impl Into<String>, members: &[MachineSpec]) -> Self {
        assert!(!members.is_empty(), "need at least one member profile");
        let min = |f: fn(&MachineSpec) -> f64| members.iter().map(f).fold(f64::INFINITY, f64::min);
        Self {
            name: name.into(),
            peak_flops: min(|m| m.peak_flops),
            link_bandwidth: min(|m| m.link_bandwidth),
            internode_bandwidth: min(|m| m.internode_bandwidth),
        }
    }

    /// A neutral test machine with `r = 1000` and symmetric links.
    pub fn test_machine() -> Self {
        Self {
            name: "test".to_string(),
            peak_flops: 1.0e12,
            link_bandwidth: 1.0e9,
            internode_bandwidth: 1.0e9,
        }
    }

    /// The built-in profile registry, in presentation order.
    pub fn profiles() -> Vec<Self> {
        vec![Self::gtx1080ti(), Self::rtx2080ti(), Self::test_machine()]
    }

    /// Names of every registered profile — what the CLI and the planner
    /// service list in their unknown-machine errors.
    pub fn known_names() -> Vec<String> {
        Self::profiles().into_iter().map(|m| m.name).collect()
    }

    /// Resolve a cluster profile by its [`MachineSpec::name`] — the shared
    /// lookup behind the CLI's `--machine` flag and the planner service's
    /// `"machine"` request field.
    pub fn by_name(name: &str) -> Option<Self> {
        Self::profiles().into_iter().find(|m| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_byte_ratio_is_f_over_b() {
        let m = MachineSpec::test_machine();
        assert_eq!(m.flop_byte_ratio(), 1000.0);
    }

    #[test]
    fn rtx2080ti_has_lower_machine_balance_than_gtx1080ti() {
        // Lower balance = higher FLOP-to-byte ratio: communication is
        // relatively more expensive on the 2080Ti system.
        assert!(
            MachineSpec::rtx2080ti().flop_byte_ratio() > MachineSpec::gtx1080ti().flop_byte_ratio()
        );
    }

    #[test]
    fn heterogeneous_takes_the_weakest_of_everything() {
        let h = MachineSpec::heterogeneous(
            "mixed",
            &[MachineSpec::gtx1080ti(), MachineSpec::rtx2080ti()],
        );
        // weakest compute: 1080Ti's 11.3 TF; weakest link: 2080Ti's 5 GB/s
        assert_eq!(h.peak_flops, MachineSpec::gtx1080ti().peak_flops);
        assert_eq!(h.link_bandwidth, MachineSpec::rtx2080ti().link_bandwidth);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn heterogeneous_rejects_empty() {
        let _ = MachineSpec::heterogeneous("x", &[]);
    }

    #[test]
    fn profiles_have_positive_rates() {
        for m in [MachineSpec::gtx1080ti(), MachineSpec::rtx2080ti()] {
            assert!(m.peak_flops > 0.0);
            assert!(m.link_bandwidth > 0.0);
            assert!(m.internode_bandwidth > 0.0);
        }
    }

    #[test]
    fn registry_resolves_every_known_name() {
        for name in MachineSpec::known_names() {
            assert_eq!(MachineSpec::by_name(&name).unwrap().name, name);
        }
        assert!(MachineSpec::by_name("gtx9000").is_none());
        assert_eq!(
            MachineSpec::known_names().join(", "),
            "1080ti, 2080ti, test"
        );
    }
}
