//! Tensor shardings induced by parallelization configurations.
//!
//! Splitting iteration-space dimension `i` into `c_i` parts block-shards
//! every tensor dimension mapped to `i`, and replicates the tensor across
//! the splits of unmapped dimensions. These two derived quantities — the
//! per-tensor-dimension split vector and the replication degree — are all
//! the cost model needs to compute per-device volumes.

use crate::config::Config;
use pase_graph::TensorRef;

/// Per-tensor-dimension split factors induced by `cfg` through the tensor's
/// iteration-space map: element `t` is `c_{dims[t]}`.
pub fn tensor_sharding(tensor: &TensorRef, cfg: &Config) -> Vec<u32> {
    tensor.dims.iter().map(|&d| cfg.split(d as usize)).collect()
}

/// Number of device groups holding identical copies of the tensor: the
/// product of split factors of iteration dimensions *not* mapped by the
/// tensor.
pub fn replication(tensor: &TensorRef, cfg: &Config) -> u32 {
    let mut repl = 1u64;
    for i in 0..cfg.rank() {
        if !tensor.maps_dim(i as u32) {
            repl *= u64::from(cfg.split(i));
        }
    }
    repl.min(u64::from(u32::MAX)) as u32
}

/// Elements of one shard of the tensor under `cfg`: the total element count
/// divided by the product of the mapped split factors. Fractional results
/// are allowed (the model does not require divisibility; cost is averaged).
pub fn shard_elements(tensor: &TensorRef, cfg: &Config) -> f64 {
    let mut elems = tensor.elements();
    for &d in &tensor.dims {
        elems /= f64::from(cfg.split(d as usize));
    }
    elems
}

/// Bytes of one shard of the tensor under `cfg`.
pub fn shard_bytes(tensor: &TensorRef, cfg: &Config) -> f64 {
    shard_elements(tensor, cfg) * f64::from(tensor.elem_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Iteration space (b, n, c) with b=8, n=16, c=32; tensor maps vary.
    fn cfg() -> Config {
        Config::new(&[2, 4, 1])
    }

    #[test]
    fn sharding_follows_tensor_map() {
        // weight (n, c): dims [1, 2]
        let w = TensorRef::new(vec![1, 2], vec![16, 32]);
        assert_eq!(tensor_sharding(&w, &cfg()), vec![4, 1]);
    }

    #[test]
    fn replication_is_product_of_unmapped_splits() {
        let w = TensorRef::new(vec![1, 2], vec![16, 32]);
        assert_eq!(replication(&w, &cfg()), 2); // batch split replicates weights
        let out = TensorRef::new(vec![0, 1], vec![8, 16]);
        assert_eq!(replication(&out, &cfg()), 1); // c split is 1
        let act = TensorRef::new(vec![0], vec![8]);
        assert_eq!(replication(&act, &cfg()), 4); // n split replicates
    }

    #[test]
    fn shard_elements_divides_by_mapped_splits() {
        let w = TensorRef::new(vec![1, 2], vec![16, 32]);
        assert_eq!(shard_elements(&w, &cfg()), 512.0 / 4.0);
        assert_eq!(shard_bytes(&w, &cfg()), 512.0);
    }

    #[test]
    fn unsplit_tensor_is_whole() {
        let t = TensorRef::new(vec![2], vec![32]);
        assert_eq!(shard_elements(&t, &cfg()), 32.0);
        assert_eq!(replication(&t, &cfg()), 8); // 2 × 4
    }

    #[test]
    fn fully_mapped_tensor_is_never_replicated() {
        let t = TensorRef::new(vec![0, 1, 2], vec![8, 16, 32]);
        assert_eq!(replication(&t, &cfg()), 1);
        assert_eq!(shard_elements(&t, &cfg()), (8.0 * 16.0 * 32.0) / 8.0);
    }
}
