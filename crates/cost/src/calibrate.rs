//! Cost-model calibration (§V future work: "we plan to fine-tune the cost
//! model further ... to improve its accuracy").
//!
//! The flat model predicts a step time of `flops/F + bytes/B` for a
//! strategy whose per-device compute is `flops` and per-device
//! communication traffic is `bytes`. Given wall-clock observations of a few
//! strategies (e.g. short profiling runs on the real cluster, or the
//! hierarchical simulator standing in for one), the machine parameters
//! `(F, B)` that best explain them are the least-squares solution of the
//! linear system in `(1/F, 1/B)` — a closed-form 2×2 fit.

use crate::config::Config;
use crate::events::{layer_comm_events, layer_compute_flops};
use crate::machine::MachineSpec;
use crate::strategy::Strategy;
use crate::transfer::transfer_bytes;
use pase_graph::Graph;

/// One calibration sample: the flat model's two features plus the measured
/// step seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Observation {
    /// Per-device compute FLOPs of the strategy.
    pub compute_flops: f64,
    /// Per-device communication traffic in bytes (intra-layer + transfers).
    pub comm_bytes: f64,
    /// Measured step time in seconds.
    pub seconds: f64,
}

/// Extract the flat model's `(compute_flops, comm_bytes)` features for a
/// strategy — exactly the quantities `F(G, φ)` charges, so that
/// `F(G, φ) = compute + r · bytes`.
pub fn strategy_features(graph: &Graph, strategy: &Strategy) -> (f64, f64) {
    assert_eq!(strategy.len(), graph.len());
    let mut flops = 0.0;
    let mut bytes = 0.0;
    for (id, node) in graph.iter() {
        let cfg: &Config = strategy.config(id);
        flops += layer_compute_flops(node, cfg);
        bytes += layer_comm_events(node, cfg)
            .iter()
            .map(|e| e.traffic_bytes())
            .sum::<f64>();
    }
    for e in graph.edges() {
        bytes += transfer_bytes(
            graph.node(e.src),
            strategy.config(e.src),
            graph.node(e.dst),
            e.dst_slot as usize,
            strategy.config(e.dst),
        );
    }
    (flops, bytes)
}

/// Fit a [`MachineSpec`] to observations by least squares over
/// `t ≈ flops/F + bytes/B`.
///
/// Needs at least two observations with *different* compute/communication
/// ratios (e.g. a data-parallel and a parameter-parallel run) — otherwise
/// the system is singular and an error is returned. Fits with
/// non-physical (non-positive) rates are also rejected.
pub fn fit_machine(observations: &[Observation]) -> Result<MachineSpec, String> {
    if observations.len() < 2 {
        return Err("need at least two observations".to_string());
    }
    // Normal equations for t = a·x + b·y with x = 1/F, y = 1/B.
    let (mut saa, mut sab, mut sbb, mut sat, mut sbt) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for o in observations {
        saa += o.compute_flops * o.compute_flops;
        sab += o.compute_flops * o.comm_bytes;
        sbb += o.comm_bytes * o.comm_bytes;
        sat += o.compute_flops * o.seconds;
        sbt += o.comm_bytes * o.seconds;
    }
    let det = saa * sbb - sab * sab;
    // Condition check relative to the matrix scale.
    if det.abs() <= 1e-12 * (saa * sbb).max(1e-300) {
        return Err("observations are collinear: vary the compute/communication ratio".to_string());
    }
    let x = (sat * sbb - sbt * sab) / det; // 1/F
    let y = (saa * sbt - sab * sat) / det; // 1/B
    if x <= 0.0 || y <= 0.0 {
        return Err(format!("fit is non-physical: 1/F = {x:.3e}, 1/B = {y:.3e}"));
    }
    Ok(MachineSpec {
        name: "calibrated".to_string(),
        peak_flops: 1.0 / x,
        link_bandwidth: 1.0 / y,
        internode_bandwidth: 1.0 / y,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn fc_chain() -> Graph {
        let mk = |name: &str, ins: usize| {
            let dims = vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 512, DimRole::Param),
                IterDim::new("c", 512, DimRole::Reduction),
            ];
            Node {
                name: name.into(),
                op: OpKind::FullyConnected,
                iter_space: dims,
                inputs: (0..ins)
                    .map(|_| TensorRef::new(vec![0, 2], vec![64, 512]))
                    .collect(),
                output: TensorRef::new(vec![0, 1], vec![64, 512]),
                params: vec![TensorRef::new(vec![1, 2], vec![512, 512])],
            }
        };
        let mut b = GraphBuilder::new();
        let x = b.add_node(mk("fc1", 0));
        let y = b.add_node(mk("fc2", 1));
        b.connect(x, y);
        b.build().unwrap()
    }

    fn synth_observation(g: &Graph, s: &Strategy, machine: &MachineSpec) -> Observation {
        let (flops, bytes) = strategy_features(g, s);
        Observation {
            compute_flops: flops,
            comm_bytes: bytes,
            seconds: flops / machine.peak_flops + bytes / machine.link_bandwidth,
        }
    }

    #[test]
    fn recovers_the_generating_machine_exactly() {
        let g = fc_chain();
        let truth = MachineSpec::gtx1080ti();
        // Two strategies with very different compute/comm mixes.
        let dp = Strategy::new(vec![Config::new(&[8, 1, 1]); 2]);
        let pp = Strategy::new(vec![Config::new(&[1, 8, 1]), Config::new(&[1, 1, 8])]);
        let obs = vec![
            synth_observation(&g, &dp, &truth),
            synth_observation(&g, &pp, &truth),
        ];
        let fitted = fit_machine(&obs).expect("well-posed fit");
        assert!((fitted.peak_flops - truth.peak_flops).abs() <= 1e-3 * truth.peak_flops);
        assert!(
            (fitted.link_bandwidth - truth.link_bandwidth).abs() <= 1e-3 * truth.link_bandwidth
        );
    }

    #[test]
    fn collinear_observations_are_rejected() {
        let g = fc_chain();
        let truth = MachineSpec::test_machine();
        let dp = Strategy::new(vec![Config::new(&[8, 1, 1]); 2]);
        // The same strategy twice: identical feature ratios.
        let obs = vec![
            synth_observation(&g, &dp, &truth),
            synth_observation(&g, &dp, &truth),
        ];
        assert!(fit_machine(&obs).unwrap_err().contains("collinear"));
    }

    #[test]
    fn too_few_observations_are_rejected() {
        assert!(fit_machine(&[]).is_err());
        let one = Observation {
            compute_flops: 1.0,
            comm_bytes: 1.0,
            seconds: 1.0,
        };
        assert!(fit_machine(&[one]).is_err());
    }

    #[test]
    fn non_physical_fits_are_rejected() {
        // Times that *decrease* with both features force a negative rate.
        let obs = vec![
            Observation {
                compute_flops: 1e12,
                comm_bytes: 1e6,
                seconds: 0.001,
            },
            Observation {
                compute_flops: 1e9,
                comm_bytes: 1e9,
                seconds: 10.0,
            },
            Observation {
                compute_flops: 2e12,
                comm_bytes: 2e6,
                seconds: 0.0005,
            },
        ];
        assert!(fit_machine(&obs).is_err());
    }

    #[test]
    fn features_match_the_cost_function() {
        // compute + r·bytes must equal evaluate() exactly.
        let g = fc_chain();
        let s = Strategy::new(vec![Config::new(&[2, 2, 1]), Config::new(&[1, 4, 1])]);
        let (flops, bytes) = strategy_features(&g, &s);
        let r = 321.5;
        let direct = crate::strategy::evaluate(&g, &s, r);
        assert!((flops + r * bytes - direct).abs() <= 1e-9 * direct.abs().max(1.0));
    }
}
