//! Exact dominance pruning of the per-vertex configuration space.
//!
//! FindBestStrategy's complexity is `O(|V|² K^{M+1})` (§III-B): the
//! per-vertex configuration count `K` is the multiplicative lever on both
//! table sizes and fill work. Once [`CostTables`] are built, *every* cost
//! the DP will ever read is materialized, so configurations that can never
//! appear in an optimal strategy are decidable locally:
//!
//! > configuration `c` of vertex `v` is **dominated** by `c'` when
//! > `layer_cost(v, c') ≤ layer_cost(v, c)` and, for every edge incident to
//! > `v` and every configuration `d` of the neighbor,
//! > `edge_cost(c', d) ≤ edge_cost(c, d)` (row-wise for out-edges,
//! > column-wise for in-edges).
//!
//! ## Exactness
//!
//! Take any strategy `φ` with `φ(v) = c` where `c` is dominated by a kept
//! `c'`. Substituting `c'` for `c` changes only `v`'s layer term and `v`'s
//! incident edge terms, each of which is replaced by a `≤` value *whatever
//! the neighbors' configurations are* — including after the neighbors are
//! themselves pruned, since dominance is established against the neighbors'
//! full configuration lists. `F(G, φ') ≤ F(G, φ)` follows term-wise, and
//! because float addition is monotone in each argument it holds in f64
//! arithmetic too, not just over the reals. Applying the substitution to
//! every pruned vertex of an optimal strategy yields a strategy inside the
//! pruned space of no greater cost, so
//! `min over pruned space = min over full space` — bit-identical, as the
//! DP's sums are over the very same table entries.
//!
//! Candidates are scanned in `(layer cost, id)` order and each is kept
//! unless an *already-kept* candidate dominates it, so every pruned
//! configuration has a kept dominator and no `C(v)` ever becomes empty.
//!
//! ## ε-approximate mode
//!
//! With `epsilon > 0` the comparison relaxes to
//! `cost(c') ≤ (1 + ε) · cost(c)` per entry. This prunes more at very large
//! `p` but is **not exact**: each substitution can lose up to a `(1 + ε)`
//! factor per cost term, so the returned optimum is only guaranteed within
//! `(1 + ε)` of the true one. Exact mode (`ε = 0`) is the default.
//!
//! ## Sharing
//!
//! The dominance outcome for a vertex depends only on its layer-cost table
//! and its incident edge tables with orientation — i.e. on the vertex's
//! *pruning signature* `(layer class, sorted {(edge class, is-source)})`.
//! Structurally repeated vertices (InceptionV3 blocks, Transformer layers)
//! share signatures, so the per-signature dominance checks run once each,
//! rayon-parallel, and the compacted pool stays interned by signature.

use crate::tables::{CostTables, EdgeTable, LayerEntry};
use pase_graph::{Graph, NodeId};
use pase_obs::{phase, span_in, OptSpan, Trace};
use rayon::prelude::*;
use rustc_hash::FxHashMap;
use std::time::{Duration, Instant};

/// How [`PrunedTables::build`] prunes.
#[derive(Clone, Copy, Debug)]
pub struct PruneOptions {
    /// Dominance slack: `c'` dominates `c` when every cost entry satisfies
    /// `cost(c') ≤ (1 + epsilon) · cost(c)`. `0.0` (the default) is exact —
    /// the pruned optimum is bit-identical to the unpruned one. Positive
    /// values prune harder but only bound the optimum within `(1 + ε)`.
    pub epsilon: f64,
    /// Run the per-signature dominance checks in parallel.
    pub parallel: bool,
    /// Also require `memory_bytes(c') ≤ memory_bytes(c)` for `c'` to
    /// dominate `c` (always exact on the memory coordinate — ε applies to
    /// costs only). The frontier search needs this: a time-dominator with
    /// *more* memory could prune away a Pareto point. The memory-aware
    /// keep set is a superset of the time-only one, so the scalar min-time
    /// optimum stays bit-identical under either setting.
    pub memory_aware: bool,
}

impl Default for PruneOptions {
    fn default() -> Self {
        Self {
            epsilon: 0.0,
            parallel: true,
            memory_aware: false,
        }
    }
}

/// What a pruning pass removed (see [`PrunedTables::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PruneStats {
    /// `K = max_v |C(v)|` before pruning.
    pub k_before: usize,
    /// `K` after pruning.
    pub k_after: usize,
    /// `Σ_v |C(v)|` before pruning.
    pub configs_before: u64,
    /// `Σ_v |C(v)|` after pruning.
    pub configs_after: u64,
    /// Vertices that lost at least one configuration.
    pub nodes_pruned: usize,
    /// Wall-clock time of the pruning pass.
    pub elapsed: Duration,
}

impl PruneStats {
    /// Fraction of all configurations removed, `0.0` for an empty graph.
    pub fn pruned_fraction(&self) -> f64 {
        if self.configs_before == 0 {
            return 0.0;
        }
        1.0 - self.configs_after as f64 / self.configs_before as f64
    }
}

/// A dominance-pruned view of a [`CostTables`]: compacted configuration
/// lists, layer vectors, and edge matrices, plus the id back-mapping needed
/// to express search results in the original configuration space.
#[derive(Clone, Debug)]
pub struct PrunedTables {
    tables: CostTables,
    /// Per node: pruned local id → original local id (sorted ascending).
    keep: Vec<Vec<u16>>,
    stats: PruneStats,
}

/// A vertex's pruning signature: everything the dominance decision reads.
/// Vertices with equal signatures provably share a keep set.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Signature {
    layer_class: u32,
    /// Sorted, deduplicated incident `(edge class, vertex-is-source)`
    /// pairs. Duplicates impose the same constraint twice, so deduping is
    /// harmless and saves work.
    edges: Vec<(u32, bool)>,
}

/// Compute the kept (non-dominated) configuration ids for one signature.
/// `edge_views` pairs each incident edge table with the orientation flag.
fn keep_set(
    layer: &LayerEntry,
    edge_views: &[(&EdgeTable, bool)],
    epsilon: f64,
    memory_aware: bool,
) -> Vec<u16> {
    let k = layer.configs.len();
    if k <= 1 {
        return (0..k as u16).collect();
    }
    let t = 1.0 + epsilon;

    // Candidates in (layer cost, id) order: any dominator of `c` has layer
    // cost ≤ (1+ε)·layer(c), and scanning cheapest-first lets the kept
    // list double as the only dominator pool we ever need to consult.
    let mut order: Vec<u16> = (0..k as u16).collect();
    order.sort_by(|&a, &b| {
        layer.costs[a as usize]
            .total_cmp(&layer.costs[b as usize])
            .then(a.cmp(&b))
    });

    // Row/column dominance of candidate `a` over `b` on one edge view.
    let edge_dominates = |a: usize, b: usize, view: &(&EdgeTable, bool)| -> bool {
        let (table, is_src) = *view;
        let kd = table.k_dst as usize;
        if is_src {
            let ra = &table.costs[a * kd..(a + 1) * kd];
            let rb = &table.costs[b * kd..(b + 1) * kd];
            ra.iter().zip(rb).all(|(x, y)| *x <= t * *y)
        } else {
            let rows = table.costs.len() / kd;
            (0..rows).all(|r| table.costs[r * kd + a] <= t * table.costs[r * kd + b])
        }
    };

    let mut kept: Vec<u16> = Vec::with_capacity(k);
    for &c in &order {
        let dominated = kept.iter().any(|&c2| {
            layer.costs[c2 as usize] <= t * layer.costs[c as usize]
                && (!memory_aware || layer.mem[c2 as usize] <= layer.mem[c as usize])
                && edge_views
                    .iter()
                    .all(|view| edge_dominates(c2 as usize, c as usize, view))
        });
        if !dominated {
            kept.push(c);
        }
    }
    kept.sort_unstable();
    kept
}

/// Estimate the cost-comparison count a [`PrunedTables::build`] over these
/// tables would pay, for the adaptive prune gate: per distinct pruning
/// signature, the worst-case dominance scan is `k²` candidate pairs, each
/// comparing one layer cost plus every entry of every incident edge view
/// (`k_dst` per out-edge row, `k_src` per in-edge column). This
/// deliberately re-runs only the cheap `O(|V| + |E|)` signature-grouping
/// pass — never the scans themselves — so the gate's overhead stays
/// negligible against either branch of its decision. Saturating, for the
/// same reason the DP estimate saturates: enormous estimates only ever
/// compare against other enormous numbers.
pub fn estimate_prune_work(graph: &Graph, tables: &CostTables) -> u64 {
    let mut seen: FxHashMap<Signature, ()> = FxHashMap::default();
    let mut total: u64 = 0;
    for v in graph.node_ids() {
        let mut edges: Vec<(u32, bool)> = graph
            .out_edges(v)
            .iter()
            .map(|&e| (tables.edge_class[e.index()], true))
            .chain(
                graph
                    .in_edges(v)
                    .iter()
                    .map(|&e| (tables.edge_class[e.index()], false)),
            )
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let sig = Signature {
            layer_class: tables.node_class[v.index()],
            edges,
        };
        if seen.contains_key(&sig) {
            continue;
        }
        let k = tables.layer_pool[sig.layer_class as usize].configs.len() as u64;
        let mut per_pair: u64 = 1; // the layer-cost comparison
        for &(ec, is_src) in &sig.edges {
            let table = &tables.edge_pool[ec as usize];
            let kd = table.k_dst as usize;
            let len = if is_src {
                kd
            } else {
                table.costs.len() / kd.max(1)
            };
            per_pair = per_pair.saturating_add(len as u64);
        }
        total = total.saturating_add(k.saturating_mul(k).saturating_mul(per_pair));
        seen.insert(sig, ());
    }
    total
}

impl PrunedTables {
    /// Prune `tables` (built for `graph`) by exact dominance — or
    /// ε-approximate dominance when `opts.epsilon > 0` — and compact the
    /// surviving configurations into a standalone [`CostTables`] the search
    /// engines consume unchanged.
    pub fn build(graph: &Graph, tables: &CostTables, opts: &PruneOptions) -> Self {
        Self::build_traced(graph, tables, opts, None)
    }

    /// [`PrunedTables::build`], recording a `prune` phase span (with
    /// before/after configuration counts) into `trace` when one is given.
    /// The produced tables are identical with and without a trace.
    pub fn build_traced(
        graph: &Graph,
        tables: &CostTables,
        opts: &PruneOptions,
        trace: Option<&Trace>,
    ) -> Self {
        let mut span = span_in(trace, phase::PRUNE);
        let start = Instant::now();
        let n = graph.len();

        // Group vertices by pruning signature.
        let mut sig_of_node: Vec<u32> = Vec::with_capacity(n);
        let mut sigs: Vec<Signature> = Vec::new();
        {
            let mut seen: FxHashMap<Signature, u32> = FxHashMap::default();
            for v in graph.node_ids() {
                let mut edges: Vec<(u32, bool)> = graph
                    .out_edges(v)
                    .iter()
                    .map(|&e| (tables.edge_class[e.index()], true))
                    .chain(
                        graph
                            .in_edges(v)
                            .iter()
                            .map(|&e| (tables.edge_class[e.index()], false)),
                    )
                    .collect();
                edges.sort_unstable();
                edges.dedup();
                let sig = Signature {
                    layer_class: tables.node_class[v.index()],
                    edges,
                };
                let next = sigs.len() as u32;
                let id = *seen.entry(sig.clone()).or_insert_with(|| {
                    sigs.push(sig);
                    next
                });
                sig_of_node.push(id);
            }
        }

        // One dominance pass per distinct signature.
        let compute = |sig: &Signature| -> Vec<u16> {
            let layer = &tables.layer_pool[sig.layer_class as usize];
            let views: Vec<(&EdgeTable, bool)> = sig
                .edges
                .iter()
                .map(|&(ec, is_src)| (&tables.edge_pool[ec as usize], is_src))
                .collect();
            keep_set(layer, &views, opts.epsilon, opts.memory_aware)
        };
        let keep_of_sig: Vec<Vec<u16>> = if opts.parallel && sigs.len() > 1 {
            (0..sigs.len())
                .into_par_iter()
                .map(|i| compute(&sigs[i]))
                .collect()
        } else {
            sigs.iter().map(compute).collect()
        };

        // Compact the layer pool: one entry per signature (signatures
        // refine the structural node classes, so interning survives).
        let layer_pool: Vec<LayerEntry> = sigs
            .iter()
            .zip(&keep_of_sig)
            .map(|(sig, kept)| {
                let src = &tables.layer_pool[sig.layer_class as usize];
                LayerEntry {
                    configs: kept.iter().map(|&c| src.configs[c as usize]).collect(),
                    costs: kept.iter().map(|&c| src.costs[c as usize]).collect(),
                    mem: kept.iter().map(|&c| src.mem[c as usize]).collect(),
                }
            })
            .collect();
        let node_class: Vec<u32> = sig_of_node.clone();

        // Compact the edge pool, re-interned by (original edge class,
        // endpoint signatures) — equal keys select identical sub-matrices.
        let mut edge_class: Vec<u32> = Vec::with_capacity(graph.edge_count());
        let mut edge_pool: Vec<EdgeTable> = Vec::new();
        {
            let mut seen: FxHashMap<(u32, u32, u32), u32> = FxHashMap::default();
            for e in graph.edges() {
                let old = tables.edge_class[edge_class.len()];
                let (su, sv) = (sig_of_node[e.src.index()], sig_of_node[e.dst.index()]);
                let next = edge_pool.len() as u32;
                let id = *seen.entry((old, su, sv)).or_insert_with(|| {
                    let src_table = &tables.edge_pool[old as usize];
                    let kd_old = src_table.k_dst as usize;
                    let (ku_keep, kv_keep) = (&keep_of_sig[su as usize], &keep_of_sig[sv as usize]);
                    let mut costs = Vec::with_capacity(ku_keep.len() * kv_keep.len());
                    for &cu in ku_keep {
                        let row = &src_table.costs[cu as usize * kd_old..][..kd_old];
                        for &cv in kv_keep {
                            costs.push(row[cv as usize]);
                        }
                    }
                    edge_pool.push(EdgeTable {
                        k_dst: kv_keep.len() as u32,
                        costs,
                    });
                    next
                });
                edge_class.push(id);
            }
        }

        let keep: Vec<Vec<u16>> = sig_of_node
            .iter()
            .map(|&s| keep_of_sig[s as usize].clone())
            .collect();

        let stats = PruneStats {
            k_before: tables.max_k(),
            k_after: layer_pool
                .iter()
                .map(|e| e.configs.len())
                .max()
                .unwrap_or(0),
            configs_before: graph.node_ids().map(|v| tables.k(v) as u64).sum(),
            configs_after: keep.iter().map(|k| k.len() as u64).sum(),
            nodes_pruned: graph
                .node_ids()
                .filter(|&v| keep[v.index()].len() < tables.k(v))
                .count(),
            elapsed: start.elapsed(),
        };
        span.arg("k_before", stats.k_before);
        span.arg("k_after", stats.k_after);
        span.arg("configs_before", stats.configs_before);
        span.arg("configs_after", stats.configs_after);
        span.arg("nodes_pruned", stats.nodes_pruned);
        drop(span);

        Self {
            tables: CostTables {
                rule: tables.rule,
                r: tables.r,
                mesh: tables.mesh.clone(),
                node_class,
                layer_pool,
                edge_class,
                edge_pool,
                intern_attempted: tables.intern_attempted,
            },
            keep,
            stats,
        }
    }

    /// The compacted cost tables over the surviving configurations. Every
    /// search engine (the `Search` DP, `brute_force`, `optcnn_search`)
    /// consumes this exactly like an unpruned build — table sizes, and with
    /// them the DP's `K^{M+1}` budget accounting, shrink multiplicatively.
    pub fn tables(&self) -> &CostTables {
        &self.tables
    }

    /// What the pass removed and how long it took.
    pub fn stats(&self) -> &PruneStats {
        &self.stats
    }

    /// Surviving original configuration ids of node `v`, ascending.
    pub fn kept_ids(&self, v: NodeId) -> &[u16] {
        &self.keep[v.index()]
    }

    /// Map per-node configuration ids of the *pruned* space back to ids of
    /// the original [`CostTables`] the pruning ran on.
    pub fn to_original_ids(&self, ids: &[u16]) -> Vec<u16> {
        assert_eq!(ids.len(), self.keep.len());
        ids.iter()
            .enumerate()
            .map(|(v, &c)| self.keep[v][c as usize])
            .collect()
    }

    /// Map original-space configuration ids into the pruned space; `None`
    /// if any id was pruned away.
    pub fn to_pruned_ids(&self, ids: &[u16]) -> Option<Vec<u16>> {
        if ids.len() != self.keep.len() {
            return None;
        }
        ids.iter()
            .enumerate()
            .map(|(v, &c)| self.keep[v].binary_search(&c).ok().map(|i| i as u16))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigRule;
    use crate::machine::MachineSpec;
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn fc(name: &str, ins: usize, b: u64, n: u64, c: u64) -> Node {
        Node {
            name: name.into(),
            op: OpKind::FullyConnected,
            iter_space: vec![
                IterDim::new("b", b, DimRole::Batch),
                IterDim::new("n", n, DimRole::Param),
                IterDim::new("c", c, DimRole::Reduction),
            ],
            inputs: (0..ins)
                .map(|_| TensorRef::new(vec![0, 2], vec![b, c]))
                .collect(),
            output: TensorRef::new(vec![0, 1], vec![b, n]),
            params: vec![TensorRef::new(vec![1, 2], vec![n, c])],
        }
    }

    fn chain(k: usize, p: u32) -> (pase_graph::Graph, CostTables) {
        let mut bld = GraphBuilder::new();
        let ids: Vec<_> = (0..k)
            .map(|i| bld.add_node(fc(&format!("fc{i}"), usize::from(i > 0), 64, 128, 256)))
            .collect();
        for w in ids.windows(2) {
            bld.connect(w[0], w[1]);
        }
        let g = bld.build().unwrap();
        let t = CostTables::build(&g, ConfigRule::new(p), &MachineSpec::test_machine());
        (g, t)
    }

    #[test]
    fn pruning_never_empties_a_config_list() {
        for p in [2u32, 4, 8, 16, 32] {
            let (g, t) = chain(4, p);
            let pruned = PrunedTables::build(&g, &t, &PruneOptions::default());
            for v in g.node_ids() {
                assert!(
                    pruned.tables().k(v) >= 1,
                    "p = {p}: C({v}) emptied by pruning"
                );
                assert!(pruned.tables().k(v) <= t.k(v));
            }
        }
    }

    #[test]
    fn kept_entries_match_the_original_tables() {
        let (g, t) = chain(3, 8);
        let pruned = PrunedTables::build(&g, &t, &PruneOptions::default());
        let pt = pruned.tables();
        for v in g.node_ids() {
            for (new_id, &orig_id) in pruned.kept_ids(v).iter().enumerate() {
                assert_eq!(
                    pt.config(v, new_id as u16),
                    t.config(v, orig_id),
                    "config mismatch at {v}"
                );
                assert_eq!(
                    pt.layer_cost(v, new_id as u16).to_bits(),
                    t.layer_cost(v, orig_id).to_bits()
                );
            }
        }
        for (i, e) in g.edges().iter().enumerate() {
            let eid = pase_graph::EdgeId(i as u32);
            for (nu, &ou) in pruned.kept_ids(e.src).iter().enumerate() {
                for (nv, &ov) in pruned.kept_ids(e.dst).iter().enumerate() {
                    assert_eq!(
                        pt.edge_cost(eid, nu as u16, nv as u16).to_bits(),
                        t.edge_cost(eid, ou, ov).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn every_pruned_config_has_a_kept_dominator() {
        let (g, t) = chain(3, 16);
        let pruned = PrunedTables::build(&g, &t, &PruneOptions::default());
        for v in g.node_ids() {
            let kept = pruned.kept_ids(v);
            'outer: for c in 0..t.k(v) as u16 {
                if kept.binary_search(&c).is_ok() {
                    continue;
                }
                for &c2 in kept {
                    let layer_ok = t.layer_cost(v, c2) <= t.layer_cost(v, c);
                    let edges_ok = g.out_edges(v).iter().all(|&e| {
                        (0..t.k(g.edge(e).dst) as u16)
                            .all(|d| t.edge_cost(e, c2, d) <= t.edge_cost(e, c, d))
                    }) && g.in_edges(v).iter().all(|&e| {
                        (0..t.k(g.edge(e).src) as u16)
                            .all(|d| t.edge_cost(e, d, c2) <= t.edge_cost(e, d, c))
                    });
                    if layer_ok && edges_ok {
                        continue 'outer;
                    }
                }
                panic!("pruned config {c} of {v} has no kept dominator");
            }
        }
    }

    #[test]
    fn isolated_node_keeps_exactly_the_cheapest_configs() {
        // With no edges, dominance degenerates to the layer cost: only the
        // minimum-cost configurations survive.
        let mut bld = GraphBuilder::new();
        bld.add_node(fc("solo", 0, 64, 128, 256));
        let g = bld.build().unwrap();
        let t = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        let pruned = PrunedTables::build(&g, &t, &PruneOptions::default());
        let v = NodeId(0);
        let min = (0..t.k(v) as u16)
            .map(|c| t.layer_cost(v, c))
            .fold(f64::INFINITY, f64::min);
        assert!(pruned.tables().k(v) >= 1);
        for c in 0..pruned.tables().k(v) as u16 {
            assert_eq!(pruned.tables().layer_cost(v, c), min);
        }
    }

    #[test]
    fn id_mappings_roundtrip() {
        let (g, t) = chain(3, 8);
        let pruned = PrunedTables::build(&g, &t, &PruneOptions::default());
        let ids: Vec<u16> = g
            .node_ids()
            .map(|v| (pruned.tables().k(v) - 1) as u16)
            .collect();
        let orig = pruned.to_original_ids(&ids);
        assert_eq!(pruned.to_pruned_ids(&orig), Some(ids.clone()));
        // Costs agree through the mapping.
        assert_eq!(
            pruned.tables().evaluate_ids(&g, &ids).to_bits(),
            t.evaluate_ids(&g, &orig).to_bits()
        );
    }

    #[test]
    fn epsilon_prunes_at_least_as_much_as_exact() {
        let (g, t) = chain(4, 32);
        let exact = PrunedTables::build(&g, &t, &PruneOptions::default());
        let approx = PrunedTables::build(
            &g,
            &t,
            &PruneOptions {
                epsilon: 0.05,
                ..PruneOptions::default()
            },
        );
        assert!(approx.stats().configs_after <= exact.stats().configs_after);
        for v in g.node_ids() {
            assert!(approx.tables().k(v) >= 1);
        }
    }

    #[test]
    fn parallel_and_sequential_pruning_agree() {
        let (g, t) = chain(5, 16);
        let par = PrunedTables::build(&g, &t, &PruneOptions::default());
        let seq = PrunedTables::build(
            &g,
            &t,
            &PruneOptions {
                parallel: false,
                ..PruneOptions::default()
            },
        );
        for v in g.node_ids() {
            assert_eq!(par.kept_ids(v), seq.kept_ids(v));
        }
    }

    #[test]
    fn memory_aware_keep_set_is_a_superset_of_the_time_only_one() {
        // Every time-only keep decision must survive when the memory
        // coordinate is added (the extra condition can only *block*
        // dominations, never create new ones) — this is the superset
        // property the frontier-exactness argument rests on.
        for p in [8u32, 16, 32] {
            let (g, t) = chain(4, p);
            let plain = PrunedTables::build(&g, &t, &PruneOptions::default());
            let mem = PrunedTables::build(
                &g,
                &t,
                &PruneOptions {
                    memory_aware: true,
                    ..PruneOptions::default()
                },
            );
            for v in g.node_ids() {
                for c in plain.kept_ids(v) {
                    assert!(
                        mem.kept_ids(v).binary_search(c).is_ok(),
                        "p = {p}: time-only keeper {c} of {v} dropped by memory-aware prune"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_account_for_the_removal() {
        let (g, t) = chain(4, 16);
        let pruned = PrunedTables::build(&g, &t, &PruneOptions::default());
        let s = pruned.stats();
        assert_eq!(s.k_before, t.max_k());
        assert_eq!(s.k_after, pruned.tables().max_k());
        assert!(s.k_after <= s.k_before);
        assert_eq!(
            s.configs_before,
            g.node_ids().map(|v| t.k(v) as u64).sum::<u64>()
        );
        assert_eq!(
            s.configs_after,
            g.node_ids()
                .map(|v| pruned.tables().k(v) as u64)
                .sum::<u64>()
        );
        assert!(s.pruned_fraction() >= 0.0 && s.pruned_fraction() < 1.0);
    }
}
