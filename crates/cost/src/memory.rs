//! Per-configuration peak-memory model.
//!
//! The frontier search in `pase-core` carries a (step-time, peak-memory)
//! pair per DP state, so it needs a per-device memory charge for every
//! `(node, Config)` pair that is **additive over nodes**: the peak memory
//! of a complete strategy is defined as the sum of the per-node charges.
//! That additivity is what lets the DP combine frontiers component-wise
//! (time adds, memory adds) exactly like the scalar recurrence adds costs.
//!
//! The charge for one configured node is the steady-state per-device
//! residency the training step cannot avoid:
//!
//! * **weights** — `3 ×` the parameter shard (parameters + gradients +
//!   optimizer state), exactly [`layer_footprint_bytes`]'s weight term;
//! * **activations** — the output-tensor shard kept for the backward pass
//!   ([`layer_footprint_bytes`]'s activation term);
//! * **collective buffers** — the largest staging buffer any intra-layer
//!   collective of the configuration holds per device (the event's logical
//!   `volume`; ring algorithms stage the full buffer on every member).
//!   Events are charged by the single largest buffer, not their sum,
//!   because collectives of one layer run serially on the hot path.
//!
//! Transient inter-layer transfer buffers are deliberately *not* charged:
//! they are bounded by the activation shards already counted and would
//! break the per-node additivity the DP relies on.

use crate::config::{layer_footprint_bytes, Config};
use crate::events::layer_comm_events;
use pase_graph::Node;

/// Per-device memory in bytes that `node` occupies under `cfg`: weight
/// shards (×3 for grads + optimizer state), the output activation shard,
/// and the largest collective staging buffer. Rounded up to whole bytes.
pub fn config_memory_bytes(node: &Node, cfg: &Config) -> u64 {
    let footprint = layer_footprint_bytes(node, cfg);
    let comm_buf = layer_comm_events(node, cfg)
        .iter()
        .map(|e| e.volume)
        .fold(0.0_f64, f64::max);
    let total = footprint + comm_buf;
    debug_assert!(total.is_finite() && total >= 0.0, "bad memory charge");
    total.ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{enumerate_configs, ConfigRule};
    use pase_graph::{DimRole, IterDim, Node, OpKind, TensorRef};

    fn fc() -> Node {
        let dims = vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("n", 256, DimRole::Param),
            IterDim::new("c", 512, DimRole::Reduction),
        ];
        let sizes: Vec<u64> = dims.iter().map(|d| d.size).collect();
        Node {
            name: "fc".into(),
            op: OpKind::FullyConnected,
            iter_space: dims,
            inputs: vec![TensorRef::aligned(vec![0, 2], &sizes)],
            output: TensorRef::aligned(vec![0, 1], &sizes),
            params: vec![TensorRef::aligned(vec![1, 2], &sizes)],
        }
    }

    #[test]
    fn data_parallel_fc_charges_full_weights_plus_sync_buffer() {
        // Data-parallel: weights fully replicated (256×512×4 B), output
        // batch-sharded across 8, and one gradient-sync all-reduce whose
        // buffer is the whole weight shard.
        let n = fc();
        let weights: f64 = 256.0 * 512.0 * 4.0;
        let act: f64 = (64.0 / 8.0) * 256.0 * 4.0;
        let got = config_memory_bytes(&n, &Config::new(&[8, 1, 1]));
        assert_eq!(got, (3.0 * weights + act + weights).ceil() as u64);
    }

    #[test]
    fn param_split_fc_has_no_collective_buffer() {
        // Param-split: no events at all, so the charge is exactly the
        // footprint.
        let n = fc();
        let cfg = Config::new(&[1, 8, 1]);
        assert_eq!(
            config_memory_bytes(&n, &cfg),
            layer_footprint_bytes(&n, &cfg).ceil() as u64
        );
    }

    #[test]
    fn charge_is_at_least_the_footprint_for_every_config() {
        // Collective buffers only ever add on top of the weight/activation
        // footprint, and every charge is a sane positive byte count.
        let n = fc();
        for cfg in enumerate_configs(&n, &ConfigRule::new(8).allow_idle()) {
            let got = config_memory_bytes(&n, &cfg);
            assert!(got >= layer_footprint_bytes(&n, &cfg).floor() as u64);
            assert!(got > 0);
        }
    }
}
