//! The inter-layer data-transfer cost `t_x(u, v, φ)` (PaSE §II).
//!
//! The paper defines `t_x` along an edge `(u, v)` as
//! `max_d |A(v,d,φ)| − |A(v,d,φ) ∩ A(u,d,φ)|`: the largest per-device gap
//! between the input volume a device *needs* and the producer-output volume
//! it already *holds*.
//!
//! Under block sharding with power-of-two split factors and aligned greedy
//! placement (the paper's locality-maximizing assignment), one partition of
//! each tensor dimension refines the other, so the per-device overlap along
//! dimension `t` of extent `s_t` is exactly `s_t / max(a_t, b_t)` where
//! `a_t` / `b_t` are the producer's / consumer's split factors of that
//! dimension. Hence
//!
//! ```text
//! t_x = ∏_t s_t/b_t  −  ∏_t s_t/max(a_t, b_t)      (in elements)
//! ```
//!
//! The cost is edge-direction agnostic and covers both the forward
//! activation transfer and the backward gradient transfer (same volume each
//! way), hence the factor 2 in bytes.

use crate::config::Config;
use pase_graph::Node;
use std::fmt;

/// A structurally malformed edge detected while costing a transfer
/// (see [`try_transfer_bytes`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransferError {
    /// The edge names an input slot the consumer does not have.
    BadSlot {
        /// Consumer node name.
        consumer: String,
        /// Number of inputs the consumer actually has.
        n_inputs: usize,
        /// The out-of-range slot.
        slot: usize,
    },
    /// The producer's output tensor and the consumer's input tensor have
    /// different ranks.
    RankMismatch {
        /// Producer node name.
        producer: String,
        /// Producer output rank.
        out_rank: usize,
        /// Consumer node name.
        consumer: String,
        /// Consumer input slot.
        slot: usize,
        /// Consumer input rank.
        in_rank: usize,
    },
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::BadSlot {
                consumer,
                n_inputs,
                slot,
            } => write!(f, "'{consumer}' has {n_inputs} inputs, no slot {slot}"),
            TransferError::RankMismatch {
                producer,
                out_rank,
                consumer,
                slot,
                in_rank,
            } => write!(
                f,
                "edge tensor rank mismatch: '{producer}' output is rank {out_rank} \
                 but '{consumer}' input[{slot}] is rank {in_rank}"
            ),
        }
    }
}

impl std::error::Error for TransferError {}

/// Transfer volume in bytes along the edge feeding `slot` of `consumer`
/// from `producer`, when the producer runs under `cfg_u` and the consumer
/// under `cfg_v`. Covers forward + backward.
///
/// # Panics
///
/// Panics on a malformed edge (bad `slot`, or producer/consumer tensor
/// rank mismatch). Use [`try_transfer_bytes`] to get an error instead.
pub fn transfer_bytes(
    producer: &Node,
    cfg_u: &Config,
    consumer: &Node,
    slot: usize,
    cfg_v: &Config,
) -> f64 {
    match try_transfer_bytes(producer, cfg_u, consumer, slot, cfg_v) {
        Ok(bytes) => bytes,
        Err(e) => panic!("transfer_bytes: {e}"),
    }
}

/// Checked form of [`transfer_bytes`]: a malformed edge is a structural
/// error in the graph, not a costing question, so it is reported as a
/// [`TransferError`] instead of silently mis-costing (longer producer
/// tensor) or panicking on slice indexing in release builds (shorter
/// producer tensor), which is what the old `debug_assert_eq!`-only guard
/// allowed.
pub fn try_transfer_bytes(
    producer: &Node,
    cfg_u: &Config,
    consumer: &Node,
    slot: usize,
    cfg_v: &Config,
) -> Result<f64, TransferError> {
    let out = &producer.output;
    let inp = consumer
        .inputs
        .get(slot)
        .ok_or_else(|| TransferError::BadSlot {
            consumer: consumer.name.clone(),
            n_inputs: consumer.inputs.len(),
            slot,
        })?;
    if out.rank() != inp.rank() {
        return Err(TransferError::RankMismatch {
            producer: producer.name.clone(),
            out_rank: out.rank(),
            consumer: consumer.name.clone(),
            slot,
            in_rank: inp.rank(),
        });
    }
    let mut need = 1.0;
    let mut overlap = 1.0;
    for t in 0..inp.rank() {
        let s_t = inp.sizes[t] as f64;
        let a_t = f64::from(cfg_u.split(out.dims[t] as usize));
        let b_t = f64::from(cfg_v.split(inp.dims[t] as usize));
        need *= s_t / b_t;
        overlap *= s_t / a_t.max(b_t);
    }
    Ok(2.0 * (need - overlap).max(0.0) * f64::from(inp.elem_bytes))
}

/// `r · t_x`, the FLOP-normalized edge cost used in Equation (1).
pub fn transfer_cost(
    producer: &Node,
    cfg_u: &Config,
    consumer: &Node,
    slot: usize,
    cfg_v: &Config,
    r: f64,
) -> f64 {
    r * transfer_bytes(producer, cfg_u, consumer, slot, cfg_v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::{DimRole, IterDim, OpKind, TensorRef};

    /// Two chained GEMMs: u computes (b, n1) from (b, c); v consumes
    /// (b, n1) as its (b, c) input.
    fn pair() -> (Node, Node) {
        let mk = |name: &str, b: u64, n: u64, c: u64| {
            let dims = vec![
                IterDim::new("b", b, DimRole::Batch),
                IterDim::new("n", n, DimRole::Param),
                IterDim::new("c", c, DimRole::Reduction),
            ];
            Node {
                name: name.into(),
                op: OpKind::FullyConnected,
                iter_space: dims,
                inputs: vec![TensorRef::new(vec![0, 2], vec![b, c])],
                output: TensorRef::new(vec![0, 1], vec![b, n]),
                params: vec![TensorRef::new(vec![1, 2], vec![n, c])],
            }
        };
        (mk("u", 64, 256, 128), mk("v", 64, 512, 256))
    }

    #[test]
    fn matching_batch_splits_are_free() {
        let (u, v) = pair();
        let c = Config::new(&[8, 1, 1]);
        assert_eq!(transfer_bytes(&u, &c, &v, 0, &c), 0.0);
    }

    #[test]
    fn identical_replication_is_free() {
        let (u, v) = pair();
        let ones = Config::ones(3);
        assert_eq!(transfer_bytes(&u, &ones, &v, 0, &ones), 0.0);
    }

    #[test]
    fn producer_n_split_consumer_c_split_aligned_is_free() {
        // u splits its out-feature dim (n), v splits its in-feature dim (c):
        // both shard the *same* tensor dimension → aligned, no transfer.
        let (u, v) = pair();
        let cu = Config::new(&[1, 8, 1]);
        let cv = Config::new(&[1, 1, 8]);
        assert_eq!(transfer_bytes(&u, &cu, &v, 0, &cv), 0.0);
    }

    #[test]
    fn misaligned_splits_pay_resharding() {
        // u shards by batch, v needs shards by feature: each device needs
        // (b × c/8) but holds (b/8 × c) → overlap is the (b/8, c/8) corner.
        let (u, v) = pair();
        let cu = Config::new(&[8, 1, 1]);
        let cv = Config::new(&[1, 1, 8]);
        let tensor = 64.0 * 256.0; // (b, n1) elements
        let need = tensor / 8.0;
        let overlap = tensor / 64.0;
        let expected = 2.0 * (need - overlap) * 4.0;
        assert_eq!(transfer_bytes(&u, &cu, &v, 0, &cv), expected);
    }

    #[test]
    fn consumer_replication_still_needs_full_shard() {
        // v splits only its own n dim → every v-device needs the whole
        // (b, c) input; u shards it by batch 8 ways, and alignment lets a
        // device hold 1/8 of what it needs.
        let (u, v) = pair();
        let cu = Config::new(&[8, 1, 1]);
        let cv = Config::new(&[1, 8, 1]);
        let tensor = 64.0 * 256.0;
        let expected = 2.0 * (tensor - tensor / 8.0) * 4.0;
        assert_eq!(transfer_bytes(&u, &cu, &v, 0, &cv), expected);
    }

    #[test]
    fn refining_split_is_free_coarsening_is_not() {
        let (u, v) = pair();
        // producer 2-way, consumer 8-way on the same (batch) dim: the
        // consumer's block is inside the producer's block → free.
        let cu = Config::new(&[2, 1, 1]);
        let cv = Config::new(&[8, 1, 1]);
        assert_eq!(transfer_bytes(&u, &cu, &v, 0, &cv), 0.0);
        // producer 8-way, consumer 2-way: each consumer device already has
        // a 1/8 piece of the 1/2 it needs.
        let tensor = 64.0 * 256.0;
        let expected = 2.0 * (tensor / 2.0 - tensor / 8.0) * 4.0;
        assert_eq!(transfer_bytes(&u, &cv, &v, 0, &cu), expected);
    }

    #[test]
    fn transfer_cost_scales_with_r() {
        let (u, v) = pair();
        let cu = Config::new(&[8, 1, 1]);
        let cv = Config::new(&[1, 1, 8]);
        let b = transfer_bytes(&u, &cu, &v, 0, &cv);
        assert_eq!(transfer_cost(&u, &cu, &v, 0, &cv, 250.0), 250.0 * b);
        assert_eq!(transfer_cost(&u, &cu, &v, 0, &cv, 0.0), 0.0);
    }

    #[test]
    fn rank_mismatch_is_a_checked_error() {
        // Regression: release builds used to panic on slice indexing when
        // the producer tensor was shorter, and silently mis-cost when it
        // was longer — both must now surface as errors.
        let (mut u, v) = pair();
        let c = Config::ones(3);
        // Shorter producer output (rank 1 vs the consumer's rank-2 input).
        u.output = TensorRef::new(vec![0], vec![64]);
        let err = try_transfer_bytes(&u, &c, &v, 0, &c).unwrap_err();
        assert!(matches!(err, TransferError::RankMismatch { .. }));
        assert!(err.to_string().contains("rank mismatch"), "got: {err}");
        // Longer producer output (rank 3).
        u.output = TensorRef::new(vec![0, 1, 2], vec![64, 256, 128]);
        let err = try_transfer_bytes(&u, &c, &v, 0, &c).unwrap_err();
        assert!(
            matches!(
                err,
                TransferError::RankMismatch {
                    out_rank: 3,
                    in_rank: 2,
                    ..
                }
            ),
            "got: {err}"
        );
    }

    #[test]
    fn bad_slot_is_a_checked_error() {
        let (u, v) = pair();
        let c = Config::ones(3);
        let err = try_transfer_bytes(&u, &c, &v, 5, &c).unwrap_err();
        assert!(
            matches!(
                err,
                TransferError::BadSlot {
                    slot: 5,
                    n_inputs: 1,
                    ..
                }
            ),
            "got: {err}"
        );
        assert!(err.to_string().contains("no slot 5"), "got: {err}");
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn panicking_wrapper_reports_the_same_error() {
        let (mut u, v) = pair();
        u.output = TensorRef::new(vec![0], vec![64]);
        let c = Config::ones(3);
        transfer_bytes(&u, &c, &v, 0, &c);
    }

    #[test]
    fn checked_and_panicking_agree_on_valid_edges() {
        let (u, v) = pair();
        let cu = Config::new(&[8, 1, 1]);
        let cv = Config::new(&[1, 1, 8]);
        assert_eq!(
            try_transfer_bytes(&u, &cu, &v, 0, &cv).unwrap(),
            transfer_bytes(&u, &cu, &v, 0, &cv)
        );
    }

    #[test]
    fn orthogonal_misalignments_cost_the_same_on_square_tensors() {
        // Resharding row-split → column-split moves the same volume as
        // column-split → row-split on a square tensor.
        let mk = |name: &str| {
            let dims = vec![
                IterDim::new("b", 128, DimRole::Batch),
                IterDim::new("n", 128, DimRole::Param),
                IterDim::new("c", 128, DimRole::Reduction),
            ];
            Node {
                name: name.into(),
                op: OpKind::FullyConnected,
                iter_space: dims,
                inputs: vec![TensorRef::new(vec![0, 2], vec![128, 128])],
                output: TensorRef::new(vec![0, 1], vec![128, 128]),
                params: vec![],
            }
        };
        let (u, v) = (mk("u"), mk("v"));
        // A: producer shards rows (b), consumer shards columns (c).
        let a = transfer_bytes(
            &u,
            &Config::new(&[4, 1, 1]),
            &v,
            0,
            &Config::new(&[1, 1, 4]),
        );
        // B: producer shards columns (n), consumer shards rows (b).
        let b = transfer_bytes(
            &u,
            &Config::new(&[1, 4, 1]),
            &v,
            0,
            &Config::new(&[4, 1, 1]),
        );
        assert_eq!(a, b);
        assert!(a > 0.0);
    }
}
