//! The layer cost `t_l(v, φ, r)` (PaSE §II).
//!
//! `t_l` is expressed in FLOPs and includes "both computation and
//! communication that happens internally within a layer (such as all-reduce
//! within a layer, halo communication for convolutions, etc., normalized to
//! FLOP by multiplying it with r)".
//!
//! The terms, per configuration `C`:
//!
//! * **compute** — the layer's forward+backward FLOPs divided by `∏ c_i`
//!   (each device computes an equal share of the iteration space); for the
//!   single-vertex RNN operator the division accounts for pipeline-bubble
//!   inefficiency when the `layer`/`sequence` dims are split;
//! * **partial-sum reduction** — splitting a contraction dimension that does
//!   not index the output leaves each device with a partial result that is
//!   all-reduced across the contraction group (fires for the `k` dim of
//!   GEMMs, in-channel/filter dims of convolutions, the vocabulary dim of
//!   embeddings, the hidden dim of feed-forward blocks, …);
//! * **gradient synchronization** — parameters replicated across splits of
//!   dimensions that do not index them (e.g. the batch dim) must have their
//!   gradients all-reduced across the replica group in the update phase;
//!   this is the term that makes pure data parallelism expensive for large
//!   models;
//! * **op-specific terms** — convolution halo exchange when spatial dims are
//!   split; per-timestep recurrent reductions and stage-boundary transfers
//!   for the RNN operator; key/value all-gather when an attention operator's
//!   sequence dim is split; the first-GEMM partial reduction when a
//!   feed-forward block's model dim is split.

use crate::config::Config;
use crate::events::{layer_comm_events, layer_compute_flops};
use pase_graph::Node;

/// `t_l(v, φ, r)`: cost in FLOPs of executing `node` under configuration
/// `cfg` on a machine with FLOP-to-byte ratio `r`.
///
/// Equal by construction to the compute term of
/// [`layer_compute_flops`](crate::layer_compute_flops) plus `r` times the
/// per-device traffic of every event in
/// [`layer_comm_events`](crate::layer_comm_events).
pub fn layer_cost(node: &Node, cfg: &Config, r: f64) -> f64 {
    debug_assert_eq!(
        cfg.rank(),
        node.rank(),
        "config rank mismatch for '{}'",
        node.name
    );
    let compute = layer_compute_flops(node, cfg);
    let bytes: f64 = layer_comm_events(node, cfg)
        .iter()
        .map(|e| e.traffic_bytes())
        .sum();
    compute + r * bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::all_reduce_bytes;
    use pase_graph::{DimRole, IterDim, OpKind, TensorRef};

    /// b=64, n=256, c=512 fully-connected layer.
    fn fc() -> Node {
        let dims = vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("n", 256, DimRole::Param),
            IterDim::new("c", 512, DimRole::Reduction),
        ];
        let sizes: Vec<u64> = dims.iter().map(|d| d.size).collect();
        Node {
            name: "fc".into(),
            op: OpKind::FullyConnected,
            iter_space: dims,
            inputs: vec![TensorRef::aligned(vec![0, 2], &sizes)],
            output: TensorRef::aligned(vec![0, 1], &sizes),
            params: vec![TensorRef::aligned(vec![1, 2], &sizes)],
        }
    }

    #[test]
    fn sequential_cost_is_plain_flops() {
        let n = fc();
        let c = Config::ones(3);
        assert_eq!(layer_cost(&n, &c, 1000.0), n.step_flops());
    }

    #[test]
    fn pure_compute_split_divides_ideally_when_r_zero() {
        let n = fc();
        let c = Config::new(&[8, 1, 1]);
        assert_eq!(layer_cost(&n, &c, 0.0), n.step_flops() / 8.0);
    }

    #[test]
    fn batch_split_pays_gradient_allreduce() {
        let n = fc();
        let r = 1000.0;
        let dp = Config::new(&[8, 1, 1]);
        // grad all-reduce of the whole 256×512 weight across 8 replicas
        let expected_bytes = all_reduce_bytes(256.0 * 512.0 * 4.0, 8);
        let expected = n.step_flops() / 8.0 + r * expected_bytes;
        assert!((layer_cost(&n, &dp, r) - expected).abs() < 1e-6);
    }

    #[test]
    fn param_split_avoids_gradient_sync() {
        let n = fc();
        let r = 1000.0;
        // splitting n (param dim) only: weight fully sharded, no replicas
        let pp = Config::new(&[1, 8, 1]);
        assert_eq!(layer_cost(&n, &pp, r), n.step_flops() / 8.0);
    }

    #[test]
    fn reduction_split_pays_partial_sum_allreduce() {
        let n = fc();
        let r = 1000.0;
        let kk = Config::new(&[1, 1, 8]);
        // output shard is the full b×n block (c not mapped to output)
        let expected_bytes = all_reduce_bytes(64.0 * 256.0 * 4.0, 8);
        let expected = n.step_flops() / 8.0 + r * expected_bytes;
        assert!((layer_cost(&n, &kk, r) - expected).abs() < 1e-6);
    }

    #[test]
    fn gradient_sync_scales_with_weight_size() {
        // The paper's intro: data parallelism's gradient all-reduce grows
        // with the model size, making it a bottleneck for large weights.
        let r = 1000.0;
        let mk = |n_: u64, c_: u64| {
            let dims = vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", n_, DimRole::Param),
                IterDim::new("c", c_, DimRole::Reduction),
            ];
            let sizes: Vec<u64> = dims.iter().map(|d| d.size).collect();
            Node {
                name: "fc".into(),
                op: OpKind::FullyConnected,
                iter_space: dims,
                inputs: vec![TensorRef::aligned(vec![0, 2], &sizes)],
                output: TensorRef::aligned(vec![0, 1], &sizes),
                params: vec![TensorRef::aligned(vec![1, 2], &sizes)],
            }
        };
        let dp = Config::new(&[8, 1, 1]);
        let small = mk(64, 64);
        let big = mk(2048, 2048);
        let sync_overhead = |n: &Node| layer_cost(n, &dp, r) - n.step_flops() / 8.0;
        // overhead grows with the weight: 1024× the elements → 1024× the sync
        assert!((sync_overhead(&big) / sync_overhead(&small) - 1024.0).abs() < 1e-9);
        // and parameter parallelism pays no intra-layer sync at all
        let pp = Config::new(&[1, 8, 1]);
        assert_eq!(layer_cost(&big, &pp, r), big.step_flops() / 8.0);
    }

    fn conv(kernel: u32) -> Node {
        let dims = vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("c", 64, DimRole::Reduction),
            IterDim::new("h", 32, DimRole::Spatial),
            IterDim::new("w", 32, DimRole::Spatial),
            IterDim::new("n", 128, DimRole::Param),
            IterDim::fixed("r", u64::from(kernel), DimRole::Reduction),
            IterDim::fixed("s", u64::from(kernel), DimRole::Reduction),
        ];
        Node {
            name: "conv".into(),
            op: OpKind::Conv2d {
                kernel_h: kernel,
                kernel_w: kernel,
                stride: 1,
            },
            iter_space: dims,
            inputs: vec![TensorRef::new(vec![0, 1, 2, 3], vec![64, 64, 32, 32])],
            output: TensorRef::new(vec![0, 4, 2, 3], vec![64, 128, 32, 32]),
            params: vec![TensorRef::new(
                vec![4, 1, 5, 6],
                vec![128, 64, kernel as u64, kernel as u64],
            )],
        }
    }

    #[test]
    fn spatial_split_pays_halo_for_wide_kernels_only() {
        let r = 1000.0;
        let hsplit = Config::new(&[1, 1, 8, 1, 1, 1, 1]);
        // Both convs pay the weight-gradient sync (the weights are
        // replicated across the spatial split); only the 3×3 one pays halo.
        let base =
            |n: &Node| n.step_flops() / 8.0 + r * all_reduce_bytes(n.param_elements() * 4.0, 8);
        let c1 = conv(1);
        assert!((layer_cost(&c1, &hsplit, r) - base(&c1)).abs() < 1e-6);
        let c3 = conv(3);
        let halo = layer_cost(&c3, &hsplit, r) - base(&c3);
        // per device: 2 sides? no — (k−1) rows of the input slab, fwd+bwd:
        // 2 · in_shard · (k−1) / (h/8) bytes, with in_shard = 64·64·4·32·4 B
        let in_shard = 64.0 * 64.0 * (32.0 / 8.0) * 32.0 * 4.0;
        let expected_halo = r * 2.0 * in_shard * 2.0 / 4.0;
        assert!((halo - expected_halo).abs() < 1e-6 * expected_halo);
    }

    #[test]
    fn lstm_pipeline_split_has_bubble_overhead() {
        let dims = vec![
            IterDim::new("l", 2, DimRole::Pipeline),
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("s", 40, DimRole::Pipeline),
            IterDim::new("d", 1024, DimRole::Reduction),
            IterDim::new("e", 2048, DimRole::Param),
        ];
        let n = Node {
            name: "lstm".into(),
            op: OpKind::Lstm { layers: 2 },
            iter_space: dims,
            inputs: vec![TensorRef::new(vec![1, 2, 3], vec![64, 40, 1024])],
            output: TensorRef::new(vec![1, 2, 4], vec![64, 40, 2048]),
            params: vec![TensorRef::new(vec![0, 3, 4], vec![2, 1024, 2048 * 8])],
        };
        // Pure pipeline split (l by 2) with r = 0: compute is divided by 2
        // but inflated by the bubble factor (M + P − 1)/M = 41/40.
        let pipe = Config::new(&[2, 1, 1, 1, 1]);
        let got = layer_cost(&n, &pipe, 0.0);
        let ideal = n.step_flops() / 2.0;
        assert!((got - ideal * 41.0 / 40.0).abs() < 1e-9 * got);
        // Batch split of the same degree has no bubble.
        let dp = Config::new(&[1, 2, 1, 1, 1]);
        assert_eq!(layer_cost(&n, &dp, 0.0), ideal);
    }

    #[test]
    fn attention_sequence_split_pays_kv_allgather() {
        let dims = vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("s", 256, DimRole::Spatial),
            IterDim::new("h", 16, DimRole::Param),
            IterDim::new("c", 64, DimRole::Param),
            IterDim::new("k", 64, DimRole::Reduction),
        ];
        let n = Node {
            name: "attn".into(),
            op: OpKind::Attention,
            iter_space: dims,
            inputs: vec![TensorRef::new(vec![0, 1, 2, 3], vec![64, 256, 16, 64])],
            output: TensorRef::new(vec![0, 1, 2, 3], vec![64, 256, 16, 64]),
            params: vec![TensorRef::new(vec![2, 3, 4], vec![16, 64, 4 * 16 * 64])],
        };
        let r = 1000.0;
        let seq = Config::new(&[1, 8, 1, 1, 1]);
        let head = Config::new(&[1, 1, 8, 1, 1]);
        // Splitting heads is communication-free; splitting the sequence
        // pays the K/V all-gather, so costs strictly more.
        assert!(layer_cost(&n, &seq, r) > layer_cost(&n, &head, r));
        assert_eq!(layer_cost(&n, &head, r), n.step_flops() / 8.0);
    }

    #[test]
    fn zero_r_reduces_to_pure_compute_scaling() {
        let n = fc();
        for splits in [[2, 2, 2], [8, 1, 1], [1, 4, 2]] {
            let c = Config::new(&splits);
            assert_eq!(layer_cost(&n, &c, 0.0), n.step_flops() / 8.0);
        }
    }
}
