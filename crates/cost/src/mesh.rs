//! Hierarchical device meshes — the topology-aware machine model.
//!
//! [`MachineSpec`] reduces the whole cluster to one scalar balance
//! `r = F/B`. A [`DeviceMesh`] refines that into a small tree of
//! *axes* — innermost (fastest) first — each carrying the per-link
//! latency `α`, the per-link bandwidth `B` (stored as bytes/s, not as the
//! inverse `β`, so the flat mesh reproduces the scalar division `F / B`
//! bit-for-bit), and the per-device peak FLOP rate of the weakest device
//! reachable over that tier. Heterogeneous fleets (NVLink islands under a
//! PCIe host fabric, mixed GPU generations across nodes) become one mesh
//! instead of one pessimistic scalar.
//!
//! The cost rules extend PaSE §II/§V:
//!
//! * **compute** is charged in FLOPs of the *weakest* device anywhere in
//!   the mesh ([`DeviceMesh::effective_flops`]) — the paper's §V
//!   bottleneck argument: the slowest member sets the step clock;
//! * a collective over a group of `g` devices spans the smallest prefix
//!   of axes whose sizes multiply to at least `g` (canonical aligned
//!   placement fills inner axes first) and its ring is bottlenecked by the
//!   **slowest link** in that prefix, so its bytes are converted to
//!   FLOP-equivalents with `r_g = F_min / B_slowest(g)`
//!   ([`DeviceMesh::ratio_for_group`]);
//! * each ring step additionally pays the **largest `α`** in the spanned
//!   prefix, normalized to FLOPs ([`DeviceMesh::latency_flops`]).
//!
//! A flat single-axis mesh ([`DeviceMesh::flat`]) has one bandwidth class
//! and `α = 0`, which makes [`mesh_layer_cost`] and [`mesh_transfer_cost`]
//! evaluate the *identical* floating-point expressions as the scalar
//! [`crate::layer_cost`] / `r·transfer_bytes` model — the bit-exact parity
//! anchor that `tests/mesh_parity.rs` and `bench_search` pin.

use crate::config::Config;
use crate::events::{layer_comm_events, layer_compute_flops, Collective};
use crate::machine::MachineSpec;
use crate::transfer::transfer_bytes;
use pase_graph::Node;
use pase_obs::json;
use std::fmt::Write as _;

/// One tier of a [`DeviceMesh`]: `size` devices (or groups of the inner
/// tiers) connected by links with identical characteristics.
#[derive(Clone, Debug, PartialEq)]
pub struct MeshAxis {
    /// Axis name (reports / JSON; never enters the cost model or cache key).
    pub name: String,
    /// Number of devices (innermost axis) or inner groups (outer axes)
    /// along this axis.
    pub size: u32,
    /// Per-message link latency in seconds (`α`).
    pub alpha: f64,
    /// Per-link bandwidth in bytes/s (`B`).
    pub bandwidth: f64,
    /// Peak FLOP/s of the weakest device reachable over this tier (`F`).
    pub peak_flops: f64,
}

/// A hierarchical cluster: a list of [`MeshAxis`] tiers, innermost
/// (fastest) first.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceMesh {
    /// Mesh name (reports / logs; never enters the cost model or cache key).
    pub name: String,
    /// Axes, innermost first. Non-empty for every validated mesh.
    pub axes: Vec<MeshAxis>,
}

impl DeviceMesh {
    /// The flat single-axis mesh of a scalar [`MachineSpec`] — one
    /// bandwidth class (`link_bandwidth`) and zero latency, so every cost
    /// the mesh model produces is bit-identical to the scalar model's
    /// `compute + r·bytes`. The axis `size` is nominal (1): group
    /// resolution saturates at the outermost axis, so groups of any size
    /// see the same single link class.
    pub fn flat(spec: &MachineSpec) -> Self {
        Self {
            name: spec.name.clone(),
            axes: vec![MeshAxis {
                name: "link".to_string(),
                size: 1,
                alpha: 0.0,
                bandwidth: spec.link_bandwidth,
                peak_flops: spec.peak_flops,
            }],
        }
    }

    /// The paper's two-tier testbed shape (§IV-B): `per_node` devices on
    /// the intra-node bus, `nodes` nodes on the inter-node fabric, with
    /// the simulator's canonical latencies (5 µs intra, 15 µs inter).
    pub fn cluster(spec: &MachineSpec, nodes: u32, per_node: u32) -> Self {
        Self {
            name: spec.name.clone(),
            axes: vec![
                MeshAxis {
                    name: "gpu".to_string(),
                    size: per_node,
                    alpha: 5e-6,
                    bandwidth: spec.link_bandwidth,
                    peak_flops: spec.peak_flops,
                },
                MeshAxis {
                    name: "node".to_string(),
                    size: nodes,
                    alpha: 15e-6,
                    bandwidth: spec.internode_bandwidth,
                    peak_flops: spec.peak_flops,
                },
            ],
        }
    }

    /// Shape and rate validation: at least one axis, every `size ≥ 1`,
    /// positive finite `bandwidth` and `peak_flops`, non-negative finite
    /// `alpha`. The parse boundaries (wire requests, `--machine-file`)
    /// call this so hostile inputs surface as protocol errors instead of
    /// non-finite cost tables deep in a build.
    pub fn validate(&self) -> Result<(), String> {
        if self.axes.is_empty() {
            return Err("mesh has no axes".to_string());
        }
        for a in &self.axes {
            if a.size < 1 {
                return Err(format!("axis '{}': size must be >= 1", a.name));
            }
            if !(a.bandwidth.is_finite() && a.bandwidth > 0.0) {
                return Err(format!(
                    "axis '{}': bandwidth must be positive and finite, got {}",
                    a.name, a.bandwidth
                ));
            }
            if !(a.peak_flops.is_finite() && a.peak_flops > 0.0) {
                return Err(format!(
                    "axis '{}': peak_flops must be positive and finite, got {}",
                    a.name, a.peak_flops
                ));
            }
            if !(a.alpha.is_finite() && a.alpha >= 0.0) {
                return Err(format!(
                    "axis '{}': alpha must be non-negative and finite, got {}",
                    a.name, a.alpha
                ));
            }
        }
        Ok(())
    }

    /// Total devices across all axes (`∏ size`). Nominal for flat meshes
    /// (see [`DeviceMesh::flat`]).
    pub fn total_devices(&self) -> u64 {
        self.axes.iter().map(|a| u64::from(a.size)).product()
    }

    /// Peak FLOP/s of the weakest device in the mesh — the §V bottleneck
    /// rate the whole cost model is normalized to.
    pub fn effective_flops(&self) -> f64 {
        self.axes
            .iter()
            .map(|a| a.peak_flops)
            .fold(f64::INFINITY, f64::min)
    }

    /// Index of the outermost axis a group of `g` devices spans: the
    /// smallest prefix of axes whose sizes multiply to at least `g`
    /// (canonical aligned placement fills inner axes first), saturating at
    /// the outermost axis for oversubscribed groups.
    fn spanned(&self, g: u32) -> usize {
        let mut prod: u64 = 1;
        for (i, a) in self.axes.iter().enumerate() {
            prod = prod.saturating_mul(u64::from(a.size.max(1)));
            if prod >= u64::from(g) {
                return i;
            }
        }
        self.axes.len() - 1
    }

    /// Bandwidth of the slowest link a group of `g` devices spans — the
    /// ring-collective bottleneck.
    pub fn slowest_bandwidth(&self, g: u32) -> f64 {
        let last = self.spanned(g);
        self.axes[..=last]
            .iter()
            .map(|a| a.bandwidth)
            .fold(f64::INFINITY, f64::min)
    }

    /// Per-message latency of the slowest link a group of `g` devices
    /// spans.
    pub fn slowest_alpha(&self, g: u32) -> f64 {
        let last = self.spanned(g);
        self.axes[..=last]
            .iter()
            .map(|a| a.alpha)
            .fold(0.0, f64::max)
    }

    /// FLOP-to-byte ratio `r_g = F_min / B_slowest(g)` for a communication
    /// group of `g` devices. On a flat mesh this is the scalar
    /// [`MachineSpec::flop_byte_ratio`] division, bit for bit, for every
    /// `g`.
    pub fn ratio_for_group(&self, g: u32) -> f64 {
        self.effective_flops() / self.slowest_bandwidth(g)
    }

    /// Latency of one collective over a group of `g` devices, normalized
    /// to FLOPs: ring steps × slowest `α` × `F_min`. Zero (exactly) on
    /// `α = 0` meshes.
    pub fn latency_flops(&self, collective: Collective, g: u32) -> f64 {
        let steps = match collective {
            Collective::AllReduce => 2 * g.saturating_sub(1),
            Collective::AllGather => g.saturating_sub(1),
            Collective::PointToPoint => 1,
        };
        self.slowest_alpha(g) * f64::from(steps) * self.effective_flops()
    }

    /// The flat profile a mesh degrades to when a consumer needs a scalar
    /// [`MachineSpec`] (the execution simulator's inputs, display): the
    /// weakest compute, the innermost bandwidth as the link rate, and the
    /// slowest bandwidth anywhere as the internode rate.
    pub fn effective_spec(&self) -> MachineSpec {
        MachineSpec {
            name: self.name.clone(),
            peak_flops: self.effective_flops(),
            link_bandwidth: self.axes.first().map_or(f64::NAN, |a| a.bandwidth),
            internode_bandwidth: self
                .axes
                .iter()
                .map(|a| a.bandwidth)
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// Parse a mesh from a JSON value. Two shapes are accepted:
    ///
    /// * a scalar machine object
    ///   `{"name": …, "peak_flops": F, "link_bandwidth": B, …}` — becomes
    ///   the flat single-axis mesh of that profile
    ///   (`internode_bandwidth` is accepted and ignored by the flat
    ///   analytical model);
    /// * a mesh object `{"name": …, "axes": [{"name": …, "size": n,
    ///   "bandwidth": B, "peak_flops": F, "alpha": a}, …]}` with axes
    ///   innermost first (`alpha` defaults to 0).
    ///
    /// The result is [validated](DeviceMesh::validate).
    pub fn from_json_value(v: &json::Value) -> Result<Self, String> {
        let name = v
            .get("name")
            .and_then(json::Value::as_str)
            .unwrap_or("custom")
            .to_string();
        let mesh = if let Some(axes) = v.get("axes") {
            let axes = axes
                .as_array()
                .ok_or_else(|| "\"axes\" must be an array".to_string())?;
            let mut parsed = Vec::with_capacity(axes.len());
            for (i, a) in axes.iter().enumerate() {
                let num = |key: &str| {
                    a.get(key)
                        .and_then(json::Value::as_f64)
                        .ok_or_else(|| format!("axis {i}: missing or non-numeric \"{key}\""))
                };
                parsed.push(MeshAxis {
                    name: a
                        .get("name")
                        .and_then(json::Value::as_str)
                        .map_or_else(|| format!("axis{i}"), str::to_string),
                    size: a
                        .get("size")
                        .and_then(json::Value::as_u64)
                        .ok_or_else(|| format!("axis {i}: missing or invalid \"size\""))?
                        .try_into()
                        .map_err(|_| format!("axis {i}: \"size\" out of range"))?,
                    alpha: a.get("alpha").and_then(json::Value::as_f64).unwrap_or(0.0),
                    bandwidth: num("bandwidth")?,
                    peak_flops: num("peak_flops")?,
                });
            }
            Self { name, axes: parsed }
        } else {
            let num = |key: &str| {
                v.get(key)
                    .and_then(json::Value::as_f64)
                    .ok_or_else(|| format!("machine object needs \"axes\" or a numeric \"{key}\""))
            };
            Self::flat(&MachineSpec {
                name,
                peak_flops: num("peak_flops")?,
                link_bandwidth: num("link_bandwidth")?,
                internode_bandwidth: v
                    .get("internode_bandwidth")
                    .and_then(json::Value::as_f64)
                    .unwrap_or(f64::INFINITY),
            })
        };
        mesh.validate()?;
        Ok(mesh)
    }

    /// Parse a mesh from JSON text (see [`DeviceMesh::from_json_value`]).
    pub fn from_json_str(src: &str) -> Result<Self, String> {
        Self::from_json_value(&json::parse(src)?)
    }

    /// Serialize as a canonical mesh-shaped JSON object (the second shape
    /// [`DeviceMesh::from_json_value`] accepts; round-trips exactly).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"axes\": [",
            json::escape(&self.name)
        );
        for (i, a) in self.axes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"size\": {}, \"alpha\": {}, \
                 \"bandwidth\": {}, \"peak_flops\": {}}}",
                json::escape(&a.name),
                a.size,
                json::number(a.alpha),
                json::number(a.bandwidth),
                json::number(a.peak_flops)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Topology-aware `t_l(v, φ)`: like [`crate::layer_cost`] but with each
/// communication event charged at the ratio of the links its group
/// actually spans, plus per-ring-step latency.
///
/// Events are grouped into bandwidth classes in first-seen order and each
/// class's bytes are summed before the single `r_class · bytes` multiply —
/// so a flat mesh (one class, `α = 0`) evaluates the identical expression
/// `compute + r · Σ bytes` as the scalar model, bit for bit.
pub fn mesh_layer_cost(node: &Node, cfg: &Config, mesh: &DeviceMesh) -> f64 {
    debug_assert_eq!(
        cfg.rank(),
        node.rank(),
        "config rank mismatch for '{}'",
        node.name
    );
    let compute = layer_compute_flops(node, cfg);
    // (ratio bits, ratio, summed bytes) per bandwidth class.
    let mut classes: Vec<(u64, f64, f64)> = Vec::new();
    let mut latency = 0.0;
    for e in layer_comm_events(node, cfg) {
        let r = mesh.ratio_for_group(e.group);
        let bits = r.to_bits();
        match classes.iter_mut().find(|(b, _, _)| *b == bits) {
            Some(c) => c.2 += e.traffic_bytes(),
            None => classes.push((bits, r, e.traffic_bytes())),
        }
        latency += mesh.latency_flops(e.collective, e.group);
    }
    let mut cost = compute;
    for (_, r, bytes) in classes {
        cost += r * bytes;
    }
    cost + latency
}

/// Topology-aware `t_x(u, v, φ)` in FLOP units: the redistribution bytes
/// of the edge charged at the ratio of the group the two endpoint
/// configurations span (`max` of their device counts — the redistribution
/// reaches across the larger footprint), plus one point-to-point latency
/// when any bytes move. Bit-identical to `r · transfer_bytes(…)` on a
/// flat mesh.
pub fn mesh_transfer_cost(
    src: &Node,
    cu: &Config,
    dst: &Node,
    dst_slot: usize,
    cv: &Config,
    mesh: &DeviceMesh,
) -> f64 {
    let bytes = transfer_bytes(src, cu, dst, dst_slot, cv);
    let g = cu.product().max(cv.product()).min(u64::from(u32::MAX)) as u32;
    let cost = mesh.ratio_for_group(g) * bytes;
    if bytes > 0.0 {
        cost + mesh.latency_flops(Collective::PointToPoint, g)
    } else {
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigRule;
    use crate::enumerate_configs;
    use crate::layer::layer_cost;
    use pase_graph::{DimRole, IterDim, OpKind, TensorRef};

    fn fc() -> Node {
        let dims = vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("n", 256, DimRole::Param),
            IterDim::new("c", 512, DimRole::Reduction),
        ];
        let sizes: Vec<u64> = dims.iter().map(|d| d.size).collect();
        Node {
            name: "fc".into(),
            op: OpKind::FullyConnected,
            iter_space: dims,
            inputs: vec![TensorRef::aligned(vec![0, 2], &sizes)],
            output: TensorRef::aligned(vec![0, 1], &sizes),
            params: vec![TensorRef::aligned(vec![1, 2], &sizes)],
        }
    }

    fn two_tier() -> DeviceMesh {
        DeviceMesh::cluster(&MachineSpec::gtx1080ti(), 4, 8)
    }

    #[test]
    fn flat_mesh_reproduces_scalar_ratio_bitwise() {
        for spec in [
            MachineSpec::gtx1080ti(),
            MachineSpec::rtx2080ti(),
            MachineSpec::test_machine(),
        ] {
            let mesh = DeviceMesh::flat(&spec);
            for g in [1, 2, 8, 64, 4096] {
                assert_eq!(
                    mesh.ratio_for_group(g).to_bits(),
                    spec.flop_byte_ratio().to_bits()
                );
                assert_eq!(mesh.slowest_alpha(g), 0.0);
            }
        }
    }

    #[test]
    fn flat_mesh_layer_cost_is_bit_identical_to_scalar() {
        let n = fc();
        let spec = MachineSpec::gtx1080ti();
        let mesh = DeviceMesh::flat(&spec);
        let r = spec.flop_byte_ratio();
        for cfg in enumerate_configs(&n, &ConfigRule::new(16).allow_idle()) {
            assert_eq!(
                mesh_layer_cost(&n, &cfg, &mesh).to_bits(),
                layer_cost(&n, &cfg, r).to_bits(),
                "diverged at {cfg}"
            );
        }
    }

    #[test]
    fn group_resolution_picks_the_smallest_covering_prefix() {
        let m = two_tier(); // 8 gpus/node × 4 nodes
                            // groups within one node see only the PCIe tier
        assert_eq!(m.slowest_bandwidth(2), 12.0e9);
        assert_eq!(m.slowest_bandwidth(8), 12.0e9);
        // larger groups cross InfiniBand, the slower link
        assert_eq!(m.slowest_bandwidth(9), 6.0e9);
        assert_eq!(m.slowest_bandwidth(32), 6.0e9);
        // oversubscribed groups saturate at the outermost tier
        assert_eq!(m.slowest_bandwidth(1000), 6.0e9);
        assert!(m.slowest_alpha(8) < m.slowest_alpha(9));
    }

    #[test]
    fn cross_node_groups_cost_more_than_intra_node() {
        let m = two_tier();
        assert!(m.ratio_for_group(32) > m.ratio_for_group(8));
        // latency: all-reduce pays 2(g−1) ring steps
        let lat8 = m.latency_flops(Collective::AllReduce, 8);
        assert_eq!(lat8, 5e-6 * 14.0 * 11.3e12);
        assert!(m.latency_flops(Collective::AllReduce, 16) > lat8);
    }

    #[test]
    fn heterogeneous_compute_is_bottlenecked_by_the_weakest_device() {
        let mut m = two_tier();
        m.axes[1].peak_flops = 5.0e12; // older GPUs on the far nodes
        assert_eq!(m.effective_flops(), 5.0e12);
        assert_eq!(m.effective_spec().peak_flops, 5.0e12);
    }

    #[test]
    fn validate_rejects_hostile_shapes() {
        let spec = MachineSpec::gtx1080ti();
        assert!(DeviceMesh {
            name: "e".into(),
            axes: vec![]
        }
        .validate()
        .is_err());
        let mut m = DeviceMesh::flat(&spec);
        m.axes[0].size = 0;
        assert!(m.validate().is_err());
        let mut m = DeviceMesh::flat(&spec);
        m.axes[0].bandwidth = 0.0;
        assert!(m.validate().is_err());
        let mut m = DeviceMesh::flat(&spec);
        m.axes[0].alpha = -1.0;
        assert!(m.validate().is_err());
        assert!(DeviceMesh::flat(&spec).validate().is_ok());
        assert!(two_tier().validate().is_ok());
    }

    #[test]
    fn json_round_trips_and_accepts_both_shapes() {
        let m = two_tier();
        let back = DeviceMesh::from_json_str(&m.to_json()).unwrap();
        assert_eq!(back, m);
        // scalar machine shape becomes a flat mesh
        let flat = DeviceMesh::from_json_str(
            "{\"name\": \"lab\", \"peak_flops\": 1e12, \"link_bandwidth\": 1e9}",
        )
        .unwrap();
        assert_eq!(flat.axes.len(), 1);
        assert_eq!(flat.ratio_for_group(8), 1000.0);
        assert_eq!(flat.name, "lab");
        // hostile inputs are parse errors, not NaN costs
        assert!(DeviceMesh::from_json_str("{\"axes\": []}").is_err());
        assert!(DeviceMesh::from_json_str(
            "{\"axes\": [{\"size\": 0, \"bandwidth\": 1e9, \"peak_flops\": 1e12}]}"
        )
        .is_err());
        assert!(DeviceMesh::from_json_str("{\"name\": \"x\"}").is_err());
    }

    #[test]
    fn transfer_cost_uses_the_span_of_the_larger_endpoint() {
        let n = fc();
        let mesh = two_tier();
        let cu = Config::new(&[8, 1, 1]);
        let cv = Config::new(&[1, 32, 1]);
        let bytes = transfer_bytes(&n, &cu, &n, 0, &cv);
        assert!(bytes > 0.0);
        let got = mesh_transfer_cost(&n, &cu, &n, 0, &cv, &mesh);
        let expect =
            mesh.ratio_for_group(32) * bytes + mesh.latency_flops(Collective::PointToPoint, 32);
        assert_eq!(got.to_bits(), expect.to_bits());
    }
}
