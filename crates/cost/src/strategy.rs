//! Parallelization strategies and the direct evaluation of `F(G, φ)`.

use crate::config::Config;
use crate::layer::layer_cost;
use crate::transfer::transfer_cost;
use pase_graph::{Graph, NodeId};
use std::fmt;

/// A complete parallelization strategy `φ`: one configuration per node,
/// indexed by `NodeId::index`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Strategy {
    configs: Vec<Config>,
}

impl Strategy {
    /// Build from per-node configurations (must cover every node, in id
    /// order).
    pub fn new(configs: Vec<Config>) -> Self {
        Self { configs }
    }

    /// The all-ones (single-device) strategy for `graph`.
    pub fn sequential(graph: &Graph) -> Self {
        Self {
            configs: graph
                .nodes()
                .iter()
                .map(|n| Config::ones(n.rank()))
                .collect(),
        }
    }

    /// Configuration of node `v`.
    pub fn config(&self, v: NodeId) -> &Config {
        &self.configs[v.index()]
    }

    /// Mutable configuration of node `v` (used by the MCMC search).
    pub fn config_mut(&mut self, v: NodeId) -> &mut Config {
        &mut self.configs[v.index()]
    }

    /// All configurations in node-id order.
    pub fn configs(&self) -> &[Config] {
        &self.configs
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the strategy covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Maximum number of devices used by any single layer.
    pub fn max_devices_used(&self) -> u64 {
        self.configs.iter().map(Config::product).max().unwrap_or(1)
    }

    /// Render as a per-layer table (Table II style) for `graph`.
    pub fn report(&self, graph: &Graph) -> String {
        let mut s = String::new();
        use fmt::Write;
        let _ = writeln!(
            s,
            "{:<28} {:>10} {:<10} configuration",
            "layer", "op", "dims"
        );
        for (id, node) in graph.iter() {
            let _ = writeln!(
                s,
                "{:<28} {:>10} {:<10} {}",
                node.name,
                node.op.tag(),
                node.dims_string(),
                self.config(id)
            );
        }
        s
    }
}

/// Check that `strategy` is valid for `graph` under `rule`: every node
/// covered with a configuration of matching rank, split factors that are
/// powers of two within the dimension extents (and 1 on unsplittable
/// dims), and `∏ c_i ≤ p`. Imported strategies (e.g. via
/// [`crate::from_sharding_json`]) should be validated before costing.
pub fn validate_strategy(
    graph: &Graph,
    strategy: &Strategy,
    rule: &crate::config::ConfigRule,
) -> Result<(), String> {
    if strategy.len() != graph.len() {
        return Err(format!(
            "strategy covers {} nodes but the graph has {}",
            strategy.len(),
            graph.len()
        ));
    }
    for (id, node) in graph.iter() {
        let cfg = strategy.config(id);
        if cfg.rank() != node.rank() {
            return Err(format!(
                "layer '{}': configuration rank {} != iteration-space rank {}",
                node.name,
                cfg.rank(),
                node.rank()
            ));
        }
        if cfg.product() > u64::from(rule.devices) {
            return Err(format!(
                "layer '{}': {} uses {} > p = {} devices",
                node.name,
                cfg,
                cfg.product(),
                rule.devices
            ));
        }
        for (i, d) in node.iter_space.iter().enumerate() {
            let c = cfg.split(i);
            if !c.is_power_of_two() {
                return Err(format!(
                    "layer '{}' dim '{}': split {} is not a power of two",
                    node.name, d.name, c
                ));
            }
            if u64::from(c) > d.size {
                return Err(format!(
                    "layer '{}' dim '{}': split {} exceeds extent {}",
                    node.name, d.name, c, d.size
                ));
            }
            if c > 1 && !d.splittable {
                return Err(format!(
                    "layer '{}' dim '{}' is not splittable",
                    node.name, d.name
                ));
            }
        }
    }
    Ok(())
}

/// Directly evaluate the cost function of Equation (1):
/// `F(G, φ) = Σ_v t_l(v, φ, r) + Σ_(u,v)∈E r·t_x(u, v, φ)`.
///
/// This is the ground truth against which the dynamic program (and any
/// search heuristic) is validated: the DP's returned minimum must equal the
/// direct evaluation of its extracted strategy.
pub fn evaluate(graph: &Graph, strategy: &Strategy, r: f64) -> f64 {
    assert_eq!(
        strategy.len(),
        graph.len(),
        "strategy must cover every node"
    );
    let mut total = 0.0;
    for (id, node) in graph.iter() {
        total += layer_cost(node, strategy.config(id), r);
    }
    for e in graph.edges() {
        let u = graph.node(e.src);
        let v = graph.node(e.dst);
        total += transfer_cost(
            u,
            strategy.config(e.src),
            v,
            e.dst_slot as usize,
            strategy.config(e.dst),
            r,
        );
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn two_fc_graph() -> Graph {
        let mk = |name: &str, ins: usize| {
            let dims = vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 128, DimRole::Param),
                IterDim::new("c", 128, DimRole::Reduction),
            ];
            Node {
                name: name.into(),
                op: OpKind::FullyConnected,
                iter_space: dims,
                inputs: (0..ins)
                    .map(|_| TensorRef::new(vec![0, 2], vec![64, 128]))
                    .collect(),
                output: TensorRef::new(vec![0, 1], vec![64, 128]),
                params: vec![TensorRef::new(vec![1, 2], vec![128, 128])],
            }
        };
        let mut b = GraphBuilder::new();
        let u = b.add_node(mk("fc1", 0));
        let v = b.add_node(mk("fc2", 1));
        b.connect(u, v);
        b.build().unwrap()
    }

    #[test]
    fn sequential_strategy_cost_is_total_flops() {
        let g = two_fc_graph();
        let s = Strategy::sequential(&g);
        assert_eq!(evaluate(&g, &s, 1000.0), g.total_step_flops());
    }

    #[test]
    fn evaluate_sums_layer_and_edge_terms() {
        let g = two_fc_graph();
        let r = 500.0;
        let s = Strategy::new(vec![Config::new(&[8, 1, 1]), Config::new(&[1, 1, 8])]);
        let by_hand = {
            use crate::layer::layer_cost;
            use crate::transfer::transfer_cost;
            layer_cost(g.node(NodeId(0)), s.config(NodeId(0)), r)
                + layer_cost(g.node(NodeId(1)), s.config(NodeId(1)), r)
                + transfer_cost(
                    g.node(NodeId(0)),
                    s.config(NodeId(0)),
                    g.node(NodeId(1)),
                    0,
                    s.config(NodeId(1)),
                    r,
                )
        };
        assert_eq!(evaluate(&g, &s, r), by_hand);
    }

    #[test]
    fn aligned_hybrid_beats_misaligned() {
        // fc1 splits n, fc2 splits c (same tensor dim) → free edge;
        // fc1 splits b, fc2 splits c → resharding. Aligned must cost less.
        let g = two_fc_graph();
        let r = 1000.0;
        let aligned = Strategy::new(vec![Config::new(&[1, 8, 1]), Config::new(&[1, 1, 8])]);
        let misaligned = Strategy::new(vec![Config::new(&[8, 1, 1]), Config::new(&[1, 1, 8])]);
        assert!(evaluate(&g, &aligned, r) < evaluate(&g, &misaligned, r));
    }

    #[test]
    fn report_lists_every_layer() {
        let g = two_fc_graph();
        let s = Strategy::sequential(&g);
        let rep = s.report(&g);
        assert!(rep.contains("fc1"));
        assert!(rep.contains("fc2"));
        assert!(rep.contains("(1, 1, 1)"));
    }

    #[test]
    fn validate_strategy_accepts_and_rejects() {
        use crate::config::ConfigRule;
        let g = two_fc_graph();
        let rule = ConfigRule::new(8);
        let good = Strategy::new(vec![Config::new(&[8, 1, 1]), Config::new(&[2, 2, 2])]);
        assert!(validate_strategy(&g, &good, &rule).is_ok());
        // too many devices
        let over = Strategy::new(vec![Config::new(&[16, 1, 1]), Config::ones(3)]);
        assert!(validate_strategy(&g, &over, &rule)
            .unwrap_err()
            .contains("devices"));
        // non-power-of-two
        let npo2 = Strategy::new(vec![Config::new(&[3, 1, 1]), Config::ones(3)]);
        assert!(validate_strategy(&g, &npo2, &rule)
            .unwrap_err()
            .contains("power of two"));
        // rank mismatch
        let rank = Strategy::new(vec![Config::ones(2), Config::ones(3)]);
        assert!(validate_strategy(&g, &rank, &rule)
            .unwrap_err()
            .contains("rank"));
        // coverage mismatch
        let short = Strategy::new(vec![Config::ones(3)]);
        assert!(validate_strategy(&g, &short, &rule)
            .unwrap_err()
            .contains("covers"));
        // split beyond extent
        let wide = Strategy::new(vec![Config::new(&[128, 1, 1]), Config::ones(3)]);
        let rule_big = ConfigRule::new(128);
        assert!(validate_strategy(&g, &wide, &rule_big)
            .unwrap_err()
            .contains("extent"));
    }

    #[test]
    fn validate_strategy_rejects_unsplittable_dims() {
        use crate::config::ConfigRule;
        let mut b = GraphBuilder::new();
        b.add_node(Node {
            name: "conv".into(),
            op: OpKind::Conv2d {
                kernel_h: 3,
                kernel_w: 3,
                stride: 1,
            },
            iter_space: vec![
                IterDim::new("b", 8, DimRole::Batch),
                IterDim::fixed("r", 4, DimRole::Reduction),
            ],
            inputs: vec![],
            output: TensorRef::new(vec![0], vec![8]),
            params: vec![],
        });
        let g = b.build().unwrap();
        let s = Strategy::new(vec![Config::new(&[1, 2])]);
        assert!(validate_strategy(&g, &s, &ConfigRule::new(8))
            .unwrap_err()
            .contains("not splittable"));
    }

    #[test]
    fn max_devices_used_takes_max_product() {
        let s = Strategy::new(vec![Config::new(&[2, 2, 1]), Config::new(&[1, 1, 8])]);
        assert_eq!(s.max_devices_used(), 8);
    }
}
