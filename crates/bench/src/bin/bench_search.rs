//! A/B wall-clock smoke job for the search hot paths.
//!
//! Times cost-table construction and the full DP per benchmark model at a
//! small device count, in both the baseline configuration (no interning,
//! strict sequential table fill) and the optimized one (structural
//! interning + wavefront-parallel fill), then writes the medians to
//! `BENCH_search.json`. Mirrors the criterion benches
//! `cost_tables/inception_v3/p8` and `find_best_strategy/<model>/p8` but
//! runs in seconds, so it can gate a PR.

use pase_core::{find_best_strategy, DpOptions};
use pase_cost::{ConfigRule, CostTables, MachineSpec, TableOptions};
use pase_models::Benchmark;
use std::fmt::Write as _;
use std::time::Instant;

const SAMPLES: usize = 10;
const P: u32 = 8;

/// Median wall-clock seconds of `SAMPLES` runs of `f`.
fn median_secs<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            let out = f();
            let dt = t0.elapsed().as_secs_f64();
            drop(out);
            dt
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let machine = MachineSpec::gtx1080ti();
    let baseline_tables = TableOptions {
        intern: false,
        parallel: false,
    };
    let optimized_tables = TableOptions::default();
    let baseline_dp = DpOptions {
        parallel: false,
        ..DpOptions::default()
    };
    let optimized_dp = DpOptions::default();

    let mut json = String::from("{\n  \"p\": 8,\n  \"samples\": 10,\n  \"models\": {\n");
    let all = Benchmark::all();
    for (i, bench) in all.iter().enumerate() {
        let g = bench.build_for(P);
        let rule = ConfigRule::new(P);

        let build_base = median_secs(|| CostTables::build_with(&g, rule, &machine, &baseline_tables));
        let build_opt = median_secs(|| CostTables::build_with(&g, rule, &machine, &optimized_tables));

        let tables = CostTables::build_with(&g, rule, &machine, &optimized_tables);
        let search_base = median_secs(|| find_best_strategy(&g, &tables, &baseline_dp));
        let search_opt = median_secs(|| find_best_strategy(&g, &tables, &optimized_dp));

        let hit = tables.intern_stats().hit_rate();
        println!(
            "{:<12} cost_tables {:.2}ms -> {:.2}ms ({:.2}x)   find_best_strategy {:.2}ms -> {:.2}ms ({:.2}x)   intern hit {:.0}%",
            bench.name(),
            build_base * 1e3,
            build_opt * 1e3,
            build_base / build_opt.max(1e-12),
            search_base * 1e3,
            search_opt * 1e3,
            search_base / search_opt.max(1e-12),
            hit * 100.0
        );

        let _ = write!(
            json,
            "    \"{}\": {{\n      \"cost_tables\": {{\"baseline_s\": {:.6}, \"optimized_s\": {:.6}}},\n      \"find_best_strategy\": {{\"baseline_s\": {:.6}, \"optimized_s\": {:.6}}},\n      \"intern_hit_rate\": {:.4}\n    }}{}\n",
            bench.name(),
            build_base,
            build_opt,
            search_base,
            search_opt,
            hit,
            if i + 1 < all.len() { "," } else { "" }
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_search.json", &json).expect("write BENCH_search.json");
    println!("wrote BENCH_search.json");
}
