//! A/B wall-clock smoke job for the search hot paths.
//!
//! For each benchmark model and each `p ∈ {8, 32, 64}` (the regime where
//! dominance pruning starts to pay), times:
//!
//! * cost-table construction, baseline (no interning, sequential fill) vs
//!   optimized (structural interning + parallel fill);
//! * the dominance-pruning pass itself, with its K reduction — reported as
//!   the total configuration-space size `Σ_v |C(v)|` (`k_before`/`k_after`;
//!   each DP position's work is a product of per-node K's, so the sum is
//!   the aggregate that pruning shrinks) plus the per-node maximum
//!   (`max_k_before`/`max_k_after`, which repetition-free conv stacks can
//!   keep unchanged even when thousands of configs are removed elsewhere);
//! * the full DP, unpruned vs pruned (identical optimum — asserted here —
//!   but the pruned tables shrink every dependent-set table
//!   multiplicatively);
//! * the DP table fill alone, single-threaded, with each [`DpKernel`]
//!   (`dp_fill_scalar_s` / `dp_fill_tiled_s` — the sequential-fill span of
//!   a traced `parallel(false)` run, so scheduling noise is excluded and
//!   the kernels are compared core-for-core). The tiled kernel's speedup
//!   on the two biggest cells is asserted, and both kernels must agree on
//!   the optimum bit-for-bit;
//! * the Pareto-frontier DP fill, incremental vs run-blocked microkernel
//!   (`dp_fill_frontier_s` / `dp_fill_frontier_tiled_s`, same
//!   single-threaded span). Every cell asserts the min-time point of both
//!   frontier kernels is bit-identical to the scalar optimum, and the
//!   microkernel must be ≥5× faster than the incremental fill on the two
//!   biggest cells; the traced microkernel run's `SearchReport` is
//!   emitted per cell as `frontier_report`.
//!
//! Medians are written to `BENCH_search.json`. Mirrors the criterion
//! benches but runs in seconds, so it can gate a PR.

use pase_core::{DpKernel, DpOptions, Search, SearchReport};
use pase_cost::{
    ConfigRule, CostTables, DeviceMesh, MachineSpec, PruneOptions, PrunedTables, TableOptions,
};
use pase_models::Benchmark;
use pase_obs::{phase, Trace};
use std::fmt::Write as _;
use std::time::Instant;

const PS: [u32; 3] = [8, 32, 64];

/// Fewer samples at larger `p` keeps the whole job in smoke-test range.
fn samples_for(p: u32) -> usize {
    match p {
        0..=8 => 10,
        9..=32 => 5,
        _ => 3,
    }
}

/// Median wall-clock seconds of `samples` runs of `f`.
fn median_secs<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            let out = f();
            let dt = t0.elapsed().as_secs_f64();
            drop(out);
            dt
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Median of `samples` values of `f` (for measurements that are not plain
/// wall-clock, e.g. a traced span's duration).
fn median_of(samples: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut vals: Vec<f64> = (0..samples).map(|_| f()).collect();
    vals.sort_by(f64::total_cmp);
    vals[vals.len() / 2]
}

fn main() {
    let machine = MachineSpec::gtx1080ti();
    let baseline_tables = TableOptions {
        intern: false,
        parallel: false,
        ..TableOptions::default()
    };
    let optimized_tables = TableOptions::default();
    let dp = DpOptions::default();

    let mut json = String::from("{\n  \"models\": {\n");
    // How many cells the two-tier cluster mesh moved away from the flat
    // optimum (cost bits or chosen strategy) — at least one must, or the
    // topology-aware model is not actually being exercised.
    let mut mesh_diverged = 0usize;
    let mut mesh_moved_strategy = 0usize;
    let all = Benchmark::all();
    for (i, bench) in all.iter().enumerate() {
        let _ = write!(json, "    \"{}\": {{\n", bench.name());
        for (pi, &p) in PS.iter().enumerate() {
            let samples = samples_for(p);
            let g = bench.build_for(p);
            let rule = ConfigRule::new(p);

            let build_base = median_secs(samples, || {
                CostTables::build_with(&g, rule, &machine, &baseline_tables)
            });
            let build_opt = median_secs(samples, || {
                CostTables::build_with(&g, rule, &machine, &optimized_tables)
            });

            let tables = CostTables::build_with(&g, rule, &machine, &optimized_tables);
            let prune_s = median_secs(samples, || {
                PrunedTables::build(&g, &tables, &PruneOptions::default())
            });
            let pruned = PrunedTables::build(&g, &tables, &PruneOptions::default());
            let ps = *pruned.stats();

            let search_plain = median_secs(samples, || {
                Search::new(&g).tables(&tables).dp_options(dp).run()
            });
            let search_pruned = median_secs(samples, || {
                Search::new(&g).tables(pruned.tables()).dp_options(dp).run()
            });

            // Kernel A/B: the sequential-fill span of a single-threaded
            // traced run isolates the table-fill inner loop from rayon
            // scheduling, so scalar vs tiled is a core-for-core comparison.
            // The big p=64 cells are slow single-threaded — keep samples low.
            let fill_samples = samples.min(3);
            let fill_secs = |kernel: DpKernel| -> (f64, f64) {
                let mut cost = f64::NAN;
                let s = median_of(fill_samples, || {
                    let trace = Trace::new();
                    cost = Search::new(&g)
                        .tables(&tables)
                        .dp_options(dp)
                        .parallel(false)
                        .dp_kernel(kernel)
                        .trace(&trace)
                        .run()
                        .expect_found(bench.name())
                        .cost;
                    trace
                        .span_time_where(|n| n == phase::SEQUENTIAL_FILL)
                        .as_secs_f64()
                });
                (s, cost)
            };
            let (fill_scalar, scalar_cost) = fill_secs(DpKernel::Scalar);
            let (fill_tiled, tiled_cost) = fill_secs(DpKernel::Tiled);
            assert_eq!(
                scalar_cost.to_bits(),
                tiled_cost.to_bits(),
                "{} p={p}: tiled optimum {tiled_cost} != scalar {scalar_cost}",
                bench.name()
            );
            // Acceptance floor for the microkernel on the two biggest
            // cells (the rest are too fast for a stable ratio).
            if p == 64 && matches!(bench, Benchmark::InceptionV3 | Benchmark::Transformer) {
                assert!(
                    fill_tiled * 3.0 <= fill_scalar,
                    "{} p={p}: tiled fill {fill_tiled:.4}s not >=3x faster than scalar {fill_scalar:.4}s",
                    bench.name()
                );
            }

            // Frontier A/B: the same single-threaded sequential-fill span
            // with the Pareto DP on, once per frontier kernel (Scalar =
            // the incremental per-entry merge, Tiled = the run-blocked
            // microkernel). One sample each — the big cells are slow
            // single-threaded under the incremental kernel. Both kernels'
            // min-time point must stay bit-identical to the scalar optimum
            // (the ISSUE acceptance criterion, asserted on every cell of
            // this grid), and the tiled kernel carries a >=5x acceptance
            // floor over the incremental fill on the two biggest cells.
            let frontier_fill = |kernel: DpKernel| -> (f64, SearchReport) {
                let trace = Trace::new();
                let outcome = Search::new(&g)
                    .tables(&tables)
                    .dp_options(dp)
                    .parallel(false)
                    .dp_kernel(kernel)
                    .trace(&trace)
                    .frontier()
                    .run()
                    .into_outcome();
                let cost = outcome.found().expect(bench.name()).cost;
                assert_eq!(
                    cost.to_bits(),
                    scalar_cost.to_bits(),
                    "{} p={p}: frontier ({}) min-time {cost} != scalar optimum {scalar_cost}",
                    bench.name(),
                    outcome.stats().dp_kernel
                );
                let fill = trace
                    .span_time_where(|n| n == phase::SEQUENTIAL_FILL)
                    .as_secs_f64();
                (
                    fill,
                    SearchReport::new(bench.name(), p, &outcome, Some(&trace)),
                )
            };
            let (dp_fill_frontier_s, incr_report) = frontier_fill(DpKernel::Scalar);
            let (dp_fill_frontier_tiled_s, frontier_report) = frontier_fill(DpKernel::Tiled);
            assert_eq!(incr_report.stats.dp_kernel, "frontier");
            assert_eq!(frontier_report.stats.dp_kernel, "frontier-tiled");
            let frontier_len = frontier_report.stats.frontier_len;
            // Acceptance floor for the frontier microkernel (ISSUE 10) on
            // the two biggest cells.
            if p == 64 && matches!(bench, Benchmark::InceptionV3 | Benchmark::Transformer) {
                assert!(
                    dp_fill_frontier_tiled_s * 5.0 <= dp_fill_frontier_s,
                    "{} p={p}: tiled frontier fill {dp_fill_frontier_tiled_s:.4}s not >=5x \
                     faster than incremental {dp_fill_frontier_s:.4}s",
                    bench.name()
                );
            }

            // Exactness gate: the pruned optimum must be bit-identical.
            // The pruned run is traced so the cell's search report carries
            // a per-phase wall-time breakdown.
            let plain_cost = Search::new(&g)
                .tables(&tables)
                .dp_options(dp)
                .run()
                .expect_found(bench.name())
                .cost;
            let trace = Trace::new();
            let pruned_outcome = Search::new(&g)
                .tables(&tables)
                .dp_options(dp)
                .pruning(PruneOptions::default())
                .trace(&trace)
                .run()
                .into_outcome();
            let pruned_cost = pruned_outcome.found().expect(bench.name()).cost;
            assert_eq!(
                plain_cost.to_bits(),
                pruned_cost.to_bits(),
                "{} p={p}: pruned optimum {pruned_cost} != unpruned {plain_cost}",
                bench.name()
            );
            let report = SearchReport::new(bench.name(), p, &pruned_outcome, Some(&trace));

            // Mesh sweep: the same cell planned on its explicit flat mesh
            // (must stay bit-identical to the scalar tables — the
            // tentpole's parity anchor, asserted on every cell of this
            // grid) and on the paper's two-tier testbed mesh (8 devices
            // per node over the slower inter-node fabric), which may move
            // the optimum.
            let flat_best = Search::new(&g)
                .tables(&CostTables::build_mesh(
                    &g,
                    rule,
                    &DeviceMesh::flat(&machine),
                    &optimized_tables,
                    None,
                ))
                .dp_options(dp)
                .run()
                .expect_found(bench.name());
            assert_eq!(
                flat_best.cost.to_bits(),
                plain_cost.to_bits(),
                "{} p={p}: flat mesh optimum {} != scalar optimum {plain_cost}",
                bench.name(),
                flat_best.cost
            );
            let tiered = DeviceMesh::cluster(&machine, (p / 8).max(1), p.min(8));
            let t0 = Instant::now();
            let tiered_best = Search::new(&g)
                .tables(&CostTables::build_mesh(
                    &g,
                    rule,
                    &tiered,
                    &optimized_tables,
                    None,
                ))
                .dp_options(dp)
                .run()
                .expect_found(bench.name());
            let mesh_tiered_s = t0.elapsed().as_secs_f64();
            assert!(
                tiered_best.cost >= flat_best.cost,
                "{} p={p}: a slower inter-node fabric cannot make the optimum cheaper \
                 (flat {}, tiered {})",
                bench.name(),
                flat_best.cost,
                tiered_best.cost
            );
            let strategy_moved = tiered_best.config_ids != flat_best.config_ids;
            let cell_diverged =
                strategy_moved || tiered_best.cost.to_bits() != flat_best.cost.to_bits();
            mesh_diverged += usize::from(cell_diverged);
            mesh_moved_strategy += usize::from(strategy_moved);

            let hit = tables.intern_stats().hit_rate_opt();
            let hit_pct = hit.map_or_else(|| "n/a".to_string(), |h| format!("{:.0}%", h * 100.0));
            println!(
                "{:<12} p={:<3} cost_tables {:.2}ms -> {:.2}ms ({:.2}x)   prune {:.2}ms ΣK {} -> {} (max {} -> {})   search {:.2}ms -> {:.2}ms ({:.2}x)   dp_fill(1t) scalar {:.2}ms -> tiled {:.2}ms ({:.2}x)   frontier {:.2}ms -> tiled {:.2}ms ({:.2}x, {} points)   mesh flat {:.4e} -> tiered {:.4e}{}   intern hit {}",
                bench.name(),
                p,
                build_base * 1e3,
                build_opt * 1e3,
                build_base / build_opt.max(1e-12),
                prune_s * 1e3,
                ps.configs_before,
                ps.configs_after,
                ps.k_before,
                ps.k_after,
                search_plain * 1e3,
                search_pruned * 1e3,
                search_plain / search_pruned.max(1e-12),
                fill_scalar * 1e3,
                fill_tiled * 1e3,
                fill_scalar / fill_tiled.max(1e-12),
                dp_fill_frontier_s * 1e3,
                dp_fill_frontier_tiled_s * 1e3,
                dp_fill_frontier_s / dp_fill_frontier_tiled_s.max(1e-12),
                frontier_len,
                flat_best.cost,
                tiered_best.cost,
                if strategy_moved {
                    " (strategy moved)"
                } else if cell_diverged {
                    " (cost moved)"
                } else {
                    ""
                },
                hit_pct
            );

            let hit_json = hit.map_or_else(|| "null".to_string(), |h| format!("{h:.4}"));
            let _ = write!(
                json,
                "      \"p{p}\": {{\n        \"samples\": {samples},\n        \"cost_tables\": {{\"baseline_s\": {:.6}, \"optimized_s\": {:.6}}},\n        \"prune\": {{\"prune_s\": {:.6}, \"k_before\": {}, \"k_after\": {}, \"max_k_before\": {}, \"max_k_after\": {}}},\n        \"search\": {{\"unpruned_s\": {:.6}, \"pruned_s\": {:.6}}},\n        \"dp_fill\": {{\"dp_fill_scalar_s\": {:.6}, \"dp_fill_tiled_s\": {:.6}, \"dp_fill_frontier_s\": {dp_fill_frontier_s:.6}, \"dp_fill_frontier_tiled_s\": {dp_fill_frontier_tiled_s:.6}}},\n        \"frontier_len\": {frontier_len},\n        \"frontier_report\": {},\n        \"mesh\": {{\"flat_cost\": {}, \"tiered_cost\": {}, \"tiered_axes\": {}, \"tiered_s\": {mesh_tiered_s:.6}, \"diverged\": {cell_diverged}, \"strategy_moved\": {strategy_moved}}},\n        \"intern_hit_rate\": {hit_json},\n        \"search_report\": {}\n      }}{}\n",
                build_base,
                build_opt,
                prune_s,
                ps.configs_before,
                ps.configs_after,
                ps.k_before,
                ps.k_after,
                search_plain,
                search_pruned,
                fill_scalar,
                fill_tiled,
                frontier_report.to_json(),
                flat_best.cost,
                tiered_best.cost,
                tiered.axes.len(),
                report.to_json(),
                if pi + 1 < PS.len() { "," } else { "" }
            );
        }
        let _ = write!(json, "    }}{}\n", if i + 1 < all.len() { "," } else { "" });
    }
    assert!(
        mesh_diverged >= 1,
        "no two-tier mesh cell moved the optimum away from flat — the \
         topology-aware cost model is not being exercised"
    );
    let _ = write!(
        json,
        "  }},\n  \"mesh_cells_diverged\": {mesh_diverged},\n  \
         \"mesh_cells_strategy_moved\": {mesh_moved_strategy}\n}}\n"
    );
    std::fs::write("BENCH_search.json", &json).expect("write BENCH_search.json");
    println!(
        "wrote BENCH_search.json ({mesh_diverged}/12 tiered-mesh cells diverged from flat, \
         {mesh_moved_strategy} moved the strategy)"
    );
}
