//! A/B wall-clock smoke job for the search hot paths.
//!
//! For each benchmark model and each `p ∈ {8, 32, 64}` (the regime where
//! dominance pruning starts to pay), times:
//!
//! * cost-table construction, baseline (no interning, sequential fill) vs
//!   optimized (structural interning + parallel fill);
//! * the dominance-pruning pass itself, with its K reduction — reported as
//!   the total configuration-space size `Σ_v |C(v)|` (`k_before`/`k_after`;
//!   each DP position's work is a product of per-node K's, so the sum is
//!   the aggregate that pruning shrinks) plus the per-node maximum
//!   (`max_k_before`/`max_k_after`, which repetition-free conv stacks can
//!   keep unchanged even when thousands of configs are removed elsewhere);
//! * the full DP, unpruned vs pruned (identical optimum — asserted here —
//!   but the pruned tables shrink every dependent-set table
//!   multiplicatively).
//!
//! Medians are written to `BENCH_search.json`. Mirrors the criterion
//! benches but runs in seconds, so it can gate a PR.

use pase_core::{DpOptions, Search, SearchReport};
use pase_cost::{ConfigRule, CostTables, MachineSpec, PruneOptions, PrunedTables, TableOptions};
use pase_models::Benchmark;
use pase_obs::Trace;
use std::fmt::Write as _;
use std::time::Instant;

const PS: [u32; 3] = [8, 32, 64];

/// Fewer samples at larger `p` keeps the whole job in smoke-test range.
fn samples_for(p: u32) -> usize {
    match p {
        0..=8 => 10,
        9..=32 => 5,
        _ => 3,
    }
}

/// Median wall-clock seconds of `samples` runs of `f`.
fn median_secs<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            let out = f();
            let dt = t0.elapsed().as_secs_f64();
            drop(out);
            dt
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let machine = MachineSpec::gtx1080ti();
    let baseline_tables = TableOptions {
        intern: false,
        parallel: false,
        ..TableOptions::default()
    };
    let optimized_tables = TableOptions::default();
    let dp = DpOptions::default();

    let mut json = String::from("{\n  \"models\": {\n");
    let all = Benchmark::all();
    for (i, bench) in all.iter().enumerate() {
        let _ = write!(json, "    \"{}\": {{\n", bench.name());
        for (pi, &p) in PS.iter().enumerate() {
            let samples = samples_for(p);
            let g = bench.build_for(p);
            let rule = ConfigRule::new(p);

            let build_base = median_secs(samples, || {
                CostTables::build_with(&g, rule, &machine, &baseline_tables)
            });
            let build_opt = median_secs(samples, || {
                CostTables::build_with(&g, rule, &machine, &optimized_tables)
            });

            let tables = CostTables::build_with(&g, rule, &machine, &optimized_tables);
            let prune_s = median_secs(samples, || {
                PrunedTables::build(&g, &tables, &PruneOptions::default())
            });
            let pruned = PrunedTables::build(&g, &tables, &PruneOptions::default());
            let ps = *pruned.stats();

            let search_plain = median_secs(samples, || {
                Search::new(&g).tables(&tables).dp_options(dp).run()
            });
            let search_pruned = median_secs(samples, || {
                Search::new(&g).tables(pruned.tables()).dp_options(dp).run()
            });

            // Exactness gate: the pruned optimum must be bit-identical.
            // The pruned run is traced so the cell's search report carries
            // a per-phase wall-time breakdown.
            let plain_cost = Search::new(&g)
                .tables(&tables)
                .dp_options(dp)
                .run()
                .expect_found(bench.name())
                .cost;
            let trace = Trace::new();
            let pruned_outcome = Search::new(&g)
                .tables(&tables)
                .dp_options(dp)
                .pruning(PruneOptions::default())
                .trace(&trace)
                .run()
                .into_outcome();
            let pruned_cost = pruned_outcome.found().expect(bench.name()).cost;
            assert_eq!(
                plain_cost.to_bits(),
                pruned_cost.to_bits(),
                "{} p={p}: pruned optimum {pruned_cost} != unpruned {plain_cost}",
                bench.name()
            );
            let report = SearchReport::new(bench.name(), p, &pruned_outcome, Some(&trace));

            let hit = tables.intern_stats().hit_rate();
            println!(
                "{:<12} p={:<3} cost_tables {:.2}ms -> {:.2}ms ({:.2}x)   prune {:.2}ms ΣK {} -> {} (max {} -> {})   find_best_strategy {:.2}ms -> {:.2}ms ({:.2}x)   intern hit {:.0}%",
                bench.name(),
                p,
                build_base * 1e3,
                build_opt * 1e3,
                build_base / build_opt.max(1e-12),
                prune_s * 1e3,
                ps.configs_before,
                ps.configs_after,
                ps.k_before,
                ps.k_after,
                search_plain * 1e3,
                search_pruned * 1e3,
                search_plain / search_pruned.max(1e-12),
                hit * 100.0
            );

            let _ = write!(
                json,
                "      \"p{p}\": {{\n        \"samples\": {samples},\n        \"cost_tables\": {{\"baseline_s\": {:.6}, \"optimized_s\": {:.6}}},\n        \"prune\": {{\"prune_s\": {:.6}, \"k_before\": {}, \"k_after\": {}, \"max_k_before\": {}, \"max_k_after\": {}}},\n        \"find_best_strategy\": {{\"unpruned_s\": {:.6}, \"pruned_s\": {:.6}}},\n        \"intern_hit_rate\": {:.4},\n        \"search_report\": {}\n      }}{}\n",
                build_base,
                build_opt,
                prune_s,
                ps.configs_before,
                ps.configs_after,
                ps.k_before,
                ps.k_after,
                search_plain,
                search_pruned,
                hit,
                report.to_json(),
                if pi + 1 < PS.len() { "," } else { "" }
            );
        }
        let _ = write!(json, "    }}{}\n", if i + 1 < all.len() { "," } else { "" });
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_search.json", &json).expect("write BENCH_search.json");
    println!("wrote BENCH_search.json");
}
