//! Concurrent load benchmark for the planner service.
//!
//! A/B-compares the PR 4 serve path (one cache mutex, no request
//! coalescing — reproduced exactly by `cache_shards = 1` +
//! `singleflight = false`) against the sharded + singleflight path, by
//! driving N concurrent connections of mixed cached/uncached queries
//! against an in-process server and measuring client-observed latency.
//!
//! Each client cycles through a small set of distinct cache keys (the
//! prune ε is part of the key, so varying it makes fresh keys without
//! changing the search difficulty), offset per client so the first wave
//! contends on identical keys — the singleflight case — while steady
//! state is cache-hit dominated, the lock-striping case.
//!
//! Per (model, p, concurrency, server config) the job reports req/s and
//! p50/p95/p99 latency, and writes everything to `BENCH_serve.json`.
//!
//! ```text
//! cargo run -p pase-bench --release --bin bench_serve            # full sweep
//! cargo run -p pase-bench --release --bin bench_serve -- --smoke # tier-1 gate
//! ```
//!
//! `--smoke` runs 4 connections × 20 requests against the sharded server
//! only, asserts at least one request coalesced and that shutdown drains
//! cleanly, and writes nothing.

use pase_serve::{ServeSummary, Server, ServerConfig};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Distinct cache keys per (model, p) cell: each key is a different prune
/// ε. Key 0 (ε = 0) is shared across clients' first requests, so wave one
/// exercises singleflight; the rest spread load across shards.
const KEYS: usize = 4;

/// Per-client request count in the full sweep.
const REQUESTS: usize = 50;

/// Concurrency sweep (connections = worker threads on both sides).
const CONCURRENCY: [usize; 3] = [2, 8, 16];

/// (wire model name, devices): "mlp" and "alexnet" are hit-dominated
/// cells where lock striping is the lever; "inception" searches are slow
/// enough that the first wave overlaps and singleflight decides how many
/// duplicate searches the tail pays for.
const MODELS: [(&str, u32); 3] = [("mlp", 8), ("alexnet", 8), ("inception", 8)];

fn request_line(model: &str, devices: u32, key: usize) -> String {
    format!(
        "{{\"model\": \"{model}\", \"devices\": {devices}, \"machine\": \"test\", \
         \"weak_scaling\": false, \"prune\": true, \"epsilon\": {}}}",
        key as f64 * 1e-6
    )
}

struct ClientStats {
    latencies: Vec<Duration>,
    elapsed: Duration,
}

/// One client: connect, wait on the barrier, send `requests` queries on a
/// single connection, timing each round trip.
fn run_client(
    addr: SocketAddr,
    barrier: Arc<Barrier>,
    client: usize,
    requests: usize,
    model: &str,
    devices: u32,
) -> ClientStats {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::with_capacity(requests);
    // Warm the connection with a stats probe before the barrier: by the
    // time timing starts every connection is accepted and owned by a
    // worker, so the measurements cover the serve path, not the accept
    // queue.
    writer.write_all(b"{\"stats\": true}\n").unwrap();
    let mut warmup = String::new();
    reader.read_line(&mut warmup).expect("warmup response");
    barrier.wait();
    let t0 = Instant::now();
    for i in 0..requests {
        // First request of every client is key 0 (maximal contention);
        // afterwards clients walk the key set from per-client offsets.
        let key = if i == 0 { 0 } else { (client + i) % KEYS };
        let mut line = request_line(model, devices, key);
        line.push('\n');
        let sent = Instant::now();
        writer.write_all(line.as_bytes()).unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).expect("response");
        latencies.push(sent.elapsed());
        assert!(
            response.contains("\"cost\""),
            "search response expected, got: {response}"
        );
    }
    ClientStats {
        latencies,
        elapsed: t0.elapsed(),
    }
}

struct CellResult {
    req_per_s: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    summary: ServeSummary,
}

fn percentile(sorted: &[Duration], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64()
}

/// Run one (model, p, concurrency, config) cell against a fresh server.
fn run_cell(
    model: &str,
    devices: u32,
    concurrency: usize,
    requests: usize,
    sharded: bool,
) -> CellResult {
    let cfg = ServerConfig {
        workers: concurrency,
        cache_shards: if sharded { 16 } else { 1 },
        singleflight: sharded,
        ..ServerConfig::default()
    };
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("run"));

    let barrier = Arc::new(Barrier::new(concurrency));
    let clients: Vec<_> = (0..concurrency)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            let model = model.to_string();
            std::thread::spawn(move || run_client(addr, barrier, c, requests, &model, devices))
        })
        .collect();
    let stats: Vec<ClientStats> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    handle.shutdown();
    let summary = join.join().unwrap();

    let wall = stats
        .iter()
        .map(|s| s.elapsed)
        .max()
        .unwrap_or(Duration::ZERO);
    let mut latencies: Vec<Duration> = stats.into_iter().flat_map(|s| s.latencies).collect();
    latencies.sort_unstable();
    let total = latencies.len();
    CellResult {
        req_per_s: total as f64 / wall.as_secs_f64().max(1e-12),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        summary,
    }
}

fn smoke() {
    let concurrency = 4;
    let requests = 20;
    // "inception" searches take long enough (several ms) that the four
    // barrier-released identical first requests reliably overlap.
    let r = run_cell("inception", 8, concurrency, requests, true);
    assert_eq!(
        r.summary.requests,
        (concurrency * (requests + 1)) as u64,
        "every request (plus one warmup stats probe per client) answered \
         before shutdown"
    );
    assert_eq!(
        r.summary.cache_hits + r.summary.cache_misses + r.summary.coalesced,
        (concurrency * requests) as u64,
        "every search request accounted as exactly one of hit/miss/coalesced"
    );
    assert!(
        r.summary.coalesced > 0,
        "4 clients racing the same first key must coalesce at least once: {:?}",
        r.summary
    );
    println!(
        "bench_serve smoke OK: {} requests, {} hits, {} misses, {} coalesced, \
         p99 {:.3} ms",
        r.summary.requests,
        r.summary.cache_hits,
        r.summary.cache_misses,
        r.summary.coalesced,
        r.p99 * 1e3
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let mut json = String::from("{\n  \"cells\": [\n");
    let mut first = true;
    for (model, devices) in MODELS {
        for concurrency in CONCURRENCY {
            println!("== {model} p={devices} c={concurrency} ==");
            let mut per_config = Vec::new();
            for (name, sharded) in [("baseline", false), ("sharded", true)] {
                let r = run_cell(model, devices, concurrency, REQUESTS, sharded);
                println!(
                    "  {name:<9} {:>9.0} req/s  p50 {:>7.3} ms  p95 {:>7.3} ms  \
                     p99 {:>7.3} ms  (hits {}, misses {}, coalesced {})",
                    r.req_per_s,
                    r.p50 * 1e3,
                    r.p95 * 1e3,
                    r.p99 * 1e3,
                    r.summary.cache_hits,
                    r.summary.cache_misses,
                    r.summary.coalesced
                );
                per_config.push((name, r));
            }
            for (name, r) in per_config {
                if !first {
                    json.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    json,
                    "    {{\"model\": \"{model}\", \"devices\": {devices}, \
                     \"concurrency\": {concurrency}, \"config\": \"{name}\", \
                     \"requests\": {}, \"req_per_s\": {:.1}, \
                     \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \
                     \"cache_hits\": {}, \"cache_misses\": {}, \"coalesced\": {}}}",
                    r.summary.requests,
                    r.req_per_s,
                    r.p50 * 1e3,
                    r.p95 * 1e3,
                    r.p99 * 1e3,
                    r.summary.cache_hits,
                    r.summary.cache_misses,
                    r.summary.coalesced
                );
            }
        }
    }
    let _ = write!(
        json,
        "\n  ],\n  \"keys_per_cell\": {KEYS},\n  \"requests_per_client\": {REQUESTS}\n}}\n"
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
