//! Concurrent load benchmark for the planner service.
//!
//! A/B-compares three server configurations per (model, p, concurrency)
//! cell, driving N concurrent connections of mixed cached/uncached
//! queries against an in-process server and measuring client-observed
//! latency:
//!
//! - `baseline` — the PR 4 serve path: thread-per-connection, one cache
//!   mutex, no request coalescing (`cache_shards = 1`,
//!   `singleflight = false`).
//! - `sharded`  — the PR 5 path: thread-per-connection with the
//!   worker-derived stripe count and singleflight.
//! - `event`    — the epoll readiness loop front end over the same
//!   sharded cache and worker pool.
//!
//! Each client cycles through a small set of distinct cache keys (the
//! prune ε is part of the key, so varying it makes fresh keys without
//! changing the search difficulty), offset per client so the first wave
//! contends on identical keys — the singleflight case — while steady
//! state is cache-hit dominated, the lock-striping case.
//!
//! Two further dimensions target the event front end specifically:
//!
//! - **Idle swarm** (`idle_cells`): 512 idle keep-alive connections plus
//!   16 active clients for a fixed window. Thread-per-connection pins its
//!   whole worker pool on the swarm and serves (almost) nothing; the
//!   event loop is unaffected.
//! - **Batch** (`batch_cells`): 16 warmed queries as one wire batch vs 16
//!   sequential round trips, comparing per-query p50.
//!
//! Per cell the job reports req/s and p50/p95/p99 latency, and writes
//! everything to `BENCH_serve.json`.
//!
//! ```text
//! cargo run -p pase-bench --release --bin bench_serve            # full sweep
//! cargo run -p pase-bench --release --bin bench_serve -- --smoke # tier-1 gate
//! ```
//!
//! `--smoke` runs a small cell against the sharded and event servers,
//! a nonzero idle-swarm cell, and a batch-coalescing check, asserting
//! counters and clean drains; it writes nothing.

use pase_serve::{FrontEnd, ServeSummary, Server, ServerConfig};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Distinct cache keys per (model, p) cell: each key is a different prune
/// ε. Key 0 (ε = 0) is shared across clients' first requests, so wave one
/// exercises singleflight; the rest spread load across shards.
const KEYS: usize = 4;

/// Per-client request count in the full sweep.
const REQUESTS: usize = 50;

/// Concurrency sweep (connections = worker threads on both sides).
const CONCURRENCY: [usize; 3] = [2, 8, 16];

/// (wire model name, devices): "mlp" and "alexnet" are hit-dominated
/// cells where lock striping is the lever; "inception" searches are slow
/// enough that the first wave overlaps and singleflight decides how many
/// duplicate searches the tail pays for.
const MODELS: [(&str, u32); 3] = [("mlp", 8), ("alexnet", 8), ("inception", 8)];

/// Idle-swarm dimension: this many silent keep-alive connections…
const IDLE_SWARM: usize = 512;
/// …alongside this many active clients…
const IDLE_ACTIVE: usize = 16;
/// …for this long.
const IDLE_WINDOW: Duration = Duration::from_secs(2);

/// Queries per wire batch in the batch dimension.
const BATCH: usize = 16;
/// Measured rounds per batch cell.
const BATCH_ROUNDS: usize = 30;

/// The three benchmarked server configurations.
#[derive(Clone, Copy, PartialEq)]
enum Config {
    Baseline,
    Sharded,
    Event,
}

impl Config {
    fn name(self) -> &'static str {
        match self {
            Config::Baseline => "baseline",
            Config::Sharded => "sharded",
            Config::Event => "event",
        }
    }

    fn server(self, workers: usize) -> ServerConfig {
        let (frontend, shards, singleflight) = match self {
            Config::Baseline => (FrontEnd::Threaded, 1, false),
            Config::Sharded => (FrontEnd::Threaded, 0, true),
            Config::Event => (FrontEnd::Event, 0, true),
        };
        ServerConfig {
            workers,
            cache_shards: shards,
            singleflight,
            frontend,
            ..ServerConfig::default()
        }
    }

    fn frontend_name(self) -> &'static str {
        match self {
            Config::Event => "event",
            _ => "threaded",
        }
    }
}

fn request_line(model: &str, devices: u32, key: usize) -> String {
    format!(
        "{{\"model\": \"{model}\", \"devices\": {devices}, \"machine\": \"test\", \
         \"weak_scaling\": false, \"prune\": true, \"epsilon\": {}}}",
        key as f64 * 1e-6
    )
}

struct ClientStats {
    latencies: Vec<Duration>,
    elapsed: Duration,
}

/// One client: connect, wait on the barrier, send `requests` queries on a
/// single connection, timing each round trip.
fn run_client(
    addr: SocketAddr,
    barrier: Arc<Barrier>,
    client: usize,
    requests: usize,
    model: &str,
    devices: u32,
) -> ClientStats {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::with_capacity(requests);
    // Warm the connection with a stats probe before the barrier: by the
    // time timing starts every connection is accepted and registered, so
    // the measurements cover the serve path, not the accept queue.
    writer.write_all(b"{\"stats\": true}\n").unwrap();
    let mut warmup = String::new();
    reader.read_line(&mut warmup).expect("warmup response");
    barrier.wait();
    let t0 = Instant::now();
    for i in 0..requests {
        // First request of every client is key 0 (maximal contention);
        // afterwards clients walk the key set from per-client offsets.
        let key = if i == 0 { 0 } else { (client + i) % KEYS };
        let mut line = request_line(model, devices, key);
        line.push('\n');
        let sent = Instant::now();
        writer.write_all(line.as_bytes()).unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).expect("response");
        latencies.push(sent.elapsed());
        assert!(
            response.contains("\"cost\""),
            "search response expected, got: {response}"
        );
    }
    ClientStats {
        latencies,
        elapsed: t0.elapsed(),
    }
}

struct CellResult {
    req_per_s: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    summary: ServeSummary,
}

fn percentile(sorted: &[Duration], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64()
}

fn start(
    cfg: ServerConfig,
) -> (
    SocketAddr,
    pase_serve::ShutdownHandle,
    std::thread::JoinHandle<ServeSummary>,
) {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (addr, handle, join)
}

/// Run one (model, p, concurrency, config) cell against a fresh server.
fn run_cell(
    model: &str,
    devices: u32,
    concurrency: usize,
    requests: usize,
    config: Config,
) -> CellResult {
    let (addr, handle, join) = start(config.server(concurrency));
    let barrier = Arc::new(Barrier::new(concurrency));
    let clients: Vec<_> = (0..concurrency)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            let model = model.to_string();
            std::thread::spawn(move || run_client(addr, barrier, c, requests, &model, devices))
        })
        .collect();
    let stats: Vec<ClientStats> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    handle.shutdown();
    let summary = join.join().unwrap();

    let wall = stats
        .iter()
        .map(|s| s.elapsed)
        .max()
        .unwrap_or(Duration::ZERO);
    let mut latencies: Vec<Duration> = stats.into_iter().flat_map(|s| s.latencies).collect();
    latencies.sort_unstable();
    let total = latencies.len();
    CellResult {
        req_per_s: total as f64 / wall.as_secs_f64().max(1e-12),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        summary,
    }
}

struct IdleCellResult {
    completed: usize,
    req_per_s: f64,
    summary: ServeSummary,
}

/// The idle-swarm cell: `idle` silent keep-alive connections, then
/// `active` clients hammering a warmed key for a fixed `window`. Clients
/// use read timeouts and count only completed round trips, so a starved
/// server scores ~0 instead of hanging the benchmark.
fn run_idle_cell(config: Config, idle: usize, active: usize, window: Duration) -> IdleCellResult {
    let (addr, handle, join) = start(config.server(IDLE_ACTIVE));
    // The swarm connects first, exactly the deployment order that pins a
    // thread-per-connection pool.
    let swarm: Vec<TcpStream> = (0..idle)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();
    // Give the server time to accept (and, threaded, dispatch) the swarm.
    std::thread::sleep(Duration::from_millis(200));

    let barrier = Arc::new(Barrier::new(active));
    let clients: Vec<_> = (0..active)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let Ok(stream) = TcpStream::connect(addr) else {
                    return 0usize; // rejected: scored as zero completions
                };
                let _ = stream.set_nodelay(true);
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut line = request_line("mlp", 8, 0);
                line.push('\n');
                barrier.wait();
                let t0 = Instant::now();
                let mut completed = 0usize;
                loop {
                    let left = window.saturating_sub(t0.elapsed());
                    if left.is_zero() {
                        break;
                    }
                    if writer.write_all(line.as_bytes()).is_err() {
                        break;
                    }
                    if reader.get_ref().set_read_timeout(Some(left)).is_err() {
                        break;
                    }
                    let mut response = String::new();
                    match reader.read_line(&mut response) {
                        Ok(n) if n > 0 => completed += 1,
                        Ok(_) => break,
                        Err(e)
                            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
                        {
                            break; // starved past the window
                        }
                        Err(_) => break,
                    }
                }
                completed
            })
        })
        .collect();
    let completed: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
    drop(swarm);
    handle.shutdown();
    let summary = join.join().unwrap();
    IdleCellResult {
        completed,
        req_per_s: completed as f64 / window.as_secs_f64(),
        summary,
    }
}

struct BatchCellResult {
    batch_p50_per_query: f64,
    seq_p50_per_query: f64,
    summary: ServeSummary,
}

/// The batch cell: per-query p50 of `BATCH` warmed queries sent as one
/// wire batch vs the same queries as sequential round trips, on one
/// connection each, against the event front end.
fn run_batch_cell(config: Config, batch: usize, rounds: usize) -> BatchCellResult {
    let (addr, handle, join) = start(config.server(4));
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    let single = request_line("mlp", 8, 0);
    // Warm the cache: the measured rounds are all hits on both sides.
    writer.write_all(single.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).expect("warm response");

    let mut seq = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..batch {
            writer.write_all(single.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            response.clear();
            reader.read_line(&mut response).expect("seq response");
        }
        seq.push(t0.elapsed() / batch as u32);
    }

    let batch_line = format!(
        "{{\"batch\": [{}]}}\n",
        vec![single.clone(); batch].join(",")
    );
    let mut batched = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        writer.write_all(batch_line.as_bytes()).unwrap();
        response.clear();
        reader.read_line(&mut response).expect("batch response");
        batched.push(t0.elapsed() / batch as u32);
        assert!(
            response.contains("\"batch\""),
            "batch response expected, got: {response}"
        );
    }

    drop(writer);
    drop(reader);
    handle.shutdown();
    let summary = join.join().unwrap();
    seq.sort_unstable();
    batched.sort_unstable();
    BatchCellResult {
        batch_p50_per_query: percentile(&batched, 0.50),
        seq_p50_per_query: percentile(&seq, 0.50),
        summary,
    }
}

fn smoke() {
    // "inception" searches take long enough (several ms) that the four
    // barrier-released identical first requests reliably overlap.
    let concurrency = 4;
    let requests = 20;
    for config in [Config::Sharded, Config::Event] {
        let r = run_cell("inception", 8, concurrency, requests, config);
        assert_eq!(
            r.summary.requests,
            (concurrency * (requests + 1)) as u64,
            "every request (plus one warmup stats probe per client) answered \
             before shutdown ({})",
            config.name()
        );
        assert_eq!(
            r.summary.cache_hits + r.summary.cache_misses + r.summary.coalesced,
            (concurrency * requests) as u64,
            "every search request accounted as exactly one of hit/miss/coalesced"
        );
        assert!(
            r.summary.coalesced > 0,
            "4 clients racing the same first key must coalesce at least once \
             ({}): {:?}",
            config.name(),
            r.summary
        );
        println!(
            "bench_serve smoke OK [{}]: {} requests, {} hits, {} misses, \
             {} coalesced, p99 {:.3} ms",
            config.name(),
            r.summary.requests,
            r.summary.cache_hits,
            r.summary.cache_misses,
            r.summary.coalesced,
            r.p99 * 1e3
        );
    }

    // Nonzero idle-swarm cell: a small swarm must not stop the event
    // front end from serving.
    let idle = run_idle_cell(Config::Event, 32, 2, Duration::from_millis(500));
    assert!(
        idle.completed > 0,
        "event front end must serve under an idle swarm: {:?}",
        idle.summary
    );
    println!(
        "bench_serve smoke OK [idle-swarm]: {} completions under 32 idle conns",
        idle.completed
    );

    // Batch coalescing: N identical queries in one batch are 1 search +
    // N−1 hits.
    let batch = run_batch_cell(Config::Event, 8, 2);
    assert_eq!(batch.summary.cache_misses, 1, "{:?}", batch.summary);
    assert_eq!(
        batch.summary.cache_hits,
        batch.summary.requests - 1,
        "{:?}",
        batch.summary
    );
    println!(
        "bench_serve smoke OK [batch]: batch p50/query {:.3} ms vs sequential {:.3} ms",
        batch.batch_p50_per_query * 1e3,
        batch.seq_p50_per_query * 1e3
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let mut json = String::from("{\n  \"cells\": [\n");
    let mut first = true;
    for (model, devices) in MODELS {
        for concurrency in CONCURRENCY {
            println!("== {model} p={devices} c={concurrency} ==");
            let mut per_config = Vec::new();
            for config in [Config::Baseline, Config::Sharded, Config::Event] {
                let r = run_cell(model, devices, concurrency, REQUESTS, config);
                println!(
                    "  {:<9} {:>9.0} req/s  p50 {:>7.3} ms  p95 {:>7.3} ms  \
                     p99 {:>7.3} ms  (hits {}, misses {}, coalesced {})",
                    config.name(),
                    r.req_per_s,
                    r.p50 * 1e3,
                    r.p95 * 1e3,
                    r.p99 * 1e3,
                    r.summary.cache_hits,
                    r.summary.cache_misses,
                    r.summary.coalesced
                );
                per_config.push((config, r));
            }
            for (config, r) in per_config {
                if !first {
                    json.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    json,
                    "    {{\"model\": \"{model}\", \"devices\": {devices}, \
                     \"concurrency\": {concurrency}, \"config\": \"{}\", \
                     \"frontend\": \"{}\", \
                     \"requests\": {}, \"req_per_s\": {:.1}, \
                     \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \
                     \"cache_hits\": {}, \"cache_misses\": {}, \"coalesced\": {}}}",
                    config.name(),
                    config.frontend_name(),
                    r.summary.requests,
                    r.req_per_s,
                    r.p50 * 1e3,
                    r.p95 * 1e3,
                    r.p99 * 1e3,
                    r.summary.cache_hits,
                    r.summary.cache_misses,
                    r.summary.coalesced
                );
            }
        }
    }
    json.push_str("\n  ],\n  \"idle_cells\": [\n");

    println!("== idle swarm: {IDLE_SWARM} idle + {IDLE_ACTIVE} active, {IDLE_WINDOW:?} ==");
    let mut first = true;
    for config in [Config::Sharded, Config::Event] {
        let r = run_idle_cell(config, IDLE_SWARM, IDLE_ACTIVE, IDLE_WINDOW);
        println!(
            "  {:<9} {:>6} completed  {:>9.0} req/s",
            config.name(),
            r.completed,
            r.req_per_s
        );
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(
            json,
            "    {{\"config\": \"{}\", \"frontend\": \"{}\", \
             \"idle_connections\": {IDLE_SWARM}, \"active_clients\": {IDLE_ACTIVE}, \
             \"window_s\": {}, \"completed\": {}, \"req_per_s\": {:.1}}}",
            config.name(),
            config.frontend_name(),
            IDLE_WINDOW.as_secs_f64(),
            r.completed,
            r.req_per_s
        );
    }
    json.push_str("\n  ],\n  \"batch_cells\": [\n");

    println!("== batch: {BATCH} queries per line vs sequential ==");
    let mut first = true;
    for config in [Config::Sharded, Config::Event] {
        let r = run_batch_cell(config, BATCH, BATCH_ROUNDS);
        println!(
            "  {:<9} batch p50/query {:>7.4} ms  sequential p50/query {:>7.4} ms  ({:.2}x)",
            config.name(),
            r.batch_p50_per_query * 1e3,
            r.seq_p50_per_query * 1e3,
            r.seq_p50_per_query / r.batch_p50_per_query.max(1e-12)
        );
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(
            json,
            "    {{\"config\": \"{}\", \"frontend\": \"{}\", \"batch\": {BATCH}, \
             \"rounds\": {BATCH_ROUNDS}, \"batch_p50_per_query_ms\": {:.4}, \
             \"sequential_p50_per_query_ms\": {:.4}}}",
            config.name(),
            config.frontend_name(),
            r.batch_p50_per_query * 1e3,
            r.seq_p50_per_query * 1e3
        );
    }
    let _ = write!(
        json,
        "\n  ],\n  \"keys_per_cell\": {KEYS},\n  \"requests_per_client\": {REQUESTS}\n}}\n"
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
