//! Quick timing smoke test (not part of the paper reproduction).
use pase_bench::{pase_strategy, standard_tables};
use pase_core::DpOptions;
use pase_cost::MachineSpec;
use pase_models::Benchmark;
use std::time::Instant;

fn main() {
    let machine = MachineSpec::gtx1080ti();
    for b in Benchmark::all() {
        let g = b.build();
        for p in [8u32, 32] {
            let t0 = Instant::now();
            let tables = standard_tables(&g, p, &machine);
            let t_build = t0.elapsed();
            let t1 = Instant::now();
            let (outcome, _) = pase_strategy(&g, &tables, &DpOptions::default());
            let stats = outcome.stats().clone();
            println!(
                "{:<12} p={:<3} K={:<4} M={} tables={:.1?} search={:.1?} entries={} outcome={}",
                b.name(),
                p,
                stats.max_configs,
                stats.max_dependent_set,
                t_build,
                t1.elapsed(),
                stats.table_entries,
                outcome.tag()
            );
        }
    }
}
