//! **Fig. 6 reproduction** — simulated speedup over data parallelism of
//! the expert strategy, the FlexFlow-style MCMC strategy, and PaSE's
//! strategy, on the 1080Ti and 2080Ti cluster profiles.
//!
//! The paper measures real Mesh-TensorFlow throughput; here every strategy
//! is run through the hierarchical cluster simulator (`pase-sim`). Absolute
//! numbers are not comparable, but the *shape* should match Fig. 6: PaSE ≥
//! expert ≥ data parallelism everywhere, with larger gaps on the 2080Ti
//! profile (up to ~4× vs ~1.85× on 1080Ti).
//!
//! ```text
//! cargo run -p pase-bench --release --bin figure6 [-- --machine 2080ti \
//!     --devices 4,8,16,32,64 --mcmc-iters 25000 --skip-flexflow]
//! ```

use pase_baselines::McmcOptions;
use pase_bench::{
    dp_strategy, expert_strategy, flexflow_strategy, pase_strategy, relaxed_space, standard_space,
    standard_tables_with_space,
};
use pase_core::DpOptions;
use pase_cost::{ConfigSpace, MachineSpec};
use pase_graph::Graph;
use pase_models::Benchmark;
use pase_sim::{memory_per_device, simulate_step, SimOptions, Topology};
use std::time::Duration;

struct Args {
    machines: Vec<MachineSpec>,
    devices: Vec<u32>,
    mcmc_iters: u64,
    skip_flexflow: bool,
    csv: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        machines: vec![MachineSpec::gtx1080ti(), MachineSpec::rtx2080ti()],
        devices: vec![4, 8, 16, 32, 64],
        mcmc_iters: 250_000,
        skip_flexflow: false,
        csv: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--machine" => {
                let m = it.next().expect("--machine needs a value");
                args.machines = vec![match m.as_str() {
                    "1080ti" => MachineSpec::gtx1080ti(),
                    "2080ti" => MachineSpec::rtx2080ti(),
                    other => panic!("unknown machine profile: {other}"),
                }];
            }
            "--devices" => {
                let v = it.next().expect("--devices needs a list");
                args.devices = v
                    .split(',')
                    .map(|s| s.parse().expect("device count"))
                    .collect();
            }
            "--mcmc-iters" => {
                args.mcmc_iters = it.next().expect("value").parse().expect("iterations");
            }
            "--skip-flexflow" => args.skip_flexflow = true,
            "--csv" => args.csv = Some(it.next().expect("--csv needs a path")),
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

/// Everything about a `(benchmark, p)` data point that is independent of
/// the machine profile: the scaled graph and its configuration spaces.
struct Point {
    bench: Benchmark,
    p: u32,
    graph: Graph,
    /// Exact-`p` space feeding [`standard_tables_with_space`].
    standard: ConfigSpace,
    /// Relaxed (`∏ c_i ≤ p`) space for the MCMC baseline, skipped with
    /// `--skip-flexflow`.
    relaxed: Option<ConfigSpace>,
}

fn main() {
    let args = parse_args();
    let sim_opts = SimOptions::default();
    // CSV rows for plotting: machine,benchmark,p,strategy,speedup
    let mut csv = String::from("machine,benchmark,p,strategy,speedup\n");

    // Graphs and configuration spaces depend only on (benchmark, p); hoist
    // them out of the machine sweep so each is enumerated once instead of
    // once per profile.
    let benches = Benchmark::all();
    let points: Vec<Point> = benches
        .iter()
        .flat_map(|&bench| args.devices.iter().map(move |&p| (bench, p)))
        .map(|(bench, p)| {
            let graph = bench.build_for(p);
            let standard = standard_space(&graph, p);
            let relaxed = (!args.skip_flexflow).then(|| relaxed_space(&graph, p));
            Point {
                bench,
                p,
                graph,
                standard,
                relaxed,
            }
        })
        .collect();

    for machine in &args.machines {
        println!(
            "Fig. 6 ({}): simulated speedup over data parallelism",
            machine.name
        );
        println!(
            "{:<12} {:>4} {:>10} {:>10} {:>10} {:>10}   {:>12} {:>10}",
            "benchmark", "p", "DP", "expert", "flexflow", "ours", "DP mem/dev", "ours mem"
        );
        for point in &points {
            let (bench, p, graph) = (point.bench, point.p, &point.graph);
            let topo = Topology::cluster(machine.clone(), p).unwrap();
            let dp = dp_strategy(graph, p);
            let dp_rep = simulate_step(graph, &dp, &topo, &sim_opts);

            let expert = expert_strategy(bench, graph, p);
            let expert_speedup =
                simulate_step(graph, &expert, &topo, &sim_opts).throughput / dp_rep.throughput;
            use std::fmt::Write as _;
            let _ = writeln!(csv, "{},{},{p},dp,1.0", machine.name, bench.name());
            let _ = writeln!(
                csv,
                "{},{},{p},expert,{expert_speedup:.4}",
                machine.name,
                bench.name()
            );

            let mut ff_speedup = None;
            let ff_cell = match &point.relaxed {
                None => "-".to_string(),
                Some(space) => {
                    let ff = flexflow_strategy(
                        bench,
                        graph,
                        space,
                        &topo,
                        &McmcOptions {
                            max_iters: args.mcmc_iters,
                            max_time: Duration::from_secs(300),
                            ..Default::default()
                        },
                    );
                    let s = simulate_step(graph, &ff.strategy, &topo, &sim_opts).throughput
                        / dp_rep.throughput;
                    ff_speedup = Some(s);
                    format!("{s:.2}x")
                }
            };
            if let Some(s) = ff_speedup {
                let _ = writeln!(csv, "{},{},{p},flexflow,{s:.4}", machine.name, bench.name());
            }

            let tables = standard_tables_with_space(graph, p, machine, &point.standard);
            let (_, ours) = pase_strategy(graph, &tables, &DpOptions::default());
            let (ours_cell, mem_cell) = match ours {
                Some(s) => {
                    let rep = simulate_step(graph, &s, &topo, &sim_opts);
                    let _ = writeln!(
                        csv,
                        "{},{},{p},pase,{:.4}",
                        machine.name,
                        bench.name(),
                        rep.throughput / dp_rep.throughput
                    );
                    (
                        format!("{:.2}x", rep.throughput / dp_rep.throughput),
                        format!(
                            "{:.0} MiB",
                            memory_per_device(graph, &s, &topo) / (1 << 20) as f64
                        ),
                    )
                }
                None => ("fail".to_string(), "-".to_string()),
            };

            println!(
                "{:<12} {:>4} {:>10} {:>9.2}x {:>10} {:>10}   {:>12} {:>10}",
                bench.name(),
                p,
                "1.00x",
                expert_speedup,
                ff_cell,
                ours_cell,
                format!(
                    "{:.0} MiB",
                    memory_per_device(graph, &dp, &topo) / (1 << 20) as f64
                ),
                mem_cell,
            );
        }
        println!();
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, csv).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote CSV series to {path}");
    }
}
