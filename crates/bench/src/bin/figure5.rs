//! **Fig. 5 / §III-C reproduction** — InceptionV3 graph structure and the
//! effect of vertex ordering on dependent-set sizes.
//!
//! Reports the claims of §III-C:
//! * the graph has ≈218 nodes, most of degree < 5 with a few high-degree
//!   fan-out/concat nodes;
//! * configurations per vertex range ~10–30 at p = 8 and reach ~100+ at
//!   p = 64;
//! * breadth-first ordering lets dependent sets reach ~10
//!   (`K^{M+1} ≥ 10^11` states), while GenerateSeq keeps
//!   `|D(i) ∪ {v^(i)}| ≤ 3`, making the search tractable.
//!
//! ```text
//! cargo run -p pase-bench --release --bin figure5
//! ```

use pase_bench::standard_space;
use pase_core::{dependent_set_sizes, generate_seq, make_ordering, search_profile, OrderingKind};
use pase_graph::{bfs_order, GraphStats};
use pase_models::{inception_v3, InceptionConfig};

fn main() {
    let g = inception_v3(&InceptionConfig::paper());
    let stats = GraphStats::of(&g);
    // One enumeration per device count, shared by every report below
    // (previously each section re-ran enumerate_configs over the graph).
    let space8 = standard_space(&g, 8);
    let space64 = standard_space(&g, 64);

    println!("Fig. 5 / §III-C: InceptionV3 graph structure\n");
    println!("nodes: {} (paper: 218)", stats.nodes);
    println!("directed edges: {}", stats.edges);
    println!(
        "degree: max {}, mean {:.2}; nodes with degree >= 5: {} (paper: 12), < 5: {}",
        stats.degrees.max,
        stats.degrees.mean,
        stats.degrees.high_degree,
        stats.nodes - stats.degrees.high_degree
    );
    print!("degree histogram:");
    for (d, &count) in stats.degrees.histogram.iter().enumerate() {
        if count > 0 {
            print!(" {d}:{count}");
        }
    }
    println!("\n");

    for (p, space) in [(8u32, &space8), (64, &space64)] {
        let ks: Vec<usize> = g.node_ids().map(|v| space.k(v)).collect();
        let (min_k, max_k) = (ks.iter().min().unwrap(), ks.iter().max().unwrap());
        let mean_k = ks.iter().sum::<usize>() as f64 / ks.len() as f64;
        println!(
            "configurations per vertex at p = {p}: min {min_k}, mean {mean_k:.1}, max {max_k} \
             (paper: 10–30 at p = 8, up to ~100 at p = 64)"
        );
    }
    println!();

    let orderings = [
        ("GenerateSeq", generate_seq(&g)),
        ("breadth-first", bfs_order(&g)),
        (
            "random(seed 1)",
            make_ordering(&g, OrderingKind::Random { seed: 1 }),
        ),
    ];
    let k8 = space8.max_k() as f64;
    println!(
        "{:<16} {:>6} {:>14} {:>22}",
        "ordering", "max|D|", "max|D ∪ {v}|", "K^{M+1} (p=8, K=max)"
    );
    for (name, order) in orderings {
        let sizes = dependent_set_sizes(&g, &order);
        let m = sizes.iter().copied().max().unwrap_or(0);
        println!(
            "{:<16} {:>6} {:>14} {:>22.3e}",
            name,
            m,
            m + 1,
            k8.powi(m as i32 + 1)
        );
    }
    println!("\n(The paper reports BF dependent sets reaching ~10 → K^{{M+1}} ≥ 10^11,");
    println!(" vs GenerateSeq keeping |D(i) ∪ {{v}}| ≤ 3 → ≤ 25200 combinations/vertex.)");

    // Per-position dependent-set profile under GenerateSeq: the Fig. 5
    // intuition that high-degree nodes are sequenced after their branches.
    let order = generate_seq(&g);
    let sizes = dependent_set_sizes(&g, &order);
    let mut histogram = [0usize; 16];
    for &s in &sizes {
        histogram[s.min(15)] += 1;
    }
    print!("GenerateSeq |D(i)| histogram:");
    for (d, &count) in histogram.iter().enumerate() {
        if count > 0 {
            print!(" {d}:{count}");
        }
    }
    println!();

    // Where the DP's work concentrates (p = 8): the heaviest positions are
    // the high-degree concat/fan-out vertices sequenced after their
    // neighborhoods.
    let k: Vec<usize> = g.node_ids().map(|v| space8.k(v)).collect();
    let mut profile = search_profile(&g, &order, &k);
    let total_states: u64 = profile.iter().map(|p| p.states).sum();
    profile.sort_by_key(|p| std::cmp::Reverse(p.states));
    println!("\nheaviest DP positions at p = 8 (of {total_states} total states):");
    for p in profile.iter().take(5) {
        println!(
            "  {:<26} |D| = {}  table = {:>6}  states = {:>8}",
            g.node(p.vertex).name,
            p.dependent_set,
            p.table_entries,
            p.states
        );
    }
}
