//! **Ablation & limitation studies** — the §V discussion plus the design
//! choices called out in DESIGN.md:
//!
//! 1. **DenseNet blow-up (§V)**: dense-block graphs keep dependent sets
//!    large under *every* ordering, so even GenerateSeq hits the budget.
//! 2. **Ordering ablation**: GenerateSeq vs breadth-first vs random on
//!    InceptionV3 — max dependent set, table entries, outcome, time.
//! 3. **Configuration-rule ablation**: requiring `∏ c_i = p` vs allowing
//!    idle devices (`≤ p`) — search-space size vs found cost.
//! 4. **Overlap sensitivity**: Fig. 6 speedups with and without
//!    compute/communication overlap in the simulator.
//!
//! ```text
//! cargo run -p pase-bench --release --bin ablation
//! ```

use pase_bench::{dp_strategy, pase_strategy, standard_tables};
use pase_core::{
    dependent_set_sizes, make_ordering, optcnn_search, ConnectedSetMode, DpOptions, OrderingKind,
    ReductionOutcome, Search, SearchBudget,
};
use pase_cost::{ConfigRule, CostTables, MachineSpec};
use pase_models::{densenet, inception_v3, Benchmark, DenseNetConfig, InceptionConfig};
use pase_sim::{simulate_step, SimOptions, Topology};
use std::time::{Duration, Instant};

fn main() {
    let machine = MachineSpec::gtx1080ti();

    // ------------------------------------------------------------------
    println!("== 1. DenseNet limitation study (§V) ==\n");
    let dn = densenet(&DenseNetConfig::paper());
    println!(
        "DenseNet-style graph: {} nodes, {} edges",
        dn.len(),
        dn.edge_count()
    );
    for kind in [
        OrderingKind::GenerateSeq,
        OrderingKind::BreadthFirst,
        OrderingKind::Random { seed: 3 },
    ] {
        let order = make_ordering(&dn, kind);
        let m = dependent_set_sizes(&dn, &order)
            .into_iter()
            .max()
            .unwrap_or(0);
        println!("  {kind:?}: max |D(i)| = {m}");
    }
    let tables = standard_tables(&dn, 8, &machine);
    let budget = SearchBudget {
        max_table_entries: 1 << 24,
        max_time: Duration::from_secs(60),
    };
    let outcome = Search::new(&dn)
        .tables(&tables)
        .budget(budget)
        .run()
        .into_outcome();
    println!(
        "  search at p = 8 under a 2^24-entry budget: {} \
         (no ordering can shrink M on uniformly dense graphs)\n",
        outcome.tag()
    );

    // ------------------------------------------------------------------
    println!("== 2. Ordering ablation on InceptionV3 (p = 8) ==\n");
    let g = inception_v3(&InceptionConfig::paper());
    let tables = standard_tables(&g, 8, &machine);
    println!(
        "{:<22} {:>7} {:>14} {:>10} {:>12}",
        "ordering", "max|D|", "table entries", "outcome", "time"
    );
    for (name, kind, mode) in [
        (
            "GenerateSeq/exact",
            OrderingKind::GenerateSeq,
            ConnectedSetMode::Exact,
        ),
        (
            "BFS/exact",
            OrderingKind::BreadthFirst,
            ConnectedSetMode::Exact,
        ),
        (
            "BFS/prefix (naive)",
            OrderingKind::BreadthFirst,
            ConnectedSetMode::Prefix,
        ),
        (
            "random/exact",
            OrderingKind::Random { seed: 3 },
            ConnectedSetMode::Exact,
        ),
    ] {
        let t0 = Instant::now();
        let outcome = Search::new(&g)
            .tables(&tables)
            .ordering(kind)
            .connected_sets(mode)
            .budget(SearchBudget {
                max_table_entries: 1 << 26,
                max_time: Duration::from_secs(120),
            })
            .run()
            .into_outcome();
        let stats = outcome.stats();
        println!(
            "{:<22} {:>7} {:>14} {:>10} {:>12?}",
            name,
            stats.max_dependent_set,
            stats.table_entries,
            outcome.tag(),
            t0.elapsed()
        );
    }

    // ------------------------------------------------------------------
    println!("\n== 3. Configuration-rule ablation (AlexNet, p = 16) ==\n");
    let g = Benchmark::AlexNet.build();
    for (name, rule) in [
        ("product = p (default)", ConfigRule::new(16)),
        (
            "product <= p (idle allowed)",
            ConfigRule::new(16).allow_idle(),
        ),
        (
            "product = p, per-dim cap 4",
            ConfigRule::new(16).with_max_split(4),
        ),
    ] {
        let t0 = Instant::now();
        let tables = CostTables::build(&g, rule, &machine);
        let run = Search::new(&g).tables(&tables).run();
        let r = run
            .outcome()
            .found()
            .expect("alexnet search fits in budget");
        println!(
            "{:<28} K = {:>4}  best cost = {:.4e}  time = {:?}",
            name,
            r.stats.max_configs,
            r.cost,
            t0.elapsed()
        );
    }
    println!("\n(idle-device configurations never improve the optimum — the default");
    println!(" rule searches a much smaller space for the same answer)");

    // ------------------------------------------------------------------
    println!("\n== 4. Simulator overlap sensitivity (AlexNet, p = 32, 1080Ti) ==\n");
    let p = 32;
    let g = Benchmark::AlexNet.build_for(p);
    let topo = Topology::cluster(machine.clone(), p).unwrap();
    let tables = standard_tables(&g, p, &machine);
    let (_, ours) = pase_strategy(&g, &tables, &DpOptions::default());
    let ours = ours.expect("alexnet search succeeds");
    let dp = dp_strategy(&g, p);
    for overlap in [0.0, 0.3, 0.6] {
        let opts = SimOptions {
            overlap,
            ..SimOptions::default()
        };
        let s = simulate_step(&g, &ours, &topo, &opts).throughput
            / simulate_step(&g, &dp, &topo, &opts).throughput;
        println!("  overlap = {overlap:.1}: ours over DP = {s:.2}x");
    }
    println!("\n(the ranking is stable across overlap assumptions — the cost model's");
    println!(" ordering survives the optimizations Mesh-TensorFlow applies, §IV-B)");

    // ------------------------------------------------------------------
    println!("\n== 5. RNN representation ablation (§IV-A) ==\n");
    println!("single 5-d LSTM vertex (ours) vs FlexFlow-style unrolled lattice:");
    let cfg = pase_models::RnnlmConfig::paper();
    for p in [8u32, 32] {
        let single = pase_models::rnnlm(&cfg);
        let unrolled = pase_models::rnnlm_unrolled(&cfg);
        let row = |label: &str, g: &pase_graph::Graph| {
            let t0 = Instant::now();
            let tables = standard_tables(g, p, &machine);
            let outcome = Search::new(g)
                .tables(&tables)
                .budget(SearchBudget {
                    max_table_entries: 1 << 26,
                    max_time: Duration::from_secs(180),
                })
                .run()
                .into_outcome();
            match outcome.found() {
                Some(r) => println!(
                    "  p={p:<3} {label:<14} |V|={:<4} M={} search={:<12?} cost={:.4e}",
                    g.len(),
                    r.stats.max_dependent_set,
                    t0.elapsed(),
                    r.cost
                ),
                None => println!(
                    "  p={p:<3} {label:<14} |V|={:<4} search={} after {:?}",
                    g.len(),
                    outcome.tag(),
                    t0.elapsed()
                ),
            }
        };
        row("single-vertex", &single);
        row("unrolled", &unrolled);
    }
    println!("\n(the single-vertex encoding shrinks the graph ~30x and lets the");
    println!(" search exploit intra-operator pipeline configurations that the");
    println!(" unrolled lattice cannot express)");

    // ------------------------------------------------------------------
    println!("\n== 6. OptCNN/Tofu graph-reduction comparison (§VI) ==\n");
    println!("node/edge elimination [Jia et al. ICML'18] vs FindBestStrategy, p = 8:");
    let p = 8u32;
    let cases: Vec<(&str, pase_graph::Graph)> = vec![
        ("AlexNet", Benchmark::AlexNet.build()),
        ("InceptionV3", Benchmark::InceptionV3.build()),
        ("RNNLM", Benchmark::Rnnlm.build()),
        ("Transformer", Benchmark::Transformer.build()),
        (
            "DenseNet",
            pase_models::densenet(&pase_models::DenseNetConfig::paper()),
        ),
    ];
    for (name, g) in &cases {
        let tables = standard_tables(g, p, &machine);
        let t0 = Instant::now();
        let reduction = optcnn_search(g, &tables);
        let red_time = t0.elapsed();
        let t1 = Instant::now();
        let dp = Search::new(g)
            .tables(&tables)
            .budget(SearchBudget {
                max_table_entries: 1 << 26,
                max_time: Duration::from_secs(120),
            })
            .run()
            .into_outcome();
        let dp_time = t1.elapsed();
        let dp_cell = match dp.found() {
            Some(r) => format!("cost {:.4e} in {dp_time:?}", r.cost),
            None => format!("{} after {dp_time:?}", dp.tag()),
        };
        let red_cell = match reduction {
            ReductionOutcome::Reduced {
                cost, eliminations, ..
            } => {
                format!("cost {cost:.4e} in {red_time:?} ({eliminations} elims)")
            }
            ReductionOutcome::Irreducible { remaining } => {
                format!("IRREDUCIBLE ({} vertices remain)", remaining.len())
            }
        };
        println!("  {name:<12} optcnn: {red_cell}");
        println!("  {:<12} pase:   {dp_cell}", "");
    }
    println!("\n(graph reduction matches the DP wherever it applies, but cannot");
    println!(" handle uniformly dense graphs; PaSE solves every case — §VI)");
}
