//! **Table II reproduction** — best strategies found by FindBestStrategy
//! for a system of 4 nodes × 8 GPUs (p = 32, 1080Ti profile).
//!
//! Prints the per-layer configurations (consecutive identical layers
//! merged, as the paper reports module-level rows) together with the
//! Table II dimension legend, and highlights the paper's headline
//! qualitative findings (alternating FC splits on AlexNet, vocabulary
//! splits on the LM/NMT embedding and softmax, the LSTM's layer-dimension
//! split, …).
//!
//! ```text
//! cargo run -p pase-bench --release --bin table2 [-- --devices 32]
//! ```

use pase_bench::{compressed_report, pase_strategy, standard_tables};
use pase_core::DpOptions;
use pase_cost::MachineSpec;
use pase_models::Benchmark;

fn main() {
    let mut p = 32u32;
    let mut fixed_batch = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--devices" => p = it.next().expect("value").parse().expect("device count"),
            // Global batch fixed at the paper's 128/64 instead of scaling
            // per device: strategies shift further from data parallelism
            // (4 samples/device leave nothing for batch splits to do).
            "--fixed-batch" => fixed_batch = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    let machine = MachineSpec::gtx1080ti();

    println!(
        "Table II: best strategies found by FindBestStrategy (p = {p}, {}, {})",
        machine.name,
        if fixed_batch {
            "fixed global batch"
        } else {
            "weak scaling"
        }
    );
    println!();
    println!("Legend: conv dims b c h w n r s = batch, in-chan, height, width,");
    println!("        out-chan, filter h, filter w; fc dims b n c = batch, out, in;");
    println!("        embedding b s d v = batch, seq, embed, vocab;");
    println!("        lstm l b s d e = layers, batch, seq, embed, hidden;");
    println!("        attention b s h c k = batch, seq, heads, query ch, kv ch.");

    for bench in Benchmark::all() {
        let graph = if fixed_batch {
            bench.build()
        } else {
            bench.build_for(p)
        };
        let tables = standard_tables(&graph, p, &machine);
        let (outcome, strategy) = pase_strategy(&graph, &tables, &DpOptions::default());
        println!("\n=== {} ===", bench.name());
        match strategy {
            Some(s) => {
                let r = outcome.found().expect("strategy implies found");
                println!(
                    "search: {:?}, cost {:.4e} FLOP-units, K = {}, M = {}\n",
                    r.stats.elapsed, r.cost, r.stats.max_configs, r.stats.max_dependent_set
                );
                println!("{:<44} {:<9} configuration", "layers", "dims");
                for (name, dims, cfg) in compressed_report(&graph, &s) {
                    println!("{name:<44} {dims:<9} {cfg}");
                }
            }
            None => println!("search failed: {}", outcome.tag()),
        }
    }
}
