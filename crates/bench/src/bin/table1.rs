//! **Table I reproduction** — time taken by different algorithms to find
//! efficient parallelization strategies.
//!
//! Columns per benchmark: `BF` (naive recurrence (2) with breadth-first
//! ordering — expected to OOM on InceptionV3 and Transformer), `FlexFlow`
//! (MCMC over the relaxed space with the simulator in the loop), and
//! `Ours` (FindBestStrategy with GenerateSeq). Timings include cost-table
//! construction, mirroring the paper's end-to-end strategy-finding time.
//!
//! ```text
//! cargo run -p pase-bench --release --bin table1 [-- --devices 4,8,16 \
//!     --budget-secs 120 --mcmc-iters 250000 --skip-bf --skip-flexflow]
//! ```

use pase_baselines::McmcOptions;
use pase_bench::{flexflow_strategy, fmt_mins, relaxed_space, standard_tables};
use pase_core::{naive_best_strategy, Search, SearchBudget};
use pase_cost::MachineSpec;
use pase_models::Benchmark;
use pase_sim::Topology;
use std::time::{Duration, Instant};

struct Args {
    devices: Vec<u32>,
    budget_secs: u64,
    mcmc_iters: u64,
    skip_bf: bool,
    skip_flexflow: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        devices: vec![4, 8, 16, 32, 64],
        budget_secs: 300,
        mcmc_iters: 250_000,
        skip_bf: false,
        skip_flexflow: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--devices" => {
                let v = it.next().expect("--devices needs a list");
                args.devices = v
                    .split(',')
                    .map(|s| s.parse().expect("device count"))
                    .collect();
            }
            "--budget-secs" => {
                args.budget_secs = it.next().expect("value").parse().expect("seconds");
            }
            "--mcmc-iters" => {
                args.mcmc_iters = it.next().expect("value").parse().expect("iterations");
            }
            "--skip-bf" => args.skip_bf = true,
            "--skip-flexflow" => args.skip_flexflow = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let machine = MachineSpec::gtx1080ti();
    let budget = SearchBudget {
        max_table_entries: 1 << 28,
        max_time: Duration::from_secs(args.budget_secs),
    };

    println!("Table I: time taken to find efficient parallelization strategies");
    println!(
        "(machine model: {}; unit mins:secs.msecs; OOM = table budget of",
        machine.name
    );
    println!(" 2^28 entries exceeded, matching the paper's breadth-first blow-up)\n");
    println!(
        "{:<4} {:<12} {:>12} {:>12} {:>12}   notes",
        "p", "benchmark", "BF", "FlexFlow", "Ours"
    );

    for &p in &args.devices {
        for bench in Benchmark::all() {
            let graph = bench.build_for(p);

            // --- BF: naive recurrence (2) -------------------------------
            let bf_cell = if args.skip_bf {
                "-".to_string()
            } else {
                let t0 = Instant::now();
                let tables = standard_tables(&graph, p, &machine);
                let outcome = naive_best_strategy(&graph, &tables, budget);
                match outcome.found() {
                    Some(_) => fmt_mins(t0.elapsed()),
                    None => outcome.tag().to_string(),
                }
            };

            // --- FlexFlow-style MCMC ------------------------------------
            let ff_cell = if args.skip_flexflow {
                "-".to_string()
            } else {
                let topo = Topology::cluster(machine.clone(), p).unwrap();
                let t0 = Instant::now();
                let space = relaxed_space(&graph, p);
                let _res = flexflow_strategy(
                    bench,
                    &graph,
                    &space,
                    &topo,
                    &McmcOptions {
                        max_iters: args.mcmc_iters,
                        max_time: Duration::from_secs(args.budget_secs),
                        ..Default::default()
                    },
                );
                fmt_mins(t0.elapsed())
            };

            // --- Ours: FindBestStrategy with GenerateSeq ----------------
            let t0 = Instant::now();
            let tables = standard_tables(&graph, p, &machine);
            let outcome = Search::new(&graph)
                .tables(&tables)
                .budget(budget)
                .run()
                .into_outcome();
            let (ours_cell, note) = match outcome.found() {
                Some(r) => (
                    fmt_mins(t0.elapsed()),
                    format!(
                        "K={} M={} cost={:.3e}",
                        r.stats.max_configs, r.stats.max_dependent_set, r.cost
                    ),
                ),
                None => (outcome.tag().to_string(), String::new()),
            };

            println!(
                "{:<4} {:<12} {:>12} {:>12} {:>12}   {}",
                p,
                bench.name(),
                bf_cell,
                ff_cell,
                ours_cell,
                note
            );
        }
        println!();
    }
}
