//! # pase-bench — experiment harness (PaSE §IV reproduction)
//!
//! Shared plumbing for the reproduction binaries:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table I — search time of BF / FlexFlow-MCMC / PaSE |
//! | `table2` | Table II — best strategies found at p = 32 |
//! | `figure5` | Fig. 5 + §III-C — InceptionV3 graph structure & dependent sets |
//! | `figure6` | Fig. 6 — simulated speedup over data parallelism |
//! | `ablation` | §V limitation study + design-choice ablations |
//!
//! This library provides the strategy *sources* every binary compares —
//! data parallelism, the per-benchmark expert, the FlexFlow-style MCMC
//! (driven by the execution simulator, mirroring FlexFlow's
//! simulator-in-the-loop architecture), and PaSE's DP search — plus output
//! formatting helpers.

#![warn(missing_docs)]

use pase_baselines::{
    data_parallel, gnmt_expert, mcmc_search, mesh_tf_expert, owt, CostOracle, McmcOptions,
    McmcResult,
};
use pase_core::{DpOptions, Search, SearchOutcome};
use pase_cost::{
    ConfigRule, ConfigSpace, CostTables, DeviceMesh, MachineSpec, Strategy, TableOptions,
};
use pase_graph::{Graph, NodeId};
use pase_models::Benchmark;
use pase_sim::{simulate_step, SimOptions, Topology};
use std::time::Duration;

/// Format a duration like the paper's Table I (`mins:secs.msecs`).
pub fn fmt_mins(d: Duration) -> String {
    let total_ms = d.as_millis();
    let mins = total_ms / 60_000;
    let secs = (total_ms % 60_000) / 1000;
    let ms = total_ms % 1000;
    format!("{mins}:{secs:02}.{ms:03}")
}

/// Build the standard cost tables for a benchmark graph (power-of-two
/// splits, all `p` devices used).
pub fn standard_tables(graph: &Graph, p: u32, machine: &MachineSpec) -> CostTables {
    CostTables::build(graph, ConfigRule::new(p), machine)
}

/// The configuration space [`standard_tables`] enumerates, hoisted out so
/// sweeps can share one enumeration across several machine profiles or
/// repeated data points (see [`standard_tables_with_space`]).
pub fn standard_space(graph: &Graph, p: u32) -> ConfigSpace {
    ConfigSpace::build(graph, &ConfigRule::new(p))
}

/// [`standard_tables`] over a pre-enumerated [`standard_space`]: identical
/// tables, minus the redundant per-call `enumerate_configs` pass.
pub fn standard_tables_with_space(
    graph: &Graph,
    p: u32,
    machine: &MachineSpec,
    space: &ConfigSpace,
) -> CostTables {
    CostTables::build_mesh_with_space(
        graph,
        ConfigRule::new(p),
        &DeviceMesh::flat(machine),
        space,
        &TableOptions::default(),
    )
}

/// Build the *relaxed* configuration space the MCMC search explores
/// (`∏ c_i ≤ p`: FlexFlow's space includes idle-device configurations and
/// the expert seeds need them). A plain enumeration without cost matrices —
/// the simulator oracle scores whole strategies directly.
pub fn relaxed_space(graph: &Graph, p: u32) -> ConfigSpace {
    ConfigSpace::build(graph, &ConfigRule::new(p).allow_idle())
}

/// The expert-designed strategy the paper compares against for each
/// benchmark (§IV): OWT for the CNNs, GNMT data+pipeline for RNNLM,
/// Mesh-TensorFlow hybrid for Transformer.
pub fn expert_strategy(bench: Benchmark, graph: &Graph, p: u32) -> Strategy {
    match bench {
        Benchmark::AlexNet | Benchmark::InceptionV3 => owt(graph, p),
        Benchmark::Rnnlm => gnmt_expert(graph, p),
        Benchmark::Transformer => mesh_tf_expert(graph, p),
    }
}

/// Run PaSE's FindBestStrategy and return the outcome together with the
/// extracted [`Strategy`] when it completed.
pub fn pase_strategy(
    graph: &Graph,
    tables: &CostTables,
    opts: &DpOptions,
) -> (SearchOutcome, Option<Strategy>) {
    let run = Search::new(graph).tables(tables).dp_options(*opts).run();
    let strategy = run
        .outcome()
        .found()
        .map(|r| tables.ids_to_strategy(&r.config_ids));
    (run.into_outcome(), strategy)
}

/// A cost oracle that scores candidate strategies by *simulating* a
/// training step — the architecture of FlexFlow's MCMC, whose inner loop
/// queries an execution simulator calibrated by device microbenchmarks.
pub struct SimOracle<'a> {
    graph: &'a Graph,
    space: &'a ConfigSpace,
    topology: &'a Topology,
    opts: SimOptions,
}

impl<'a> SimOracle<'a> {
    /// Wrap a graph, its (relaxed) configuration space, and a topology.
    pub fn new(graph: &'a Graph, space: &'a ConfigSpace, topology: &'a Topology) -> Self {
        Self {
            graph,
            space,
            topology,
            opts: SimOptions::default(),
        }
    }
}

impl CostOracle for SimOracle<'_> {
    fn full_cost(&self, ids: &[u16]) -> f64 {
        let strategy = self.space.ids_to_strategy(ids);
        simulate_step(self.graph, &strategy, self.topology, &self.opts).step_seconds
    }
}

/// Result of the FlexFlow-style search: the best strategy plus the raw
/// MCMC statistics.
pub struct FlexFlowResult {
    /// Best strategy discovered.
    pub strategy: Strategy,
    /// Underlying MCMC result (iterations, acceptance, elapsed time).
    pub mcmc: McmcResult,
}

/// Run the FlexFlow-style MCMC baseline: relaxed configuration space,
/// simulator-in-the-loop oracle, seeded with the benchmark's expert
/// strategy, stopped by the paper's half-time / iteration-cap rule.
pub fn flexflow_strategy(
    bench: Benchmark,
    graph: &Graph,
    space: &ConfigSpace,
    topology: &Topology,
    opts: &McmcOptions,
) -> FlexFlowResult {
    let p = topology.devices();
    let expert = expert_strategy(bench, graph, p);
    let init = space
        .strategy_to_ids(&expert)
        .unwrap_or_else(|| vec![0u16; graph.len()]);
    let k: Vec<usize> = graph.node_ids().map(|v| space.k(v)).collect();
    let oracle = SimOracle::new(graph, space, topology);
    let mcmc = mcmc_search(graph, &k, &oracle, init, opts);
    FlexFlowResult {
        strategy: space.ids_to_strategy(&mcmc.best_ids),
        mcmc,
    }
}

/// Compress a per-layer strategy report by merging consecutive layers with
/// identical `(op, dims, configuration)` rows — Table II reports
/// "Conv 1-4" style ranges.
pub fn compressed_report(graph: &Graph, strategy: &Strategy) -> Vec<(String, String, String)> {
    let mut rows: Vec<(String, String, String)> = Vec::new();
    let mut run: Option<(usize, usize, String, String)> = None; // (first, last, key, dims)
    let flush = |run: &Option<(usize, usize, String, String)>,
                 rows: &mut Vec<(String, String, String)>,
                 graph: &Graph| {
        if let Some((first, last, key, dims)) = run {
            let name = if first == last {
                graph.node(NodeId(*first as u32)).name.clone()
            } else {
                format!(
                    "{} … {}",
                    graph.node(NodeId(*first as u32)).name,
                    graph.node(NodeId(*last as u32)).name
                )
            };
            rows.push((name, dims.clone(), key.clone()));
        }
    };
    for (id, node) in graph.iter() {
        let cfg = format!("{}", strategy.config(id));
        let key = format!("{}|{}", node.op.tag(), cfg);
        match &mut run {
            Some((_, last, k, _)) if *k == key && *last + 1 == id.index() => {
                *last = id.index();
            }
            _ => {
                flush(&run, &mut rows, graph);
                run = Some((id.index(), id.index(), key, node.dims_string()));
            }
        }
    }
    flush(&run, &mut rows, graph);
    rows.into_iter()
        .map(|(name, dims, key)| {
            let cfg = key.split('|').nth(1).unwrap_or("").to_string();
            (name, dims, cfg)
        })
        .collect()
}

/// Per-benchmark data-parallel baseline (used as Fig. 6's denominator).
pub fn dp_strategy(graph: &Graph, p: u32) -> Strategy {
    data_parallel(graph, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_models::Benchmark;

    #[test]
    fn fmt_mins_matches_paper_format() {
        assert_eq!(fmt_mins(Duration::from_millis(226)), "0:00.226");
        assert_eq!(fmt_mins(Duration::from_millis(86_039)), "1:26.039");
        assert_eq!(fmt_mins(Duration::from_secs(37 * 60 + 17)), "37:17.000");
    }

    #[test]
    fn expert_strategies_cover_all_benchmarks() {
        for b in Benchmark::all() {
            let g = b.build_tiny();
            let s = expert_strategy(b, &g, 4);
            assert_eq!(s.len(), g.len());
        }
    }

    #[test]
    fn compressed_report_merges_runs() {
        let g = Benchmark::AlexNet.build();
        let s = dp_strategy(&g, 8);
        let rows = compressed_report(&g, &s);
        // conv1..pool* all share (op-dependent) configs; at minimum the
        // report is shorter than the full layer list.
        assert!(rows.len() < g.len());
        assert!(rows.iter().any(|(name, _, _)| name.contains('…')));
    }

    #[test]
    fn flexflow_runs_end_to_end_on_tiny_model() {
        let b = Benchmark::Rnnlm;
        let g = b.build_tiny();
        let machine = MachineSpec::test_machine();
        let space = relaxed_space(&g, 4);
        let topo = Topology::cluster(machine, 4).unwrap();
        let res = flexflow_strategy(
            b,
            &g,
            &space,
            &topo,
            &McmcOptions {
                max_iters: 500,
                half_time_rule: false,
                ..Default::default()
            },
        );
        assert_eq!(res.strategy.len(), g.len());
        assert!(res.mcmc.iters <= 500);
    }

    #[test]
    fn pase_strategy_returns_extracted_strategy() {
        let g = Benchmark::AlexNet.build_tiny();
        let tables = standard_tables(&g, 4, &MachineSpec::test_machine());
        let (outcome, strategy) = pase_strategy(&g, &tables, &DpOptions::default());
        assert!(outcome.found().is_some());
        assert_eq!(strategy.unwrap().len(), g.len());
    }
}
