//! Criterion microbenchmarks of the search hot paths: GenerateSeq
//! ordering, the full FindBestStrategy DP per benchmark, and the naive
//! recurrence on the path-shaped models where it is feasible.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pase_core::{
    generate_seq, naive_best_strategy, optcnn_search, DpOptions, Search, SearchBudget,
};
use pase_cost::{ConfigRule, CostTables, MachineSpec, PruneOptions, PrunedTables, TableOptions};
use pase_models::Benchmark;

fn bench_generate_seq(c: &mut Criterion) {
    let g = Benchmark::InceptionV3.build();
    c.bench_function("generate_seq/inception_v3", |b| b.iter(|| generate_seq(&g)));
}

fn bench_table_build(c: &mut Criterion) {
    let machine = MachineSpec::gtx1080ti();
    let g = Benchmark::InceptionV3.build_for(8);
    c.bench_function("cost_tables/inception_v3/p8", |b| {
        b.iter(|| CostTables::build(&g, ConfigRule::new(8), &machine))
    });
    // A/B baseline: the pre-interning build path (every node and edge gets
    // its own table, built sequentially).
    c.bench_function("cost_tables_uninterned/inception_v3/p8", |b| {
        b.iter(|| {
            CostTables::build_with(
                &g,
                ConfigRule::new(8),
                &machine,
                &TableOptions {
                    intern: false,
                    parallel: false,
                    ..TableOptions::default()
                },
            )
        })
    });
}

fn bench_find_best_strategy(c: &mut Criterion) {
    let machine = MachineSpec::gtx1080ti();
    let mut group = c.benchmark_group("find_best_strategy");
    group.sample_size(10);
    for bench in Benchmark::all() {
        for p in [8u32, 32] {
            let g = bench.build_for(p);
            let tables = CostTables::build(&g, ConfigRule::new(p), &machine);
            group.bench_function(format!("{}/p{}", bench.name(), p), |b| {
                b.iter_batched(
                    || (),
                    |_| Search::new(&g).tables(&tables).run(),
                    BatchSize::PerIteration,
                )
            });
        }
    }
    group.finish();

    // A/B baseline: the same DP with the wavefront scheduler disabled
    // (strict sequential fill in position order).
    let mut group = c.benchmark_group("find_best_strategy_sequential");
    group.sample_size(10);
    let opts = DpOptions {
        parallel: false,
        ..DpOptions::default()
    };
    for bench in Benchmark::all() {
        let p = 8u32;
        let g = bench.build_for(p);
        let tables = CostTables::build(&g, ConfigRule::new(p), &machine);
        group.bench_function(format!("{}/p{}", bench.name(), p), |b| {
            b.iter_batched(
                || (),
                |_| Search::new(&g).tables(&tables).dp_options(opts).run(),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_pruned_search(c: &mut Criterion) {
    // A/B for dominance pruning: the same DP over pruned tables (plus the
    // standalone cost of the pruning pass itself).
    let machine = MachineSpec::gtx1080ti();
    let mut group = c.benchmark_group("find_best_strategy_pruned");
    group.sample_size(10);
    for bench in Benchmark::all() {
        let p = 32u32;
        let g = bench.build_for(p);
        let tables = CostTables::build(&g, ConfigRule::new(p), &machine);
        let pruned = PrunedTables::build(&g, &tables, &PruneOptions::default());
        group.bench_function(format!("{}/p{}", bench.name(), p), |b| {
            b.iter_batched(
                || (),
                |_| Search::new(&g).tables(pruned.tables()).run(),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("prune_pass");
    group.sample_size(20);
    for bench in Benchmark::all() {
        let p = 32u32;
        let g = bench.build_for(p);
        let tables = CostTables::build(&g, ConfigRule::new(p), &machine);
        group.bench_function(format!("{}/p{}", bench.name(), p), |b| {
            b.iter(|| PrunedTables::build(&g, &tables, &PruneOptions::default()))
        });
    }
    group.finish();
}

fn bench_naive_on_path_graphs(c: &mut Criterion) {
    let machine = MachineSpec::gtx1080ti();
    let mut group = c.benchmark_group("naive_bf");
    group.sample_size(10);
    for bench in [Benchmark::AlexNet, Benchmark::Rnnlm] {
        let g = bench.build_for(8);
        let tables = CostTables::build(&g, ConfigRule::new(8), &machine);
        group.bench_function(format!("{}/p8", bench.name()), |b| {
            b.iter(|| naive_best_strategy(&g, &tables, SearchBudget::default()))
        });
    }
    group.finish();
}

fn bench_optcnn_reduction(c: &mut Criterion) {
    // §VI comparison: graph reduction vs the DP on the reducible models.
    let machine = MachineSpec::gtx1080ti();
    let mut group = c.benchmark_group("optcnn");
    group.sample_size(20);
    for bench in [Benchmark::AlexNet, Benchmark::InceptionV3] {
        let g = bench.build_for(8);
        let tables = CostTables::build(&g, ConfigRule::new(8), &machine);
        group.bench_function(format!("{}/p8", bench.name()), |b| {
            b.iter(|| optcnn_search(&g, &tables))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_generate_seq,
    bench_table_build,
    bench_find_best_strategy,
    bench_pruned_search,
    bench_naive_on_path_graphs,
    bench_optcnn_reduction
);
criterion_main!(benches);
