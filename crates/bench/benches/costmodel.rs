//! Criterion microbenchmarks of the analytical cost model: configuration
//! enumeration, per-layer cost evaluation, transfer costs, and full
//! strategy evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use pase_baselines::data_parallel;
use pase_cost::{
    enumerate_configs, evaluate, layer_cost, transfer_bytes, Config, ConfigRule, MachineSpec,
};
use pase_models::{inception_v3, Benchmark, InceptionConfig};

fn bench_enumerate(c: &mut Criterion) {
    let g = inception_v3(&InceptionConfig::paper());
    // a representative 7-d convolution node
    let conv = g
        .nodes()
        .iter()
        .find(|n| n.name.contains("b3x3b") && n.name.ends_with("conv"))
        .expect("conv node");
    for p in [8u32, 64] {
        c.bench_function(&format!("enumerate_configs/conv/p{p}"), |b| {
            b.iter(|| enumerate_configs(conv, &ConfigRule::new(p)))
        });
    }
}

fn bench_layer_cost(c: &mut Criterion) {
    let g = inception_v3(&InceptionConfig::paper());
    let conv = g
        .nodes()
        .iter()
        .find(|n| n.name.contains("b3x3b") && n.name.ends_with("conv"))
        .expect("conv node");
    let cfg = Config::new(&[8, 1, 2, 2, 1, 1, 1]);
    c.bench_function("layer_cost/conv", |b| {
        b.iter(|| layer_cost(conv, &cfg, 941.0))
    });
}

fn bench_transfer(c: &mut Criterion) {
    let g = inception_v3(&InceptionConfig::paper());
    let e = g.edges()[40];
    let (u, v) = (g.node(e.src), g.node(e.dst));
    let cu = Config::ones(u.rank());
    let cv = Config::ones(v.rank());
    c.bench_function("transfer_bytes/edge", |b| {
        b.iter(|| transfer_bytes(u, &cu, v, e.dst_slot as usize, &cv))
    });
}

fn bench_full_evaluate(c: &mut Criterion) {
    let g = Benchmark::InceptionV3.build_for(32);
    let s = data_parallel(&g, 32);
    let r = MachineSpec::gtx1080ti().flop_byte_ratio();
    c.bench_function("evaluate/inception_v3/dp32", |b| {
        b.iter(|| evaluate(&g, &s, r))
    });
}

criterion_group!(
    benches,
    bench_enumerate,
    bench_layer_cost,
    bench_transfer,
    bench_full_evaluate
);
criterion_main!(benches);
