//! Criterion microbenchmarks of the execution simulator (the FlexFlow-style
//! MCMC calls this per proposal, so its speed bounds the baseline's search
//! throughput) and of a short MCMC run itself.

use criterion::{criterion_group, criterion_main, Criterion};
use pase_baselines::{data_parallel, McmcOptions};
use pase_bench::{flexflow_strategy, relaxed_space};
use pase_cost::MachineSpec;
use pase_models::Benchmark;
use pase_sim::{memory_per_device, simulate_step, SimOptions, Topology};
use std::time::Duration;

fn bench_simulate_step(c: &mut Criterion) {
    let topo = Topology::cluster(MachineSpec::gtx1080ti(), 32).unwrap();
    for bench in Benchmark::all() {
        let g = bench.build_for(32);
        let s = data_parallel(&g, 32);
        c.bench_function(&format!("simulate_step/{}/dp32", bench.name()), |b| {
            b.iter(|| simulate_step(&g, &s, &topo, &SimOptions::default()))
        });
    }
}

fn bench_memory(c: &mut Criterion) {
    let topo = Topology::cluster(MachineSpec::gtx1080ti(), 32).unwrap();
    let g = Benchmark::InceptionV3.build_for(32);
    let s = data_parallel(&g, 32);
    c.bench_function("memory_per_device/inception_v3/dp32", |b| {
        b.iter(|| memory_per_device(&g, &s, &topo))
    });
}

fn bench_mcmc_short(c: &mut Criterion) {
    let machine = MachineSpec::gtx1080ti();
    let topo = Topology::cluster(machine, 8).unwrap();
    let bench = Benchmark::Rnnlm;
    let g = bench.build_for(8);
    let space = relaxed_space(&g, 8);
    let mut group = c.benchmark_group("mcmc");
    group.sample_size(10);
    group.bench_function("rnnlm/p8/2k-iters", |b| {
        b.iter(|| {
            flexflow_strategy(
                bench,
                &g,
                &space,
                &topo,
                &McmcOptions {
                    max_iters: 2_000,
                    half_time_rule: false,
                    max_time: Duration::from_secs(60),
                    ..Default::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulate_step, bench_memory, bench_mcmc_short);
criterion_main!(benches);
