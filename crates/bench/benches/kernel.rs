//! Criterion microbenchmarks of the min-plus DP microkernel in isolation:
//! the packed fused min+add entry (`packed_min_add`) against the scalar
//! per-config loop (`scalar_min_add`), at the row widths the paper models
//! actually produce after pruning (k = 32/84/210 ≈ AlexNet p=32, the
//! Transformer's widest pruned class, and InceptionV3's p=64 maximum).
//! `add_strided` is measured alongside `add_rows` to show what the pack
//! phase's one-time transposition buys on every subsequent access: the
//! strided gather is the access pattern the scalar loop pays per
//! `(entry, config)` pair for column-wise edge matrices and `vi_coef > 1`
//! child tables.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pase_core::kernel::{
    add_rows, add_strided, packed_min_add, row_min, scalar_min_add, sum_row_min,
};

const WIDTHS: [usize; 3] = [32, 84, 210];

fn test_row(k: usize, seed: usize) -> Vec<f64> {
    (0..k)
        .map(|i| ((i * 31 + seed * 7 + 3) % 97) as f64 * 0.125)
        .collect()
}

/// One DP entry's combine — layer-cost base plus two operand rows,
/// reduced to (min, argmin) — scalar loop vs packed fused passes.
fn bench_min_add(c: &mut Criterion) {
    for k in WIDTHS {
        let base = test_row(k, 0);
        let r1 = test_row(k, 1);
        let r2 = test_row(k, 2);
        let rows = [r1.as_slice(), r2.as_slice()];
        c.bench_function(&format!("min_add/scalar/k{k}"), |b| {
            b.iter(|| scalar_min_add(black_box(&base), black_box(&rows)))
        });
        let mut acc = vec![0.0; k];
        c.bench_function(&format!("min_add/packed/k{k}"), |b| {
            b.iter(|| packed_min_add(black_box(&mut acc), black_box(&base), black_box(&rows)))
        });
    }
}

/// The single-varying-operand fast path: fused sum+min with no
/// accumulator writes (what an innermost-digit run with a hoisted
/// invariant prefix pays per entry).
fn bench_fused_single_op(c: &mut Criterion) {
    for k in WIDTHS {
        let pre = test_row(k, 0);
        let row = test_row(k, 1);
        c.bench_function(&format!("sum_row_min/k{k}"), |b| {
            b.iter(|| sum_row_min(black_box(&pre), black_box(&row)))
        });
        c.bench_function(&format!("row_min/k{k}"), |b| {
            b.iter(|| row_min(black_box(&pre)))
        });
    }
}

/// Contiguous accumulate vs the strided gather it replaces: `add_strided`
/// with stride = k is how the unpacked scalar loop walks a column-wise
/// edge matrix (or a `vi_coef > 1` child table) for one entry.
fn bench_accumulate(c: &mut Criterion) {
    for k in WIDTHS {
        let src = test_row(k * k, 1);
        let mut acc = test_row(k, 0);
        c.bench_function(&format!("add_rows/k{k}"), |b| {
            b.iter(|| add_rows(black_box(&mut acc), black_box(&src[..k])))
        });
        c.bench_function(&format!("add_strided/k{k}"), |b| {
            b.iter(|| add_strided(black_box(&mut acc), black_box(&src), black_box(k)))
        });
    }
}

criterion_group!(
    benches,
    bench_min_add,
    bench_fused_single_op,
    bench_accumulate
);
criterion_main!(benches);
