//! Connected sets, connected subsets, and dependent sets (§III-B).
//!
//! For an ordering `V = (v^(1), …, v^(|V|))` and a position `i`:
//!
//! * the **connected set** `X(i)` is the set of vertices of `V_{≤i}`
//!   connected to `v^(i)` by paths inside `V_{≤i}` (including `v^(i)`);
//! * the **dependent set** `D(i) = N(X(i)) ∩ V_{>i}` is the set of
//!   *later* vertices whose configurations the sub-solution for `X(i)`
//!   depends on;
//! * the **connected subsets** `S(i)` are the vertex sets of the connected
//!   components of `X(i) − {v^(i)}` (induced in `V_{<i}`); each component
//!   is identified by its *anchor* — its maximum-position vertex `j` —
//!   whose DP table `R_V(j, ·)` summarizes it.
//!
//! [`ConnectedSetMode::Prefix`] forces `X(i) = V_{≤i}`, which turns
//! recurrence (4) into the naive recurrence (2) with breadth-first
//! dependent sets `D_B(i) = N(V_{≤i}) ∩ V_{>i}` — the §III-A baseline whose
//! tables explode on non-path graphs.

use pase_graph::{dfs_reachable_within, Graph, NodeId};

/// How connected sets are computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnectedSetMode {
    /// `X(i)` = component of `v^(i)` in `V_{≤i}` (recurrence (4)).
    Exact,
    /// `X(i) = V_{≤i}` (the naive recurrence (2); dependent sets become
    /// `D_B(i)` and the recursion has the single child `B(i−1)`). Valid
    /// with any ordering — `D_B(i−1) ⊆ D_B(i) ∪ {v^(i)}` holds because
    /// every later neighbor of `V_{≤i−1}` is either `v^(i)` or still later
    /// — but exponentially slower than [`ConnectedSetMode::Exact`] on
    /// non-path graphs (the paper's Table I `OOM` column).
    Prefix,
}

/// All per-position structure the dynamic program needs, precomputed for a
/// `(graph, ordering, mode)` triple.
#[derive(Clone, Debug)]
pub struct VertexStructure {
    order: Vec<NodeId>,
    pos: Vec<u32>,
    dep_sets: Vec<Vec<NodeId>>,
    subsets: Vec<Vec<usize>>,
    roots: Vec<usize>,
    wavefronts: Vec<Vec<usize>>,
    levels: Vec<u32>,
    mode: ConnectedSetMode,
}

impl VertexStructure {
    /// Compute `X`, `S`, `D` for every position of `order` (which must be a
    /// permutation of the graph's vertices).
    pub fn build(g: &Graph, order: &[NodeId], mode: ConnectedSetMode) -> Self {
        let n = g.len();
        assert_eq!(order.len(), n, "ordering must cover every vertex");
        let mut pos = vec![u32::MAX; n];
        for (i, v) in order.iter().enumerate() {
            assert!(pos[v.index()] == u32::MAX, "ordering repeats {v}");
            pos[v.index()] = i as u32;
        }

        let mut dep_sets = Vec::with_capacity(n);
        let mut subsets = Vec::with_capacity(n);
        let mut prefix_mask = vec![false; n]; // positions ≤ i
        for (i, &vi) in order.iter().enumerate() {
            prefix_mask[vi.index()] = true;
            // X(i)
            let x: Vec<NodeId> = match mode {
                ConnectedSetMode::Exact => dfs_reachable_within(g, &prefix_mask, vi),
                ConnectedSetMode::Prefix => order[..=i].to_vec(),
            };
            // D(i) = N(X(i)) ∩ V_{>i}, sorted by node id for canonical keys.
            let mut dep: Vec<NodeId> = Vec::new();
            for &u in &x {
                for &w in g.neighbors(u) {
                    if pos[w.index()] > i as u32 {
                        dep.push(w);
                    }
                }
            }
            dep.sort_unstable();
            dep.dedup();
            // S(i). Exact mode: the connected components of X(i) − {v_i}
            // within V_{<i}, each identified by its max-position anchor.
            // Prefix mode is the paper's recurrence (2) verbatim: a single
            // child B(i−1) summarizing *all* of V_{<i} — decomposing into
            // components here would double-count any component reachable
            // both directly and through another child's table.
            let anchors = match mode {
                ConnectedSetMode::Prefix => {
                    if i == 0 {
                        Vec::new()
                    } else {
                        vec![i - 1]
                    }
                }
                ConnectedSetMode::Exact => {
                    let mut sub_mask = vec![false; n];
                    for &u in &x {
                        if u != vi {
                            sub_mask[u.index()] = true;
                        }
                    }
                    let mut anchors = Vec::new();
                    let mut remaining: Vec<NodeId> =
                        x.iter().copied().filter(|&u| u != vi).collect();
                    let mut seen = vec![false; n];
                    // Components in deterministic order (smallest member
                    // first).
                    remaining.sort_unstable();
                    for u in remaining {
                        if seen[u.index()] {
                            continue;
                        }
                        let comp = dfs_reachable_within(g, &sub_mask, u);
                        let mut anchor = 0u32;
                        for &w in &comp {
                            seen[w.index()] = true;
                            anchor = anchor.max(pos[w.index()]);
                        }
                        anchors.push(anchor as usize);
                    }
                    anchors
                }
            };
            dep_sets.push(dep);
            subsets.push(anchors);
        }

        // Roots: positions whose table yields a final component cost. A
        // position is a root iff its dependent set is empty and it is the
        // maximum position of its component — equivalently, iff it is never
        // referenced as a child anchor by any later position and is not
        // inside any later X. The simplest correct characterization: the
        // max position of each weakly-connected component of G (Exact), or
        // just the last position (Prefix: S-sums cover all components).
        let roots = match mode {
            ConnectedSetMode::Prefix => {
                if n == 0 {
                    vec![]
                } else {
                    vec![n - 1]
                }
            }
            ConnectedSetMode::Exact => pase_graph::components(g)
                .iter()
                .map(|comp| {
                    comp.iter()
                        .map(|v| pos[v.index()] as usize)
                        .max()
                        .expect("nonempty")
                })
                .collect(),
        };

        // Wavefront levels over the table-dependency DAG: the table at
        // position `i` reads exactly the tables at `subset_anchors(i)`, all
        // of which are earlier positions, so
        // `level(i) = 1 + max level(anchor)` (0 with no anchors) gives a
        // schedule where every table in one level can be filled
        // concurrently once the previous levels are done.
        let mut levels = vec![0u32; n];
        for i in 0..n {
            let lvl = subsets[i].iter().map(|&j| levels[j] + 1).max().unwrap_or(0);
            levels[i] = lvl;
        }
        let n_waves = levels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
        let mut wavefronts: Vec<Vec<usize>> = vec![Vec::new(); n_waves];
        for (i, &l) in levels.iter().enumerate() {
            wavefronts[l as usize].push(i);
        }

        Self {
            order: order.to_vec(),
            pos,
            dep_sets,
            subsets,
            roots,
            wavefronts,
            levels,
            mode,
        }
    }

    /// The ordering this structure was built for.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Position of vertex `v` in the ordering.
    pub fn position(&self, v: NodeId) -> usize {
        self.pos[v.index()] as usize
    }

    /// Vertex at position `i`.
    pub fn vertex(&self, i: usize) -> NodeId {
        self.order[i]
    }

    /// `D(i)` for every position, each sorted by node id.
    pub fn dependent_sets(&self) -> &[Vec<NodeId>] {
        &self.dep_sets
    }

    /// `D(i)` of one position.
    pub fn dependent_set(&self, i: usize) -> &[NodeId] {
        &self.dep_sets[i]
    }

    /// Anchor positions of `S(i)`.
    pub fn subset_anchors(&self, i: usize) -> &[usize] {
        &self.subsets[i]
    }

    /// Positions whose tables hold final component costs; the minimum total
    /// cost of the graph is the sum of the root tables' (empty-substrategy)
    /// entries.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Size of the largest dependent set (the paper's `M`).
    pub fn max_dependent_set(&self) -> usize {
        self.dep_sets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Positions grouped by dependency level: all tables of
    /// `wavefronts()[l]` depend (transitively, via [`Self::subset_anchors`])
    /// only on tables in waves `< l`, so each wave can be filled
    /// concurrently. Waves are ordered; positions within a wave are in
    /// ascending order.
    pub fn wavefronts(&self) -> &[Vec<usize>] {
        &self.wavefronts
    }

    /// Dependency level of position `i` (its index in [`Self::wavefronts`]).
    pub fn level(&self, i: usize) -> usize {
        self.levels[i] as usize
    }

    /// Size of the largest wavefront (peak table-level parallelism).
    pub fn max_wavefront_width(&self) -> usize {
        self.wavefronts.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The mode this structure was built with.
    pub fn mode(&self) -> ConnectedSetMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::generate_seq;
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn ew(name: &str, ins: usize) -> Node {
        Node {
            name: name.into(),
            op: OpKind::Elementwise {
                flops_per_point: 1.0,
            },
            iter_space: vec![IterDim::new("b", 4, DimRole::Batch)],
            inputs: (0..ins).map(|_| TensorRef::new(vec![0], vec![4])).collect(),
            output: TensorRef::new(vec![0], vec![4]),
            params: vec![],
        }
    }

    /// The toy graph of the paper's Fig. 2 caption intuition: a fan
    /// structure where an ordering separates two components until a late
    /// vertex joins them.
    ///
    /// Edges: 0–1, 1–2 | 3–4 | 2–5, 4–5 (5 joins both chains), 5–6.
    fn two_chains_join() -> Graph {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(ew("0", 0));
        let n1 = b.add_node(ew("1", 1));
        let n2 = b.add_node(ew("2", 1));
        let n3 = b.add_node(ew("3", 0));
        let n4 = b.add_node(ew("4", 1));
        let n5 = b.add_node(ew("5", 2));
        let n6 = b.add_node(ew("6", 1));
        b.connect(n0, n1);
        b.connect(n1, n2);
        b.connect(n3, n4);
        b.connect(n2, n5);
        b.connect(n4, n5);
        b.connect(n5, n6);
        b.build().unwrap()
    }

    #[test]
    fn identity_ordering_structure() {
        let g = two_chains_join();
        let order: Vec<NodeId> = g.node_ids().collect();
        let s = VertexStructure::build(&g, &order, ConnectedSetMode::Exact);
        // position 2 (vertex 2): X = {0,1,2}; D = {5}
        assert_eq!(s.dependent_set(2), &[NodeId(5)]);
        // position 4 (vertex 4): X = {3,4}; D = {5}
        assert_eq!(s.dependent_set(4), &[NodeId(5)]);
        // position 5 (vertex 5): X = everything ≤ 5; D = {6};
        // S(5) = two components {0,1,2} (anchor 2) and {3,4} (anchor 4)
        assert_eq!(s.dependent_set(5), &[NodeId(6)]);
        assert_eq!(s.subset_anchors(5), &[2, 4]);
        // final position is the single root with empty D
        assert_eq!(s.roots(), &[6]);
        assert!(s.dependent_set(6).is_empty());
    }

    #[test]
    fn exact_mode_shrinks_dependent_sets_vs_prefix() {
        let g = two_chains_join();
        let order: Vec<NodeId> = g.node_ids().collect();
        let exact = VertexStructure::build(&g, &order, ConnectedSetMode::Exact);
        let prefix = VertexStructure::build(&g, &order, ConnectedSetMode::Prefix);
        // At position 3 (vertex 3, isolated so far): exact X = {3} → D = {4};
        // prefix X = {0,1,2,3} → D = {4, 5}.
        assert_eq!(exact.dependent_set(3), &[NodeId(4)]);
        assert_eq!(prefix.dependent_set(3), &[NodeId(4), NodeId(5)]);
        assert!(exact.max_dependent_set() <= prefix.max_dependent_set());
    }

    #[test]
    fn prefix_mode_root_is_last_position() {
        let g = two_chains_join();
        let order: Vec<NodeId> = g.node_ids().collect();
        let s = VertexStructure::build(&g, &order, ConnectedSetMode::Prefix);
        assert_eq!(s.roots(), &[g.len() - 1]);
    }

    #[test]
    fn disconnected_graph_has_one_root_per_component() {
        let mut b = GraphBuilder::new();
        let a0 = b.add_node(ew("a0", 0));
        let a1 = b.add_node(ew("a1", 1));
        let _c0 = b.add_node(ew("c0", 0));
        b.connect(a0, a1);
        let g = b.build().unwrap();
        let order: Vec<NodeId> = g.node_ids().collect();
        let s = VertexStructure::build(&g, &order, ConnectedSetMode::Exact);
        let mut roots = s.roots().to_vec();
        roots.sort_unstable();
        assert_eq!(roots, vec![1, 2]);
    }

    #[test]
    fn theorem2_generate_seq_sets_match_first_principles() {
        // Theorem 2: the sets maintained by GenerateSeq equal D(i) computed
        // from the definitions. `generate_seq_with_sets` exposes the
        // maintained sets at pick time.
        let g = two_chains_join();
        let (order, maintained) = crate::ordering::generate_seq_with_sets(&g);
        let s = VertexStructure::build(&g, &order, ConnectedSetMode::Exact);
        for (i, m) in maintained.iter().enumerate() {
            assert_eq!(
                m,
                s.dependent_set(i),
                "maintained set diverges from D({i}) for ordering {order:?}"
            );
        }
    }

    #[test]
    fn generate_seq_orders_join_vertex_late() {
        // Vertex 5 has degree 3; GenerateSeq should sequence it only after
        // its chains, keeping every dependent set ≤ 1 on this graph.
        let g = two_chains_join();
        let order = generate_seq(&g);
        let s = VertexStructure::build(&g, &order, ConnectedSetMode::Exact);
        assert!(s.max_dependent_set() <= 1, "M = {}", s.max_dependent_set());
    }

    #[test]
    fn wavefronts_partition_positions_and_respect_anchors() {
        let g = two_chains_join();
        for mode in [ConnectedSetMode::Exact, ConnectedSetMode::Prefix] {
            let order: Vec<NodeId> = g.node_ids().collect();
            let s = VertexStructure::build(&g, &order, mode);
            let mut seen = vec![false; g.len()];
            for (l, wave) in s.wavefronts().iter().enumerate() {
                assert!(!wave.is_empty(), "empty wave {l}");
                for &i in wave {
                    assert_eq!(s.level(i), l);
                    assert!(!seen[i], "position {i} in two waves");
                    seen[i] = true;
                    for &j in s.subset_anchors(i) {
                        assert!(
                            s.level(j) < l,
                            "anchor {j} (level {}) not before {i} (level {l})",
                            s.level(j)
                        );
                    }
                }
            }
            assert!(
                seen.iter().all(|&b| b),
                "wavefronts must cover all positions"
            );
            assert!(s.max_wavefront_width() >= 1);
        }
    }

    #[test]
    fn prefix_mode_wavefronts_are_singletons() {
        // Recurrence (2) chains every table to its predecessor, so the
        // dependency DAG is a path: n waves of width 1.
        let g = two_chains_join();
        let order: Vec<NodeId> = g.node_ids().collect();
        let s = VertexStructure::build(&g, &order, ConnectedSetMode::Prefix);
        assert_eq!(s.wavefronts().len(), g.len());
        assert_eq!(s.max_wavefront_width(), 1);
    }

    #[test]
    fn independent_chains_share_waves() {
        // Two disconnected 2-chains: positions 0 and 2 have no anchors
        // (wave 0), positions 1 and 3 anchor on them (wave 1).
        let mut b = GraphBuilder::new();
        let a0 = b.add_node(ew("a0", 0));
        let a1 = b.add_node(ew("a1", 1));
        let c0 = b.add_node(ew("c0", 0));
        let c1 = b.add_node(ew("c1", 1));
        b.connect(a0, a1);
        b.connect(c0, c1);
        let g = b.build().unwrap();
        let order: Vec<NodeId> = g.node_ids().collect();
        let s = VertexStructure::build(&g, &order, ConnectedSetMode::Exact);
        assert_eq!(s.wavefronts()[0], vec![0, 2]);
        assert_eq!(s.wavefronts()[1], vec![1, 3]);
        assert_eq!(s.max_wavefront_width(), 2);
    }

    #[test]
    #[should_panic(expected = "ordering repeats")]
    fn repeated_vertex_in_ordering_panics() {
        let g = two_chains_join();
        let mut order: Vec<NodeId> = g.node_ids().collect();
        order[1] = order[0];
        let _ = VertexStructure::build(&g, &order, ConnectedSetMode::Exact);
    }
}
