//! # pase-core — PaSE's search algorithms (§III)
//!
//! This crate implements the paper's contribution:
//!
//! * [`generate_seq`] — the **GenerateSeq** greedy vertex ordering (Fig. 3)
//!   that keeps dependent sets small by sequencing high-degree vertices
//!   only after their neighborhoods;
//! * [`VertexStructure`] — connected sets `X(i)`, connected subsets `S(i)`
//!   and dependent sets `D(i)` for a given ordering (§III-B definitions),
//!   in both the *exact* form of recurrence (4) and the *prefix* form
//!   `X(i) = V_{≤i}` that degenerates to the naive recurrence (2);
//! * [`Search`] — the unified builder entry point
//!   (`Search::new(&graph).devices(p).run()`) over the **FindBestStrategy**
//!   dynamic program (Fig. 4): precomputed [`pase_cost::CostTables`],
//!   rayon-parallel substrategy loops, optional dominance pruning and
//!   tracing, strategy extraction by back-substitution, and explicit
//!   time/memory budgets whose exhaustion reproduces the `OOM` entries of
//!   Table I — it is the sole search entry point (the legacy
//!   `find_best_strategy*` free-function grid has been removed), and costs
//!   against a [`pase_cost::DeviceMesh`] (flat single-axis meshes
//!   reproduce the scalar machine model bit-identically);
//! * [`DpKernel`] — the DP's inner-loop implementations: today's scalar
//!   per-entry loop, and the packed/tiled min-plus microkernel
//!   ([`kernel`]) that treats the combine step as a GEMM-shaped min-plus
//!   matrix product (bit-identical results, one flag to A/B);
//! * [`Error`] — the single error type of the search stack (budget
//!   exhaustion, cost-model failures, cache I/O, protocol violations,
//!   schema-version mismatches);
//! * [`brute_force`] — exhaustive strategy enumeration for small graphs,
//!   used to validate the DP's optimality (Theorem 1).

#![warn(missing_docs)]

mod brute;
mod budget;
mod dp;
mod error;
mod frontier;
mod gate;
pub mod kernel;
mod ordering;
mod pool;
mod reduction;
mod report;
mod search;
mod structure;

pub use brute::{brute_force, brute_force_pruned, random_strategy_costs};
pub use budget::{SearchBudget, SearchOutcome, SearchResult, SearchStats, DP_ENTRY_BYTES};
pub use dp::{naive_best_strategy, DpOptions};
pub use error::Error;
pub use frontier::{FrontierPoint, StrategyFrontier};
pub use gate::PruneGate;
pub use kernel::DpKernel;
pub use ordering::{
    dependent_set_sizes, generate_seq, generate_seq_with_sets, make_ordering, search_profile,
    OrderingKind, PositionProfile,
};
pub use reduction::{optcnn_search, optcnn_search_pruned, ReductionOutcome};
pub use report::{PhaseReport, SearchReport, SCHEMA_VERSION};
pub use search::{Search, SearchRun};
pub use structure::{ConnectedSetMode, VertexStructure};
