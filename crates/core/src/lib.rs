//! # pase-core — PaSE's search algorithms (§III)
//!
//! This crate implements the paper's contribution:
//!
//! * [`generate_seq`] — the **GenerateSeq** greedy vertex ordering (Fig. 3)
//!   that keeps dependent sets small by sequencing high-degree vertices
//!   only after their neighborhoods;
//! * [`VertexStructure`] — connected sets `X(i)`, connected subsets `S(i)`
//!   and dependent sets `D(i)` for a given ordering (§III-B definitions),
//!   in both the *exact* form of recurrence (4) and the *prefix* form
//!   `X(i) = V_{≤i}` that degenerates to the naive recurrence (2);
//! * [`find_best_strategy`] — the **FindBestStrategy** dynamic program
//!   (Fig. 4) over precomputed [`pase_cost::CostTables`], with
//!   rayon-parallel substrategy loops, strategy extraction by
//!   back-substitution, and explicit time/memory budgets whose exhaustion
//!   reproduces the `OOM` entries of Table I;
//! * [`brute_force`] — exhaustive strategy enumeration for small graphs,
//!   used to validate the DP's optimality (Theorem 1).

#![warn(missing_docs)]

mod brute;
mod budget;
mod dp;
mod ordering;
mod reduction;
mod report;
mod structure;

pub use brute::{brute_force, brute_force_pruned, random_strategy_costs};
pub use budget::{SearchBudget, SearchOutcome, SearchResult, SearchStats, DP_ENTRY_BYTES};
pub use dp::{
    find_best_strategy, find_best_strategy_pruned, find_best_strategy_pruned_traced,
    find_best_strategy_traced, naive_best_strategy, DpOptions,
};
pub use ordering::{
    dependent_set_sizes, generate_seq, generate_seq_with_sets, make_ordering, search_profile,
    OrderingKind, PositionProfile,
};
pub use reduction::{optcnn_search, optcnn_search_pruned, ReductionOutcome};
pub use report::{PhaseReport, SearchReport};
pub use structure::{ConnectedSetMode, VertexStructure};
