//! The tiled min-plus DP microkernel.
//!
//! The DP combine step (recurrence (4)) is a **min-plus matrix product**:
//! per table entry it minimizes, over the `kv` configurations of the
//! current vertex, a sum of a layer-cost term, one edge-cost term per
//! later neighbor, and one child-table term per connected subset. The
//! scalar loop in `dp.rs` re-resolves every operand per `(entry, config)`
//! pair — class indirections, strided edge-matrix gathers, strided
//! child-table gathers, a branchy running argmin. This module restructures
//! the fill the way a GEMM library structures a block:
//!
//! 1. **Pack** — operands that do not change across the *entire vertex
//!    table* are hoisted once per vertex ([`pack_vertex`]), shared
//!    read-only by every fill chunk of that table: the layer-cost row is
//!    borrowed directly (it is already a contiguous `base[c]` vector);
//!    every edge matrix that the inner loop would read *column-wise* (when
//!    the current vertex is the edge's source, the row over `c` for a
//!    fixed neighbor digit has stride `k_dst`) is transposed into a
//!    panel-major buffer `panel[w·kv + c]` so each neighbor digit selects
//!    a contiguous row; and every child DP table whose current-vertex
//!    digit is not innermost (`vi_coef > 1` — a per-`(entry, config)`
//!    strided gather in the scalar loop) is transposed so the `kv`
//!    configuration costs of each substrategy become one contiguous row,
//!    addressed by re-derived mixed-radix coefficients that the odometer
//!    maintains incrementally just like the original base offsets. Edge
//!    matrices already row-major for our access (current vertex on the
//!    destination side) and child tables with `vi_coef == 1` are used in
//!    place — packing them would be a pure copy with no locality gain.
//! 2. **Tile** — entries are processed in **innermost-digit runs**: the
//!    `radix[last]` consecutive entries over which only the fastest-moving
//!    odometer digit changes. Within a run, every operand that does not
//!    read that digit contributes the *same* row to every entry, so the
//!    longest invariant **prefix** of the summation (layer cost plus
//!    leading constant operands) is summed into a `pre` row once per run
//!    and reused by every entry — bit-exact, because each entry's addition
//!    tree is unchanged, its shared head is merely computed once. The
//!    remaining per-entry passes are fused contiguous slice loops
//!    ([`set_sum`] folds the prefix copy into the first add,
//!    [`add_rows_min`] folds the min reduction into the last, and a single
//!    varying operand skips the accumulator entirely via [`sum_row_min`])
//!    that the autovectorizer turns into SIMD `addpd`/`minpd` — no
//!    `std::simd`, no intrinsics. Odometer carries happen once per run,
//!    not once per entry, and a run with *no* varying operand reduces once
//!    and broadcasts one `(cost, choice)` pair.
//! 3. **Reduce** — the minimum of an accumulated row comes from a
//!    branch-free lane-blocked pass (the fused `*_min` primitives, blocked
//!    by [`LANES`]), and only then is the argmin recovered by a second
//!    cheap equality scan ([`row_argmin`]). Keeping the `best_c`
//!    bookkeeping out of the hot loop removes the loop-carried
//!    compare-and-branch that blocks vectorization of the scalar version.
//!
//! ## Bit-identical contract
//!
//! `DpKernel::Tiled` must produce the same `costs` and `choice` arrays as
//! `DpKernel::Scalar` **bit for bit** (asserted by `tests/kernel_parity.rs`
//! and the bench gate). Two properties make that hold:
//!
//! * every accumulator entry performs the same f64 additions in the same
//!   order as the scalar loop (layer cost, then `later_edges` in order,
//!   then children in order) — only the loop nesting changes, never the
//!   summation order;
//! * `min` over finite values is associative/commutative, so the blocked
//!   reduction returns the same minimum the scalar scan finds, and the
//!   first `c` with `row[c] == min` is exactly the scalar loop's "first
//!   strictly smaller" winner. (NaN costs and `-0.0`-vs-`+0.0` ties are
//!   outside the contract; real cost tables are finite and non-negative.)

use crate::dp::{ChildCoef, FillChunk, Plan, Table};
use crate::pool::Scratch;
use pase_cost::CostTables;
use pase_graph::GraphError;

/// Which inner-loop implementation the DP table fill uses. Both produce
/// bit-identical tables; the option exists so A/B measurement is one flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DpKernel {
    /// The straightforward per-entry loop: one pass over the `kv`
    /// configurations per entry, resolving every cost operand through the
    /// table accessors and tracking the argmin inline.
    Scalar,
    /// The packed, run-blocked min-plus microkernel (the default):
    /// vertex-invariant operands are packed once per table, entries are
    /// processed in innermost-digit runs of pure slice arithmetic with the
    /// run-invariant prefix sum hoisted, and the argmin is recovered
    /// outside the hot loop.
    #[default]
    Tiled,
}

impl DpKernel {
    /// Parse a CLI/wire value (`"scalar"`, `"tiled"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(DpKernel::Scalar),
            "tiled" => Some(DpKernel::Tiled),
            _ => None,
        }
    }

    /// The CLI/wire spelling of this kernel.
    pub fn as_str(self) -> &'static str {
        match self {
            DpKernel::Scalar => "scalar",
            DpKernel::Tiled => "tiled",
        }
    }
}

/// f64 lanes the min reduction is blocked by. Eight doubles span a full
/// AVX-512 register or two AVX2 registers; the compiler maps the fixed
/// `[f64; LANES]` array onto whatever the target has.
pub const LANES: usize = 8;

/// `acc[i] += row[i]` over equal-length slices — the kernel's contiguous
/// accumulate step. The explicit equal-length split lets the
/// autovectorizer drop bounds checks and emit packed adds.
#[inline]
pub fn add_rows(acc: &mut [f64], row: &[f64]) {
    let n = acc.len().min(row.len());
    let (acc, row) = (&mut acc[..n], &row[..n]);
    for i in 0..n {
        acc[i] += row[i];
    }
}

/// `acc[i] += v` — the broadcast accumulate for a child whose dependent
/// set does not contain the current vertex (its cost is constant over the
/// `kv` configurations).
#[inline]
pub fn add_scalar(acc: &mut [f64], v: f64) {
    for a in acc {
        *a += v;
    }
}

/// `acc[i] = base[i] + row[i]` — the fused first accumulate, replacing a
/// `copy_from_slice` followed by [`add_rows`] with a single pass.
#[inline]
pub fn set_sum(acc: &mut [f64], base: &[f64], row: &[f64]) {
    let n = acc.len().min(base.len()).min(row.len());
    let (acc, base, row) = (&mut acc[..n], &base[..n], &row[..n]);
    for i in 0..n {
        acc[i] = base[i] + row[i];
    }
}

/// `acc[i] = base[i] + v` — the fused first accumulate for a broadcast
/// operand.
#[inline]
pub fn set_sum_scalar(acc: &mut [f64], base: &[f64], v: f64) {
    let n = acc.len().min(base.len());
    let (acc, base) = (&mut acc[..n], &base[..n]);
    for i in 0..n {
        acc[i] = base[i] + v;
    }
}

/// `acc[i] += row[i]`, returning the minimum of the *final* values — the
/// fused last accumulate + reduce pass, saving one full re-read of the
/// accumulator. Lane-blocked like [`row_min`]; equal to it on the summed
/// row for any non-NaN input.
#[inline]
pub fn add_rows_min(acc: &mut [f64], row: &[f64]) -> f64 {
    let n = acc.len().min(row.len());
    let (acc, row) = (&mut acc[..n], &row[..n]);
    let mut lanes = [f64::INFINITY; LANES];
    let mut achunks = acc.chunks_exact_mut(LANES);
    let mut rchunks = row.chunks_exact(LANES);
    for (a, r) in (&mut achunks).zip(&mut rchunks) {
        for j in 0..LANES {
            let v = a[j] + r[j];
            a[j] = v;
            if v < lanes[j] {
                lanes[j] = v;
            }
        }
    }
    let mut best = f64::INFINITY;
    for (a, &r) in achunks.into_remainder().iter_mut().zip(rchunks.remainder()) {
        let v = *a + r;
        *a = v;
        if v < best {
            best = v;
        }
    }
    for &v in &lanes {
        if v < best {
            best = v;
        }
    }
    best
}

/// `acc[i] += v`, returning the minimum of the final values — the fused
/// last pass for a broadcast operand.
#[inline]
pub fn add_scalar_min(acc: &mut [f64], v: f64) -> f64 {
    let mut lanes = [f64::INFINITY; LANES];
    let mut achunks = acc.chunks_exact_mut(LANES);
    for a in &mut achunks {
        for j in 0..LANES {
            let s = a[j] + v;
            a[j] = s;
            if s < lanes[j] {
                lanes[j] = s;
            }
        }
    }
    let mut best = f64::INFINITY;
    for a in achunks.into_remainder() {
        let s = *a + v;
        *a = s;
        if s < best {
            best = s;
        }
    }
    for &l in &lanes {
        if l < best {
            best = l;
        }
    }
    best
}

/// Minimum of `base[i] + row[i]` *without materializing* the sums — the
/// single-operand fast path (one edge or one child and nothing else), where
/// writing an accumulator just to reduce it again would double the memory
/// traffic.
#[inline]
pub fn sum_row_min(base: &[f64], row: &[f64]) -> f64 {
    let n = base.len().min(row.len());
    let (base, row) = (&base[..n], &row[..n]);
    let mut lanes = [f64::INFINITY; LANES];
    let mut bchunks = base.chunks_exact(LANES);
    let mut rchunks = row.chunks_exact(LANES);
    for (b, r) in (&mut bchunks).zip(&mut rchunks) {
        for j in 0..LANES {
            let v = b[j] + r[j];
            if v < lanes[j] {
                lanes[j] = v;
            }
        }
    }
    let mut best = f64::INFINITY;
    for (&b, &r) in bchunks.remainder().iter().zip(rchunks.remainder()) {
        let v = b + r;
        if v < best {
            best = v;
        }
    }
    for &v in &lanes {
        if v < best {
            best = v;
        }
    }
    best
}

/// First index where `base[i] + row[i]` equals `min` — argmin recovery for
/// the [`sum_row_min`] fast path, recomputing the (deterministic) sums
/// instead of storing them.
#[inline]
pub fn sum_row_argmin(base: &[f64], row: &[f64], min: f64) -> u16 {
    base.iter()
        .zip(row)
        .position(|(&b, &r)| b + r == min)
        .unwrap_or(0) as u16
}

/// Minimum of `base[i] + v` (single broadcast operand fast path).
#[inline]
pub fn sum_scalar_min(base: &[f64], v: f64) -> f64 {
    let mut lanes = [f64::INFINITY; LANES];
    let mut bchunks = base.chunks_exact(LANES);
    for b in &mut bchunks {
        for j in 0..LANES {
            let s = b[j] + v;
            if s < lanes[j] {
                lanes[j] = s;
            }
        }
    }
    let mut best = f64::INFINITY;
    for &b in bchunks.remainder() {
        let s = b + v;
        if s < best {
            best = s;
        }
    }
    for &l in &lanes {
        if l < best {
            best = l;
        }
    }
    best
}

/// First index where `base[i] + v` equals `min` (companion of
/// [`sum_scalar_min`]).
#[inline]
pub fn sum_scalar_argmin(base: &[f64], v: f64, min: f64) -> u16 {
    base.iter().position(|&b| b + v == min).unwrap_or(0) as u16
}

/// `acc[i] += src[i * stride]` — the strided child-table gather the scalar
/// loop performs when the current vertex's digit is not innermost
/// (`vi_coef > 1`). The tiled kernel *eliminates* this access pattern by
/// transposing such child tables at pack time; the primitive is kept for
/// the A/B microbenchmark, which shows why. `src` must cover
/// `(acc.len() - 1) * stride` elements.
#[inline]
pub fn add_strided(acc: &mut [f64], src: &[f64], stride: usize) {
    for (i, a) in acc.iter_mut().enumerate() {
        *a += src[i * stride];
    }
}

/// Branch-free blocked minimum of a row: [`LANES`] independent running
/// minima over the exact chunks, folded with the scalar remainder at the
/// end. Equals the sequential `min` for any row without NaNs (and ignores
/// NaNs exactly like a `<` scan does).
#[inline]
pub fn row_min(row: &[f64]) -> f64 {
    let mut lanes = [f64::INFINITY; LANES];
    let mut chunks = row.chunks_exact(LANES);
    for ch in &mut chunks {
        for j in 0..LANES {
            if ch[j] < lanes[j] {
                lanes[j] = ch[j];
            }
        }
    }
    let mut best = f64::INFINITY;
    for &v in chunks.remainder() {
        if v < best {
            best = v;
        }
    }
    for &v in &lanes {
        if v < best {
            best = v;
        }
    }
    best
}

/// First index whose value equals `min` — the argmin-recovery pass run
/// *after* [`row_min`], so the hot reduction carries no index bookkeeping.
/// Returns 0 when nothing matches (all-NaN rows, mirroring the scalar
/// loop's untouched initial `best_c`).
#[inline]
pub fn row_argmin(row: &[f64], min: f64) -> u16 {
    row.iter().position(|&v| v == min).unwrap_or(0) as u16
}

/// The scalar per-entry combine the tiled kernel replaces, exposed for the
/// A/B microbenchmark (`benches/kernel.rs`): one pass over the configs,
/// summing `base[c] + Σ rows[r][c]` and tracking the argmin inline.
pub fn scalar_min_add(base: &[f64], rows: &[&[f64]]) -> (f64, u16) {
    let mut best = f64::INFINITY;
    let mut best_c = 0u16;
    for c in 0..base.len() {
        let mut cost = base[c];
        for row in rows {
            cost += row[c];
        }
        if cost < best {
            best = cost;
            best_c = c as u16;
        }
    }
    (best, best_c)
}

/// The packed counterpart for the same microbenchmark, combining the
/// kernel's fused passes exactly as the fill does: one operand avoids the
/// accumulator entirely ([`sum_row_min`]); otherwise the first add fuses
/// the base copy ([`set_sum`]) and the last add fuses the min reduction
/// ([`add_rows_min`]), with the argmin recovered by equality afterwards.
pub fn packed_min_add(acc: &mut [f64], base: &[f64], rows: &[&[f64]]) -> (f64, u16) {
    match rows {
        [] => {
            let best = row_min(base);
            (best, row_argmin(base, best))
        }
        [only] => {
            let best = sum_row_min(base, only);
            (best, sum_row_argmin(base, only, best))
        }
        [first, middle @ .., last] => {
            set_sum(acc, base, first);
            for row in middle {
                add_rows(acc, row);
            }
            let best = add_rows_min(acc, last);
            (best, row_argmin(acc, best))
        }
    }
}

/// Where one later-edge's cost rows live for the tiled kernels (scalar
/// tables here, frontier tables in `crate::frontier` — both share
/// [`pack_edges`]).
pub(crate) enum EdgeRows {
    /// Transposed into the pack's panel at this element offset
    /// (`panel[off + w·kv ..][.. kv]` is the row for neighbor digit `w`).
    Panel(usize),
    /// Used in place: the edge matrix is already row-major over `c` for a
    /// fixed neighbor digit (`mat[w·kv ..][.. kv]`), resolved through
    /// `tables` at fill time.
    Direct(pase_graph::EdgeId),
}

/// Pack one vertex's later-edge matrices (the edge half of [`pack_vertex`],
/// shared with the frontier microkernel): every matrix the inner loop would
/// read column-wise (current vertex on the source side) is transposed into
/// `panel` so each neighbor digit selects a contiguous `kv`-cost row;
/// matrices already row-major for our access are referenced in place.
pub(crate) fn pack_edges(
    tables: &CostTables,
    plan: &Plan,
    panel: &mut Vec<f64>,
    packed_bytes: &mut u64,
) -> Vec<(usize, EdgeRows)> {
    let kv = plan.kv as usize;
    plan.later_edges
        .iter()
        .map(|&(e, slot, vi_is_src)| {
            let rows = if vi_is_src {
                // mat[c·k_dst + w]: the row over c for fixed w is strided.
                // Transpose the whole kw × kv block once per vertex.
                let (mat, k_dst) = tables.edge_cost_matrix(e);
                let kw = plan.radix[slot] as usize;
                debug_assert_eq!(k_dst, kw);
                debug_assert_eq!(mat.len(), kv * kw);
                let off = panel.len();
                panel.reserve(kw * kv);
                for w in 0..kw {
                    panel.extend(mat[w..].iter().step_by(k_dst).take(kv));
                }
                *packed_bytes += (kw * kv * std::mem::size_of::<f64>()) as u64;
                EdgeRows::Panel(off)
            } else {
                EdgeRows::Direct(e)
            };
            (slot, rows)
        })
        .collect()
}

/// Resolve one packed edge's row block for fill time: the panel slice for
/// transposed matrices, the raw (already row-major) matrix otherwise.
pub(crate) fn edge_row_block<'a>(
    tables: &'a CostTables,
    rows: &EdgeRows,
    panel: &'a [f64],
    kv: usize,
) -> &'a [f64] {
    match rows {
        EdgeRows::Panel(off) => &panel[*off..],
        EdgeRows::Direct(e) => {
            let (mat, k_dst) = tables.edge_cost_matrix(*e);
            debug_assert_eq!(k_dst, kv);
            mat
        }
    }
}

/// Where one child table's cost rows live for the tiled kernel.
enum ChildRows {
    /// `vi_coef == 1`: the child's `kv` costs for a substrategy are already
    /// contiguous in the DP table (`costs[b ..][.. kv]`).
    Dp,
    /// Transposed into the pack's panel at this element offset: the row for
    /// substrategy offset `b` is `panel[off + b ..][.. kv]`.
    Panel(usize),
    /// `vi_coef == 0`: the child's dependent set does not contain the
    /// current vertex, so its cost is one scalar per entry, broadcast over
    /// all `kv` configurations.
    Broadcast,
}

/// One child's packed addressing: where its rows live plus the mixed-radix
/// coefficients of the row *offset* in the parent's digits. For
/// [`ChildRows::Dp`] these are the original `parent_coef`; for
/// [`ChildRows::Panel`] they are re-derived for the transposed layout
/// (child stride `s` becomes `s·kv` when `s < vi_coef`, stays `s`
/// otherwise — the mixed-radix strides form a divisibility chain, so every
/// non-`vi` stride is either below `vi_coef` or a multiple of
/// `vi_coef·kv`). Either way the offset is linear in the parent digits, so
/// the odometer maintains it incrementally exactly like a base offset.
pub(crate) struct PackedChild {
    anchor: usize,
    coef: Vec<u64>,
    rows: ChildRows,
}

/// Entry-invariant operands of one vertex's table fill, packed once by
/// [`pack_vertex`] and shared read-only by every [`FillChunk`] of that
/// table. The panel buffer is recycled to the thread pool on drop.
pub(crate) struct PackedVertex {
    panel: Vec<f64>,
    /// Per later-edge: the neighbor's digit slot and its row source.
    edges: Vec<(usize, EdgeRows)>,
    children: Vec<PackedChild>,
    /// Bytes copied into `panel` (the pase-obs `packed_bytes` counter).
    pub(crate) packed_bytes: u64,
}

impl Drop for PackedVertex {
    fn drop(&mut self) {
        crate::pool::recycle_panel(std::mem::take(&mut self.panel));
    }
}

/// Pack one vertex's entry-invariant operands (see the module docs):
/// column-accessed edge matrices and strided child tables are transposed
/// into a panel-major buffer; operands already row-contiguous are
/// referenced in place.
pub(crate) fn pack_vertex(
    tables: &CostTables,
    plan: &Plan,
    children: &[ChildCoef],
    dp: &[Option<Table>],
) -> PackedVertex {
    let kv = plan.kv as usize;
    let mut panel = crate::pool::take_panel();
    let mut packed_bytes = 0u64;

    let edges = pack_edges(tables, plan, &mut panel, &mut packed_bytes);

    let children = children
        .iter()
        .map(|ch| {
            if ch.vi_coef <= 1 {
                PackedChild {
                    anchor: ch.anchor,
                    coef: ch.parent_coef.clone(),
                    rows: if ch.vi_coef == 1 {
                        ChildRows::Dp
                    } else {
                        ChildRows::Broadcast
                    },
                }
            } else {
                // costs[lo + vc·(c + kv·hi)] with lo < vc: transpose so
                // each (hi, lo) substrategy's kv costs are one contiguous
                // row at (lo + vc·hi)·kv.
                let costs = &dp[ch.anchor].as_ref().expect("child table").costs;
                let vc = ch.vi_coef as usize;
                debug_assert_eq!(costs.len() % (vc * kv), 0);
                let off = panel.len();
                panel.reserve(costs.len());
                for block in costs.chunks_exact(vc * kv) {
                    for lo in 0..vc {
                        panel.extend(block[lo..].iter().step_by(vc).take(kv));
                    }
                }
                packed_bytes += (costs.len() * std::mem::size_of::<f64>()) as u64;
                let coef = ch
                    .parent_coef
                    .iter()
                    .map(|&s| if s < ch.vi_coef { s * kv as u64 } else { s })
                    .collect();
                PackedChild {
                    anchor: ch.anchor,
                    coef,
                    rows: ChildRows::Panel(off),
                }
            }
        })
        .collect();

    PackedVertex {
        panel,
        edges,
        children,
        packed_bytes,
    }
}

/// The tiled fill of one chunk over a [`pack_vertex`] pack, processed as
/// **innermost-digit runs** (see the module docs): within one run of the
/// fastest-moving odometer digit, every operand that does not read that
/// digit contributes the *same* row to every entry, so
///
/// * the longest such **invariant prefix** of the summation (layer cost
///   plus leading constant operands) is summed once per run and reused —
///   bit-exact, because each entry's addition tree is unchanged, merely
///   computed once;
/// * a run whose operands are *all* invariant reduces once and broadcasts
///   one `(cost, choice)` over the whole run;
/// * odometer carries happen once per run instead of once per entry.
///
/// Bit-identical to the scalar `fill_chunk` in `dp.rs`; raises the same
/// odometer-overflow error on a malformed plan.
pub(crate) fn fill_chunk_tiled(
    tables: &CostTables,
    plan: &Plan,
    packed: &PackedVertex,
    dp: &[Option<Table>],
    scratch: &mut Scratch,
    chunk: &mut FillChunk<'_>,
) -> Result<(), GraphError> {
    let n_dep = plan.dep.len();
    let kv = plan.kv as usize;
    let len = chunk.costs.len();
    let n_edges = packed.edges.len();
    let n_children = packed.children.len();
    let n_ops = n_edges + n_children;

    let Scratch {
        digits,
        child_base,
        acc,
        pre,
    } = scratch;

    // Initial digit decode and child row offsets for the chunk's first
    // entry — the only div/mod decode in the whole chunk.
    digits.clear();
    digits.resize(n_dep, 0);
    for t in 0..n_dep {
        digits[t] = ((chunk.start / plan.strides[t]) % u64::from(plan.radix[t])) as u16;
    }
    child_base.clear();
    child_base.resize(n_children, 0);
    for (b, ch) in child_base.iter_mut().zip(&packed.children) {
        *b = ch
            .coef
            .iter()
            .zip(digits.iter())
            .map(|(&coef, &d)| coef * u64::from(d))
            .sum();
    }

    // The innermost (fastest-moving) digit defines the run length. A
    // dependency-free table has a single entry — one run of one.
    let last = n_dep.wrapping_sub(1);
    let rlast = if n_dep == 0 {
        1u64
    } else {
        u64::from(plan.radix[last])
    };
    // Per child: how its row offset moves per step of the innermost digit
    // (0 ⇒ the child is invariant within a run).
    let child_step: Vec<u64> = packed
        .children
        .iter()
        .map(|ch| if n_dep == 0 { 0 } else { ch.coef[last] })
        .collect();
    // Strip the innermost-digit contribution out of `child_base`: rows at
    // digit value `d` are addressed as `child_base + child_step·d`, so the
    // running offsets only ever track the outer digits.
    let d0 = if n_dep == 0 {
        0
    } else {
        u64::from(digits[last])
    };
    for (b, step) in child_base.iter_mut().zip(&child_step) {
        *b -= step * d0;
    }

    // Resolve each operand's row storage once per chunk.
    let edge_mats: Vec<&[f64]> = packed
        .edges
        .iter()
        .map(|(_, rows)| edge_row_block(tables, rows, &packed.panel, kv))
        .collect();
    let child_mats: Vec<&[f64]> = packed
        .children
        .iter()
        .map(|ch| match ch.rows {
            ChildRows::Dp | ChildRows::Broadcast => dp[ch.anchor]
                .as_ref()
                .expect("child table")
                .costs
                .as_slice(),
            ChildRows::Panel(off) => &packed.panel[off..],
        })
        .collect();
    let base = tables.layer_cost_row(plan.vi);
    debug_assert_eq!(base.len(), kv);

    // Longest invariant prefix of the summation order (edges first, then
    // children): operands that never read the innermost digit. Their sum is
    // hoisted out of the run's entry loop below.
    let op_varies = |j: usize| -> bool {
        if j < n_edges {
            packed.edges[j].0 == last
        } else {
            child_step[j - n_edges] != 0
        }
    };
    let n_pre = (0..n_ops).take_while(|&j| !op_varies(j)).count();

    acc.clear();
    acc.resize(kv, 0.0);
    pre.clear();
    pre.resize(kv, 0.0);

    let mut off = 0usize;
    // First innermost-digit value of the current run (the chunk may start
    // mid-run; later runs always start at 0).
    let mut d_first = d0;
    while off < len {
        let run = ((rlast - d_first) as usize).min(len - off);

        // Operand `j` at innermost-digit value `d`, in summation order;
        // broadcast children contribute a scalar. Invariant operands ignore
        // `d` and resolve the same row for the whole run.
        let op = |j: usize, d: u64| -> Op<'_> {
            if j < n_edges {
                let (slot, _) = packed.edges[j];
                let w = if slot == last {
                    d as usize
                } else {
                    digits[slot] as usize
                };
                Op::Row(&edge_mats[j][w * kv..][..kv])
            } else {
                let ci = j - n_edges;
                let b = (child_base[ci] + child_step[ci] * d) as usize;
                match packed.children[ci].rows {
                    ChildRows::Broadcast => Op::Scalar(child_mats[ci][b]),
                    _ => Op::Row(&child_mats[ci][b..][..kv]),
                }
            }
        };

        // Hoist the invariant prefix: `pre = base + ops[..n_pre]`, summed
        // once per run. Bit-exact — each entry's addition tree is
        // unchanged, the shared head is merely computed once. An empty
        // prefix aliases the layer-cost row directly.
        let pre_row: &[f64] = if n_pre == 0 {
            base
        } else {
            match op(0, d_first) {
                Op::Row(r) => set_sum(pre, base, r),
                Op::Scalar(v) => set_sum_scalar(pre, base, v),
            }
            for j in 1..n_pre {
                match op(j, d_first) {
                    Op::Row(r) => add_rows(pre, r),
                    Op::Scalar(v) => add_scalar(pre, v),
                }
            }
            pre
        };

        if n_pre == n_ops {
            // Every operand is invariant: the whole run shares one cost
            // row — reduce once, broadcast one (cost, choice) pair.
            let best = row_min(pre_row);
            let best_c = row_argmin(pre_row, best);
            chunk.costs[off..off + run].fill(best);
            chunk.choice[off..off + run].fill(best_c);
        } else if n_ops - n_pre == 1 {
            // One varying operand: fuse sum + min over (pre, row) with no
            // accumulator writes, then recover the argmin by equality.
            for m in 0..run {
                let d = d_first + m as u64;
                let (best, best_c) = match op(n_pre, d) {
                    Op::Row(r) => {
                        let best = sum_row_min(pre_row, r);
                        (best, sum_row_argmin(pre_row, r, best))
                    }
                    Op::Scalar(v) => {
                        let best = sum_scalar_min(pre_row, v);
                        (best, sum_scalar_argmin(pre_row, v, best))
                    }
                };
                chunk.costs[off + m] = best;
                chunk.choice[off + m] = best_c;
            }
        } else {
            // General case: the first varying operand fuses the prefix
            // copy (`set_sum`), the last fuses the min reduction
            // (`add_rows_min`); only then is the argmin recovered.
            for m in 0..run {
                let d = d_first + m as u64;
                match op(n_pre, d) {
                    Op::Row(r) => set_sum(acc, pre_row, r),
                    Op::Scalar(v) => set_sum_scalar(acc, pre_row, v),
                }
                for j in n_pre + 1..n_ops - 1 {
                    match op(j, d) {
                        Op::Row(r) => add_rows(acc, r),
                        Op::Scalar(v) => add_scalar(acc, v),
                    }
                }
                let best = match op(n_ops - 1, d) {
                    Op::Row(r) => add_rows_min(acc, r),
                    Op::Scalar(v) => add_scalar_min(acc, v),
                };
                chunk.costs[off + m] = best;
                chunk.choice[off + m] = row_argmin(acc, best);
            }
        }

        off += run;
        d_first = 0;
        if off < len {
            // Carry out of the innermost digit, once per run: the digit
            // above it increments (`child_base` excludes the innermost
            // contribution, so only the outer digits move).
            let mut t = last;
            loop {
                if t == 0 {
                    return Err(odometer_overflow(plan, chunk.start));
                }
                t -= 1;
                digits[t] += 1;
                for (b, ch) in child_base.iter_mut().zip(&packed.children) {
                    *b += ch.coef[t];
                }
                if u32::from(digits[t]) < plan.radix[t] {
                    break;
                }
                digits[t] = 0;
                for (b, ch) in child_base.iter_mut().zip(&packed.children) {
                    *b -= ch.coef[t] * u64::from(plan.radix[t]);
                }
            }
            digits[last] = 0;
        }
    }
    Ok(())
}

/// One resolved summation operand of one entry: a contiguous `kv`-cost row
/// or a broadcast scalar.
enum Op<'a> {
    Row(&'a [f64]),
    Scalar(f64),
}

/// The error a malformed plan raises when the entry odometer would wrap
/// past the table end (shared by both kernels — previously a
/// `debug_assert!` that silently wrapped in release builds).
pub(crate) fn odometer_overflow(plan: &Plan, start: u64) -> GraphError {
    GraphError::InvalidNode(format!(
        "DP fill for vertex {:?} overflowed its entry odometer (table size {}, chunk start {}): \
         the fill plan is inconsistent with the table layout",
        plan.vi, plan.size, start
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for k in [DpKernel::Scalar, DpKernel::Tiled] {
            assert_eq!(DpKernel::parse(k.as_str()), Some(k));
        }
        assert_eq!(DpKernel::parse("simd"), None);
        assert_eq!(DpKernel::default(), DpKernel::Tiled);
    }

    #[test]
    fn row_min_matches_sequential_scan() {
        // Exercise lengths around the lane width, including ragged tails.
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 84, 210] {
            let row: Vec<f64> = (0..n).map(|i| ((i * 7919 + 13) % 101) as f64).collect();
            let seq = row.iter().copied().fold(f64::INFINITY, f64::min);
            assert_eq!(row_min(&row).to_bits(), seq.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn argmin_recovery_equals_first_strict_improvement() {
        // Ties: the scalar loop keeps the FIRST config attaining the min;
        // equality recovery must agree.
        let row = [5.0, 3.0, 7.0, 3.0, 9.0];
        let min = row_min(&row);
        assert_eq!(min, 3.0);
        assert_eq!(row_argmin(&row, min), 1);
        // All-infinite row: scalar leaves best_c at 0... and the first
        // entry *equals* the (infinite) min, so recovery also yields 0.
        let inf = [f64::INFINITY; 4];
        assert_eq!(row_argmin(&inf, row_min(&inf)), 0);
    }

    #[test]
    fn packed_and_scalar_min_add_agree_bitwise() {
        for k in [3usize, 8, 32, 84, 210] {
            let base: Vec<f64> = (0..k).map(|i| (i % 17) as f64 * 0.5).collect();
            let r1: Vec<f64> = (0..k).map(|i| ((i * 31 + 7) % 23) as f64).collect();
            let r2: Vec<f64> = (0..k).map(|i| ((i * 13 + 3) % 19) as f64 * 0.25).collect();
            let rows = [r1.as_slice(), r2.as_slice()];
            let (sc, sci) = scalar_min_add(&base, &rows);
            let mut acc = vec![0.0; k];
            let (pc, pci) = packed_min_add(&mut acc, &base, &rows);
            assert_eq!(sc.to_bits(), pc.to_bits(), "k = {k}");
            assert_eq!(sci, pci, "k = {k}");
        }
    }

    #[test]
    fn add_strided_gathers_with_stride() {
        let src: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let mut acc = vec![1.0; 4];
        add_strided(&mut acc, &src, 3);
        assert_eq!(acc, vec![1.0, 4.0, 7.0, 10.0]);
    }

    /// Pseudo-random but deterministic test row of length `k`.
    fn test_row(k: usize, seed: usize) -> Vec<f64> {
        (0..k)
            .map(|i| ((i * 31 + seed * 7 + 3) % 97) as f64 * 0.125)
            .collect()
    }

    #[test]
    fn fused_primitives_match_their_unfused_pipelines() {
        // Each fused op must be bitwise-equal to the unfused sequence it
        // replaces (same additions, same blocked min) — including ragged
        // lengths around the LANES = 8 blocking.
        for k in [1usize, 7, 8, 9, 15, 28, 84, 205] {
            let base = test_row(k, 0);
            let r1 = test_row(k, 1);
            let v = 2.75;

            // set_sum == copy + add_rows.
            let mut fused = vec![f64::NAN; k];
            set_sum(&mut fused, &base, &r1);
            let mut plain = base.clone();
            add_rows(&mut plain, &r1);
            assert_eq!(fused, plain, "set_sum k = {k}");

            // set_sum_scalar == copy + add_scalar.
            set_sum_scalar(&mut fused, &base, v);
            let mut plain_s = base.clone();
            add_scalar(&mut plain_s, v);
            assert_eq!(fused, plain_s, "set_sum_scalar k = {k}");

            // add_rows_min == add_rows + row_min (and mutates identically).
            let mut acc = base.clone();
            let fused_min = add_rows_min(&mut acc, &r1);
            assert_eq!(acc, plain, "add_rows_min acc k = {k}");
            assert_eq!(
                fused_min.to_bits(),
                row_min(&plain).to_bits(),
                "add_rows_min min k = {k}"
            );

            // add_scalar_min == add_scalar + row_min.
            let mut acc_s = base.clone();
            let fused_min_s = add_scalar_min(&mut acc_s, v);
            assert_eq!(acc_s, plain_s, "add_scalar_min acc k = {k}");
            assert_eq!(
                fused_min_s.to_bits(),
                row_min(&plain_s).to_bits(),
                "add_scalar_min min k = {k}"
            );

            // sum_row_min / sum_row_argmin == materialize + reduce + recover,
            // with no accumulator at all.
            assert_eq!(
                sum_row_min(&base, &r1).to_bits(),
                row_min(&plain).to_bits(),
                "sum_row_min k = {k}"
            );
            assert_eq!(
                sum_row_argmin(&base, &r1, fused_min),
                row_argmin(&plain, fused_min),
                "sum_row_argmin k = {k}"
            );
            assert_eq!(
                sum_scalar_min(&base, v).to_bits(),
                row_min(&plain_s).to_bits(),
                "sum_scalar_min k = {k}"
            );
            assert_eq!(
                sum_scalar_argmin(&base, v, fused_min_s),
                row_argmin(&plain_s, fused_min_s),
                "sum_scalar_argmin k = {k}"
            );
        }
    }
}
