//! The graph-reduction dynamic program of OptCNN (Jia et al., ICML 2018),
//! also used by Tofu — the §VI comparison point.
//!
//! OptCNN repeatedly simplifies the (undirected) cost graph:
//!
//! * **edge elimination** — two parallel edges between the same pair of
//!   vertices merge into one whose cost matrix is their sum;
//! * **node elimination** — a vertex `w` with exactly two neighbors
//!   `u, v` is removed, its layer cost and both incident edge matrices
//!   folded into a new `(u, v)` edge:
//!   `e'(c_u, c_v) = min_{c_w} t_l(w, c_w) + e_1(c_u, c_w) + e_2(c_w, c_v)`;
//! * **leaf folding** — a vertex `w` with one neighbor `u` folds into `u`'s
//!   node-cost vector: `t'_l(u, c_u) += min_{c_w} t_l(w, c_w) + e(c_u, c_w)`.
//!
//! When the graph reduces to a single vertex, the minimum over its cost
//! vector is the optimum and back-substitution through the elimination
//! records recovers the strategy. The paper's point (§VI): "this technique
//! fails on other tasks such as LM and NMT whose graphs do not have this
//! special property" — irreducible remainders (DenseNet-style blocks;
//! fine-grained LM/NMT encodings) are reported as
//! [`ReductionOutcome::Irreducible`], while PaSE's FindBestStrategy handles
//! every graph.

use pase_cost::{CostTables, PruneOptions, PrunedTables};
use pase_graph::{EdgeId, Graph, NodeId};
use rustc_hash::FxHashMap;

/// Outcome of [`optcnn_search`].
#[derive(Clone, Debug)]
pub enum ReductionOutcome {
    /// The graph fully reduced; the result is the exact optimum of
    /// `F(G, φ)` (it must agree with FindBestStrategy).
    Reduced {
        /// Minimum cost.
        cost: f64,
        /// Argmin strategy as per-node configuration ids.
        config_ids: Vec<u16>,
        /// Node + edge eliminations performed.
        eliminations: usize,
    },
    /// No elimination applies and more than one vertex remains — the
    /// graph is outside OptCNN's reducible class.
    Irreducible {
        /// Vertices of the irreducible remainder.
        remaining: Vec<NodeId>,
    },
}

/// Dense cost matrix over configuration pairs of two endpoint vertices,
/// stored row-major `[c_a][c_b]` with `a < b` by node id (canonical
/// orientation).
#[derive(Clone)]
struct EdgeCost {
    a: NodeId,
    k_b: usize,
    costs: Vec<f64>,
}

impl EdgeCost {
    fn at(&self, ca: u16, cb: u16) -> f64 {
        self.costs[ca as usize * self.k_b + cb as usize]
    }
}

/// Elimination record for back-substitution.
enum Record {
    /// `w` eliminated between `a` and `b`; `choice[c_a][c_b]` is the argmin
    /// configuration of `w` (row-major over `(k_a, k_b)`).
    Node {
        w: NodeId,
        a: NodeId,
        b: NodeId,
        k_b: usize,
        choice: Vec<u16>,
    },
    /// Leaf `w` folded into `u`; `choice[c_u]` is the argmin of `w`.
    Leaf {
        w: NodeId,
        u: NodeId,
        choice: Vec<u16>,
    },
}

/// Run the OptCNN node/edge-elimination search over the same cost tables
/// FindBestStrategy uses (PaSE's configuration space, so the comparison is
/// apples-to-apples; the original further restricts splits to output tensor
/// dimensions).
pub fn optcnn_search(graph: &Graph, tables: &CostTables) -> ReductionOutcome {
    let n = graph.len();
    if n == 0 {
        return ReductionOutcome::Reduced {
            cost: 0.0,
            config_ids: vec![],
            eliminations: 0,
        };
    }

    // Node cost vectors (layer costs, mutable: leaves fold in).
    let mut node_cost: Vec<Vec<f64>> = graph
        .node_ids()
        .map(|v| {
            (0..tables.k(v) as u16)
                .map(|c| tables.layer_cost(v, c))
                .collect()
        })
        .collect();
    let mut alive: Vec<bool> = vec![true; n];

    // Undirected edge-cost matrices in canonical (a < b) orientation,
    // merged per vertex pair as we go (initial parallel edges summed here).
    let mut edges: FxHashMap<(NodeId, NodeId), EdgeCost> = FxHashMap::default();
    for (i, e) in graph.edges().iter().enumerate() {
        let (a, b, flip) = if e.src < e.dst {
            (e.src, e.dst, false)
        } else {
            (e.dst, e.src, true)
        };
        let (k_a, k_b) = (tables.k(a), tables.k(b));
        let entry = edges.entry((a, b)).or_insert_with(|| EdgeCost {
            a,
            k_b,
            costs: vec![0.0; k_a * k_b],
        });
        for ca in 0..k_a as u16 {
            for cb in 0..k_b as u16 {
                let cost = if flip {
                    tables.edge_cost(EdgeId(i as u32), cb, ca)
                } else {
                    tables.edge_cost(EdgeId(i as u32), ca, cb)
                };
                entry.costs[ca as usize * k_b + cb as usize] += cost;
            }
        }
    }

    // Adjacency over the merged edge set.
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &(a, b) in edges.keys() {
        adj[a.index()].push(b);
        adj[b.index()].push(a);
    }

    let mut records: Vec<Record> = Vec::new();
    // Initial parallel edges merged above count as edge eliminations.
    let mut eliminations = graph.edge_count() - edges.len();

    loop {
        // Find an eliminable vertex: degree 1 (leaf fold) or degree 2
        // (node elimination). Lowest id first for determinism.
        let candidate = graph
            .node_ids()
            .filter(|&v| alive[v.index()])
            .find(|&v| !adj[v.index()].is_empty() && adj[v.index()].len() <= 2);

        let Some(w) = candidate else {
            let remaining: Vec<NodeId> = graph.node_ids().filter(|&v| alive[v.index()]).collect();
            if remaining.len() == 1 {
                break;
            }
            // Disconnected singletons are fine (optimize independently);
            // anything still connected with degree ≥ 3 everywhere is
            // irreducible.
            if remaining.iter().all(|&v| adj[v.index()].is_empty()) {
                break;
            }
            return ReductionOutcome::Irreducible { remaining };
        };

        match adj[w.index()].len() {
            1 => {
                // Leaf fold into u.
                let u = adj[w.index()][0];
                let key = canon(w, u);
                let ec = edges.remove(&key).expect("edge exists");
                let (k_u, k_w) = (tables.k(u), tables.k(w));
                let mut choice = vec![0u16; k_u];
                for cu in 0..k_u as u16 {
                    let mut best = f64::INFINITY;
                    let mut best_w = 0u16;
                    for cw in 0..k_w as u16 {
                        let e = if ec.a == u {
                            ec.at(cu, cw)
                        } else {
                            ec.at(cw, cu)
                        };
                        let cost = node_cost[w.index()][cw as usize] + e;
                        if cost < best {
                            best = cost;
                            best_w = cw;
                        }
                    }
                    node_cost[u.index()][cu as usize] += best;
                    choice[cu as usize] = best_w;
                }
                records.push(Record::Leaf { w, u, choice });
                detach(&mut adj, w, u);
                alive[w.index()] = false;
                eliminations += 1;
            }
            2 => {
                let (u, v) = (adj[w.index()][0], adj[w.index()][1]);
                let e_uw = edges.remove(&canon(u, w)).expect("edge (u,w)");
                let e_wv = edges.remove(&canon(w, v)).expect("edge (w,v)");
                let (k_u, k_v, k_w) = (tables.k(u), tables.k(v), tables.k(w));
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                let (k_a, k_b) = (tables.k(a), tables.k(b));
                let mut new_costs = vec![0.0f64; k_a * k_b];
                let mut choice = vec![0u16; k_a * k_b];
                for ca in 0..k_a as u16 {
                    for cb in 0..k_b as u16 {
                        // map (a, b) back to (u, v)
                        let (cu, cv) = if a == u { (ca, cb) } else { (cb, ca) };
                        let mut best = f64::INFINITY;
                        let mut best_w = 0u16;
                        for cw in 0..k_w as u16 {
                            let e1 = if e_uw.a == u {
                                e_uw.at(cu, cw)
                            } else {
                                e_uw.at(cw, cu)
                            };
                            let e2 = if e_wv.a == w {
                                e_wv.at(cw, cv)
                            } else {
                                e_wv.at(cv, cw)
                            };
                            let cost = node_cost[w.index()][cw as usize] + e1 + e2;
                            if cost < best {
                                best = cost;
                                best_w = cw;
                            }
                        }
                        new_costs[ca as usize * k_b + cb as usize] = best;
                        choice[ca as usize * k_b + cb as usize] = best_w;
                    }
                }
                let _ = (k_u, k_v);
                records.push(Record::Node {
                    w,
                    a,
                    b,
                    k_b,
                    choice,
                });
                detach(&mut adj, w, u);
                detach(&mut adj, w, v);
                alive[w.index()] = false;
                eliminations += 1;
                // Merge with an existing (a, b) edge — OptCNN's edge
                // elimination.
                match edges.entry((a, b)) {
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        for (dst, src) in o.get_mut().costs.iter_mut().zip(&new_costs) {
                            *dst += src;
                        }
                        eliminations += 1;
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(EdgeCost {
                            a,
                            k_b,
                            costs: new_costs,
                        });
                        adj[a.index()].push(b);
                        adj[b.index()].push(a);
                    }
                }
            }
            _ => unreachable!("candidate filter guarantees degree ≤ 2"),
        }
    }

    // Remaining vertices are isolated: pick each argmin independently.
    let mut ids = vec![u16::MAX; n];
    let mut cost = 0.0;
    for v in graph.node_ids().filter(|&v| alive[v.index()]) {
        let (best_c, best) = node_cost[v.index()]
            .iter()
            .enumerate()
            .min_by(|x, y| x.1.partial_cmp(y.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("nonempty config list");
        ids[v.index()] = best_c as u16;
        cost += best;
    }

    // Back-substitute in reverse elimination order.
    for rec in records.iter().rev() {
        match rec {
            Record::Leaf { w, u, choice } => {
                let cu = ids[u.index()];
                debug_assert_ne!(cu, u16::MAX, "fold target must be assigned");
                ids[w.index()] = choice[cu as usize];
            }
            Record::Node {
                w,
                a,
                b,
                k_b,
                choice,
            } => {
                let (ca, cb) = (ids[a.index()], ids[b.index()]);
                debug_assert!(ca != u16::MAX && cb != u16::MAX);
                ids[w.index()] = choice[ca as usize * k_b + cb as usize];
            }
        }
    }
    debug_assert!(ids.iter().all(|&c| c != u16::MAX));

    ReductionOutcome::Reduced {
        cost,
        config_ids: ids,
        eliminations,
    }
}

/// [`optcnn_search`] over a dominance-pruned configuration space, so the
/// OptCNN comparison runs on the same pruned view as a pruning
/// [`crate::Search`]. Reducibility is a property of the
/// graph alone, so pruning never changes *whether* the search succeeds —
/// only how much work the eliminations do. Returned ids are mapped back
/// into the original `tables`' id space.
pub fn optcnn_search_pruned(
    graph: &Graph,
    tables: &CostTables,
    prune: &PruneOptions,
) -> ReductionOutcome {
    let pruned = PrunedTables::build(graph, tables, prune);
    match optcnn_search(graph, pruned.tables()) {
        ReductionOutcome::Reduced {
            cost,
            config_ids,
            eliminations,
        } => ReductionOutcome::Reduced {
            cost,
            config_ids: pruned.to_original_ids(&config_ids),
            eliminations,
        },
        irreducible => irreducible,
    }
}

fn canon(x: NodeId, y: NodeId) -> (NodeId, NodeId) {
    if x < y {
        (x, y)
    } else {
        (y, x)
    }
}

fn detach(adj: &mut [Vec<NodeId>], w: NodeId, u: NodeId) {
    adj[u.index()].retain(|&x| x != w);
    adj[w.index()].retain(|&x| x != u);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Search;
    use pase_cost::{ConfigRule, CostTables, MachineSpec};
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn fc(name: &str, ins: usize) -> Node {
        let dims = vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("n", 128, DimRole::Param),
            IterDim::new("c", 128, DimRole::Reduction),
        ];
        Node {
            name: name.into(),
            op: OpKind::FullyConnected,
            iter_space: dims,
            inputs: (0..ins)
                .map(|_| TensorRef::new(vec![0, 2], vec![64, 128]))
                .collect(),
            output: TensorRef::new(vec![0, 1], vec![64, 128]),
            params: vec![TensorRef::new(vec![1, 2], vec![128, 128])],
        }
    }

    fn check_matches_dp(g: &pase_graph::Graph, p: u32) {
        let tables = CostTables::build(g, ConfigRule::new(p), &MachineSpec::test_machine());
        let dp = Search::new(g).tables(&tables).run().expect_found("dp");
        match optcnn_search(g, &tables) {
            ReductionOutcome::Reduced {
                cost, config_ids, ..
            } => {
                assert!(
                    (cost - dp.cost).abs() <= 1e-9 * dp.cost.abs().max(1.0),
                    "optcnn {cost} vs dp {}",
                    dp.cost
                );
                let eval = tables.evaluate_ids(g, &config_ids);
                assert!((eval - cost).abs() <= 1e-9 * cost.abs().max(1.0));
            }
            ReductionOutcome::Irreducible { remaining } => {
                panic!(
                    "expected reducible graph, {} vertices remain",
                    remaining.len()
                )
            }
        }
    }

    #[test]
    fn reduces_path_graphs() {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..5)
            .map(|i| b.add_node(fc(&format!("fc{i}"), usize::from(i > 0))))
            .collect();
        for w in ids.windows(2) {
            b.connect(w[0], w[1]);
        }
        check_matches_dp(&b.build().unwrap(), 4);
    }

    #[test]
    fn reduces_diamonds_via_edge_elimination() {
        let mut b = GraphBuilder::new();
        let s = b.add_node(fc("s", 0));
        let l = b.add_node(fc("l", 1));
        let r = b.add_node(fc("r", 1));
        let mut join = fc("j", 2);
        join.inputs = vec![join.inputs[0].clone(), join.inputs[0].clone()];
        let j = b.add_node(join);
        b.connect(s, l);
        b.connect(s, r);
        b.connect(l, j);
        b.connect(r, j);
        check_matches_dp(&b.build().unwrap(), 4);
    }

    #[test]
    fn reduces_the_cnn_benchmarks() {
        // §VI: "[10] exploits the fact that CNNs typically have nodes with
        // single in-/out-edges" — AlexNet must agree exactly with our DP.
        use pase_models::{alexnet, rnnlm, AlexNetConfig, RnnlmConfig};
        check_matches_dp(&alexnet(&AlexNetConfig::tiny()), 4);
        check_matches_dp(&rnnlm(&RnnlmConfig::tiny()), 4);
    }

    #[test]
    fn transformer_reducibility_depends_on_depth() {
        // §VI: "[10]/Tofu … prevent them from being able to handle models
        // such as Transformer, whose graphs do not have a linear
        // structure." With 2 decoder layers both cross-attention rungs sit
        // at chain ends and the ladder unravels (and must then agree with
        // the DP); from 3 layers on, the *interior* rungs form triangles
        // against the encoder output that node/edge elimination cannot
        // break.
        use pase_models::{transformer, TransformerConfig};
        check_matches_dp(&transformer(&TransformerConfig::tiny()), 4);

        let deep = transformer(&TransformerConfig {
            layers: 3,
            ..TransformerConfig::tiny()
        });
        let tables = CostTables::build(&deep, ConfigRule::new(4), &MachineSpec::test_machine());
        match optcnn_search(&deep, &tables) {
            ReductionOutcome::Irreducible { remaining } => {
                // the core is the encoder output plus interior rungs
                assert!(remaining.len() >= 4, "core: {remaining:?}");
                // ... while FindBestStrategy solves the same graph
                let dp = Search::new(&deep)
                    .tables(&tables)
                    .run()
                    .expect_found("transformer");
                assert!(dp.cost.is_finite());
            }
            ReductionOutcome::Reduced { .. } => {
                panic!("3-layer decoder ladder should be irreducible")
            }
        }
    }

    #[test]
    fn fails_on_uniformly_dense_graphs() {
        // §V/§VI: DenseNet-style blocks have no degree-≤2 vertices left
        // after the chains collapse — OptCNN reports the irreducible core
        // while FindBestStrategy still solves the graph.
        use pase_models::{densenet, DenseNetConfig};
        let g = densenet(&DenseNetConfig {
            block_layers: 4,
            ..DenseNetConfig::tiny()
        });
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        match optcnn_search(&g, &tables) {
            ReductionOutcome::Irreducible { remaining } => {
                assert!(remaining.len() > 2, "core = {remaining:?}");
                // ... and the PaSE DP handles it regardless.
                let dp = Search::new(&g)
                    .tables(&tables)
                    .run()
                    .expect_found("dense graph");
                assert!(dp.cost.is_finite());
            }
            ReductionOutcome::Reduced { .. } => {
                panic!("dense block should be irreducible")
            }
        }
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = GraphBuilder::new().build().unwrap();
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        match optcnn_search(&g, &tables) {
            ReductionOutcome::Reduced { cost, .. } => assert_eq!(cost, 0.0),
            _ => panic!("empty graph must reduce"),
        }
    }
}
