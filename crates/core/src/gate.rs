//! The adaptive prune gate.
//!
//! Dominance pruning (PR 2) shrinks the DP's per-vertex configuration count
//! `K` multiplicatively, but its own cost is *fixed*: every distinct pruning
//! signature pays an `O(K²·Σ edge-row length)` dominance scan whether or not
//! the DP afterwards is expensive. On small searches (AlexNet at p ≤ 32) the
//! scan costs more than the entire unpruned DP fill — a measured net loss in
//! `BENCH_search.json` — while on large ones (Transformer at p = 64) it pays
//! for itself many times over.
//!
//! [`PruneGate::Auto`] resolves the tradeoff per search: it estimates the
//! DP fill work from the vertex structure (`Σ_i k(v_i)·∏_{w∈D(i)} k(w)` —
//! exactly the `states_evaluated` the DP would report) and the prune pass
//! work from the distinct pruning signatures
//! ([`pase_cost::estimate_prune_work`]), and runs the prune only when the
//! predicted DP work is large enough for the multiplicative `K` reduction to
//! plausibly recoup the fixed scan cost. Both estimates and the decision are
//! recorded in [`crate::SearchStats`] (`gate_dp_est`, `gate_prune_est`,
//! `prune_skipped`) so the gate is observable and tunable.
//!
//! The gate only ever changes *when pruning runs*, never *what the search
//! returns*: exact (ε = 0) pruning is bit-identical to no pruning, so every
//! gate mode yields the same optimum (asserted by the gate parity tests).

use crate::structure::VertexStructure;
use pase_cost::CostTables;

/// When to run dominance pruning before the DP (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PruneGate {
    /// Always prune when prune options were supplied (the historical
    /// behavior; the builder default).
    #[default]
    On,
    /// Never prune, even when prune options were supplied.
    Off,
    /// Estimate DP work vs. prune work and prune only when the DP is
    /// predicted to be expensive enough for pruning to pay off.
    Auto,
}

impl PruneGate {
    /// Parse a CLI/wire value (`"auto"`, `"on"`, `"off"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(PruneGate::Auto),
            "on" => Some(PruneGate::On),
            "off" => Some(PruneGate::Off),
            _ => None,
        }
    }

    /// The CLI/wire spelling of this mode.
    pub fn as_str(self) -> &'static str {
        match self {
            PruneGate::Auto => "auto",
            PruneGate::On => "on",
            PruneGate::Off => "off",
        }
    }
}

/// Above this predicted DP state count, prune unconditionally: at the
/// measured *scalar*-kernel DP throughput (~1.5 × 10⁸ states/s in
/// `BENCH_search.json`) 10⁸ states is ≈ 0.7 s of unpruned fill, where even
/// a few-percent `K` reduction repays the prune's fixed cost many times
/// over regardless of the work ratio. Calibrated between InceptionV3
/// p = 32 (5.7 × 10⁷ states, measured −1.8 ms marginal loss when pruned)
/// and InceptionV3 p = 64 (1.8 × 10⁸ states, measured +64 ms win).
///
/// The tiled kernel ([`crate::DpKernel::Tiled`]) raises fill throughput
/// several-fold, which *shrinks* the absolute DP time this threshold
/// stands for — but it speeds up the pruned and unpruned fill alike, so
/// the crossover is governed by the prune pass's fixed cost vs. the DP
/// *reduction*, and the measured decisions in
/// `gate_decisions_match_measured_crossover_on_paper_benchmarks` still
/// hold against the tiled-kernel columns of `BENCH_search.json`. Keeping
/// the scalar-calibrated threshold is therefore conservative (it only errs
/// toward skipping a cheap prune on mid-size searches).
const GATE_DP_ALWAYS: u64 = 100_000_000;

/// Estimate the DP fill work on the *unpruned* tables: the exact
/// `states_evaluated` the DP would report, `Σ_i k(v_i)·∏_{w∈D(i)} k(w)`,
/// saturating instead of overflowing on search spaces the budget would
/// reject anyway.
pub(crate) fn estimate_dp_work(structure: &VertexStructure, tables: &CostTables) -> u64 {
    let mut total: u64 = 0;
    for i in 0..structure.order().len() {
        let mut size: u64 = 1;
        for &w in structure.dependent_set(i) {
            size = size.saturating_mul(tables.k(w) as u64);
        }
        let kv = tables.k(structure.vertex(i)) as u64;
        total = total.saturating_add(size.saturating_mul(kv));
    }
    total
}

/// The gate decision: prune iff the predicted DP work exceeds the
/// predicted prune work, or the DP is predicted huge ([`GATE_DP_ALWAYS`]).
///
/// Per `BENCH_search.json` a DP state evaluation costs ~50 prune
/// comparisons (AlexNet p = 32: 1.1 × 10⁷ comparisons in 1.5 ms vs
/// 5.6 × 10⁴ states in 0.41 ms), so `dp_est > prune_est` demands the prune
/// reduce DP work by only ~2% to break even — exactly the measured
/// crossover: every net-loss cell (AlexNet and RNNLM at all p, where the
/// estimate ratio is ≤ 0.02, and InceptionV3 p ∈ {8, 32} at ~0.45) sits
/// below it, and every clear win (Transformer at all p, ratio ≥ 1.28)
/// above it, with the [`GATE_DP_ALWAYS`] term catching InceptionV3
/// p = 64's big-DP win (ratio 0.39 but 64 ms net gain).
pub(crate) fn prune_pays_off(dp_est: u64, prune_est: u64) -> bool {
    dp_est > prune_est || dp_est >= GATE_DP_ALWAYS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for mode in [PruneGate::Auto, PruneGate::On, PruneGate::Off] {
            assert_eq!(PruneGate::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(PruneGate::parse("maybe"), None);
        assert_eq!(PruneGate::default(), PruneGate::On);
    }

    #[test]
    fn decision_is_monotone_in_dp_work() {
        // Tiny DP, any prune cost: skip.
        assert!(!prune_pays_off(100, 100));
        // Huge DP, small prune cost: prune.
        assert!(prune_pays_off(1_000_000, 100));
        // Monotone: more predicted DP work never turns pruning off.
        let mut prev = false;
        for dp in [0u64, 10, 1_000, 100_000, 10_000_000] {
            let now = prune_pays_off(dp, 1_000);
            assert!(now || !prev, "gate flipped back off as dp work grew");
            prev = now;
        }
    }

    #[test]
    fn saturating_estimates_do_not_wrap() {
        // u64::MAX-level DP estimates must stay MAX-ish, not wrap to small.
        assert!(prune_pays_off(u64::MAX, 1));
    }

    /// The calibration the threshold was chosen against (run with
    /// `--nocapture` to see the estimator values): on the paper benchmarks
    /// the gate must skip the AlexNet cells where `BENCH_search.json`
    /// measured pruning as a net loss (prune time ≥ whole unpruned DP
    /// fill) and keep it where the pruned DP win is large (Transformer
    /// p = 64, InceptionV3 p ∈ {32, 64}).
    #[test]
    fn gate_decisions_match_measured_crossover_on_paper_benchmarks() {
        use crate::ordering::{make_ordering, OrderingKind};
        use crate::structure::ConnectedSetMode;
        use pase_cost::{estimate_prune_work, ConfigRule, MachineSpec};
        use pase_models::Benchmark;

        let decide = |bench: Benchmark, p: u32| -> bool {
            let graph = bench.build_for(p);
            let tables = CostTables::build(&graph, ConfigRule::new(p), &MachineSpec::gtx1080ti());
            let order = make_ordering(&graph, OrderingKind::GenerateSeq);
            let structure = VertexStructure::build(&graph, &order, ConnectedSetMode::Exact);
            let dp = estimate_dp_work(&structure, &tables);
            let prune = estimate_prune_work(&graph, &tables);
            let keep = prune_pays_off(dp, prune);
            println!(
                "{:<12} p={:<3} dp_est={:<12} prune_est={:<12} prune={}",
                bench.name(),
                p,
                dp,
                prune,
                keep
            );
            keep
        };

        // Expected decision per (model, p), from the measured net win of
        // pruning in BENCH_search.json (prune_s + pruned_s vs unpruned_s):
        // AlexNet and RNNLM lose at every p, Transformer wins at every p,
        // InceptionV3 wins only at p = 64 (+64 ms; −1.8 ms at p = 32).
        let cases = [
            (Benchmark::AlexNet, [false, false, false]),
            (Benchmark::InceptionV3, [false, false, true]),
            (Benchmark::Rnnlm, [false, false, false]),
            (Benchmark::Transformer, [true, true, true]),
        ];
        for (bench, expect) in cases {
            for (p, want) in [8u32, 32, 64].into_iter().zip(expect) {
                assert_eq!(
                    decide(bench, p),
                    want,
                    "{} p={p}: gate disagrees with measured crossover",
                    bench.name()
                );
            }
        }
    }
}
