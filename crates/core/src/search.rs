//! The unified search entry point.
//!
//! Historically every combination of knobs had its own free function —
//! `find_best_strategy`, `_traced`, `_pruned`, `_pruned_traced` — times the
//! `CostTables::build{,_with,_traced,_with_space}` constructor family at
//! every call site. [`Search`] collapses that combinatorial explosion into
//! one builder:
//!
//! ```text
//! Search::new(&graph).devices(p).machine(m).budget(b).pruning(popts).trace(&t).run()
//! ```
//!
//! Every knob is optional; the defaults reproduce the paper's standard
//! configuration (GenerateSeq ordering, exact connected sets, wavefront-
//! parallel fill, GTX 1080 Ti profile, 8 devices, no pruning, no trace).
//! The legacy free-function grid has been removed; this builder is the
//! only entry point. Machines are modeled as [`pase_cost::DeviceMesh`]es —
//! [`Search::machine`] wraps a scalar profile in its flat single-axis
//! mesh (bit-identical to the historical scalar model), while
//! [`Search::mesh`] runs the topology-aware cost model on a hierarchical
//! mesh.

use crate::budget::{SearchBudget, SearchOutcome, SearchResult, SearchStats};
use crate::dp::{run_pruned_with_structure, run_with_structure, DpOptions};
use crate::error::Error;
use crate::frontier::{
    run_frontier_pruned_with_structure, run_frontier_with_structure, FrontierFill, StrategyFrontier,
};
use crate::gate::{self, PruneGate};
use crate::kernel::DpKernel;
use crate::ordering::{make_ordering, OrderingKind};
use crate::structure::{ConnectedSetMode, VertexStructure};
use pase_cost::{
    estimate_prune_work, ConfigRule, ConfigSpace, CostTables, DeviceMesh, MachineSpec,
    NonFiniteCost, PruneOptions, TableOptions,
};
use pase_graph::{Graph, GraphError};
use pase_obs::{phase, span_in, OptSpan, Trace};
use std::fmt;

/// A configured-but-not-yet-run strategy search. See the module docs.
///
/// ```
/// use pase_core::Search;
/// use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};
///
/// // One fully-connected layer on 4 devices.
/// let mut b = GraphBuilder::new();
/// b.add_node(Node {
///     name: "fc".into(),
///     op: OpKind::FullyConnected,
///     iter_space: vec![
///         IterDim::new("b", 64, DimRole::Batch),
///         IterDim::new("n", 256, DimRole::Param),
///         IterDim::new("c", 256, DimRole::Reduction),
///     ],
///     inputs: vec![],
///     output: TensorRef::new(vec![0, 1], vec![64, 256]),
///     params: vec![TensorRef::new(vec![1, 2], vec![256, 256])],
/// });
/// let graph = b.build().unwrap();
/// let result = Search::new(&graph)
///     .devices(4)
///     .run()
///     .expect_found("single layer");
/// // An isolated layer avoids all communication by sharding its weight:
/// // the optimum is the ideal compute division.
/// assert_eq!(result.cost, graph.total_step_flops() / 4.0);
/// ```
#[derive(Clone)]
pub struct Search<'a> {
    graph: &'a Graph,
    devices: u32,
    mesh: DeviceMesh,
    rule: Option<ConfigRule>,
    table_opts: TableOptions,
    space: Option<&'a ConfigSpace>,
    tables: Option<&'a CostTables>,
    prune: Option<PruneOptions>,
    gate: PruneGate,
    dp: DpOptions,
    trace: Option<&'a Trace>,
    max_memory_bytes: Option<u64>,
    want_frontier: bool,
}

impl<'a> Search<'a> {
    /// Start configuring a search over `graph` with the standard defaults
    /// (8 devices on the GTX 1080 Ti profile, exact DP, no pruning).
    pub fn new(graph: &'a Graph) -> Self {
        Self {
            graph,
            devices: 8,
            mesh: DeviceMesh::flat(&MachineSpec::gtx1080ti()),
            rule: None,
            table_opts: TableOptions::default(),
            space: None,
            tables: None,
            prune: None,
            gate: PruneGate::On,
            dp: DpOptions::default(),
            trace: None,
            max_memory_bytes: None,
            want_frontier: false,
        }
    }

    /// Number of devices `p` to parallelize over (default 8). Ignored when
    /// a full [`ConfigRule`] is supplied via [`Search::rule`].
    pub fn devices(mut self, p: u32) -> Self {
        self.devices = p;
        self
    }

    /// Machine profile (default [`MachineSpec::gtx1080ti`]), costed as its
    /// flat single-axis [`DeviceMesh`] — bit-identical to the historical
    /// scalar `r = F/B` model.
    pub fn machine(mut self, m: MachineSpec) -> Self {
        self.mesh = DeviceMesh::flat(&m);
        self
    }

    /// Hierarchical device mesh to cost against — the topology-aware
    /// model: each collective is charged at the slowest link its group
    /// spans, plus per-ring-step latency. Overrides [`Search::machine`].
    pub fn mesh(mut self, mesh: DeviceMesh) -> Self {
        self.mesh = mesh;
        self
    }

    /// Full configuration-enumeration rule, overriding [`Search::devices`]
    /// (for idle-device, split-cap, or memory-limit variations).
    pub fn rule(mut self, rule: ConfigRule) -> Self {
        self.rule = Some(rule);
        self
    }

    /// Resource limits for the DP (default [`SearchBudget::default`]).
    pub fn budget(mut self, budget: SearchBudget) -> Self {
        self.dp.budget = budget;
        self
    }

    /// Run dominance pruning over the configuration space before the DP
    /// (off by default). With `PruneOptions::default()` (ε = 0) the result
    /// is bit-identical to the unpruned search.
    pub fn pruning(mut self, opts: PruneOptions) -> Self {
        self.prune = Some(opts);
        self
    }

    /// When to run the dominance prune (default [`PruneGate::On`]):
    ///
    /// * [`PruneGate::On`] — prune iff [`Search::pruning`] was called (the
    ///   historical behavior);
    /// * [`PruneGate::Off`] — never prune, even with options supplied;
    /// * [`PruneGate::Auto`] — estimate DP work vs. prune work and prune
    ///   only when predicted to pay off, using the supplied
    ///   [`PruneOptions`] (or the exact-mode default when none were given).
    ///   The decision and both estimates land in
    ///   [`crate::SearchStats::prune_skipped`] / `gate_dp_est` /
    ///   `gate_prune_est`.
    ///
    /// Exact (ε = 0) pruning is bit-identical to not pruning, so with
    /// default prune options every gate mode returns the same optimum.
    pub fn prune_gate(mut self, gate: PruneGate) -> Self {
        self.gate = gate;
        self
    }

    /// Vertex ordering (default [`OrderingKind::GenerateSeq`]).
    pub fn ordering(mut self, ordering: OrderingKind) -> Self {
        self.dp.ordering = ordering;
        self
    }

    /// Connected-set mode (default [`ConnectedSetMode::Exact`];
    /// [`ConnectedSetMode::Prefix`] gives the naive recurrence (2)).
    pub fn connected_sets(mut self, mode: ConnectedSetMode) -> Self {
        self.dp.mode = mode;
        self
    }

    /// Wavefront-parallel table fill on or off (default on; both schedules
    /// are bit-identical).
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.dp.parallel = parallel;
        self
    }

    /// Which inner-loop implementation fills the DP tables (default
    /// [`DpKernel::Tiled`]; both kernels are bit-identical — see
    /// [`DpKernel`]).
    pub fn dp_kernel(mut self, kernel: DpKernel) -> Self {
        self.dp.kernel = kernel;
        self
    }

    /// All DP knobs at once (ordering, mode, budget, parallelism, kernel) —
    /// the bridge for callers still holding a [`DpOptions`].
    pub fn dp_options(mut self, opts: DpOptions) -> Self {
        self.dp = opts;
        self
    }

    /// Cost-table construction options (interning, parallel build).
    pub fn table_options(mut self, opts: TableOptions) -> Self {
        self.table_opts = opts;
        self
    }

    /// Reuse a pre-enumerated [`ConfigSpace`] instead of re-enumerating
    /// per-node configurations (machine-profile sweeps). Ignored when
    /// prebuilt [`Search::tables`] are supplied.
    pub fn space(mut self, space: &'a ConfigSpace) -> Self {
        self.space = Some(space);
        self
    }

    /// Run on prebuilt [`CostTables`], skipping table construction
    /// entirely. The tables must cover `graph`; machine/devices/rule/space
    /// settings are ignored.
    pub fn tables(mut self, tables: &'a CostTables) -> Self {
        self.tables = Some(tables);
        self
    }

    /// Record phase spans and counters into `trace` (table build, prune,
    /// DP wavefronts, backtrack). Results are identical with and without.
    pub fn trace(mut self, trace: &'a Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Constrain the returned strategy's peak per-device memory (the
    /// additive model of [`pase_cost::config_memory_bytes`]) to at most
    /// `bytes`. Switches the search to the frontier engine: the result is
    /// the *fastest strategy that fits*, or
    /// [`SearchOutcome::Infeasible`] when even the smallest-memory
    /// strategy exceeds the budget. Without this knob the search is
    /// unconstrained and the optimum is bit-identical to the scalar DP.
    pub fn max_memory_bytes(mut self, bytes: u64) -> Self {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// Compute the full (step-time × peak-memory) Pareto frontier instead
    /// of just the single optimum. The returned [`SearchResult`] is still
    /// the selected point (min-time, or the cheapest fitting one under
    /// [`Search::max_memory_bytes`]); the whole frontier is available via
    /// [`SearchRun::frontier`]. The frontier engine honours
    /// [`Search::dp_kernel`]: [`DpKernel::Tiled`] (the default) runs the
    /// run-blocked frontier microkernel (`stats.dp_kernel ==
    /// "frontier-tiled"`), [`DpKernel::Scalar`] the incremental per-entry
    /// fill (`"frontier"`); both produce bit-identical frontiers.
    pub fn frontier(mut self) -> Self {
        self.want_frontier = true;
        self
    }

    /// Cap the per-state (and returned) frontier at `width` points; `0`
    /// disables the cap (exact, potentially exponential). See
    /// [`DpOptions::frontier_width`]. Only affects frontier searches.
    pub fn frontier_width(mut self, width: usize) -> Self {
        self.dp.frontier_width = width;
        self
    }

    /// Execute the search: build (or borrow) the cost tables, optionally
    /// prune, run the DP, and return the outcome together with the tables
    /// the returned configuration ids index into.
    pub fn run(self) -> SearchRun<'a> {
        let tables = match self.tables {
            Some(t) => TablesHandle::Borrowed(t),
            None => {
                let rule = self.rule.unwrap_or_else(|| ConfigRule::new(self.devices));
                let built = match self.space {
                    Some(space) => CostTables::build_mesh_with_space(
                        self.graph,
                        rule,
                        &self.mesh,
                        space,
                        &self.table_opts,
                    ),
                    None => CostTables::build_mesh(
                        self.graph,
                        rule,
                        &self.mesh,
                        &self.table_opts,
                        self.trace,
                    ),
                };
                TablesHandle::Owned(built)
            }
        };
        // A NaN/∞ table entry silently poisons both the dominance prune
        // (`total_cmp` sorts NaN largest; it survives `fold(∞, min)`) and
        // the DP argmin — reject it before any search runs.
        if let Err(e) = tables.get().check_finite() {
            return SearchRun {
                outcome: Err(BuildFailure::NonFinite(e)),
                tables,
                frontier: None,
            };
        }
        // Resolve the gate into (prune options to use, gate telemetry).
        // Auto builds the ordering + structure up front — the structure
        // depends only on (graph, ordering, mode), so the DP reuses it
        // verbatim and the gate's only extra work is the two estimates.
        let mut prebuilt: Option<VertexStructure> = None;
        let mut gate_stats: Option<(bool, u64, u64)> = None;
        let popts: Option<PruneOptions> = match self.gate {
            PruneGate::On => self.prune,
            PruneGate::Off => None,
            PruneGate::Auto if self.graph.is_empty() => self.prune,
            PruneGate::Auto => {
                let structure = {
                    let mut span = span_in(self.trace, phase::STRUCTURE);
                    let order = make_ordering(self.graph, self.dp.ordering);
                    let s = VertexStructure::build(self.graph, &order, self.dp.mode);
                    span.arg("nodes", self.graph.len());
                    span.arg("wavefronts", s.wavefronts().len());
                    s
                };
                let dp_est = gate::estimate_dp_work(&structure, tables.get());
                let prune_est = estimate_prune_work(self.graph, tables.get());
                let keep = gate::prune_pays_off(dp_est, prune_est);
                prebuilt = Some(structure);
                gate_stats = Some((!keep, dp_est, prune_est));
                if keep {
                    Some(self.prune.unwrap_or_default())
                } else {
                    None
                }
            }
        };
        if self.want_frontier || self.max_memory_bytes.is_some() {
            let fill = match &popts {
                Some(popts) => run_frontier_pruned_with_structure(
                    self.graph,
                    tables.get(),
                    &self.dp,
                    popts,
                    self.trace,
                    prebuilt,
                ),
                None => run_frontier_with_structure(
                    self.graph,
                    tables.get(),
                    &self.dp,
                    self.trace,
                    prebuilt,
                ),
            };
            let (mut outcome, frontier) = match fill {
                FrontierFill::Done(frontier, stats) => {
                    // Unconstrained: the min-time point (bit-identical to
                    // the scalar optimum). Constrained: the cheapest point
                    // that fits, or Infeasible when none does.
                    let picked = match self.max_memory_bytes {
                        Some(b) => frontier.cheapest_within(b),
                        None => Some(frontier.min_time()),
                    };
                    let outcome = match picked {
                        Some(p) => SearchOutcome::Found(SearchResult {
                            cost: p.cost,
                            config_ids: p.config_ids.clone(),
                            stats: SearchStats {
                                peak_strategy_bytes: p.memory_bytes,
                                ..stats
                            },
                        }),
                        None => SearchOutcome::Infeasible {
                            min_memory_bytes: frontier.min_memory_bytes(),
                            stats,
                        },
                    };
                    (outcome, Some(frontier))
                }
                FrontierFill::Abort(o) => (o, None),
            };
            apply_gate_stats(&mut outcome, gate_stats);
            stats_of(&mut outcome).mesh_axes = tables.get().mesh().axes.len();
            return SearchRun {
                outcome: Ok(outcome),
                tables,
                frontier,
            };
        }
        let mut outcome = match &popts {
            Some(popts) => run_pruned_with_structure(
                self.graph,
                tables.get(),
                &self.dp,
                popts,
                self.trace,
                prebuilt,
            ),
            None => run_with_structure(self.graph, tables.get(), &self.dp, self.trace, prebuilt),
        };
        if let Ok(outcome) = &mut outcome {
            apply_gate_stats(outcome, gate_stats);
            stats_of(outcome).mesh_axes = tables.get().mesh().axes.len();
            if let SearchOutcome::Found(r) = outcome {
                r.stats.peak_strategy_bytes = tables.get().strategy_memory_bytes(&r.config_ids);
            }
        }
        SearchRun {
            outcome: outcome.map_err(BuildFailure::Graph),
            tables,
            frontier: None,
        }
    }
}

/// The stats of whichever variant the outcome carries.
fn stats_of(outcome: &mut SearchOutcome) -> &mut SearchStats {
    match outcome {
        SearchOutcome::Found(r) => &mut r.stats,
        SearchOutcome::Oom { stats, .. }
        | SearchOutcome::Timeout { stats }
        | SearchOutcome::Infeasible { stats, .. } => stats,
    }
}

/// Fold the `PruneGate::Auto` telemetry into whichever stats the outcome
/// carries (no-op when the gate did not run).
fn apply_gate_stats(outcome: &mut SearchOutcome, gate_stats: Option<(bool, u64, u64)>) {
    if let Some((skipped, dp_est, prune_est)) = gate_stats {
        let stats = stats_of(outcome);
        stats.prune_skipped = skipped;
        stats.gate_dp_est = dp_est;
        stats.gate_prune_est = prune_est;
    }
}

/// The cost tables a [`SearchRun`] ran on: borrowed when the caller
/// supplied them, owned when the builder constructed them.
enum TablesHandle<'a> {
    Owned(CostTables),
    Borrowed(&'a CostTables),
}

impl TablesHandle<'_> {
    fn get(&self) -> &CostTables {
        match self {
            TablesHandle::Owned(t) => t,
            TablesHandle::Borrowed(t) => t,
        }
    }
}

/// A failure that prevented the search from running at all: a
/// structurally malformed fill plan, or cost tables containing a
/// non-finite entry. Kept private — [`SearchRun::result`] maps it onto
/// the public [`Error`].
#[derive(Clone, Debug)]
enum BuildFailure {
    Graph(GraphError),
    NonFinite(NonFiniteCost),
}

impl fmt::Display for BuildFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildFailure::Graph(e) => write!(f, "{e}"),
            BuildFailure::NonFinite(e) => write!(f, "{e}"),
        }
    }
}

/// The result of [`Search::run`]: the [`SearchOutcome`] plus the
/// [`CostTables`] whose configuration-id space the result's
/// `config_ids` index into, and — for frontier searches — the full
/// [`StrategyFrontier`].
///
/// A structurally malformed fill plan (an internal invariant violation the
/// DP kernels detect rather than silently wrap on) and non-finite cost
/// tables are carried as a build failure: [`SearchRun::result`] surfaces
/// them as [`Error::Graph`] / [`Error::NonFiniteCost`], while the
/// infallible accessors panic — either way the search ran no DP at all.
pub struct SearchRun<'a> {
    outcome: Result<SearchOutcome, BuildFailure>,
    tables: TablesHandle<'a>,
    frontier: Option<StrategyFrontier>,
}

impl<'a> SearchRun<'a> {
    /// The search outcome. Panics if the search could not run (see the
    /// type docs); use [`SearchRun::result`] to handle that case.
    pub fn outcome(&self) -> &SearchOutcome {
        match &self.outcome {
            Ok(o) => o,
            Err(e) => panic!("search failed structurally: {e}"),
        }
    }

    /// Consume the run, keeping only the outcome. Panics like
    /// [`SearchRun::outcome`] on a structural failure.
    pub fn into_outcome(self) -> SearchOutcome {
        match self.outcome {
            Ok(o) => o,
            Err(e) => panic!("search failed structurally: {e}"),
        }
    }

    /// The cost tables the search ran on (owned by the run unless they
    /// were supplied via [`Search::tables`]).
    pub fn tables(&self) -> &CostTables {
        self.tables.get()
    }

    /// The full Pareto frontier of a completed frontier search (requested
    /// via [`Search::frontier`] or [`Search::max_memory_bytes`]); `None`
    /// for scalar searches and aborted frontier fills. Present even when
    /// the outcome is [`SearchOutcome::Infeasible`] — the frontier is what
    /// proves infeasibility.
    pub fn frontier(&self) -> Option<&StrategyFrontier> {
        self.frontier.as_ref()
    }

    /// Consume the run, keeping only the frontier (see
    /// [`SearchRun::frontier`]).
    pub fn into_frontier(self) -> Option<StrategyFrontier> {
        self.frontier
    }

    /// The successful result, or the matching [`Error`] ([`Error::Oom`] /
    /// [`Error::Timeout`] for an exhausted budget, [`Error::Infeasible`]
    /// for an unsatisfiable memory constraint, [`Error::Graph`] /
    /// [`Error::NonFiniteCost`] for a search that could not run).
    pub fn result(&self) -> Result<&SearchResult, Error> {
        match &self.outcome {
            Ok(SearchOutcome::Found(r)) => Ok(r),
            Ok(other) => {
                Err(Error::from_outcome(other).expect("non-Found outcome maps to an error"))
            }
            Err(BuildFailure::Graph(e)) => Err(Error::Graph(e.clone())),
            Err(BuildFailure::NonFinite(e)) => Err(Error::NonFiniteCost(*e)),
        }
    }

    /// Unwrap the successful result, panicking with `msg` otherwise
    /// (mirrors [`SearchOutcome::expect_found`]).
    pub fn expect_found(self, msg: &str) -> SearchResult {
        match self.outcome {
            Ok(o) => o.expect_found(msg),
            Err(e) => panic!("{msg}: search failed structurally: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn fc(name: &str, ins: usize) -> Node {
        Node {
            name: name.into(),
            op: OpKind::FullyConnected,
            iter_space: vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 128, DimRole::Param),
                IterDim::new("c", 128, DimRole::Reduction),
            ],
            inputs: (0..ins)
                .map(|_| TensorRef::new(vec![0, 2], vec![64, 128]))
                .collect(),
            output: TensorRef::new(vec![0, 1], vec![64, 128]),
            params: vec![TensorRef::new(vec![1, 2], vec![128, 128])],
        }
    }

    fn chain2() -> Graph {
        let mut b = GraphBuilder::new();
        let x = b.add_node(fc("fc1", 0));
        let y = b.add_node(fc("fc2", 1));
        b.connect(x, y);
        b.build().unwrap()
    }

    #[test]
    fn builder_defaults_find_a_strategy() {
        let g = chain2();
        let run = Search::new(&g).devices(4).run();
        let r = run.result().expect("found");
        assert!(r.cost > 0.0);
        assert_eq!(r.config_ids.len(), g.len());
        // The returned ids index the run's own tables.
        let eval = run.tables().evaluate_ids(&g, &r.config_ids);
        assert!((eval - r.cost).abs() <= 1e-9 * r.cost);
    }

    #[test]
    fn prebuilt_tables_are_borrowed_not_rebuilt() {
        let g = chain2();
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let via_tables = Search::new(&g).tables(&tables).run();
        let via_build = Search::new(&g)
            .devices(4)
            .machine(MachineSpec::test_machine())
            .run();
        let a = via_tables.result().expect("prebuilt").cost;
        let b = via_build.result().expect("built").cost;
        assert_eq!(a.to_bits(), b.to_bits());
        assert!(std::ptr::eq(via_tables.tables(), &tables));
    }

    #[test]
    fn space_reuse_matches_direct_enumeration() {
        let g = chain2();
        let rule = ConfigRule::new(4);
        let space = ConfigSpace::build(&g, &rule);
        let m = MachineSpec::test_machine();
        let with_space = Search::new(&g)
            .rule(rule.clone())
            .machine(m.clone())
            .space(&space)
            .run()
            .expect_found("space");
        let direct = Search::new(&g)
            .rule(rule)
            .machine(m)
            .run()
            .expect_found("direct");
        assert_eq!(with_space.cost.to_bits(), direct.cost.to_bits());
        assert_eq!(with_space.config_ids, direct.config_ids);
    }

    #[test]
    fn pruning_with_zero_epsilon_is_bit_identical() {
        let g = chain2();
        let plain = Search::new(&g).devices(8).run().expect_found("plain");
        let pruned = Search::new(&g)
            .devices(8)
            .pruning(PruneOptions::default())
            .run()
            .expect_found("pruned");
        assert_eq!(plain.cost.to_bits(), pruned.cost.to_bits());
        assert!(pruned.stats.k_before >= pruned.stats.max_configs);
    }

    #[test]
    fn budget_failures_surface_as_errors() {
        let g = chain2();
        let run = Search::new(&g)
            .devices(8)
            .budget(SearchBudget::with_max_entries(1))
            .run();
        match run.result() {
            Err(Error::Oom { needed_entries, .. }) => assert!(needed_entries > 1),
            other => panic!("expected Err(Oom), got {other:?}"),
        }
    }

    #[test]
    fn frontier_min_time_is_bit_identical_to_the_scalar_optimum() {
        let g = chain2();
        for parallel in [false, true] {
            let scalar = Search::new(&g)
                .devices(8)
                .parallel(parallel)
                .run()
                .expect_found("scalar");
            let run = Search::new(&g)
                .devices(8)
                .parallel(parallel)
                .frontier()
                .run();
            let r = run.result().expect("frontier");
            assert_eq!(r.cost.to_bits(), scalar.cost.to_bits());
            assert_eq!(r.stats.dp_kernel, "frontier-tiled");
            let f = run.frontier().expect("frontier retained");
            assert_eq!(r.stats.frontier_len, f.len());
            assert!(!f.is_empty());
            // The selected point IS the frontier's min-time point, and the
            // ids it carries reproduce the cost through the cost model.
            assert_eq!(f.min_time().cost.to_bits(), r.cost.to_bits());
            let eval = run.tables().evaluate_ids(&g, &r.config_ids);
            assert_eq!(eval.to_bits(), r.cost.to_bits());
            assert_eq!(
                run.tables().strategy_memory_bytes(&r.config_ids),
                r.stats.peak_strategy_bytes
            );
        }
    }

    #[test]
    fn memory_budget_picks_the_cheapest_fitting_point_or_infeasible() {
        let g = chain2();
        let full = Search::new(&g).devices(8).frontier().run();
        let f = full.frontier().expect("frontier");
        // Querying with exactly each point's memory must return that point.
        for p in f.points() {
            let run = Search::new(&g)
                .devices(8)
                .max_memory_bytes(p.memory_bytes)
                .run();
            let r = run.result().expect("fits");
            assert_eq!(r.cost.to_bits(), p.cost.to_bits());
            assert_eq!(r.stats.peak_strategy_bytes, p.memory_bytes);
        }
        // Below the min-memory point nothing fits: Infeasible, reporting
        // how much the cheapest strategy actually needs.
        let min_mem = f.min_memory_bytes();
        let run = Search::new(&g)
            .devices(8)
            .max_memory_bytes(min_mem - 1)
            .run();
        match run.result() {
            Err(Error::Infeasible {
                min_memory_bytes, ..
            }) => assert_eq!(min_memory_bytes, min_mem),
            other => panic!("expected Err(Infeasible), got {other:?}"),
        }
        // The frontier that proved infeasibility is still available.
        assert_eq!(run.frontier().expect("kept").len(), f.len());
        assert_eq!(run.outcome().tag(), "infeasible");
    }

    #[test]
    fn frontier_budget_failures_surface_like_scalar_ones() {
        let g = chain2();
        let run = Search::new(&g)
            .devices(8)
            .frontier()
            .budget(SearchBudget::with_max_entries(1))
            .run();
        match run.result() {
            Err(Error::Oom { needed_entries, .. }) => assert!(needed_entries > 1),
            other => panic!("expected Err(Oom), got {other:?}"),
        }
        assert!(run.frontier().is_none());
    }

    #[test]
    fn non_finite_tables_are_rejected_before_the_dp_runs() {
        // A zero-bandwidth machine makes every communication cost infinite;
        // such tables used to poison the prune and the argmin silently.
        let g = chain2();
        let hostile = MachineSpec {
            name: "hostile".to_string(),
            peak_flops: 1.0,
            link_bandwidth: 0.0,
            internode_bandwidth: 0.0,
        };
        let run = Search::new(&g).devices(8).machine(hostile).run();
        match run.result() {
            Err(Error::NonFiniteCost(e)) => assert!(!e.value.is_finite()),
            other => panic!("expected Err(NonFiniteCost), got {other:?}"),
        }
    }

    #[test]
    fn trace_records_table_build_and_dp_phases() {
        use pase_obs::phase;
        let g = chain2();
        let trace = Trace::new();
        Search::new(&g)
            .devices(4)
            .trace(&trace)
            .run()
            .expect_found("traced");
        let names: Vec<String> = trace.spans().iter().map(|s| s.name.clone()).collect();
        assert!(names.iter().any(|n| n == phase::TABLE_BUILD), "{names:?}");
        assert!(names.iter().any(|n| n == phase::STRUCTURE), "{names:?}");
        assert!(names.iter().any(|n| phase::is_wavefront(n)), "{names:?}");
    }
}
