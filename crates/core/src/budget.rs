//! Search budgets, outcomes, and statistics.
//!
//! The naive recurrence's tables grow as `K^M`; on InceptionV3 and
//! Transformer the paper reports breadth-first ordering running out of
//! memory (Table I). Running a reproduction to actual OOM is not
//! acceptable, so the DP engine accounts for every table entry it is about
//! to allocate and aborts with [`SearchOutcome::Oom`] when a cap is
//! exceeded, or [`SearchOutcome::Timeout`] on a wall-clock cap — those are
//! exactly the `OOM` cells of our Table I reproduction.

use std::time::Duration;

/// Bytes one DP table entry actually occupies: an `f64` cost plus a `u16`
/// chosen-configuration id, as allocated by the DP fill
/// (`Vec<f64>` + `Vec<u16>` of equal length per table). Derived from
/// `size_of` so the budget arithmetic cannot drift from the entry types.
pub const DP_ENTRY_BYTES: u64 = (std::mem::size_of::<f64>() + std::mem::size_of::<u16>()) as u64;

/// Resource limits for one search invocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchBudget {
    /// Cap on the total number of DP table entries allocated across the
    /// whole search. Each entry costs [`DP_ENTRY_BYTES`] (10) bytes, so
    /// the default of 2^28 entries caps table memory at 2.5 GiB —
    /// a memory-constrained workstation.
    pub max_table_entries: u64,
    /// Wall-clock cap.
    pub max_time: Duration,
}

impl Default for SearchBudget {
    fn default() -> Self {
        Self {
            max_table_entries: 1 << 28,
            max_time: Duration::from_secs(600),
        }
    }
}

impl SearchBudget {
    /// A budget with the given entry cap and the default time cap.
    pub fn with_max_entries(entries: u64) -> Self {
        Self {
            max_table_entries: entries,
            ..Self::default()
        }
    }

    /// A budget capping table memory at `bytes` (rounded down to whole
    /// entries of [`DP_ENTRY_BYTES`]), with the default time cap. Clamped
    /// to at least one entry: a sub-entry byte count used to truncate to a
    /// 0-entry budget, making every search — even on an empty graph's
    /// zero-entry tables — report Oom before evaluating anything.
    pub fn with_max_bytes(bytes: u64) -> Self {
        Self::with_max_entries((bytes / DP_ENTRY_BYTES).max(1))
    }

    /// A budget with the given time cap and the default entry cap.
    pub fn with_max_time(t: Duration) -> Self {
        Self {
            max_time: t,
            ..Self::default()
        }
    }

    /// The entry cap expressed in bytes ([`DP_ENTRY_BYTES`] per entry) —
    /// what [`SearchOutcome::Oom`] actually protects against.
    pub fn max_table_bytes(&self) -> u64 {
        self.max_table_entries.saturating_mul(DP_ENTRY_BYTES)
    }
}

/// Statistics reported by a (successful or failed) search.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SearchStats {
    /// `M`: size of the largest dependent set encountered.
    pub max_dependent_set: usize,
    /// `K`: the largest per-vertex configuration count of the tables the
    /// search actually ran on (the post-pruning K when pruning ran).
    pub max_configs: usize,
    /// `K` before dominance pruning. Equal to `max_configs` when the search
    /// ran on unpruned tables; strictly larger when the dominance prune of
    /// [`crate::Search::pruning`] removed configurations.
    pub k_before: usize,
    /// Wall-clock time of the dominance-pruning pass (zero when no pruning
    /// ran).
    pub prune_time: Duration,
    /// Total DP table entries allocated.
    pub table_entries: u64,
    /// High-water mark of DP table memory in bytes:
    /// `table_entries × DP_ENTRY_BYTES` at the point of greatest
    /// allocation. Tables stay live through back-substitution, so on a
    /// completed search this equals the final total; on an aborted one it
    /// is what had been accounted when the budget tripped.
    pub peak_table_bytes: u64,
    /// Total `(substrategy, configuration)` pairs evaluated.
    pub states_evaluated: u64,
    /// Number of wavefronts in the table-dependency DAG (tables within a
    /// wavefront are filled concurrently).
    pub wavefronts: usize,
    /// Size of the largest wavefront (peak table-level parallelism).
    pub max_wavefront_width: usize,
    /// Fraction of cost-table lookups served by structural interning in the
    /// [`pase_cost::CostTables`] the search ran on. `None` when the tables
    /// were built without interning (e.g. the `intern_min_nodes` size gate
    /// skipped it) — a skipped pass is *not* the same as a measured 0% hit
    /// rate.
    pub intern_hit_rate: Option<f64>,
    /// Which DP fill kernel ran (`"scalar"` or `"tiled"`, the
    /// [`crate::DpKernel`] wire spelling; empty on stats that never reached
    /// the DP).
    pub dp_kernel: &'static str,
    /// `true` when the adaptive prune gate (`PruneGate::Auto`) decided to
    /// skip the dominance prune because its fixed cost was predicted to
    /// exceed the DP savings. Always `false` for `PruneGate::On`/`Off`.
    pub prune_skipped: bool,
    /// The gate's DP-work estimate (total `(substrategy, configuration)`
    /// evaluations over the unpruned tables); `0` when the gate did not run.
    pub gate_dp_est: u64,
    /// The gate's prune-work estimate (dominance cost comparisons across
    /// distinct pruning signatures); `0` when the gate did not run.
    pub gate_prune_est: u64,
    /// Number of Pareto points on the strategy frontier the search
    /// produced. `0` for a scalar (non-frontier) search.
    pub frontier_len: usize,
    /// Number of axes of the [`pase_cost::DeviceMesh`] the cost tables
    /// were built against (1 = flat scalar-equivalent mesh; `0` only on
    /// stats that never reached a table build).
    pub mesh_axes: usize,
    /// Peak per-device memory in bytes of the returned strategy under the
    /// additive model of [`pase_cost::config_memory_bytes`]. `0` on stats
    /// that never reached a result.
    pub peak_strategy_bytes: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// A successful search result.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The minimum of the cost function `F(G, φ)` over the search space
    /// (in FLOP units).
    pub cost: f64,
    /// The argmin strategy, as per-node configuration ids into the
    /// [`pase_cost::CostTables`] the search ran on.
    pub config_ids: Vec<u16>,
    /// Search statistics.
    pub stats: SearchStats,
}

/// The outcome of a search under a [`SearchBudget`].
#[derive(Clone, Debug)]
pub enum SearchOutcome {
    /// The search completed; the result is exact under the cost model.
    Found(SearchResult),
    /// The projected table allocation exceeded the budget — the reproduction
    /// of Table I's `OOM` entries.
    Oom {
        /// Entries that would have been needed when the search aborted.
        needed_entries: u64,
        /// Statistics up to the abort.
        stats: SearchStats,
    },
    /// The wall-clock budget was exhausted.
    Timeout {
        /// Statistics up to the abort.
        stats: SearchStats,
    },
    /// A memory-constrained search completed, but no strategy fits the
    /// requested `max_memory_bytes`: even the frontier's smallest-memory
    /// point needs more. Distinct from [`SearchOutcome::Oom`], which is
    /// about the *search's own* table memory, not the strategy's.
    Infeasible {
        /// The smallest peak strategy memory any enumerated strategy
        /// achieves (the frontier's min-memory point).
        min_memory_bytes: u64,
        /// Statistics of the completed frontier search.
        stats: SearchStats,
    },
}

impl SearchOutcome {
    /// The result if the search completed.
    pub fn found(&self) -> Option<&SearchResult> {
        match self {
            SearchOutcome::Found(r) => Some(r),
            _ => None,
        }
    }

    /// Unwrap the successful result, panicking otherwise.
    pub fn expect_found(self, msg: &str) -> SearchResult {
        match self {
            SearchOutcome::Found(r) => r,
            SearchOutcome::Oom { needed_entries, .. } => {
                panic!("{msg}: search OOMed (needed {needed_entries} entries)")
            }
            SearchOutcome::Timeout { stats } => {
                panic!("{msg}: search timed out after {:?}", stats.elapsed)
            }
            SearchOutcome::Infeasible {
                min_memory_bytes, ..
            } => {
                panic!("{msg}: no strategy fits the memory budget (min {min_memory_bytes} B)")
            }
        }
    }

    /// The statistics regardless of outcome.
    pub fn stats(&self) -> &SearchStats {
        match self {
            SearchOutcome::Found(r) => &r.stats,
            SearchOutcome::Oom { stats, .. } => stats,
            SearchOutcome::Timeout { stats } => stats,
            SearchOutcome::Infeasible { stats, .. } => stats,
        }
    }

    /// Short tag for report tables: `ok`, `OOM`, `timeout`, or
    /// `infeasible`.
    pub fn tag(&self) -> &'static str {
        match self {
            SearchOutcome::Found(_) => "ok",
            SearchOutcome::Oom { .. } => "OOM",
            SearchOutcome::Timeout { .. } => "timeout",
            SearchOutcome::Infeasible { .. } => "infeasible",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_generous() {
        let b = SearchBudget::default();
        assert!(b.max_table_entries >= 1 << 20);
        assert!(b.max_time >= Duration::from_secs(60));
    }

    #[test]
    fn entry_size_comes_from_the_real_types() {
        // The DP fill allocates a Vec<f64> and a Vec<u16> per table; the
        // budget constant must track those types, not a hand-written guess.
        assert_eq!(DP_ENTRY_BYTES, 10);
        // Default cap: 2^28 entries × 10 B = 2.5 GiB.
        let b = SearchBudget::default();
        assert_eq!(b.max_table_bytes(), (1u64 << 28) * 10);
        assert_eq!(b.max_table_bytes(), 2_684_354_560); // 2.5 GiB exactly
    }

    #[test]
    fn byte_budget_rounds_down_to_whole_entries() {
        let b = SearchBudget::with_max_bytes(105);
        assert_eq!(b.max_table_entries, 10);
        assert_eq!(b.max_table_bytes(), 100);
        assert_eq!(b.max_time, SearchBudget::default().max_time);
    }

    #[test]
    fn sub_entry_byte_budget_clamps_to_one_entry() {
        // Regression: bytes < DP_ENTRY_BYTES used to truncate to a
        // 0-entry budget, so every search instantly reported Oom. The
        // caller asked for "as little memory as possible", not "none".
        for bytes in [0u64, 1, DP_ENTRY_BYTES - 1] {
            let b = SearchBudget::with_max_bytes(bytes);
            assert_eq!(b.max_table_entries, 1, "bytes = {bytes}");
        }
        // At exactly one entry and beyond, the rounding is unchanged.
        assert_eq!(
            SearchBudget::with_max_bytes(DP_ENTRY_BYTES).max_table_entries,
            1
        );
        assert_eq!(
            SearchBudget::with_max_bytes(2 * DP_ENTRY_BYTES + 3).max_table_entries,
            2
        );
    }

    #[test]
    fn outcome_accessors() {
        let r = SearchResult {
            cost: 1.0,
            config_ids: vec![0],
            stats: SearchStats::default(),
        };
        let found = SearchOutcome::Found(r);
        assert!(found.found().is_some());
        assert_eq!(found.tag(), "ok");
        let oom = SearchOutcome::Oom {
            needed_entries: 9,
            stats: SearchStats::default(),
        };
        assert!(oom.found().is_none());
        assert_eq!(oom.tag(), "OOM");
        let to = SearchOutcome::Timeout {
            stats: SearchStats::default(),
        };
        assert_eq!(to.tag(), "timeout");
    }

    #[test]
    #[should_panic(expected = "search OOMed")]
    fn expect_found_panics_on_oom() {
        SearchOutcome::Oom {
            needed_entries: 1,
            stats: SearchStats::default(),
        }
        .expect_found("test");
    }
}
