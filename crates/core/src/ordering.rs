//! Vertex orderings.
//!
//! The complexity of FindBestStrategy is `O(|V|² K^{M+1})` where `M` is the
//! size of the largest dependent set — a function of the chosen vertex
//! sequence `V`. **GenerateSeq** (Fig. 3) greedily sequences, at every step,
//! the vertex whose *maintained* dependent set is currently smallest; its
//! update rule provably maintains `v.d = D(i)` (Theorem 2). On DNN graphs —
//! sparse with a few high-degree vertices — this places the dense vertices
//! only after their neighborhoods are sequenced, keeping `M` tiny (≤ 2 for
//! InceptionV3 vs. ~10 under breadth-first ordering).

use pase_graph::{bfs_order, Graph, NodeId};
use rustc_hash::FxHashSet;

/// Which vertex ordering to run the dynamic program with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderingKind {
    /// The paper's GenerateSeq greedy ordering (Fig. 3).
    GenerateSeq,
    /// Breadth-first ordering (the §III-A baseline).
    BreadthFirst,
    /// A seeded random permutation (ablation baseline).
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// Produce the vertex sequence for `kind`.
pub fn make_ordering(g: &Graph, kind: OrderingKind) -> Vec<NodeId> {
    match kind {
        OrderingKind::GenerateSeq => generate_seq(g),
        OrderingKind::BreadthFirst => bfs_order(g),
        OrderingKind::Random { seed } => {
            let mut order: Vec<NodeId> = g.node_ids().collect();
            // Fisher–Yates with SplitMix64: deterministic without pulling a
            // full RNG crate into this hot crate.
            let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            for i in (1..order.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            order
        }
    }
}

/// The GenerateSeq procedure of Fig. 3.
///
/// Maintains, for every unsequenced vertex `v`, the set `v.d` that equals
/// the dependent set `D(i)` the vertex *would* have if sequenced next
/// (Theorem 2), and greedily picks the vertex minimizing `|v.d|` (ties
/// broken by node id, making the ordering deterministic).
pub fn generate_seq(g: &Graph) -> Vec<NodeId> {
    generate_seq_with_sets(g).0
}

/// GenerateSeq, additionally returning the maintained set `v^(i).d` of each
/// vertex *at the moment it was sequenced* (sorted by node id). By
/// Theorem 2 these equal the dependent sets `D(i)`; the structure tests and
/// the repository's property tests verify that equality against the
/// first-principles computation.
pub fn generate_seq_with_sets(g: &Graph) -> (Vec<NodeId>, Vec<Vec<NodeId>>) {
    let n = g.len();
    // Line 1: ∀v, v.d ← N(v)
    let mut dep: Vec<FxHashSet<NodeId>> = g
        .node_ids()
        .map(|v| g.neighbors(v).iter().copied().collect())
        .collect();
    let mut unsequenced: Vec<bool> = vec![true; n];
    let mut order = Vec::with_capacity(n);
    let mut picked_sets = Vec::with_capacity(n);
    for _ in 0..n {
        // Line 5: v(i) ← argmin_{u ∈ U} |u.d|
        let vi = g
            .node_ids()
            .filter(|v| unsequenced[v.index()])
            .min_by_key(|v| (dep[v.index()].len(), v.index()))
            .expect("unsequenced vertex must exist");
        unsequenced[vi.index()] = false;
        order.push(vi);
        let mut vi_dep: Vec<NodeId> = dep[vi.index()].iter().copied().collect();
        vi_dep.sort_unstable();
        // Lines 7–9: for all v ∈ v(i).d: v.d ← v.d ∪ v(i).d − {v(i)}
        for &v in &vi_dep {
            let set = &mut dep[v.index()];
            for &w in &vi_dep {
                if w != v {
                    set.insert(w);
                }
            }
            set.remove(&vi);
        }
        picked_sets.push(vi_dep);
    }
    (order, picked_sets)
}

/// Per-position search profile: what FindBestStrategy would allocate and
/// evaluate at each position of the given ordering, *without* running the
/// search. Used by the Fig. 5 harness to show where the work concentrates,
/// and by capacity planning before expensive runs.
#[derive(Clone, Debug, PartialEq)]
pub struct PositionProfile {
    /// The vertex sequenced at this position.
    pub vertex: NodeId,
    /// `|D(i)|`.
    pub dependent_set: usize,
    /// DP-table entries at this position (`∏_{w ∈ D(i)} |C(w)|`),
    /// saturating at `u64::MAX` on overflow.
    pub table_entries: u64,
    /// States evaluated here (`table_entries · |C(v^(i))|`), saturating.
    pub states: u64,
}

/// Compute the [`PositionProfile`] of every position for `order` under the
/// exact (recurrence (4)) connected sets, given per-vertex configuration
/// counts `k[v]`.
pub fn search_profile(g: &Graph, order: &[NodeId], k: &[usize]) -> Vec<PositionProfile> {
    assert_eq!(k.len(), g.len(), "need one configuration count per vertex");
    let s = crate::structure::VertexStructure::build(
        g,
        order,
        crate::structure::ConnectedSetMode::Exact,
    );
    (0..g.len())
        .map(|i| {
            let vertex = s.vertex(i);
            let dep = s.dependent_set(i);
            let table_entries = dep
                .iter()
                .try_fold(1u64, |acc, &w| acc.checked_mul(k[w.index()] as u64))
                .unwrap_or(u64::MAX);
            let states = table_entries.saturating_mul(k[vertex.index()] as u64);
            PositionProfile {
                vertex,
                dependent_set: dep.len(),
                table_entries,
                states,
            }
        })
        .collect()
}

/// `|D(i)|` for every position of the given ordering, computed from first
/// principles (definitions in §III-B). Used by the Fig. 5 / §III-C harness
/// and by the ordering-ablation bench; also the test oracle for Theorem 2.
pub fn dependent_set_sizes(g: &Graph, order: &[NodeId]) -> Vec<usize> {
    crate::structure::VertexStructure::build(g, order, crate::structure::ConnectedSetMode::Exact)
        .dependent_sets()
        .iter()
        .map(Vec::len)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn ew(name: &str, ins: usize) -> Node {
        Node {
            name: name.into(),
            op: OpKind::Elementwise {
                flops_per_point: 1.0,
            },
            iter_space: vec![IterDim::new("b", 4, DimRole::Batch)],
            inputs: (0..ins).map(|_| TensorRef::new(vec![0], vec![4])).collect(),
            output: TensorRef::new(vec![0], vec![4]),
            params: vec![],
        }
    }

    /// Fan-out/fan-in "inception-like" block: src → k branches → sink,
    /// repeated twice.
    fn inceptionish(branches: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let mut prev = b.add_node(ew("in", 0));
        for blk in 0..2 {
            let mids: Vec<NodeId> = (0..branches)
                .map(|i| {
                    let m = b.add_node(ew(&format!("m{blk}_{i}"), 1));
                    b.connect(prev, m);
                    m
                })
                .collect();
            let sink = b.add_node(ew(&format!("sink{blk}"), branches));
            for m in mids {
                b.connect(m, sink);
            }
            prev = sink;
        }
        b.build().unwrap()
    }

    #[test]
    fn generate_seq_is_a_permutation() {
        let g = inceptionish(4);
        let order = generate_seq(&g);
        assert_eq!(order.len(), g.len());
        let mut seen = vec![false; g.len()];
        for v in &order {
            assert!(!seen[v.index()], "duplicate {v}");
            seen[v.index()] = true;
        }
    }

    #[test]
    fn generate_seq_keeps_dependent_sets_smaller_than_bfs_on_dense_blocks() {
        // The §III-C claim: high-degree fan-in/out nodes blow up dependent
        // sets under BFS but stay small under GenerateSeq.
        let g = inceptionish(6);
        let gs = dependent_set_sizes(&g, &generate_seq(&g));
        let bf = dependent_set_sizes(&g, &bfs_order(&g));
        let m_gs = gs.iter().copied().max().unwrap();
        let m_bf = bf.iter().copied().max().unwrap();
        assert!(
            m_gs < m_bf,
            "GenerateSeq max |D| = {m_gs} should beat BFS max |D| = {m_bf}"
        );
        assert!(
            m_gs <= 2,
            "fan-out blocks should stay at |D| ≤ 2, got {m_gs}"
        );
    }

    #[test]
    fn generate_seq_on_path_graph_matches_bfs_quality() {
        // AlexNet-like path graphs: both orderings keep |D(i)| ≤ 1
        // (Table I: BF and GenerateSeq take the same time on AlexNet).
        let mut b = GraphBuilder::new();
        let ids: Vec<NodeId> = (0..8)
            .map(|i| b.add_node(ew(&format!("n{i}"), usize::from(i > 0))))
            .collect();
        for w in ids.windows(2) {
            b.connect(w[0], w[1]);
        }
        let g = b.build().unwrap();
        let gs = dependent_set_sizes(&g, &generate_seq(&g));
        assert!(gs.iter().all(|&d| d <= 1));
        let bf = dependent_set_sizes(&g, &bfs_order(&g));
        assert!(bf.iter().all(|&d| d <= 1));
    }

    #[test]
    fn random_ordering_is_deterministic_per_seed() {
        let g = inceptionish(3);
        let a = make_ordering(&g, OrderingKind::Random { seed: 42 });
        let b = make_ordering(&g, OrderingKind::Random { seed: 42 });
        let c = make_ordering(&g, OrderingKind::Random { seed: 43 });
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, g.node_ids().collect::<Vec<_>>());
    }

    #[test]
    fn search_profile_matches_manual_computation() {
        let g = inceptionish(3);
        let order = generate_seq(&g);
        let k: Vec<usize> = (0..g.len()).map(|i| 2 + i % 3).collect();
        let profile = search_profile(&g, &order, &k);
        assert_eq!(profile.len(), g.len());
        let sizes = dependent_set_sizes(&g, &order);
        for (i, p) in profile.iter().enumerate() {
            assert_eq!(p.dependent_set, sizes[i]);
            assert!(p.states >= p.table_entries);
            assert_eq!(p.vertex, order[i]);
        }
        // total states is what the search would evaluate
        let total: u64 = profile.iter().map(|p| p.states).sum();
        assert!(total > 0);
    }

    #[test]
    fn search_profile_saturates_instead_of_overflowing() {
        let g = inceptionish(6);
        let order = pase_graph::bfs_order(&g);
        let k = vec![usize::MAX / 2; g.len()];
        let profile = search_profile(&g, &order, &k);
        assert!(profile.iter().any(|p| p.table_entries == u64::MAX));
    }

    #[test]
    fn singleton_graph_orderings() {
        let mut b = GraphBuilder::new();
        b.add_node(ew("only", 0));
        let g = b.build().unwrap();
        assert_eq!(generate_seq(&g), vec![NodeId(0)]);
        assert_eq!(
            make_ordering(&g, OrderingKind::BreadthFirst),
            vec![NodeId(0)]
        );
    }
}
