//! Thread-local buffer pools for the DP hot path.
//!
//! Every search allocates one `(Vec<f64>, Vec<u16>)` pair per DP table plus
//! per-thread odometer scratch. A standalone search pays that once, but the
//! planner service runs many small searches per second on a fixed worker
//! pool — the same sizes over and over — so the allocations are pure churn.
//! These pools recycle the buffers per thread: a serve worker's second
//! request on a model reuses its first request's tables.
//!
//! Reuse is bounded and safe:
//! * table buffers are handed out zero-filled via `clear()` + `resize(…, 0)`
//!   — content-identical to a fresh `vec![0; n]`, no `unsafe`;
//! * only buffers of at most [`MAX_POOLED_ENTRIES`] entries are retained,
//!   and at most [`MAX_POOLED_TABLES`] of them, so a worker thread never
//!   pins more than ~26 MiB (the Transformer-p64-class giants are freed
//!   normally);
//! * pools are `thread_local!`, so there is no locking and no cross-thread
//!   aliasing.

use crate::frontier::{FTable, FrontierScratch};
use std::cell::RefCell;

/// Per-thread scratch buffers for the table-fill loop, grown on demand to
/// the widest dependent set / child list a chunk needs. The last two
/// fields are the tiled kernel's working set (see `crate::kernel`): one
/// `kv`-wide accumulator row and one `kv`-wide hoisted-prefix row. The
/// scalar kernel leaves them empty. (The packed operand *panels* are not
/// per-chunk scratch — they are packed once per vertex and shared by all
/// of its chunks; see [`take_panel`].)
#[derive(Default)]
pub(crate) struct Scratch {
    pub(crate) digits: Vec<u16>,
    pub(crate) child_base: Vec<u64>,
    /// The fused min-plus accumulator row (`kv` wide).
    pub(crate) acc: Vec<f64>,
    /// The hoisted invariant-prefix row (`kv` wide): layer cost plus every
    /// leading operand that is constant within an innermost-digit run,
    /// summed once per run instead of once per entry.
    pub(crate) pre: Vec<f64>,
}

/// Retain at most this many `(costs, choice)` pairs per thread.
const MAX_POOLED_TABLES: usize = 32;

/// Do not retain kernel panel/accumulator scratch above this element count
/// (2 MiB of `f64`): panels scale with `Σ kw·kv` over packed edges plus the
/// transposed child tables, and a one-off giant vertex must not pin its
/// high-water mark on the thread.
const MAX_POOLED_PANEL: usize = 1 << 18;

/// Do not retain buffers above this capacity (entries): 2^18 entries is
/// 2 MiB of `f64` + 0.5 MiB of `u16`, so the per-thread high-water mark is
/// bounded at `MAX_POOLED_TABLES × 2.5 MiB`.
const MAX_POOLED_ENTRIES: usize = 1 << 18;

thread_local! {
    static SCRATCH: RefCell<Vec<Scratch>> = const { RefCell::new(Vec::new()) };
    static TABLES: RefCell<Vec<(Vec<f64>, Vec<u16>)>> = const { RefCell::new(Vec::new()) };
    static PANELS: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
    static MEM_PANELS: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
    static FRONTIER_SCRATCH: RefCell<Vec<FrontierScratch>> = const { RefCell::new(Vec::new()) };
    static FRONTIER_TABLES: RefCell<Vec<FTable>> = const { RefCell::new(Vec::new()) };
}

/// Take an empty panel buffer for the tiled kernel's per-vertex operand
/// pack (recycled from this thread's pool when available).
pub(crate) fn take_panel() -> Vec<f64> {
    PANELS
        .with(|pool| pool.borrow_mut().pop())
        .map(|mut p| {
            p.clear();
            p
        })
        .unwrap_or_default()
}

/// Return a panel buffer to this thread's pool. Oversized (above
/// [`MAX_POOLED_PANEL`] elements) or surplus buffers are freed instead.
pub(crate) fn recycle_panel(panel: Vec<f64>) {
    if panel.capacity() > MAX_POOLED_PANEL {
        return;
    }
    PANELS.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < MAX_POOLED_TABLES {
            pool.push(panel);
        }
    });
}

/// A pooled [`Scratch`] that returns itself to the thread's pool on drop.
pub(crate) struct PooledScratch(Scratch);

impl std::ops::Deref for PooledScratch {
    type Target = Scratch;
    fn deref(&self) -> &Scratch {
        &self.0
    }
}

impl std::ops::DerefMut for PooledScratch {
    fn deref_mut(&mut self) -> &mut Scratch {
        &mut self.0
    }
}

impl Drop for PooledScratch {
    fn drop(&mut self) {
        let mut s = std::mem::take(&mut self.0);
        if s.acc.capacity() > MAX_POOLED_PANEL {
            s.acc = Vec::new();
        }
        if s.pre.capacity() > MAX_POOLED_PANEL {
            s.pre = Vec::new();
        }
        SCRATCH.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < MAX_POOLED_TABLES {
                pool.push(s);
            }
        });
    }
}

/// Take a scratch buffer from this thread's pool (or a fresh one).
pub(crate) fn take_scratch() -> PooledScratch {
    PooledScratch(
        SCRATCH
            .with(|pool| pool.borrow_mut().pop())
            .unwrap_or_default(),
    )
}

/// Take a zero-filled `(costs, choice)` pair of length `size` — recycled
/// from this thread's pool when a buffer is available, freshly allocated
/// otherwise. Content is identical to `(vec![0.0; size], vec![0; size])`.
pub(crate) fn take_table(size: usize) -> (Vec<f64>, Vec<u16>) {
    let pooled = TABLES.with(|pool| pool.borrow_mut().pop());
    match pooled {
        Some((mut costs, mut choice)) => {
            costs.clear();
            costs.resize(size, 0.0);
            choice.clear();
            choice.resize(size, 0);
            (costs, choice)
        }
        None => (vec![0.0; size], vec![0; size]),
    }
}

/// Return a `(costs, choice)` pair to this thread's pool. Oversized or
/// surplus buffers are dropped (freed) instead of retained.
pub(crate) fn recycle_table(costs: Vec<f64>, choice: Vec<u16>) {
    if costs.capacity() > MAX_POOLED_ENTRIES {
        return;
    }
    TABLES.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < MAX_POOLED_TABLES {
            pool.push((costs, choice));
        }
    });
}

/// Take an empty `u64` panel for the frontier microkernel's packed
/// memory rows (the memory-side companion of [`take_panel`]).
pub(crate) fn take_mem_panel() -> Vec<u64> {
    MEM_PANELS
        .with(|pool| pool.borrow_mut().pop())
        .map(|mut p| {
            p.clear();
            p
        })
        .unwrap_or_default()
}

/// Return a memory panel to this thread's pool, under the same
/// [`MAX_POOLED_PANEL`] element cap as the `f64` panels.
pub(crate) fn recycle_mem_panel(panel: Vec<u64>) {
    if panel.capacity() > MAX_POOLED_PANEL {
        return;
    }
    MEM_PANELS.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < MAX_POOLED_TABLES {
            pool.push(panel);
        }
    });
}

/// A pooled [`FrontierScratch`] that returns itself to the thread's pool
/// on drop, shedding any buffer grown past [`MAX_POOLED_PANEL`] elements
/// first (the frontier fill's arenas scale with `kv × width`, but a
/// width-0 exact search can grow them arbitrarily).
pub(crate) struct PooledFrontierScratch(FrontierScratch);

impl std::ops::Deref for PooledFrontierScratch {
    type Target = FrontierScratch;
    fn deref(&self) -> &FrontierScratch {
        &self.0
    }
}

impl std::ops::DerefMut for PooledFrontierScratch {
    fn deref_mut(&mut self) -> &mut FrontierScratch {
        &mut self.0
    }
}

impl Drop for PooledFrontierScratch {
    fn drop(&mut self) {
        let mut s = std::mem::take(&mut self.0);
        s.shed_oversized(MAX_POOLED_PANEL);
        FRONTIER_SCRATCH.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < MAX_POOLED_TABLES {
                pool.push(s);
            }
        });
    }
}

/// Take a frontier-fill scratch from this thread's pool (or a fresh one).
pub(crate) fn take_frontier_scratch() -> PooledFrontierScratch {
    PooledFrontierScratch(
        FRONTIER_SCRATCH
            .with(|pool| pool.borrow_mut().pop())
            .unwrap_or_default(),
    )
}

/// Take an empty frontier table primed for `n` entries — recycled
/// capacity when available, with the offsets sentinel already pushed.
pub(crate) fn take_ftable(n: usize) -> FTable {
    let mut t = FRONTIER_TABLES
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default();
    t.reset(n);
    t
}

/// Return a frontier table's buffers to this thread's pool. Oversized
/// (above [`MAX_POOLED_ENTRIES`] points) or surplus tables are freed.
pub(crate) fn recycle_ftable(t: FTable) {
    if t.pts.capacity() > MAX_POOLED_ENTRIES
        || t.kids.capacity() > MAX_POOLED_ENTRIES
        || t.offsets.capacity() > MAX_POOLED_ENTRIES
    {
        return;
    }
    FRONTIER_TABLES.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < MAX_POOLED_TABLES {
            pool.push(t);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_tables_come_back_zeroed() {
        let (mut costs, mut choice) = take_table(8);
        costs.fill(7.5);
        choice.fill(3);
        recycle_table(costs, choice);
        let (costs, choice) = take_table(16);
        assert_eq!(costs.len(), 16);
        assert_eq!(choice.len(), 16);
        assert!(costs.iter().all(|&c| c == 0.0));
        assert!(choice.iter().all(|&c| c == 0));
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        recycle_table(
            vec![0.0; MAX_POOLED_ENTRIES + 1],
            vec![0; MAX_POOLED_ENTRIES + 1],
        );
        TABLES.with(|pool| {
            assert!(pool
                .borrow()
                .iter()
                .all(|(c, _)| c.capacity() <= MAX_POOLED_ENTRIES));
        });
    }

    #[test]
    fn pool_size_is_bounded() {
        for _ in 0..3 * MAX_POOLED_TABLES {
            recycle_table(vec![0.0; 4], vec![0; 4]);
        }
        TABLES.with(|pool| assert!(pool.borrow().len() <= MAX_POOLED_TABLES));
        for _ in 0..3 * MAX_POOLED_TABLES {
            let _ = take_scratch();
        }
        SCRATCH.with(|pool| assert!(pool.borrow().len() <= MAX_POOLED_TABLES));
    }

    #[test]
    fn oversized_panels_are_dropped_on_recycle() {
        {
            let mut s = take_scratch();
            s.acc.resize(MAX_POOLED_PANEL + 1, 0.0);
        } // dropped → pooled, but with the giant accumulator released
        SCRATCH.with(|pool| {
            assert!(pool
                .borrow()
                .iter()
                .all(|s| s.acc.capacity() <= MAX_POOLED_PANEL));
        });
        recycle_panel(vec![0.0; MAX_POOLED_PANEL + 1]);
        PANELS.with(|pool| {
            assert!(pool
                .borrow()
                .iter()
                .all(|p| p.capacity() <= MAX_POOLED_PANEL));
        });
    }

    #[test]
    fn panels_round_trip_and_come_back_empty() {
        let mut p = take_panel();
        p.extend_from_slice(&[1.0, 2.0, 3.0]);
        recycle_panel(p);
        let p = take_panel();
        assert!(p.is_empty(), "recycled panels must be cleared");
        for _ in 0..3 * MAX_POOLED_TABLES {
            recycle_panel(vec![0.0; 4]);
        }
        PANELS.with(|pool| assert!(pool.borrow().len() <= MAX_POOLED_TABLES));
    }

    #[test]
    fn frontier_buffers_round_trip_through_the_pool() {
        let mut t = take_ftable(4);
        assert_eq!(t.offsets, vec![0u32]);
        t.pts.reserve(8);
        recycle_ftable(t);
        let t2 = take_ftable(2);
        assert_eq!(t2.offsets, vec![0u32]);
        assert!(t2.pts.is_empty() && t2.kids.is_empty());
        recycle_ftable(t2);
        for _ in 0..3 * MAX_POOLED_TABLES {
            let _ = take_frontier_scratch();
        }
        FRONTIER_SCRATCH.with(|pool| assert!(pool.borrow().len() <= MAX_POOLED_TABLES));
        recycle_mem_panel(vec![0; MAX_POOLED_PANEL + 1]);
        MEM_PANELS.with(|pool| {
            assert!(pool
                .borrow()
                .iter()
                .all(|p| p.capacity() <= MAX_POOLED_PANEL));
        });
        let mut p = take_mem_panel();
        p.push(7);
        recycle_mem_panel(p);
        assert!(
            take_mem_panel().is_empty(),
            "recycled mem panels are cleared"
        );
    }

    #[test]
    fn scratch_round_trips_through_the_pool() {
        {
            let mut s = take_scratch();
            s.digits.resize(5, 1);
            s.child_base.resize(5, 2);
        } // dropped → pooled
        let s = take_scratch();
        // Capacity may be reused; the DP clears before use, so content is
        // irrelevant — only that we got a scratch at all.
        let _ = (s.digits.capacity(), s.child_base.capacity());
    }
}
