//! Exhaustive strategy enumeration (the §III-A "naïve approach" in its
//! purest form).
//!
//! Enumerates the full cartesian product `∏_v C(v)` and evaluates `F(G, φ)`
//! directly for each strategy. Exponential in `|V|` — usable only on small
//! graphs — but it is the ground truth for Theorem 1: the DP must return
//! exactly this minimum.

use pase_cost::{CostTables, PruneOptions, PrunedTables};
use pase_graph::Graph;

/// Find `min_φ F(G, φ)` and one argmin by exhaustive enumeration. Panics if
/// the strategy space exceeds `2^32` combinations (use the DP for anything
/// bigger).
pub fn brute_force(graph: &Graph, tables: &CostTables) -> (f64, Vec<u16>) {
    let n = graph.len();
    if n == 0 {
        return (0.0, vec![]);
    }
    let ks: Vec<u64> = graph.node_ids().map(|v| tables.k(v) as u64).collect();
    let total: u64 = ks
        .iter()
        .try_fold(1u64, |acc, &k| {
            let t = acc.checked_mul(k)?;
            (t <= 1 << 32).then_some(t)
        })
        .expect("strategy space too large for brute force");

    let mut best = f64::INFINITY;
    let mut best_ids = vec![0u16; n];
    let mut ids = vec![0u16; n];
    for flat in 0..total {
        let mut rem = flat;
        for v in (0..n).rev() {
            ids[v] = (rem % ks[v]) as u16;
            rem /= ks[v];
        }
        let cost = tables.evaluate_ids(graph, &ids);
        if cost < best {
            best = cost;
            best_ids.copy_from_slice(&ids);
        }
    }
    (best, best_ids)
}

/// [`brute_force`] over a dominance-pruned configuration space, so DP
/// cross-checks stay valid on pruned runs. Exact for `prune.epsilon == 0`
/// (every pruned configuration has a kept dominator); the returned ids are
/// mapped back into the original `tables`' id space.
pub fn brute_force_pruned(
    graph: &Graph,
    tables: &CostTables,
    prune: &PruneOptions,
) -> (f64, Vec<u16>) {
    let pruned = PrunedTables::build(graph, tables, prune);
    let (cost, ids) = brute_force(graph, pruned.tables());
    (cost, pruned.to_original_ids(&ids))
}

/// Sample `count` random strategies (seeded) and return their costs; used
/// by property tests to bound the DP's result from above.
pub fn random_strategy_costs(
    graph: &Graph,
    tables: &CostTables,
    seed: u64,
    count: usize,
) -> Vec<f64> {
    let n = graph.len();
    let ks: Vec<u64> = graph.node_ids().map(|v| tables.k(v) as u64).collect();
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            let ids: Vec<u16> = (0..n).map(|v| (next() % ks[v].max(1)) as u16).collect();
            tables.evaluate_ids(graph, &ids)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_cost::{ConfigRule, MachineSpec};
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, NodeId, OpKind, TensorRef};

    fn fc(name: &str, ins: usize) -> Node {
        let dims = vec![
            IterDim::new("b", 64, DimRole::Batch),
            IterDim::new("n", 128, DimRole::Param),
            IterDim::new("c", 128, DimRole::Reduction),
        ];
        Node {
            name: name.into(),
            op: OpKind::FullyConnected,
            iter_space: dims,
            inputs: (0..ins)
                .map(|_| TensorRef::new(vec![0, 2], vec![64, 128]))
                .collect(),
            output: TensorRef::new(vec![0, 1], vec![64, 128]),
            params: vec![TensorRef::new(vec![1, 2], vec![128, 128])],
        }
    }

    #[test]
    fn brute_force_beats_every_random_strategy() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(fc("x", 0));
        let y = b.add_node(fc("y", 1));
        b.connect(x, y);
        let g = b.build().unwrap();
        let t = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let (best, ids) = brute_force(&g, &t);
        assert!((t.evaluate_ids(&g, &ids) - best).abs() < 1e-9);
        for cost in random_strategy_costs(&g, &t, 123, 50) {
            assert!(best <= cost + 1e-9);
        }
    }

    #[test]
    fn brute_force_on_single_node_picks_cheapest_config() {
        let mut b = GraphBuilder::new();
        b.add_node(fc("solo", 0));
        let g = b.build().unwrap();
        let t = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let (best, ids) = brute_force(&g, &t);
        let min_direct = (0..t.k(NodeId(0)) as u16)
            .map(|c| t.evaluate_ids(&g, &[c]))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(best, min_direct);
        assert_eq!(ids.len(), 1);
    }
}
