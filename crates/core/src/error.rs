//! The unified error type of the search stack.
//!
//! Before this module each layer grew its own ad-hoc error carrier —
//! `String` messages from the transfer-cost checks, panics from budget
//! exhaustion, and stringly-typed I/O plumbing in the drivers. [`Error`]
//! consolidates them: budget exhaustion ([`Error::Oom`] /
//! [`Error::Timeout`]), structural cost-model failures
//! ([`Error::Transfer`], wrapping [`pase_cost::TransferError`]), graph
//! construction failures ([`Error::Graph`]), strategy-cache persistence
//! failures ([`Error::CacheIo`]), planner-service wire-protocol violations
//! ([`Error::Protocol`]), and schema-version mismatches of persisted
//! artifacts ([`Error::SchemaVersion`]). Everything implements
//! `Display` and `std::error::Error` with `source()` chaining.

use crate::budget::SearchStats;
use pase_cost::{NonFiniteCost, TransferError};
use pase_graph::GraphError;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Any failure the search stack can report (see the module docs).
#[derive(Debug)]
pub enum Error {
    /// The projected DP table allocation exceeded the memory budget — the
    /// programmatic form of [`crate::SearchOutcome::Oom`].
    Oom {
        /// Entries that would have been needed when the search aborted.
        needed_entries: u64,
        /// Statistics up to the abort.
        stats: SearchStats,
    },
    /// The wall-clock budget was exhausted — the programmatic form of
    /// [`crate::SearchOutcome::Timeout`].
    Timeout {
        /// Time spent before the abort.
        elapsed: Duration,
        /// Statistics up to the abort.
        stats: SearchStats,
    },
    /// A memory-constrained search completed but no strategy fits the
    /// requested budget — the programmatic form of
    /// [`crate::SearchOutcome::Infeasible`].
    Infeasible {
        /// The smallest peak strategy memory any strategy achieves.
        min_memory_bytes: u64,
        /// Statistics of the completed frontier search.
        stats: SearchStats,
    },
    /// A structurally malformed edge surfaced by the cost model
    /// ([`pase_cost::try_transfer_bytes`]).
    Transfer(TransferError),
    /// The cost tables contain a NaN or infinite entry (a degenerate
    /// [`pase_cost::MachineSpec`] rate); rejected before it can silently
    /// poison the dominance prune or the DP argmin.
    NonFiniteCost(NonFiniteCost),
    /// Graph construction failed.
    Graph(GraphError),
    /// Reading or writing a persisted strategy-cache entry failed.
    CacheIo {
        /// The entry (or directory) involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A malformed planner-service request or response.
    Protocol(String),
    /// A persisted artifact (cache entry, search report) was produced by an
    /// incompatible build and must be rejected rather than misparsed.
    SchemaVersion {
        /// Version found in the artifact.
        found: u64,
        /// Version this build understands.
        expected: u64,
    },
    /// An unknown model, machine, or other named entity was requested.
    UnknownName {
        /// What kind of name failed to resolve (`"model"`, `"machine"`…).
        kind: &'static str,
        /// The unresolvable name.
        name: String,
    },
}

impl Error {
    /// Convert a failed [`crate::SearchOutcome`] into the matching error
    /// (`None` for [`crate::SearchOutcome::Found`]).
    pub fn from_outcome(outcome: &crate::SearchOutcome) -> Option<Self> {
        match outcome {
            crate::SearchOutcome::Found(_) => None,
            crate::SearchOutcome::Oom {
                needed_entries,
                stats,
            } => Some(Error::Oom {
                needed_entries: *needed_entries,
                stats: stats.clone(),
            }),
            crate::SearchOutcome::Timeout { stats } => Some(Error::Timeout {
                elapsed: stats.elapsed,
                stats: stats.clone(),
            }),
            crate::SearchOutcome::Infeasible {
                min_memory_bytes,
                stats,
            } => Some(Error::Infeasible {
                min_memory_bytes: *min_memory_bytes,
                stats: stats.clone(),
            }),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Oom { needed_entries, .. } => write!(
                f,
                "search exceeded its memory budget ({needed_entries} DP table entries needed)"
            ),
            Error::Timeout { elapsed, .. } => {
                write!(f, "search exceeded its time budget after {elapsed:?}")
            }
            Error::Infeasible {
                min_memory_bytes, ..
            } => write!(
                f,
                "no strategy fits the memory budget (the cheapest needs {min_memory_bytes} B)"
            ),
            Error::Transfer(e) => write!(f, "cost model: {e}"),
            Error::NonFiniteCost(e) => write!(f, "cost model: {e}"),
            Error::Graph(e) => write!(f, "graph: {e}"),
            Error::CacheIo { path, source } => {
                write!(f, "strategy cache I/O on {}: {source}", path.display())
            }
            Error::Protocol(msg) => write!(f, "protocol: {msg}"),
            Error::SchemaVersion { found, expected } => write!(
                f,
                "schema version {found} is not the supported version {expected}; \
                 refusing to parse an artifact from an incompatible build"
            ),
            Error::UnknownName { kind, name } => write!(f, "unknown {kind} '{name}'"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Transfer(e) => Some(e),
            Error::NonFiniteCost(e) => Some(e),
            Error::Graph(e) => Some(e),
            Error::CacheIo { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<TransferError> for Error {
    fn from(e: TransferError) -> Self {
        Error::Transfer(e)
    }
}

impl From<GraphError> for Error {
    fn from(e: GraphError) -> Self {
        Error::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::SearchOutcome;

    #[test]
    fn outcome_conversion_maps_failures_only() {
        let oom = SearchOutcome::Oom {
            needed_entries: 42,
            stats: SearchStats::default(),
        };
        match Error::from_outcome(&oom) {
            Some(Error::Oom { needed_entries, .. }) => assert_eq!(needed_entries, 42),
            other => panic!("expected Oom, got {other:?}"),
        }
        let timeout = SearchOutcome::Timeout {
            stats: SearchStats {
                elapsed: Duration::from_secs(3),
                ..SearchStats::default()
            },
        };
        match Error::from_outcome(&timeout) {
            Some(Error::Timeout { elapsed, .. }) => assert_eq!(elapsed, Duration::from_secs(3)),
            other => panic!("expected Timeout, got {other:?}"),
        }
        let found = SearchOutcome::Found(crate::SearchResult {
            cost: 1.0,
            config_ids: vec![],
            stats: SearchStats::default(),
        });
        assert!(Error::from_outcome(&found).is_none());
    }

    #[test]
    fn display_and_source_chain() {
        let e = Error::Transfer(pase_cost::TransferError::BadSlot {
            consumer: "fc".into(),
            n_inputs: 1,
            slot: 5,
        });
        assert!(e.to_string().contains("no slot 5"));
        assert!(std::error::Error::source(&e).is_some());

        let io = Error::CacheIo {
            path: PathBuf::from("/tmp/x.json"),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(io.to_string().contains("/tmp/x.json"));
        assert!(std::error::Error::source(&io).is_some());

        let schema = Error::SchemaVersion {
            found: 9,
            expected: 1,
        };
        assert!(schema.to_string().contains("schema version 9"));
        assert!(std::error::Error::source(&schema).is_none());

        assert_eq!(
            Error::UnknownName {
                kind: "model",
                name: "gpt5".into()
            }
            .to_string(),
            "unknown model 'gpt5'"
        );
    }
}
