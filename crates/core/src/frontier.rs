//! Pareto-frontier dynamic program over (step-time, peak-memory).
//!
//! The scalar DP in [`crate::dp`] carries one number per state — the
//! minimum step time `R_V(i, φ)`. This module generalizes the value to a
//! **dominance-pruned frontier** of `(time, memory)` pairs per state, where
//! memory is the additive per-node model of
//! [`pase_cost::config_memory_bytes`]. One frontier fill then answers every
//! memory-budget variant of the same `(graph, machine)` query: the
//! unconstrained optimum is the frontier's min-time point, and a
//! `max_memory_bytes` query is the cheapest point that fits.
//!
//! ## Exactness and the width cap
//!
//! Per-state Pareto sets can grow combinatorially with graph depth (every
//! distinct downstream (time, memory) tradeoff survives dominance), so
//! each state's frontier is deterministically thinned to
//! [`crate::DpOptions::frontier_width`] points after exact pruning. The
//! thinning always keeps both endpoints — the min-time point (so the
//! bit-parity argument below is unaffected) and the min-memory point (so
//! the feasibility floor reported by `Infeasible` stays exact) — and
//! evenly index-samples the interior. With `frontier_width = 0` the fill
//! is fully exact; the properties below hold at any width.
//!
//! * **Component-wise combine.** Both coordinates are sums over nodes
//!   (time in f64, memory in exact u64), so the recurrence combines child
//!   values by a Minkowski sum: every combination of one point per child,
//!   added coordinate-wise to the head vertex's base cost.
//! * **Pruning between children is lossless.** If partial sum `a` is
//!   dominated by `a'` (`time' ≤ time` and `mem' ≤ mem`), then for any
//!   completion `z`, `a' + z ≤ a + z` in both coordinates — float addition
//!   is monotone in each argument — so every final point reachable from
//!   `a` is matched-or-beaten from `a'`. The surviving point *set* is the
//!   exact frontier.
//! * **Min-time bit-parity.** The base cost uses the same addition order
//!   as the scalar kernel (layer cost, then later-edge costs in plan
//!   order), children are folded in the same order the scalar loop adds
//!   child table values, and the root frontiers are combined in the same
//!   root order the scalar path sums. Each child frontier's min-time point
//!   equals the child's scalar table value bit-for-bit (induction), and
//!   `min(a + b) = min(a) + min(b)` under monotone addition, so the global
//!   frontier's min-time point is **bit-identical** to the scalar optimum.
//!
//! Entries are computed independently (per-entry div/mod digit decode), so
//! the sequential and wavefront schedules are trivially bit-identical. The
//! tiled microkernel has no frontier counterpart; a frontier search always
//! uses this scalar-style fill regardless of [`crate::DpKernel`]
//! (`stats.dp_kernel` reports `"frontier"`).

use crate::budget::{SearchOutcome, SearchStats, DP_ENTRY_BYTES};
use crate::dp::{build_plans, child_coefs, ChildCoef, DpOptions, Plan, PlanPass};
use crate::ordering::make_ordering;
use crate::structure::VertexStructure;
use pase_cost::{CostTables, PruneOptions, PrunedTables};
use pase_graph::Graph;
use pase_obs::{phase, span_in, OptSpan, Trace};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::time::Instant;

/// Entries per deadline check in the frontier fill.
const CHUNK: usize = 1024;

/// Approximate bytes one frontier point occupies (time + memory + choice),
/// excluding the per-child backtrack indices accounted separately.
const POINT_BYTES: u64 = 18;

/// One Pareto point of a [`StrategyFrontier`].
#[derive(Clone, Debug, PartialEq)]
pub struct FrontierPoint {
    /// Step time `F(G, φ)` of the strategy, in FLOP units — same scale as
    /// [`crate::SearchResult::cost`].
    pub cost: f64,
    /// Peak per-device memory of the strategy under the additive model
    /// (see [`pase_cost::config_memory_bytes`]).
    pub memory_bytes: u64,
    /// The strategy, as per-node configuration ids into the
    /// [`pase_cost::CostTables`] the search ran on.
    pub config_ids: Vec<u16>,
}

/// The Pareto frontier of `(step time, peak memory)` over the whole
/// strategy space: points sorted by ascending cost with strictly
/// decreasing memory (no point dominates another).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StrategyFrontier {
    points: Vec<FrontierPoint>,
}

impl StrategyFrontier {
    pub(crate) fn new(points: Vec<FrontierPoint>) -> Self {
        debug_assert!(points
            .windows(2)
            .all(|w| w[0].cost <= w[1].cost && w[0].memory_bytes > w[1].memory_bytes));
        Self { points }
    }

    /// All points, cost ascending / memory strictly descending.
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// Number of Pareto points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the frontier is empty (only for a search that never ran).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The unconstrained optimum: the minimum-cost point. Bit-identical in
    /// cost to the scalar search's optimum.
    pub fn min_time(&self) -> &FrontierPoint {
        &self.points[0]
    }

    /// The smallest peak memory any strategy achieves (the last point's).
    pub fn min_memory_bytes(&self) -> u64 {
        self.points.last().map_or(0, |p| p.memory_bytes)
    }

    /// The cheapest point whose memory fits `max_bytes`, or `None` when
    /// even the min-memory point exceeds the budget.
    pub fn cheapest_within(&self, max_bytes: u64) -> Option<&FrontierPoint> {
        self.points.iter().find(|p| p.memory_bytes <= max_bytes)
    }
}

/// Result of a frontier fill: the frontier plus stats, or a budget abort.
pub(crate) enum FrontierFill {
    Done(StrategyFrontier, SearchStats),
    Abort(SearchOutcome),
}

/// One `(time, memory, choice)` triple of a per-state frontier.
#[derive(Clone, Copy)]
struct Pt {
    time: f64,
    mem: u64,
    choice: u16,
}

/// The frontier of one table entry: points plus, per point, the index of
/// the chosen point on each child's frontier (`kids` stride = number of
/// children of the position).
#[derive(Default)]
struct EntryFrontier {
    pts: Vec<Pt>,
    kids: Vec<u32>,
}

/// Frontier analogue of the scalar DP table, stored flat: entry `i`'s
/// points are `pts[offsets[i]..offsets[i+1]]` and its packed child-choice
/// rows sit at the same positions (× children) in `kids`. Child lookups
/// are the hottest reads of the fill; one contiguous buffer per table
/// keeps them prefetchable instead of chasing a `Vec` header per entry.
#[derive(Default)]
struct FTable {
    offsets: Vec<u32>,
    pts: Vec<Pt>,
    kids: Vec<u32>,
}

impl FTable {
    fn with_entries(n: usize) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        FTable {
            offsets,
            pts: Vec::new(),
            kids: Vec::new(),
        }
    }

    /// Entry `i`'s frontier points.
    fn entry_pts(&self, i: usize) -> &[Pt] {
        &self.pts[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Entry `i`'s packed child rows (`stride` = children of the position).
    fn entry_kids(&self, i: usize, stride: usize) -> &[u32] {
        &self.kids[self.offsets[i] as usize * stride..self.offsets[i + 1] as usize * stride]
    }

    fn push_entry(&mut self, e: &EntryFrontier) {
        self.pts.extend_from_slice(&e.pts);
        self.kids.extend_from_slice(&e.kids);
        self.offsets.push(self.pts.len() as u32);
    }
}

/// A partial Minkowski sum during the per-entry child fold.
struct Partial {
    time: f64,
    mem: u64,
    kids: Vec<u32>,
}

/// Reusable buffers for [`fill_entry`]. The hot fold works on flat
/// parallel arrays — coordinates separate from the packed child-choice
/// rows — so the combine/merge/prune inner loop moves small tuples
/// instead of allocating a `Vec<u32>` per candidate point.
#[derive(Default)]
struct Scratch {
    digits: Vec<u16>,
    /// Current partial set for one configuration: `(time, mem)` pairs …
    acc: Vec<(f64, u64)>,
    /// … and, row-parallel, their child choices so far (stride = number
    /// of children folded in).
    acc_kids: Vec<u32>,
    /// Merge buffer, `(time, mem, run index, point index)` …
    cand: Vec<(f64, u64, u32, u32)>,
    /// … and its double buffer for the incremental merge.
    cand2: Vec<(f64, u64, u32, u32)>,
    /// Double buffer for rebuilding `acc_kids` after a fold stage.
    new_kids: Vec<u32>,
    /// Per-entry result across configurations (kids stride = children).
    result: Vec<Pt>,
    result_kids: Vec<u32>,
    /// Per-configuration `[start, end)` ranges into `result`.
    run_ranges: Vec<(u32, u32)>,
    /// The runs fed to each merge.
    runs: Vec<MergeRun>,
    /// The finished entry, reused across calls.
    out: EntryFrontier,
}

/// One cursor of [`merge_pruned_runs`]: a contiguous, already-pruned run
/// of a shared `&[Pt]` buffer (time ascending, memory strictly
/// descending), shifted by a per-run base `(bt, bm)`.
struct MergeRun {
    bt: f64,
    bm: u64,
    head: u32,
    end: u32,
}

/// Merge already-pruned runs into the dominance-pruned frontier of their
/// union, leaving `(time, mem, run, point index)` survivors in `m` in
/// exactly the order — including tie-breaking — that a stable
/// `(time, mem)` sort over all materialized candidates (in run-major
/// insertion order) followed by a best-memory sweep would produce: the
/// Pareto set is unique up to exact `(time, mem)` duplicates, which both
/// formulations resolve to the lowest run index.
///
/// The fold is incremental — each run merges into the running frontier
/// `m` — so two properties keep it near-linear in the *surviving* points:
///
/// * **Wholesale rejection.** If some merged point sits at-or-left of the
///   run's first point in time and at-or-below its last point in memory,
///   it dominates every point of the run (time only grows along the run,
///   memory only shrinks to the last), and the run is skipped after one
///   binary search.
/// * **Span skipping.** Memory strictly decreases within both inputs of
///   the two-pointer merge, so once a side's next point fails
///   `mem < best` the whole dominated span is skipped with one binary
///   search — those candidates sort later, where the sweep's `best` can
///   only be smaller, so the sweep would drop them too.
fn merge_pruned_runs(
    runs: &[MergeRun],
    pts: &[Pt],
    width: usize,
    m: &mut Vec<(f64, u64, u32, u32)>,
    m2: &mut Vec<(f64, u64, u32, u32)>,
) {
    m.clear();
    for (r, run) in runs.iter().enumerate() {
        if run.head >= run.end {
            continue;
        }
        let r = r as u32;
        let emit = |h: u32| {
            let p = &pts[h as usize];
            (run.bt + p.time, run.bm + p.mem, r, h)
        };
        if m.is_empty() {
            m.extend((run.head..run.end).map(emit));
            thin_frontier(m, width);
            continue;
        }
        // Contribution scan, read-only: a run point survives the sweep
        // iff the merged prefix at-or-left of it in time (whose last
        // element holds the prefix's minimum memory) does not already
        // match-or-beat its memory. Within the run, earlier points never
        // dominate later ones (memory strictly decreases), so domination
        // can only come from `m` — the scan is exact, and a
        // no-contribution run leaves `m` untouched at zero copy cost.
        let mut contributes = false;
        let mut i = 0usize;
        for h in run.head..run.end {
            let (t, mm, _, _) = emit(h);
            while i < m.len() && m[i].0.total_cmp(&t).is_le() {
                i += 1;
            }
            if i == 0 || m[i - 1].1 > mm {
                contributes = true;
                break;
            }
        }
        if !contributes {
            continue;
        }
        // Two-pointer merge of `m` and the run, existing points winning
        // exact ties.
        m2.clear();
        let mut i = 0usize;
        let mut h = run.head;
        let mut best = u64::MAX;
        loop {
            let from_m = if i < m.len() && h < run.end {
                let e = &m[i];
                let (t, mm, _, _) = emit(h);
                e.0.total_cmp(&t).then(e.1.cmp(&mm)).is_le()
            } else if i < m.len() {
                true
            } else if h < run.end {
                false
            } else {
                break;
            };
            if from_m {
                let e = m[i];
                i += 1;
                if e.1 < best {
                    best = e.1;
                    m2.push(e);
                } else {
                    i += m[i..].partition_point(|e| e.1 >= best);
                }
            } else {
                let e = emit(h);
                h += 1;
                if e.1 < best {
                    best = e.1;
                    m2.push(e);
                } else {
                    let tail = &pts[h as usize..run.end as usize];
                    h += tail.partition_point(|p| run.bm + p.mem >= best) as u32;
                }
            }
        }
        std::mem::swap(m, m2);
        // Keep the running frontier within the width cap between runs so
        // later merges copy a bounded set. Thinning keeps index 0 and the
        // last index, and later runs can only improve them, so the global
        // min-time point (bit-parity) and the memory floor stay exact.
        thin_frontier(m, width);
    }
}

/// Dominance-prune `v` in place: sort by (time, memory) ascending — the
/// sort is stable, so insertion order (configuration id, then child point
/// combination) breaks exact ties deterministically — then keep each point
/// only if its memory strictly improves on everything cheaper.
fn prune_pareto<T>(v: &mut Vec<T>, key: impl Fn(&T) -> (f64, u64)) {
    v.sort_by(|a, b| {
        let (ta, ma) = key(a);
        let (tb, mb) = key(b);
        ta.total_cmp(&tb).then(ma.cmp(&mb))
    });
    let mut best = u64::MAX;
    v.retain(|x| {
        let (_, m) = key(x);
        if m < best {
            best = m;
            true
        } else {
            false
        }
    });
}

/// Deterministically thin a dominance-pruned frontier to at most `width`
/// points: keep both endpoints — index 0 is the min-time point (required
/// for scalar bit-parity) and the last index is the min-memory point
/// (required for an exact feasibility floor) — plus evenly index-sampled
/// interior points. Any subset of a dominance-free sorted set is itself a
/// valid frontier. `width == 0` disables thinning; `width == 1` would
/// lose the memory floor, so it is clamped to 2.
fn thin_frontier<T>(v: &mut Vec<T>, width: usize) {
    if width == 0 || v.len() <= width {
        return;
    }
    let width = width.max(2);
    let last = v.len() - 1;
    // i*last/(width-1) is strictly increasing (len > width ⇒ step ≥ 1),
    // hits 0 and `last`, and is pure integer math — deterministic across
    // schedulers.
    let mut kept = 0usize;
    let mut idx = 0usize;
    v.retain(|_| {
        let keep = kept < width && idx == kept * last / (width - 1);
        kept += usize::from(keep);
        idx += 1;
        keep
    });
}

/// Compute the frontier of one table entry into `s.out`. Mirrors the
/// scalar kernel's addition order exactly: layer cost, later-edge costs in
/// plan order, then child values in child order.
fn fill_entry(
    tables: &CostTables,
    plan: &Plan,
    children: &[ChildCoef],
    dp: &[Option<FTable>],
    flat: u64,
    width: usize,
    s: &mut Scratch,
) {
    s.digits.clear();
    for t in 0..plan.dep.len() {
        s.digits
            .push(((flat / plan.strides[t]) % u64::from(plan.radix[t])) as u16);
    }
    let vi = plan.vi;
    let mem_row = tables.memory_row(vi);
    let n_children = children.len();

    s.result.clear();
    s.result_kids.clear();
    s.run_ranges.clear();
    for c in 0..plan.kv {
        let mut time = tables.layer_cost(vi, c);
        for &(e, slot, vi_is_src) in &plan.later_edges {
            let w_cfg = s.digits[slot];
            time += if vi_is_src {
                tables.edge_cost(e, c, w_cfg)
            } else {
                tables.edge_cost(e, w_cfg, c)
            };
        }
        s.acc.clear();
        s.acc_kids.clear();
        s.acc.push((time, mem_row[c as usize]));
        for (depth, ch) in children.iter().enumerate() {
            let base: u64 = ch
                .parent_coef
                .iter()
                .zip(s.digits.iter())
                .map(|(&coef, &d)| coef * u64::from(d))
                .sum();
            let idx = (base + ch.vi_coef * u64::from(c)) as usize;
            let cf_pts = dp[ch.anchor]
                .as_ref()
                .expect("child frontier")
                .entry_pts(idx);
            // Combine: one run per partial, all over the child's frontier.
            // Run order is acc-major, so the merge's tie-break reproduces
            // the insertion order a materialize-and-stable-sort had.
            s.runs.clear();
            for &(at, am) in s.acc.iter() {
                s.runs.push(MergeRun {
                    bt: at,
                    bm: am,
                    head: 0,
                    end: cf_pts.len() as u32,
                });
            }
            merge_pruned_runs(&s.runs, cf_pts, width, &mut s.cand, &mut s.cand2);
            thin_frontier(&mut s.cand, width);
            // Rebuild the partial set (rows grow by one choice per stage).
            s.new_kids.clear();
            for &(_, _, ai, pi) in &s.cand {
                s.new_kids
                    .extend_from_slice(&s.acc_kids[ai as usize * depth..][..depth]);
                s.new_kids.push(pi);
            }
            std::mem::swap(&mut s.acc_kids, &mut s.new_kids);
            s.acc.clear();
            s.acc.extend(s.cand.iter().map(|&(t, m, _, _)| (t, m)));
        }
        let start = s.result.len() as u32;
        for (i, &(t, m)) in s.acc.iter().enumerate() {
            s.result.push(Pt {
                time: t,
                mem: m,
                choice: c,
            });
            s.result_kids
                .extend_from_slice(&s.acc_kids[i * n_children..][..n_children]);
        }
        s.run_ranges.push((start, s.result.len() as u32));
    }

    // Final prune across configurations: each configuration's partial set
    // is already a frontier, so this is another pruned merge — run order
    // is configuration-major, matching the old index-sort's stable
    // tie-break — collecting surviving indices so the packed kids rows
    // move once.
    s.runs.clear();
    for &(start, end) in &s.run_ranges {
        s.runs.push(MergeRun {
            bt: 0.0,
            bm: 0,
            head: start,
            end,
        });
    }
    merge_pruned_runs(&s.runs, &s.result, width, &mut s.cand, &mut s.cand2);
    thin_frontier(&mut s.cand, width);

    s.out.pts.clear();
    s.out.kids.clear();
    for &(_, _, _, i) in &s.cand {
        s.out.pts.push(s.result[i as usize]);
        s.out
            .kids
            .extend_from_slice(&s.result_kids[i as usize * n_children..][..n_children]);
    }
}

/// Approximate heap bytes of one table's frontiers, for budget accounting.
fn table_bytes(t: &FTable, n_children: usize) -> u64 {
    t.pts.len() as u64 * (POINT_BYTES + 4 * n_children as u64)
}

/// The frontier engine behind [`crate::Search::frontier`] /
/// [`crate::Search::max_memory_bytes`]: same ordering, structure, planning,
/// budget accounting, and scheduling shell as the scalar
/// `run_with_structure`, with a frontier of `(time, memory)` points per
/// table entry and a backtrack that extracts the full strategy of *every*
/// global Pareto point.
pub(crate) fn run_frontier_with_structure(
    graph: &Graph,
    tables: &CostTables,
    opts: &DpOptions,
    trace: Option<&Trace>,
    prebuilt: Option<VertexStructure>,
) -> FrontierFill {
    let start = Instant::now();
    let n = graph.len();
    if n == 0 {
        let frontier = StrategyFrontier::new(vec![FrontierPoint {
            cost: 0.0,
            memory_bytes: 0,
            config_ids: vec![],
        }]);
        let stats = SearchStats {
            dp_kernel: "frontier",
            frontier_len: 1,
            ..SearchStats::default()
        };
        return FrontierFill::Done(frontier, stats);
    }
    let structure = match prebuilt {
        Some(s) => s,
        None => {
            let mut span = span_in(trace, phase::STRUCTURE);
            let order = make_ordering(graph, opts.ordering);
            let s = VertexStructure::build(graph, &order, opts.mode);
            span.arg("nodes", n);
            span.arg("wavefronts", s.wavefronts().len());
            s
        }
    };
    let deadline = start + opts.budget.max_time;

    let mut stats = SearchStats {
        max_dependent_set: structure.max_dependent_set(),
        max_configs: tables.max_k(),
        k_before: tables.max_k(),
        wavefronts: structure.wavefronts().len(),
        max_wavefront_width: structure.max_wavefront_width(),
        intern_hit_rate: tables.intern_stats().hit_rate_opt(),
        dp_kernel: "frontier",
        ..SearchStats::default()
    };

    let plans = match build_plans(
        graph,
        tables,
        &structure,
        &opts.budget,
        start,
        deadline,
        &mut stats,
        trace,
    ) {
        PlanPass::Plans(p) => p,
        PlanPass::Abort(outcome) => return FrontierFill::Abort(outcome),
    };

    let timed_out = AtomicBool::new(false);
    let mut dp: Vec<Option<FTable>> = (0..n).map(|_| None).collect();
    // Real bytes held by frontier points, checked against the budget's
    // byte cap after every table (point counts are content-dependent, so —
    // unlike the scalar entry accounting — this cannot run up front).
    let mut frontier_bytes: u64 = 0;
    let byte_cap = opts.budget.max_table_bytes();

    // Fill one position's table, parallel over entries when asked.
    let fill_table = |i: usize,
                      children: &[ChildCoef],
                      dp: &[Option<FTable>],
                      timed_out: &AtomicBool|
     -> FTable {
        let size = plans[i].size as usize;
        let plan = &plans[i];
        // Fill into the scratch's reusable `out` buffers; the sequential
        // path appends straight into the flat table, the parallel path
        // clones each finished entry out of its worker's scratch and
        // compacts afterwards.
        let entry = |scratch: &mut Scratch, flat: usize| {
            if timed_out.load(AtomicOrdering::Relaxed) {
                scratch.out.pts.clear();
                scratch.out.kids.clear();
                return;
            }
            if flat % CHUNK == 0 && Instant::now() > deadline {
                timed_out.store(true, AtomicOrdering::Relaxed);
                scratch.out.pts.clear();
                scratch.out.kids.clear();
                return;
            }
            fill_entry(
                tables,
                plan,
                children,
                dp,
                flat as u64,
                opts.frontier_width,
                scratch,
            )
        };
        if opts.parallel && size >= CHUNK {
            let entries: Vec<EntryFrontier> = (0..size)
                .into_par_iter()
                .with_min_len(CHUNK.min(size))
                .map_init(Scratch::default, |scratch, flat| {
                    entry(scratch, flat);
                    EntryFrontier {
                        pts: scratch.out.pts.clone(),
                        kids: scratch.out.kids.clone(),
                    }
                })
                .collect();
            let mut table = FTable::with_entries(size);
            for e in &entries {
                table.push_entry(e);
            }
            table
        } else {
            let mut scratch = Scratch::default();
            let mut table = FTable::with_entries(size);
            for flat in 0..size {
                entry(&mut scratch, flat);
                table.push_entry(&scratch.out);
            }
            table
        }
    };

    if opts.parallel {
        for (wi, wave) in structure.wavefronts().iter().enumerate() {
            let mut wave_span = trace.map(|t| t.span(phase::wavefront_name(wi)));
            for &i in wave {
                let children = child_coefs(&plans, &structure, i);
                let t = fill_table(i, &children, &dp, &timed_out);
                frontier_bytes += table_bytes(&t, children.len());
                dp[i] = Some(t);
            }
            wave_span.arg("tables", wave.len());
            drop(wave_span);
            if timed_out.load(AtomicOrdering::Relaxed) {
                stats.elapsed = start.elapsed();
                return FrontierFill::Abort(SearchOutcome::Timeout { stats });
            }
            if frontier_bytes > byte_cap {
                stats.peak_table_bytes = stats.peak_table_bytes.max(frontier_bytes);
                stats.elapsed = start.elapsed();
                return FrontierFill::Abort(SearchOutcome::Oom {
                    needed_entries: frontier_bytes / DP_ENTRY_BYTES,
                    stats,
                });
            }
        }
    } else {
        let mut fill_span = span_in(trace, phase::SEQUENTIAL_FILL);
        fill_span.arg("tables", n);
        for i in 0..n {
            let children = child_coefs(&plans, &structure, i);
            let t = fill_table(i, &children, &dp, &timed_out);
            frontier_bytes += table_bytes(&t, children.len());
            dp[i] = Some(t);
            if timed_out.load(AtomicOrdering::Relaxed) {
                stats.elapsed = start.elapsed();
                return FrontierFill::Abort(SearchOutcome::Timeout { stats });
            }
            if frontier_bytes > byte_cap {
                stats.peak_table_bytes = stats.peak_table_bytes.max(frontier_bytes);
                stats.elapsed = start.elapsed();
                return FrontierFill::Abort(SearchOutcome::Oom {
                    needed_entries: frontier_bytes / DP_ENTRY_BYTES,
                    stats,
                });
            }
        }
        drop(fill_span);
    }
    stats.peak_table_bytes = stats.peak_table_bytes.max(frontier_bytes);

    // Combine the (singleton) root frontiers in root order — the same
    // order, and therefore the same addition tree, as the scalar root sum.
    let mut backtrack_span = span_in(trace, phase::BACKTRACK);
    backtrack_span.arg("roots", structure.roots().len());
    let mut acc = vec![Partial {
        time: 0.0,
        mem: 0,
        kids: Vec::new(),
    }];
    for &r in structure.roots() {
        let rf = dp[r].as_ref().expect("root frontier").entry_pts(0);
        let mut next: Vec<Partial> = Vec::with_capacity(acc.len() * rf.len());
        for a in &acc {
            for (pi, p) in rf.iter().enumerate() {
                let mut kids = a.kids.clone();
                kids.push(pi as u32);
                next.push(Partial {
                    time: a.time + p.time,
                    mem: a.mem + p.mem,
                    kids,
                });
            }
        }
        prune_pareto(&mut next, |p| (p.time, p.mem));
        thin_frontier(&mut next, opts.frontier_width);
        acc = next;
    }

    // Back-substitute every global Pareto point into a full strategy.
    let children_all: Vec<Vec<ChildCoef>> =
        (0..n).map(|i| child_coefs(&plans, &structure, i)).collect();
    let points: Vec<FrontierPoint> = acc
        .into_iter()
        .map(|global| {
            let mut ids = vec![u16::MAX; n];
            let mut stack: Vec<(usize, u64, u32)> = structure
                .roots()
                .iter()
                .zip(&global.kids)
                .map(|(&r, &pi)| (r, 0u64, pi))
                .collect();
            while let Some((i, flat, pi)) = stack.pop() {
                let table = dp[i].as_ref().expect("table");
                let children = &children_all[i];
                let pt = table.entry_pts(flat as usize)[pi as usize];
                ids[plans[i].vi.index()] = pt.choice;
                let kids = &table.entry_kids(flat as usize, children.len())
                    [pi as usize * children.len()..][..children.len()];
                for (ch, &kid) in children.iter().zip(kids) {
                    let base: u64 = ch
                        .parent_coef
                        .iter()
                        .enumerate()
                        .map(|(t, &coef)| {
                            let d = (flat / plans[i].strides[t]) % u64::from(plans[i].radix[t]);
                            coef * d
                        })
                        .sum();
                    let child_flat = base + ch.vi_coef * u64::from(pt.choice);
                    stack.push((ch.anchor, child_flat, kid));
                }
            }
            debug_assert!(ids.iter().all(|&c| c != u16::MAX));
            debug_assert_eq!(tables.strategy_memory_bytes(&ids), global.mem);
            FrontierPoint {
                cost: global.time,
                memory_bytes: global.mem,
                config_ids: ids,
            }
        })
        .collect();
    drop(backtrack_span);

    stats.frontier_len = points.len();
    stats.elapsed = start.elapsed();
    FrontierFill::Done(StrategyFrontier::new(points), stats)
}

/// The prune-then-frontier pipeline: dominance-prunes the tables with the
/// **memory-aware** condition forced on (a time-only dominator with more
/// memory could delete a Pareto point; the memory-aware keep set is a
/// superset of the time-only one, so min-time parity is unaffected), runs
/// the frontier fill on the compacted tables, and maps every point's
/// configuration ids back to the original id space.
pub(crate) fn run_frontier_pruned_with_structure(
    graph: &Graph,
    tables: &CostTables,
    opts: &DpOptions,
    prune: &PruneOptions,
    trace: Option<&Trace>,
    prebuilt: Option<VertexStructure>,
) -> FrontierFill {
    let mut popts = *prune;
    popts.memory_aware = true;
    let pruned = PrunedTables::build_traced(graph, tables, &popts, trace);
    let ps = *pruned.stats();
    if ps.elapsed >= opts.budget.max_time {
        let stats = SearchStats {
            max_configs: pruned.tables().max_k(),
            k_before: ps.k_before,
            prune_time: ps.elapsed,
            elapsed: ps.elapsed,
            dp_kernel: "frontier",
            ..SearchStats::default()
        };
        return FrontierFill::Abort(SearchOutcome::Timeout { stats });
    }
    let mut remaining = *opts;
    remaining.budget.max_time = opts.budget.max_time - ps.elapsed;
    match run_frontier_with_structure(graph, pruned.tables(), &remaining, trace, prebuilt) {
        FrontierFill::Done(frontier, mut stats) => {
            let points = frontier
                .points
                .into_iter()
                .map(|mut p| {
                    p.config_ids = pruned.to_original_ids(&p.config_ids);
                    p
                })
                .collect();
            stats.k_before = ps.k_before;
            stats.prune_time = ps.elapsed;
            stats.elapsed += ps.elapsed;
            FrontierFill::Done(StrategyFrontier { points }, stats)
        }
        FrontierFill::Abort(mut outcome) => {
            match &mut outcome {
                SearchOutcome::Oom { stats, .. }
                | SearchOutcome::Timeout { stats }
                | SearchOutcome::Infeasible { stats, .. } => {
                    stats.k_before = ps.k_before;
                    stats.prune_time = ps.elapsed;
                    stats.elapsed += ps.elapsed;
                }
                SearchOutcome::Found(_) => unreachable!("fill abort is never Found"),
            }
            FrontierFill::Abort(outcome)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Search;
    use pase_cost::MachineSpec;
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn fc(name: &str, ins: usize) -> Node {
        Node {
            name: name.into(),
            op: OpKind::FullyConnected,
            iter_space: vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 128, DimRole::Param),
                IterDim::new("c", 128, DimRole::Reduction),
            ],
            inputs: (0..ins)
                .map(|_| TensorRef::new(vec![0, 2], vec![64, 128]))
                .collect(),
            output: TensorRef::new(vec![0, 1], vec![64, 128]),
            params: vec![TensorRef::new(vec![1, 2], vec![128, 128])],
        }
    }

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(fc("a", 0));
        let l = b.add_node(fc("l", 1));
        let r = b.add_node(fc("r", 1));
        let d = b.add_node(fc("d", 2));
        b.connect(a, l);
        b.connect(a, r);
        b.connect(l, d);
        b.connect(r, d);
        b.build().unwrap()
    }

    /// The exact frontier by exhaustive enumeration: every strategy's
    /// (cost, memory), Pareto-pruned with the same tie-breaking as the DP.
    fn brute_frontier(g: &Graph, tables: &CostTables) -> Vec<(f64, u64)> {
        let n = g.len();
        let ks: Vec<u64> = g.node_ids().map(|v| tables.k(v) as u64).collect();
        let total: u64 = ks.iter().product();
        let mut pts: Vec<(f64, u64)> = (0..total)
            .map(|flat| {
                let mut ids = vec![0u16; n];
                let mut rem = flat;
                for v in (0..n).rev() {
                    ids[v] = (rem % ks[v]) as u16;
                    rem /= ks[v];
                }
                (
                    tables.evaluate_ids(g, &ids),
                    tables.strategy_memory_bytes(&ids),
                )
            })
            .collect();
        prune_pareto(&mut pts, |&(t, m)| (t, m));
        pts
    }

    #[test]
    fn frontier_matches_exhaustive_enumeration() {
        let g = diamond();
        for p in [4u32, 8] {
            let run = Search::new(&g)
                .devices(p)
                .machine(MachineSpec::test_machine())
                .frontier()
                .frontier_width(0)
                .run();
            let f = run.frontier().expect("frontier");
            let brute = brute_frontier(&g, run.tables());
            assert_eq!(f.len(), brute.len(), "p = {p}");
            for (got, want) in f.points().iter().zip(&brute) {
                // Times agree to float identity; memory is exact. (The DP's
                // addition tree differs from evaluate_ids' flat sum, so
                // compare with an ulp-scale tolerance, not to_bits.)
                assert!(
                    (got.cost - want.0).abs() <= 1e-9 * want.0.abs(),
                    "p = {p}: {} vs {}",
                    got.cost,
                    want.0
                );
                assert_eq!(got.memory_bytes, want.1, "p = {p}");
                // Each point's ids reproduce its coordinates.
                assert_eq!(
                    run.tables().strategy_memory_bytes(&got.config_ids),
                    got.memory_bytes
                );
                let eval = run.tables().evaluate_ids(&g, &got.config_ids);
                assert!((eval - got.cost).abs() <= 1e-9 * eval.abs());
            }
        }
    }

    #[test]
    fn pruned_frontier_equals_the_unpruned_one() {
        let g = diamond();
        let plain = Search::new(&g)
            .devices(8)
            .machine(MachineSpec::test_machine())
            .frontier()
            .run();
        let pruned = Search::new(&g)
            .devices(8)
            .machine(MachineSpec::test_machine())
            .frontier()
            .pruning(PruneOptions::default())
            .run();
        let (pf, qf) = (
            plain.frontier().expect("plain"),
            pruned.frontier().expect("pruned"),
        );
        assert_eq!(pf.len(), qf.len());
        for (a, b) in pf.points().iter().zip(qf.points()) {
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.memory_bytes, b.memory_bytes);
        }
        assert!(pruned.result().expect("found").stats.k_before >= pruned.tables().max_k());
    }

    #[test]
    fn both_schedulers_produce_the_same_frontier() {
        let g = diamond();
        let seq = Search::new(&g).devices(8).parallel(false).frontier().run();
        let par = Search::new(&g).devices(8).parallel(true).frontier().run();
        let (sf, pf) = (seq.frontier().expect("seq"), par.frontier().expect("par"));
        assert_eq!(sf.len(), pf.len());
        for (a, b) in sf.points().iter().zip(pf.points()) {
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.memory_bytes, b.memory_bytes);
            assert_eq!(a.config_ids, b.config_ids);
        }
    }

    #[test]
    fn the_width_cap_keeps_both_endpoints() {
        let g = diamond();
        let exact = Search::new(&g)
            .devices(8)
            .machine(MachineSpec::test_machine())
            .frontier()
            .frontier_width(0)
            .run();
        let capped = Search::new(&g)
            .devices(8)
            .machine(MachineSpec::test_machine())
            .frontier()
            .frontier_width(2)
            .run();
        let (ef, cf) = (
            exact.frontier().expect("exact"),
            capped.frontier().expect("capped"),
        );
        assert!(cf.len() <= 2, "cap of 2 exceeded: {}", cf.len());
        // Min-time survives thinning bit-for-bit (per-state index 0 is
        // always kept), and so does the global memory floor (per-state
        // last index is always kept).
        assert_eq!(cf.min_time().cost.to_bits(), ef.min_time().cost.to_bits());
        assert_eq!(cf.min_memory_bytes(), ef.min_memory_bytes());
        // Every capped point is a real strategy reproducing its own
        // coordinates.
        for p in cf.points() {
            assert_eq!(
                capped.tables().strategy_memory_bytes(&p.config_ids),
                p.memory_bytes
            );
        }
    }

    #[test]
    fn thin_frontier_is_deterministic_and_keeps_endpoints() {
        let mut v: Vec<u32> = (0..10).collect();
        thin_frontier(&mut v, 4);
        assert_eq!(v, vec![0, 3, 6, 9]);
        let mut w: Vec<u32> = (0..3).collect();
        thin_frontier(&mut w, 4);
        assert_eq!(w, vec![0, 1, 2]);
        let mut x: Vec<u32> = (0..100).collect();
        thin_frontier(&mut x, 0);
        assert_eq!(x.len(), 100);
        let mut y: Vec<u32> = (0..100).collect();
        thin_frontier(&mut y, 1);
        assert_eq!(y, vec![0, 99], "width 1 clamps to 2 to keep the floor");
    }

    #[test]
    fn prune_pareto_is_exact_and_deterministic() {
        let mut v = vec![(2.0, 5u64), (1.0, 10), (1.0, 10), (3.0, 1), (2.5, 9)];
        prune_pareto(&mut v, |&(t, m)| (t, m));
        assert_eq!(v, vec![(1.0, 10), (2.0, 5), (3.0, 1)]);
        // NaN-free inputs only: tables are checked finite before any fill.
    }

    #[test]
    fn empty_graph_has_the_trivial_frontier() {
        let g = GraphBuilder::new().build().unwrap();
        let run = Search::new(&g).frontier().run();
        let f = run.frontier().expect("frontier");
        assert_eq!(f.len(), 1);
        assert_eq!(f.min_time().cost, 0.0);
        assert_eq!(f.min_memory_bytes(), 0);
        assert_eq!(run.result().expect("found").cost, 0.0);
    }
}
