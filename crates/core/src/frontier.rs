//! Pareto-frontier dynamic program over (step-time, peak-memory).
//!
//! The scalar DP in [`crate::dp`] carries one number per state — the
//! minimum step time `R_V(i, φ)`. This module generalizes the value to a
//! **dominance-pruned frontier** of `(time, memory)` pairs per state, where
//! memory is the additive per-node model of
//! [`pase_cost::config_memory_bytes`]. One frontier fill then answers every
//! memory-budget variant of the same `(graph, machine)` query: the
//! unconstrained optimum is the frontier's min-time point, and a
//! `max_memory_bytes` query is the cheapest point that fits.
//!
//! ## Exactness and the width cap
//!
//! Per-state Pareto sets can grow combinatorially with graph depth (every
//! distinct downstream (time, memory) tradeoff survives dominance), so
//! each state's frontier is deterministically thinned to
//! [`crate::DpOptions::frontier_width`] points after exact pruning. The
//! thinning always keeps both endpoints — the min-time point (so the
//! bit-parity argument below is unaffected) and the min-memory point (so
//! the feasibility floor reported by `Infeasible` stays exact) — and
//! evenly index-samples the interior. With `frontier_width = 0` the fill
//! is fully exact; the properties below hold at any width.
//!
//! * **Component-wise combine.** Both coordinates are sums over nodes
//!   (time in f64, memory in exact u64), so the recurrence combines child
//!   values by a Minkowski sum: every combination of one point per child,
//!   added coordinate-wise to the head vertex's base cost.
//! * **Pruning between children is lossless.** If partial sum `a` is
//!   dominated by `a'` (`time' ≤ time` and `mem' ≤ mem`), then for any
//!   completion `z`, `a' + z ≤ a + z` in both coordinates — float addition
//!   is monotone in each argument — so every final point reachable from
//!   `a` is matched-or-beaten from `a'`. The surviving point *set* is the
//!   exact frontier.
//! * **Min-time bit-parity.** The base cost uses the same addition order
//!   as the scalar kernel (layer cost, then later-edge costs in plan
//!   order), children are folded in the same order the scalar loop adds
//!   child table values, and the root frontiers are combined in the same
//!   root order the scalar path sums. Each child frontier's min-time point
//!   equals the child's scalar table value bit-for-bit (induction), and
//!   `min(a + b) = min(a) + min(b)` under monotone addition, so the global
//!   frontier's min-time point is **bit-identical** to the scalar optimum.
//!
//! Entries are computed independently, so the sequential and wavefront
//! schedules are trivially bit-identical.
//!
//! ## The frontier microkernel
//!
//! [`crate::DpKernel`] selects between two fills:
//!
//! * `Scalar` — the incremental per-entry fill ([`fill_entry`],
//!   `stats.dp_kernel == "frontier"`): per-entry div/mod digit decode,
//!   per-configuration accessor reads, and the two-pointer
//!   [`merge_pruned_runs`] per child fold.
//! * `Tiled` (the default) — the run-blocked microkernel
//!   ([`fill_chunk_frontier_tiled`], `stats.dp_kernel == "frontier-tiled"`),
//!   mirroring `crate::kernel`: later-edge matrices are packed through the
//!   same [`crate::kernel::pack_edges`] panel layout so the per-entry time
//!   row is computed by fused slice passes instead of per-`(entry, config)`
//!   accessor calls; entries are processed in innermost-digit runs with the
//!   run-invariant *prefix merge* hoisted once per run (the frontier
//!   analogue of the hoisted prefix sum — invariant leading children's
//!   frontiers are folded once per run per configuration, and only the
//!   varying operands are merged per entry); per-child folds and
//!   single-child entries go through the batched k-way engine
//!   ([`merge_runs_tiled`]) over reused, `crate::pool`-recycled scratch
//!   arenas with two per-run batch-rejection tests (below); whole
//!   configuration folds are skipped by the same endpoint test against the
//!   entry's evolving frontier; and a degenerate-frontier fast path
//!   collapses to the scalar tiled kernel's packed row pipeline (time
//!   panels plus parallel packed memory-row panels) whenever every
//!   contributing child frontier has length 1.
//!
//! **Exactness contract.** Every f64 addition tree is unchanged (hoisting
//! computes a shared prefix once; folds replay the incremental fill's run
//! order, width-cap thinning, and existing-wins tie rule), so at
//! `frontier_width = 0` the only batch rejection in effect is the *exact*
//! corner test ([`run_dominated`]) and the tables — not just the final
//! frontier — are set-identical to the incremental fill's, point for
//! point, bitwise. At a positive width the microkernel additionally
//! rejects any run or configuration that does not strictly improve the
//! evolving frontier's min time or its memory floor (ties reject —
//! existing wins). A rejected run's min time is at-or-above the running
//! min time and its floor at-or-above the running floor, so the min-time
//! *value* stays bit-identical to the scalar optimum and the memory-floor
//! *value* stays exact at any width — the two answers
//! `tests/frontier_parity.rs` pins — while each extreme point's companion
//! coordinate and the width-thinned interior may differ from the
//! incremental kernel's. Entries are computed independently, so both
//! schedulers are bit-identical per kernel.

use crate::budget::{SearchOutcome, SearchStats, DP_ENTRY_BYTES};
use crate::dp::{build_plans, child_coefs, ChildCoef, DpOptions, Plan, PlanPass};
use crate::kernel::{self, DpKernel};
use crate::ordering::make_ordering;
use crate::pool;
use crate::structure::VertexStructure;
use pase_cost::{CostTables, PruneOptions, PrunedTables};
use pase_graph::Graph;
use pase_obs::{phase, span_in, OptSpan, Trace};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::time::Instant;

/// Entries per deadline check in the frontier fill.
const CHUNK: usize = 1024;

/// Approximate bytes one frontier point occupies (time + memory + choice),
/// excluding the per-child backtrack indices accounted separately.
const POINT_BYTES: u64 = 18;

/// One Pareto point of a [`StrategyFrontier`].
#[derive(Clone, Debug, PartialEq)]
pub struct FrontierPoint {
    /// Step time `F(G, φ)` of the strategy, in FLOP units — same scale as
    /// [`crate::SearchResult::cost`].
    pub cost: f64,
    /// Peak per-device memory of the strategy under the additive model
    /// (see [`pase_cost::config_memory_bytes`]).
    pub memory_bytes: u64,
    /// The strategy, as per-node configuration ids into the
    /// [`pase_cost::CostTables`] the search ran on.
    pub config_ids: Vec<u16>,
}

/// The Pareto frontier of `(step time, peak memory)` over the whole
/// strategy space: points sorted by ascending cost with strictly
/// decreasing memory (no point dominates another).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StrategyFrontier {
    points: Vec<FrontierPoint>,
}

impl StrategyFrontier {
    pub(crate) fn new(points: Vec<FrontierPoint>) -> Self {
        debug_assert!(points
            .windows(2)
            .all(|w| w[0].cost <= w[1].cost && w[0].memory_bytes > w[1].memory_bytes));
        Self { points }
    }

    /// All points, cost ascending / memory strictly descending.
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// Number of Pareto points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the frontier is empty (only for a search that never ran).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The unconstrained optimum: the minimum-cost point. Bit-identical in
    /// cost to the scalar search's optimum.
    pub fn min_time(&self) -> &FrontierPoint {
        &self.points[0]
    }

    /// The smallest peak memory any strategy achieves (the last point's).
    pub fn min_memory_bytes(&self) -> u64 {
        self.points.last().map_or(0, |p| p.memory_bytes)
    }

    /// The cheapest point whose memory fits `max_bytes`, or `None` when
    /// even the min-memory point exceeds the budget. Memory is strictly
    /// descending along the cost-sorted points, so the over-budget points
    /// form a prefix and one binary search finds the answer.
    pub fn cheapest_within(&self, max_bytes: u64) -> Option<&FrontierPoint> {
        let i = self.points.partition_point(|p| p.memory_bytes > max_bytes);
        self.points.get(i)
    }
}

/// Result of a frontier fill: the frontier plus stats, or a budget abort.
pub(crate) enum FrontierFill {
    Done(StrategyFrontier, SearchStats),
    Abort(SearchOutcome),
}

/// One `(time, memory, choice)` triple of a per-state frontier.
#[derive(Clone, Copy)]
pub(crate) struct Pt {
    time: f64,
    mem: u64,
    choice: u16,
}

/// The frontier of one table entry: points plus, per point, the index of
/// the chosen point on each child's frontier (`kids` stride = number of
/// children of the position).
#[derive(Default)]
pub(crate) struct EntryFrontier {
    pts: Vec<Pt>,
    kids: Vec<u32>,
}

/// Frontier analogue of the scalar DP table, stored flat: entry `i`'s
/// points are `pts[offsets[i]..offsets[i+1]]` and its packed child-choice
/// rows sit at the same positions (× children) in `kids`. Child lookups
/// are the hottest reads of the fill; one contiguous buffer per table
/// keeps them prefetchable instead of chasing a `Vec` header per entry.
/// Buffers are recycled through `crate::pool` (`take_ftable` /
/// `recycle_ftable`).
#[derive(Default)]
pub(crate) struct FTable {
    pub(crate) offsets: Vec<u32>,
    pub(crate) pts: Vec<Pt>,
    pub(crate) kids: Vec<u32>,
}

impl FTable {
    /// Clear and prime for `n` entries (the pool's reset hook).
    pub(crate) fn reset(&mut self, n: usize) {
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.offsets.push(0);
        self.pts.clear();
        self.kids.clear();
    }

    /// Entry `i`'s frontier points.
    fn entry_pts(&self, i: usize) -> &[Pt] {
        &self.pts[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Entry `i`'s packed child rows (`stride` = children of the position).
    fn entry_kids(&self, i: usize, stride: usize) -> &[u32] {
        &self.kids[self.offsets[i] as usize * stride..self.offsets[i + 1] as usize * stride]
    }

    fn push_entry(&mut self, e: &EntryFrontier) {
        self.pts.extend_from_slice(&e.pts);
        self.kids.extend_from_slice(&e.kids);
        self.offsets.push(self.pts.len() as u32);
    }

    /// Append `n` empty entries (timed-out fills keep the offsets valid).
    fn push_empty(&mut self, n: usize) {
        let end = self.pts.len() as u32;
        self.offsets.extend(std::iter::repeat(end).take(n));
    }

    /// Re-append the last entry verbatim — the microkernel's replication
    /// step for fully run-invariant entries.
    fn duplicate_last_entry(&mut self, stride: usize) {
        let n = self.offsets.len();
        let (s, e) = (self.offsets[n - 2] as usize, self.offsets[n - 1] as usize);
        self.pts.extend_from_within(s..e);
        self.kids.extend_from_within(s * stride..e * stride);
        self.offsets.push(self.pts.len() as u32);
    }

    /// Splice a chunk-local table (offsets relative to 0) onto this one —
    /// the stitch step of the chunk-parallel fill.
    fn append_table(&mut self, part: &FTable) {
        let base = self.pts.len() as u32;
        self.pts.extend_from_slice(&part.pts);
        self.kids.extend_from_slice(&part.kids);
        self.offsets
            .extend(part.offsets[1..].iter().map(|&o| base + o));
    }

    /// Whether every entry's frontier has exactly one point — the
    /// degenerate-frontier condition the microkernel's fast path keys on.
    fn all_singleton(&self) -> bool {
        self.pts.len() + 1 == self.offsets.len()
            && self.offsets.windows(2).all(|w| w[1] - w[0] == 1)
    }
}

/// A partial Minkowski sum during the per-entry child fold.
struct Partial {
    time: f64,
    mem: u64,
    kids: Vec<u32>,
}

/// Reusable buffers for both frontier fills ([`fill_entry`] and
/// [`fill_chunk_frontier_tiled`]), recycled through `crate::pool`'s
/// thread-local pool. The hot fold works on flat parallel arrays —
/// coordinates separate from the packed child-choice rows — so the
/// combine/merge/prune inner loop moves small tuples instead of
/// allocating a `Vec<u32>` per candidate point.
#[derive(Default)]
pub(crate) struct FrontierScratch {
    digits: Vec<u16>,
    /// Current partial set for one configuration: `(time, mem)` pairs …
    acc: Vec<(f64, u64)>,
    /// … and, row-parallel, their child choices so far (stride = number
    /// of children folded in).
    acc_kids: Vec<u32>,
    /// Merge buffer, `(time, mem, run index, point index)` …
    cand: Vec<(f64, u64, u32, u32)>,
    /// … and its double buffer for the incremental merge.
    cand2: Vec<(f64, u64, u32, u32)>,
    /// Materialized shifted run fed to each batched merge.
    run_buf: Vec<(f64, u64, u32, u32)>,
    /// Double buffer for rebuilding `acc_kids` after a fold stage.
    new_kids: Vec<u32>,
    /// Per-entry result across configurations (kids stride = children).
    result: Vec<Pt>,
    result_kids: Vec<u32>,
    /// Per-configuration `[start, end)` ranges into `result`.
    run_ranges: Vec<(u32, u32)>,
    /// The runs fed to each merge.
    runs: Vec<MergeRun>,
    /// The finished entry, reused across calls.
    out: EntryFrontier,
    // --- microkernel-only buffers (empty on the incremental path) ---
    /// Per-child running row offsets, innermost contribution stripped.
    child_base: Vec<u64>,
    /// Per-child row-offset step per innermost-digit increment.
    child_step: Vec<u64>,
    /// Hoisted run-invariant prefix of the time row.
    pre: Vec<f64>,
    /// Per-entry time row (layer + later edges, fused slice passes).
    trow: Vec<f64>,
    /// Per-entry memory row of the degenerate fast path.
    mrow: Vec<u64>,
    /// Cross-configuration running frontier and its double buffer.
    xm: Vec<(f64, u64, u32, u32)>,
    xm2: Vec<(f64, u64, u32, u32)>,
    /// Per-run hoisted per-configuration partial states: configuration
    /// `c`'s points are `hoist_pts[hoist_offsets[c]..hoist_offsets[c+1]]`,
    /// kids stride = number of hoisted children.
    hoist_offsets: Vec<u32>,
    hoist_pts: Vec<(f64, u64)>,
    hoist_kids: Vec<u32>,
}

impl FrontierScratch {
    /// Drop any buffer grown past `cap` elements before pooling (see
    /// `crate::pool`): a width-0 exact search can grow the arenas
    /// arbitrarily, and a one-off giant must not pin the thread.
    pub(crate) fn shed_oversized(&mut self, cap: usize) {
        fn shed<T>(v: &mut Vec<T>, cap: usize) {
            if v.capacity() > cap {
                *v = Vec::new();
            }
        }
        shed(&mut self.acc, cap);
        shed(&mut self.acc_kids, cap);
        shed(&mut self.cand, cap);
        shed(&mut self.cand2, cap);
        shed(&mut self.run_buf, cap);
        shed(&mut self.new_kids, cap);
        shed(&mut self.result, cap);
        shed(&mut self.result_kids, cap);
        shed(&mut self.run_ranges, cap);
        shed(&mut self.runs, cap);
        shed(&mut self.out.pts, cap);
        shed(&mut self.out.kids, cap);
        shed(&mut self.pre, cap);
        shed(&mut self.trow, cap);
        shed(&mut self.mrow, cap);
        shed(&mut self.xm, cap);
        shed(&mut self.xm2, cap);
        shed(&mut self.hoist_offsets, cap);
        shed(&mut self.hoist_pts, cap);
        shed(&mut self.hoist_kids, cap);
    }
}

/// One cursor of [`merge_pruned_runs`]: a contiguous, already-pruned run
/// of a shared `&[Pt]` buffer (time ascending, memory strictly
/// descending), shifted by a per-run base `(bt, bm)`.
struct MergeRun {
    bt: f64,
    bm: u64,
    head: u32,
    end: u32,
}

/// Merge already-pruned runs into the dominance-pruned frontier of their
/// union, leaving `(time, mem, run, point index)` survivors in `m` in
/// exactly the order — including tie-breaking — that a stable
/// `(time, mem)` sort over all materialized candidates (in run-major
/// insertion order) followed by a best-memory sweep would produce: the
/// Pareto set is unique up to exact `(time, mem)` duplicates, which both
/// formulations resolve to the lowest run index.
///
/// The fold is incremental — each run merges into the running frontier
/// `m` — so two properties keep it near-linear in the *surviving* points:
///
/// * **Wholesale rejection.** If some merged point sits at-or-left of the
///   run's first point in time and at-or-below its last point in memory,
///   it dominates every point of the run (time only grows along the run,
///   memory only shrinks to the last), and the run is skipped after one
///   binary search.
/// * **Span skipping.** Memory strictly decreases within both inputs of
///   the two-pointer merge, so once a side's next point fails
///   `mem < best` the whole dominated span is skipped with one binary
///   search — those candidates sort later, where the sweep's `best` can
///   only be smaller, so the sweep would drop them too.
fn merge_pruned_runs(
    runs: &[MergeRun],
    pts: &[Pt],
    width: usize,
    m: &mut Vec<(f64, u64, u32, u32)>,
    m2: &mut Vec<(f64, u64, u32, u32)>,
) {
    m.clear();
    for (r, run) in runs.iter().enumerate() {
        if run.head >= run.end {
            continue;
        }
        let r = r as u32;
        let emit = |h: u32| {
            let p = &pts[h as usize];
            (run.bt + p.time, run.bm + p.mem, r, h)
        };
        if m.is_empty() {
            m.extend((run.head..run.end).map(emit));
            thin_frontier(m, width);
            continue;
        }
        // Contribution scan, read-only: a run point survives the sweep
        // iff the merged prefix at-or-left of it in time (whose last
        // element holds the prefix's minimum memory) does not already
        // match-or-beat its memory. Within the run, earlier points never
        // dominate later ones (memory strictly decreases), so domination
        // can only come from `m` — the scan is exact, and a
        // no-contribution run leaves `m` untouched at zero copy cost.
        let mut contributes = false;
        let mut i = 0usize;
        for h in run.head..run.end {
            let (t, mm, _, _) = emit(h);
            while i < m.len() && m[i].0.total_cmp(&t).is_le() {
                i += 1;
            }
            if i == 0 || m[i - 1].1 > mm {
                contributes = true;
                break;
            }
        }
        if !contributes {
            continue;
        }
        // Two-pointer merge of `m` and the run, existing points winning
        // exact ties.
        m2.clear();
        let mut i = 0usize;
        let mut h = run.head;
        let mut best = u64::MAX;
        loop {
            let from_m = if i < m.len() && h < run.end {
                let e = &m[i];
                let (t, mm, _, _) = emit(h);
                e.0.total_cmp(&t).then(e.1.cmp(&mm)).is_le()
            } else if i < m.len() {
                true
            } else if h < run.end {
                false
            } else {
                break;
            };
            if from_m {
                let e = m[i];
                i += 1;
                if e.1 < best {
                    best = e.1;
                    m2.push(e);
                } else {
                    i += m[i..].partition_point(|e| e.1 >= best);
                }
            } else {
                let e = emit(h);
                h += 1;
                if e.1 < best {
                    best = e.1;
                    m2.push(e);
                } else {
                    let tail = &pts[h as usize..run.end as usize];
                    h += tail.partition_point(|p| run.bm + p.mem >= best) as u32;
                }
            }
        }
        std::mem::swap(m, m2);
        // Keep the running frontier within the width cap between runs so
        // later merges copy a bounded set. Thinning keeps index 0 and the
        // last index, and later runs can only improve them, so the global
        // min-time point (bit-parity) and the memory floor stay exact.
        thin_frontier(m, width);
    }
}

/// Dominance-prune `v` in place: sort by (time, memory) ascending — the
/// sort is stable, so insertion order (configuration id, then child point
/// combination) breaks exact ties deterministically — then keep each point
/// only if its memory strictly improves on everything cheaper.
fn prune_pareto<T>(v: &mut Vec<T>, key: impl Fn(&T) -> (f64, u64)) {
    v.sort_by(|a, b| {
        let (ta, ma) = key(a);
        let (tb, mb) = key(b);
        ta.total_cmp(&tb).then(ma.cmp(&mb))
    });
    let mut best = u64::MAX;
    v.retain(|x| {
        let (_, m) = key(x);
        if m < best {
            best = m;
            true
        } else {
            false
        }
    });
}

/// Deterministically thin a dominance-pruned frontier to at most `width`
/// points: keep both endpoints — index 0 is the min-time point (required
/// for scalar bit-parity) and the last index is the min-memory point
/// (required for an exact feasibility floor) — plus evenly index-sampled
/// interior points. Any subset of a dominance-free sorted set is itself a
/// valid frontier. `width == 0` disables thinning; `width == 1` would
/// lose the memory floor, so it is clamped to 2.
fn thin_frontier<T>(v: &mut Vec<T>, width: usize) {
    if width == 0 || v.len() <= width {
        return;
    }
    let width = width.max(2);
    let last = v.len() - 1;
    // i*last/(width-1) is strictly increasing (len > width ⇒ step ≥ 1),
    // hits 0 and `last`, and is pure integer math — deterministic across
    // schedulers.
    let mut kept = 0usize;
    let mut idx = 0usize;
    v.retain(|_| {
        let keep = kept < width && idx == kept * last / (width - 1);
        kept += usize::from(keep);
        idx += 1;
        keep
    });
}

/// Compute the frontier of one table entry into `s.out`. Mirrors the
/// scalar kernel's addition order exactly: layer cost, later-edge costs in
/// plan order, then child values in child order.
fn fill_entry(
    tables: &CostTables,
    plan: &Plan,
    children: &[ChildCoef],
    dp: &[Option<FTable>],
    flat: u64,
    width: usize,
    s: &mut FrontierScratch,
) {
    s.digits.clear();
    for t in 0..plan.dep.len() {
        s.digits
            .push(((flat / plan.strides[t]) % u64::from(plan.radix[t])) as u16);
    }
    let vi = plan.vi;
    let mem_row = tables.memory_row(vi);
    let n_children = children.len();

    s.result.clear();
    s.result_kids.clear();
    s.run_ranges.clear();
    for c in 0..plan.kv {
        let mut time = tables.layer_cost(vi, c);
        for &(e, slot, vi_is_src) in &plan.later_edges {
            let w_cfg = s.digits[slot];
            time += if vi_is_src {
                tables.edge_cost(e, c, w_cfg)
            } else {
                tables.edge_cost(e, w_cfg, c)
            };
        }
        s.acc.clear();
        s.acc_kids.clear();
        s.acc.push((time, mem_row[c as usize]));
        for (depth, ch) in children.iter().enumerate() {
            let base: u64 = ch
                .parent_coef
                .iter()
                .zip(s.digits.iter())
                .map(|(&coef, &d)| coef * u64::from(d))
                .sum();
            let idx = (base + ch.vi_coef * u64::from(c)) as usize;
            let cf_pts = dp[ch.anchor]
                .as_ref()
                .expect("child frontier")
                .entry_pts(idx);
            // Combine: one run per partial, all over the child's frontier.
            // Run order is acc-major, so the merge's tie-break reproduces
            // the insertion order a materialize-and-stable-sort had.
            s.runs.clear();
            for &(at, am) in s.acc.iter() {
                s.runs.push(MergeRun {
                    bt: at,
                    bm: am,
                    head: 0,
                    end: cf_pts.len() as u32,
                });
            }
            merge_pruned_runs(&s.runs, cf_pts, width, &mut s.cand, &mut s.cand2);
            thin_frontier(&mut s.cand, width);
            // Rebuild the partial set (rows grow by one choice per stage).
            s.new_kids.clear();
            for &(_, _, ai, pi) in &s.cand {
                s.new_kids
                    .extend_from_slice(&s.acc_kids[ai as usize * depth..][..depth]);
                s.new_kids.push(pi);
            }
            std::mem::swap(&mut s.acc_kids, &mut s.new_kids);
            s.acc.clear();
            s.acc.extend(s.cand.iter().map(|&(t, m, _, _)| (t, m)));
        }
        let start = s.result.len() as u32;
        for (i, &(t, m)) in s.acc.iter().enumerate() {
            s.result.push(Pt {
                time: t,
                mem: m,
                choice: c,
            });
            s.result_kids
                .extend_from_slice(&s.acc_kids[i * n_children..][..n_children]);
        }
        s.run_ranges.push((start, s.result.len() as u32));
    }

    // Final prune across configurations: each configuration's partial set
    // is already a frontier, so this is another pruned merge — run order
    // is configuration-major, matching the old index-sort's stable
    // tie-break — collecting surviving indices so the packed kids rows
    // move once.
    s.runs.clear();
    for &(start, end) in &s.run_ranges {
        s.runs.push(MergeRun {
            bt: 0.0,
            bm: 0,
            head: start,
            end,
        });
    }
    merge_pruned_runs(&s.runs, &s.result, width, &mut s.cand, &mut s.cand2);
    thin_frontier(&mut s.cand, width);

    s.out.pts.clear();
    s.out.kids.clear();
    for &(_, _, _, i) in &s.cand {
        s.out.pts.push(s.result[i as usize]);
        s.out
            .kids
            .extend_from_slice(&s.result_kids[i as usize * n_children..][..n_children]);
    }
}

/// Approximate heap bytes of one table's frontiers, for budget accounting.
fn table_bytes(t: &FTable, n_children: usize) -> u64 {
    t.pts.len() as u64 * (POINT_BYTES + 4 * n_children as u64)
}

/// One merge candidate: `(time, memory, run index, point index)`.
type Cand = (f64, u64, u32, u32);

/// Whether a pruned run whose minimum time is exactly `t_lb` and minimum
/// memory exactly `m_lb` is wholly dominated by the running frontier `m` —
/// the microkernel's **batch prune**. `m` is time-ascending with strictly
/// descending memory, so the points at-or-left of `t_lb` form a prefix
/// whose last element holds its minimum memory; if that memory also
/// matches-or-beats `m_lb`, every run candidate `q` (with `q.time ≥ t_lb`,
/// `q.mem ≥ m_lb`) fails the merge's strict-improvement sweep, and the run
/// can be skipped without materializing it. Sound and exact: a skipped run
/// leaves `m` bit-identical to merging it (a no-contribution merge is the
/// identity and its width-cap thin is a no-op).
fn run_dominated(m: &[Cand], t_lb: f64, m_lb: u64) -> bool {
    let j = m.partition_point(|e| e.0.total_cmp(&t_lb).is_le());
    j > 0 && m[j - 1].1 <= m_lb
}

/// The tiled microkernel's k-way merge: [`merge_pruned_runs`] semantics
/// with two batched rejection tests performed per run before the
/// contribution scan touches any interior point.
///
/// * **Exact corner rejection** (always on): a merged point at-or-left of
///   the run's first point in time and at-or-below its last point in
///   memory dominates the whole run — one binary search, bit-identical
///   to letting the scan walk the run.
/// * **Endpoint rejection** (`lossy`, the `width > 0` regime): skip the
///   run unless it strictly improves the running frontier's min-time or
///   its memory floor — two scalar compares, with ties rejected
///   (existing wins). A rejected run has a min time at-or-above the
///   frontier's and a floor at-or-above its floor, so the merged
///   min-time *value* (bitwise) and the exact memory floor *value* are
///   preserved; the companion coordinate of each extreme point and the
///   interior of the width-thinned frontier may differ from the
///   incremental fill's. Callers gate this on `width > 0` — at
///   `width == 0` the merge stays exact and set-identical.
fn merge_runs_tiled(
    runs: &[MergeRun],
    pts: &[Pt],
    width: usize,
    lossy: bool,
    m: &mut Vec<Cand>,
    m2: &mut Vec<Cand>,
) {
    m.clear();
    for (r, run) in runs.iter().enumerate() {
        if run.head >= run.end {
            continue;
        }
        let r = r as u32;
        let emit = |h: u32| {
            let p = &pts[h as usize];
            (run.bt + p.time, run.bm + p.mem, r, h)
        };
        if m.is_empty() {
            m.extend((run.head..run.end).map(emit));
            thin_frontier(m, width);
            continue;
        }
        let first = &pts[run.head as usize];
        let last = &pts[run.end as usize - 1];
        let t0 = run.bt + first.time;
        let m1 = run.bm + last.mem;
        let rejected = if lossy {
            t0.total_cmp(&m[0].0).is_ge() && m1 >= m[m.len() - 1].1
        } else {
            run_dominated(m, t0, m1)
        };
        if rejected {
            continue;
        }
        // Exact contribution scan, then the two-pointer merge — shared
        // with the incremental engine.
        let mut contributes = false;
        let mut i = 0usize;
        for h in run.head..run.end {
            let (t, mm, _, _) = emit(h);
            while i < m.len() && m[i].0.total_cmp(&t).is_le() {
                i += 1;
            }
            if i == 0 || m[i - 1].1 > mm {
                contributes = true;
                break;
            }
        }
        if !contributes {
            continue;
        }
        m2.clear();
        let mut i = 0usize;
        let mut h = run.head;
        let mut best = u64::MAX;
        loop {
            let from_m = if i < m.len() && h < run.end {
                let e = &m[i];
                let (t, mm, _, _) = emit(h);
                e.0.total_cmp(&t).then(e.1.cmp(&mm)).is_le()
            } else if i < m.len() {
                true
            } else if h < run.end {
                false
            } else {
                break;
            };
            if from_m {
                let e = m[i];
                i += 1;
                if e.1 < best {
                    best = e.1;
                    m2.push(e);
                } else {
                    i += m[i..].partition_point(|e| e.1 >= best);
                }
            } else {
                let e = emit(h);
                h += 1;
                if e.1 < best {
                    best = e.1;
                    m2.push(e);
                } else {
                    let tail = &pts[h as usize..run.end as usize];
                    h += tail.partition_point(|p| run.bm + p.mem >= best) as u32;
                }
            }
        }
        std::mem::swap(m, m2);
        thin_frontier(m, width);
    }
}

/// Batched counterpart of one [`merge_pruned_runs`] step: merge one
/// already-pruned, already-shifted run (time ascending, memory strictly
/// descending) into the running frontier `m`, then thin to `width`. The
/// linear merge-then-prune drops exactly the candidates the incremental
/// version's span-skipping binary searches drop — at the typical width of
/// 8 the straight-line sweep beats the branchy searches — and keeps the
/// same existing-wins rule on exact `(time, mem)` ties, so the resulting
/// `m` is bit-identical run for run.
fn merge_run_batched(m: &mut Vec<Cand>, m2: &mut Vec<Cand>, run: &[Cand], width: usize) {
    if run.is_empty() {
        return;
    }
    if m.is_empty() {
        m.extend_from_slice(run);
        thin_frontier(m, width);
        return;
    }
    m2.clear();
    let (mut i, mut j) = (0usize, 0usize);
    let mut best = u64::MAX;
    while i < m.len() || j < run.len() {
        let from_m = if i == m.len() {
            false
        } else if j == run.len() {
            true
        } else {
            let (e, c) = (&m[i], &run[j]);
            e.0.total_cmp(&c.0).then(e.1.cmp(&c.1)).is_le()
        };
        let e = if from_m {
            i += 1;
            m[i - 1]
        } else {
            j += 1;
            run[j - 1]
        };
        if e.1 < best {
            best = e.1;
            m2.push(e);
        }
    }
    std::mem::swap(m, m2);
    thin_frontier(m, width);
}

/// One child-fold stage of the microkernel's per-configuration fold —
/// the same k-way [`merge_pruned_runs`] call [`fill_entry`] makes, plus
/// the kids rebuild: acc-major runs over the child's frontier, merged by
/// the shared engine (wholesale rejection, contribution scan, span
/// skipping), so the fold's per-candidate cost matches the incremental
/// kernel's bit for bit.
#[allow(clippy::too_many_arguments)]
fn fold_child_batched(
    cf_pts: &[Pt],
    depth: usize,
    width: usize,
    acc: &mut Vec<(f64, u64)>,
    acc_kids: &mut Vec<u32>,
    cand: &mut Vec<Cand>,
    cand2: &mut Vec<Cand>,
    runs: &mut Vec<MergeRun>,
    new_kids: &mut Vec<u32>,
) {
    if acc.len() == 1 && !cf_pts.is_empty() {
        // Singleton accumulator: the Minkowski sum is a pure translation of
        // the child's frontier, which stays sorted, dominance-free, and
        // within `width` — bit-identical to the merge below, with no
        // pruning or thinning work.
        let (at, am) = acc[0];
        new_kids.clear();
        for pi in 0..cf_pts.len() as u32 {
            new_kids.extend_from_slice(&acc_kids[..depth]);
            new_kids.push(pi);
        }
        std::mem::swap(acc_kids, new_kids);
        acc.clear();
        acc.extend(cf_pts.iter().map(|p| (at + p.time, am + p.mem)));
        return;
    }
    runs.clear();
    runs.extend(acc.iter().map(|&(at, am)| MergeRun {
        bt: at,
        bm: am,
        head: 0,
        end: cf_pts.len() as u32,
    }));
    merge_runs_tiled(runs, cf_pts, width, false, cand, cand2);
    new_kids.clear();
    for &(_, _, ai, pi) in cand.iter() {
        new_kids.extend_from_slice(&acc_kids[ai as usize * depth..][..depth]);
        new_kids.push(pi);
    }
    std::mem::swap(acc_kids, new_kids);
    acc.clear();
    acc.extend(cand.iter().map(|&(t, m, _, _)| (t, m)));
}

/// `acc[i] += row[i]` over `u64` memory rows (exact, so unlike the time
/// rows no ordering care is needed — these exist for symmetry and speed).
#[inline]
fn add_mem_rows(acc: &mut [u64], row: &[u64]) {
    let n = acc.len().min(row.len());
    for i in 0..n {
        acc[i] += row[i];
    }
}

/// `acc[i] += v` over a `u64` memory row.
#[inline]
fn add_mem_scalar(acc: &mut [u64], v: u64) {
    for a in acc {
        *a += v;
    }
}

/// Where one child's frontier values live for the microkernel.
enum FChildRows {
    /// General case: read the child `FTable`'s per-entry frontier slice.
    Frontier,
    /// Degenerate (every entry a singleton): times and memories copied
    /// into panel-major rows — `panel[t + b ..][.. kv]` and
    /// `mem_panel[m + b ..][.. kv]` are the rows for substrategy offset
    /// `b` — addressed by re-derived coefficients exactly like
    /// `crate::kernel`'s transposed child tables.
    Panel { t: usize, m: usize },
    /// Degenerate with `vi_coef == 0`: one point per entry, independent of
    /// the configuration — read `pts[b]` directly (singleton tables have
    /// the identity offsets map).
    Broadcast,
}

/// One child's packed addressing for the microkernel.
struct FChild {
    anchor: usize,
    /// Row/entry-offset coefficients in the parent's digits (re-derived
    /// for the transposed panel layout, original otherwise).
    coef: Vec<u64>,
    /// The configuration stride of the *entry* index (general case only;
    /// folded into the panel rows in the degenerate case).
    vi_coef: u64,
    rows: FChildRows,
}

/// Entry-invariant operands of one vertex's frontier fill, packed once by
/// [`pack_frontier_vertex`] and shared read-only by every chunk: the
/// later-edge panels of [`kernel::pack_edges`] (time component) plus, on
/// the degenerate fast path, packed per-child time rows and a parallel
/// packed memory-row panel. Panels are recycled to the thread pool on
/// drop.
struct FrontierPack {
    panel: Vec<f64>,
    mem_panel: Vec<u64>,
    edges: Vec<(usize, kernel::EdgeRows)>,
    children: Vec<FChild>,
    /// Every child table is all-singleton — the degenerate fast path.
    degenerate: bool,
    packed_bytes: u64,
}

impl Drop for FrontierPack {
    fn drop(&mut self) {
        crate::pool::recycle_panel(std::mem::take(&mut self.panel));
        crate::pool::recycle_mem_panel(std::mem::take(&mut self.mem_panel));
    }
}

/// Pack one vertex's entry-invariant operands for the frontier
/// microkernel: later-edge matrices through the shared
/// [`kernel::pack_edges`], and — when every child frontier is degenerate
/// (all entries singletons) — each child's times and memories transposed
/// into contiguous `kv`-wide rows so the whole fold collapses to the
/// scalar tiled kernel's fused slice passes.
fn pack_frontier_vertex(
    tables: &CostTables,
    plan: &Plan,
    children: &[ChildCoef],
    dp: &[Option<FTable>],
) -> FrontierPack {
    let kv = plan.kv as usize;
    let mut panel = crate::pool::take_panel();
    let mut mem_panel = crate::pool::take_mem_panel();
    let mut packed_bytes = 0u64;
    let edges = kernel::pack_edges(tables, plan, &mut panel, &mut packed_bytes);

    let degenerate = children.iter().all(|ch| {
        dp[ch.anchor]
            .as_ref()
            .expect("child frontier")
            .all_singleton()
    });
    let children = children
        .iter()
        .map(|ch| {
            if !degenerate {
                FChild {
                    anchor: ch.anchor,
                    coef: ch.parent_coef.clone(),
                    vi_coef: ch.vi_coef,
                    rows: FChildRows::Frontier,
                }
            } else if ch.vi_coef == 0 {
                FChild {
                    anchor: ch.anchor,
                    coef: ch.parent_coef.clone(),
                    vi_coef: 0,
                    rows: FChildRows::Broadcast,
                }
            } else {
                // Singleton entries at idx = base + vi_coef·c: copy the kv
                // points of each substrategy out into one contiguous time
                // row and one memory row ((`Pt` interleaves the
                // coordinates, so even vi_coef == 1 needs the copy),
                // using the same transposed layout and re-derived
                // coefficients as `kernel::pack_vertex`'s child tables.
                let pts = &dp[ch.anchor].as_ref().expect("child frontier").pts;
                let vc = ch.vi_coef as usize;
                debug_assert_eq!(pts.len() % (vc * kv), 0);
                let t_off = panel.len();
                let m_off = mem_panel.len();
                panel.reserve(pts.len());
                mem_panel.reserve(pts.len());
                for block in pts.chunks_exact(vc * kv) {
                    for lo in 0..vc {
                        for p in block[lo..].iter().step_by(vc).take(kv) {
                            panel.push(p.time);
                            mem_panel.push(p.mem);
                        }
                    }
                }
                packed_bytes +=
                    (pts.len() * (std::mem::size_of::<f64>() + std::mem::size_of::<u64>())) as u64;
                let coef = ch
                    .parent_coef
                    .iter()
                    .map(|&s| if s < ch.vi_coef { s * kv as u64 } else { s })
                    .collect();
                FChild {
                    anchor: ch.anchor,
                    coef,
                    vi_coef: ch.vi_coef,
                    rows: FChildRows::Panel { t: t_off, m: m_off },
                }
            }
        })
        .collect();

    FrontierPack {
        panel,
        mem_panel,
        edges,
        children,
        degenerate,
        packed_bytes,
    }
}

/// The run-blocked frontier fill of one chunk over a
/// [`pack_frontier_vertex`] pack — the frontier analogue of
/// `kernel::fill_chunk_tiled`, appending `len` entries starting at `start`
/// onto `out`. Entries are processed in innermost-digit runs:
///
/// * the invariant prefix of the **time row** (layer cost plus leading
///   later-edges that never read the innermost digit) is summed by fused
///   slice passes once per run; the remaining edges are added per entry —
///   the same addition tree as [`fill_entry`], computed `kv` lanes at a
///   time;
/// * when the whole time row is run-invariant, the per-configuration folds
///   of the leading innermost-invariant children (the **prefix merge**)
///   are hoisted once per run, and each entry resumes the fold at the
///   first varying child;
/// * a run in which *every* operand is invariant computes one entry and
///   replicates it across the run;
/// * each configuration's fold is **batch-pruned**: its exact
///   `(min-time, min-memory)` lower bound (the left-fold of child minima —
///   bitwise the fold's eventual min-time point) is tested against the
///   running cross-configuration frontier, and provably dominated
///   configurations are skipped without folding;
/// * on the degenerate fast path (every child table all-singleton) the
///   fold collapses entirely to packed row arithmetic: fused `f64` passes
///   over the time panels and exact `u64` passes over the memory panels,
///   followed by the per-entry cross-configuration merge.
///
/// Every merge replays [`fill_entry`]'s run order, thinning, and tie
/// rules through [`merge_run_batched`], so the produced table is
/// bit-identical to the incremental fill's.
#[allow(clippy::too_many_arguments)]
fn fill_chunk_frontier_tiled(
    tables: &CostTables,
    plan: &Plan,
    pack: &FrontierPack,
    dp: &[Option<FTable>],
    width: usize,
    start: u64,
    len: usize,
    s: &mut FrontierScratch,
    out: &mut FTable,
) {
    let n_dep = plan.dep.len();
    let kv = plan.kv as usize;
    let n_edges = pack.edges.len();
    let n_children = pack.children.len();

    let FrontierScratch {
        digits,
        acc,
        acc_kids,
        cand,
        cand2,
        run_buf,
        runs,
        new_kids,
        result,
        result_kids,
        child_base,
        child_step,
        pre,
        trow,
        mrow,
        xm,
        xm2,
        hoist_offsets,
        hoist_pts,
        hoist_kids,
        ..
    } = s;

    // Initial digit decode and child offsets — the only div/mod in the
    // chunk; runs advance by odometer carries.
    digits.clear();
    digits.resize(n_dep, 0);
    for t in 0..n_dep {
        digits[t] = ((start / plan.strides[t]) % u64::from(plan.radix[t])) as u16;
    }
    child_base.clear();
    child_step.clear();
    for ch in &pack.children {
        child_base.push(
            ch.coef
                .iter()
                .zip(digits.iter())
                .map(|(&coef, &d)| coef * u64::from(d))
                .sum(),
        );
        child_step.push(if n_dep == 0 { 0 } else { ch.coef[n_dep - 1] });
    }
    let last = n_dep.wrapping_sub(1);
    let rlast = if n_dep == 0 {
        1u64
    } else {
        u64::from(plan.radix[last])
    };
    // Strip the innermost-digit contribution out of `child_base`: rows at
    // digit value `d` are addressed as `child_base + child_step·d`.
    let d0 = if n_dep == 0 {
        0
    } else {
        u64::from(digits[last])
    };
    for (b, st) in child_base.iter_mut().zip(child_step.iter()) {
        *b -= st * d0;
    }

    let base_row = tables.layer_cost_row(plan.vi);
    let mem_row = tables.memory_row(plan.vi);
    debug_assert_eq!(base_row.len(), kv);
    let edge_mats: Vec<&[f64]> = pack
        .edges
        .iter()
        .map(|(_, rows)| kernel::edge_row_block(tables, rows, &pack.panel, kv))
        .collect();
    let child_fts: Vec<&FTable> = pack
        .children
        .iter()
        .map(|ch| dp[ch.anchor].as_ref().expect("child frontier"))
        .collect();

    // Longest invariant prefix of the later-edge sum (operands that never
    // read the innermost digit) — hoisted into `pre` once per run.
    let n_pre_e = pack
        .edges
        .iter()
        .take_while(|&&(slot, _)| n_dep == 0 || slot != last)
        .count();
    let edges_invariant = n_pre_e == n_edges;
    let all_invariant = edges_invariant && child_step.iter().all(|&st| st == 0);
    // Leading children whose row offset ignores the innermost digit: with
    // an invariant time row their per-configuration folds hoist once per
    // run (pointless when the whole run replicates one entry).
    let n_hoist = if edges_invariant && !all_invariant && !pack.degenerate {
        child_step.iter().take_while(|&&st| st == 0).count()
    } else {
        0
    };

    pre.clear();
    pre.resize(kv, 0.0);
    trow.clear();
    trow.resize(kv, 0.0);
    mrow.clear();
    mrow.resize(kv, 0);

    let mut off = 0usize;
    // First innermost-digit value of the current run (the chunk may start
    // mid-run; later runs always start at 0).
    let mut d_first = d0;
    while off < len {
        let run = ((rlast - d_first) as usize).min(len - off);

        // Edge row `j` at innermost-digit value `d` (invariant edges
        // ignore `d` and resolve the same row for the whole run).
        let edge_row = |j: usize, d: u64| -> &[f64] {
            let (slot, _) = pack.edges[j];
            let w = if n_dep > 0 && slot == last {
                d as usize
            } else {
                digits[slot] as usize
            };
            &edge_mats[j][w * kv..][..kv]
        };

        // Hoist the invariant prefix of the time row once per run — the
        // same addition tree, its shared head computed once.
        let pre_row: &[f64] = if n_pre_e == 0 {
            base_row
        } else {
            kernel::set_sum(pre, base_row, edge_row(0, d_first));
            for j in 1..n_pre_e {
                kernel::add_rows(pre, edge_row(j, d_first));
            }
            pre
        };

        // Hoist the prefix merge: fold the leading invariant children once
        // per run, per configuration.
        if n_hoist > 0 {
            hoist_offsets.clear();
            hoist_pts.clear();
            hoist_kids.clear();
            hoist_offsets.push(0);
            for c in 0..kv {
                acc.clear();
                acc_kids.clear();
                acc.push((pre_row[c], mem_row[c]));
                for ci in 0..n_hoist {
                    let idx = (child_base[ci] + pack.children[ci].vi_coef * c as u64) as usize;
                    fold_child_batched(
                        child_fts[ci].entry_pts(idx),
                        ci,
                        width,
                        acc,
                        acc_kids,
                        cand,
                        cand2,
                        runs,
                        new_kids,
                    );
                }
                hoist_pts.extend_from_slice(acc);
                hoist_kids.extend_from_slice(acc_kids);
                hoist_offsets.push(hoist_pts.len() as u32);
            }
        }

        let entries = if all_invariant { 1 } else { run };
        for step in 0..entries {
            let d = d_first + step as u64;

            if pack.degenerate {
                // Degenerate fast path: every child is a singleton, so the
                // fold is row arithmetic — fused f64 passes for time,
                // exact u64 passes for memory, in the fold's exact
                // operand order (edges in plan order, then children).
                let trow_ref: &[f64] = if n_pre_e == n_edges && n_children == 0 {
                    pre_row
                } else {
                    let mut seeded = false;
                    for j in n_pre_e..n_edges {
                        if seeded {
                            kernel::add_rows(trow, edge_row(j, d));
                        } else {
                            kernel::set_sum(trow, pre_row, edge_row(j, d));
                            seeded = true;
                        }
                    }
                    for (ci, ch) in pack.children.iter().enumerate() {
                        let b = (child_base[ci] + child_step[ci] * d) as usize;
                        match ch.rows {
                            FChildRows::Panel { t, .. } => {
                                let row = &pack.panel[t + b..][..kv];
                                if seeded {
                                    kernel::add_rows(trow, row);
                                } else {
                                    kernel::set_sum(trow, pre_row, row);
                                    seeded = true;
                                }
                            }
                            FChildRows::Broadcast => {
                                let p = &child_fts[ci].pts[b];
                                if seeded {
                                    kernel::add_scalar(trow, p.time);
                                } else {
                                    kernel::set_sum_scalar(trow, pre_row, p.time);
                                    seeded = true;
                                }
                            }
                            FChildRows::Frontier => unreachable!("degenerate pack"),
                        }
                    }
                    trow
                };
                let mrow_ref: &[u64] = if n_children == 0 {
                    mem_row
                } else {
                    mrow.copy_from_slice(mem_row);
                    for (ci, ch) in pack.children.iter().enumerate() {
                        let b = (child_base[ci] + child_step[ci] * d) as usize;
                        match ch.rows {
                            FChildRows::Panel { m, .. } => {
                                add_mem_rows(mrow, &pack.mem_panel[m + b..][..kv]);
                            }
                            FChildRows::Broadcast => {
                                add_mem_scalar(mrow, child_fts[ci].pts[b].mem);
                            }
                            FChildRows::Frontier => unreachable!("degenerate pack"),
                        }
                    }
                    mrow
                };
                // Cross-configuration merge over kv singleton runs; the
                // lower-bound test IS the contribution scan here. Kids are
                // all zero (each child frontier has exactly one point).
                xm.clear();
                for c in 0..kv {
                    let (t, mm) = (trow_ref[c], mrow_ref[c]);
                    if !xm.is_empty() && run_dominated(xm, t, mm) {
                        continue;
                    }
                    merge_run_batched(xm, xm2, &[(t, mm, c as u32, c as u32)], width);
                }
                thin_frontier(xm, width);
                for &(t, mm, c, _) in xm.iter() {
                    out.pts.push(Pt {
                        time: t,
                        mem: mm,
                        choice: c as u16,
                    });
                }
                out.kids
                    .extend(std::iter::repeat(0u32).take(xm.len() * n_children));
                out.offsets.push(out.pts.len() as u32);
            } else {
                // General path: per-entry time row by slice passes, then
                // the batch-pruned per-configuration fold.
                let trow_ref: &[f64] = if edges_invariant {
                    pre_row
                } else {
                    kernel::set_sum(trow, pre_row, edge_row(n_pre_e, d));
                    for j in n_pre_e + 1..n_edges {
                        kernel::add_rows(trow, edge_row(j, d));
                    }
                    trow
                };
                if n_children == 1 && n_hoist == 0 {
                    // Single non-hoistable child: every configuration's fold
                    // is a pure translation of one child entry, so the whole
                    // entry is a single k-way merge-prune whose runs point
                    // straight into the child's packed point arena — no fold
                    // and no result arena. At `width > 0` the merge
                    // batch-prunes endpoint-dominated configurations
                    // (min-time bit-parity and the exact memory floor are
                    // preserved); at `width == 0` it is exact.
                    let ft0 = child_fts[0];
                    let vi_coef = pack.children[0].vi_coef;
                    let cb = child_base[0] + child_step[0] * d;
                    runs.clear();
                    runs.extend((0..kv).map(|c| {
                        let idx = (cb + vi_coef * c as u64) as usize;
                        MergeRun {
                            bt: trow_ref[c],
                            bm: mem_row[c],
                            head: ft0.offsets[idx],
                            end: ft0.offsets[idx + 1],
                        }
                    }));
                    merge_runs_tiled(runs, &ft0.pts, width, width > 0, xm, xm2);
                    for &(t, mm, c, h) in xm.iter() {
                        out.pts.push(Pt {
                            time: t,
                            mem: mm,
                            choice: c as u16,
                        });
                        out.kids.push(h - runs[c as usize].head);
                    }
                    out.offsets.push(out.pts.len() as u32);
                    continue;
                }
                xm.clear();
                result.clear();
                result_kids.clear();
                'config: for c in 0..kv {
                    // Exact endpoints of the configuration's fold, computed
                    // without folding: the left-fold of child min-time points
                    // is, bitwise, the min-time endpoint the fold would
                    // produce (same f64 addition order), and the u64 sums of
                    // child memory extremes are its exact memory floor and
                    // min-time-path memory.
                    let (mut t_lb, mut m_lb) = if n_hoist > 0 {
                        let h =
                            &hoist_pts[hoist_offsets[c] as usize..hoist_offsets[c + 1] as usize];
                        match h.first() {
                            Some(&(t, _)) => (t, h[h.len() - 1].1),
                            None => continue 'config,
                        }
                    } else {
                        (trow_ref[c], mem_row[c])
                    };
                    for ci in n_hoist..n_children {
                        let idx = (child_base[ci]
                            + child_step[ci] * d
                            + pack.children[ci].vi_coef * c as u64)
                            as usize;
                        let cf = child_fts[ci].entry_pts(idx);
                        match cf.first() {
                            Some(p) => {
                                t_lb += p.time;
                                m_lb += cf[cf.len() - 1].mem;
                            }
                            None => continue 'config,
                        }
                    }
                    // Batch prune: skip the fold outright unless it can
                    // improve the running cross-configuration frontier's
                    // min-time head or its memory floor (non-strict, so ties
                    // fold and resolve exactly) — `t_lb` and `m_lb` are the
                    // fold's exact endpoints, computed without folding.
                    // Gated to the width-capped regime — at `width == 0` the
                    // fill is exact and every configuration is folded.
                    if width > 0
                        && !xm.is_empty()
                        && t_lb.total_cmp(&xm[0].0).is_ge()
                        && m_lb >= xm[xm.len() - 1].1
                    {
                        continue 'config;
                    }
                    // Fold, resuming from the hoisted prefix state.
                    if n_hoist > 0 {
                        let (s0, s1) = (hoist_offsets[c] as usize, hoist_offsets[c + 1] as usize);
                        acc.clear();
                        acc.extend_from_slice(&hoist_pts[s0..s1]);
                        acc_kids.clear();
                        acc_kids.extend_from_slice(&hoist_kids[s0 * n_hoist..s1 * n_hoist]);
                    } else {
                        acc.clear();
                        acc_kids.clear();
                        acc.push((trow_ref[c], mem_row[c]));
                    }
                    for ci in n_hoist..n_children {
                        let idx = (child_base[ci]
                            + child_step[ci] * d
                            + pack.children[ci].vi_coef * c as u64)
                            as usize;
                        fold_child_batched(
                            child_fts[ci].entry_pts(idx),
                            ci,
                            width,
                            acc,
                            acc_kids,
                            cand,
                            cand2,
                            runs,
                            new_kids,
                        );
                    }
                    debug_assert!(!acc.is_empty());
                    debug_assert_eq!(acc[0].0.to_bits(), t_lb.to_bits());
                    debug_assert_eq!(acc[acc.len() - 1].1, m_lb);
                    // Read-only contribution scan: when every fold point is
                    // dominated by the running cross-configuration frontier
                    // the merge below is the identity (and re-thinning a
                    // ≤-width frontier is too), so skip the arena traffic
                    // and the merge outright — bit-identical either way.
                    if !xm.is_empty() && acc.iter().all(|&(t, mm)| run_dominated(xm, t, mm)) {
                        continue 'config;
                    }
                    let astart = result.len() as u32;
                    for (i, &(t, mm)) in acc.iter().enumerate() {
                        result.push(Pt {
                            time: t,
                            mem: mm,
                            choice: c as u16,
                        });
                        result_kids.extend_from_slice(&acc_kids[i * n_children..][..n_children]);
                    }
                    run_buf.clear();
                    run_buf.extend(
                        acc.iter()
                            .enumerate()
                            .map(|(i, &(t, mm))| (t, mm, c as u32, astart + i as u32)),
                    );
                    merge_run_batched(xm, xm2, run_buf, width);
                }
                thin_frontier(xm, width);
                for &(_, _, _, pi) in xm.iter() {
                    out.pts.push(result[pi as usize]);
                    out.kids
                        .extend_from_slice(&result_kids[pi as usize * n_children..][..n_children]);
                }
                out.offsets.push(out.pts.len() as u32);
            }
        }
        if all_invariant {
            for _ in 1..run {
                out.duplicate_last_entry(n_children);
            }
        }

        off += run;
        d_first = 0;
        if off < len {
            // Carry out of the innermost digit, once per run.
            let mut t = last;
            loop {
                if t == 0 {
                    // Unreachable for in-bounds chunk ranges (the caller
                    // slices [0, table size)); keep the offsets valid.
                    debug_assert!(false, "frontier fill odometer overflow");
                    out.push_empty(len - off);
                    return;
                }
                t -= 1;
                digits[t] += 1;
                for (b, ch) in child_base.iter_mut().zip(&pack.children) {
                    *b += ch.coef[t];
                }
                if u32::from(digits[t]) < plan.radix[t] {
                    break;
                }
                digits[t] = 0;
                for (b, ch) in child_base.iter_mut().zip(&pack.children) {
                    *b -= ch.coef[t] * u64::from(plan.radix[t]);
                }
            }
            digits[last] = 0;
        }
    }
}

/// The `stats.dp_kernel` tag of a frontier run under each kernel option.
fn frontier_kernel_name(kernel: DpKernel) -> &'static str {
    match kernel {
        DpKernel::Scalar => "frontier",
        DpKernel::Tiled => "frontier-tiled",
    }
}

/// The frontier engine behind [`crate::Search::frontier`] /
/// [`crate::Search::max_memory_bytes`]: same ordering, structure, planning,
/// budget accounting, and scheduling shell as the scalar
/// `run_with_structure`, with a frontier of `(time, memory)` points per
/// table entry and a backtrack that extracts the full strategy of *every*
/// global Pareto point.
pub(crate) fn run_frontier_with_structure(
    graph: &Graph,
    tables: &CostTables,
    opts: &DpOptions,
    trace: Option<&Trace>,
    prebuilt: Option<VertexStructure>,
) -> FrontierFill {
    let start = Instant::now();
    let n = graph.len();
    if n == 0 {
        let frontier = StrategyFrontier::new(vec![FrontierPoint {
            cost: 0.0,
            memory_bytes: 0,
            config_ids: vec![],
        }]);
        let stats = SearchStats {
            dp_kernel: frontier_kernel_name(opts.kernel),
            frontier_len: 1,
            ..SearchStats::default()
        };
        return FrontierFill::Done(frontier, stats);
    }
    let structure = match prebuilt {
        Some(s) => s,
        None => {
            let mut span = span_in(trace, phase::STRUCTURE);
            let order = make_ordering(graph, opts.ordering);
            let s = VertexStructure::build(graph, &order, opts.mode);
            span.arg("nodes", n);
            span.arg("wavefronts", s.wavefronts().len());
            s
        }
    };
    let deadline = start + opts.budget.max_time;

    let mut stats = SearchStats {
        max_dependent_set: structure.max_dependent_set(),
        max_configs: tables.max_k(),
        k_before: tables.max_k(),
        wavefronts: structure.wavefronts().len(),
        max_wavefront_width: structure.max_wavefront_width(),
        intern_hit_rate: tables.intern_stats().hit_rate_opt(),
        dp_kernel: frontier_kernel_name(opts.kernel),
        ..SearchStats::default()
    };

    let plans = match build_plans(
        graph,
        tables,
        &structure,
        &opts.budget,
        start,
        deadline,
        &mut stats,
        trace,
    ) {
        PlanPass::Plans(p) => p,
        PlanPass::Abort(outcome) => return FrontierFill::Abort(outcome),
    };

    let timed_out = AtomicBool::new(false);
    let mut dp: Vec<Option<FTable>> = (0..n).map(|_| None).collect();
    // Real bytes held by frontier points, checked against the budget's
    // byte cap after every table (point counts are content-dependent, so —
    // unlike the scalar entry accounting — this cannot run up front).
    let mut frontier_bytes: u64 = 0;
    let byte_cap = opts.budget.max_table_bytes();
    let tiled = opts.kernel == DpKernel::Tiled;
    // Cumulative bytes transposed into panel scratch by the tiled kernel
    // (the pase-obs `packed_bytes` counter); the kernel sub-span is only
    // recorded for the tiled kernel, mirroring the scalar engine.
    let packed_bytes = AtomicU64::new(0);
    let ktrace = if tiled { trace } else { None };
    let width = opts.frontier_width;
    let recycle_dp = |dp: Vec<Option<FTable>>| {
        for t in dp.into_iter().flatten() {
            pool::recycle_ftable(t);
        }
    };

    // Fill one position's table: pack the entry-invariant operands once
    // (tiled kernel), then fill CHUNK-sized blocks — across the rayon pool
    // when parallelism is on — recycling scratch and per-chunk tables
    // through the thread-local pools.
    let fill_table = |i: usize,
                      children: &[ChildCoef],
                      dp: &[Option<FTable>],
                      timed_out: &AtomicBool|
     -> FTable {
        let plan = &plans[i];
        let size = plan.size as usize;
        let pack = tiled.then(|| pack_frontier_vertex(tables, plan, children, dp));
        if let Some(p) = &pack {
            packed_bytes.fetch_add(p.packed_bytes, AtomicOrdering::Relaxed);
        }
        let fill_chunk = |scratch: &mut FrontierScratch, out: &mut FTable, lo: usize, hi: usize| {
            if timed_out.load(AtomicOrdering::Relaxed) || Instant::now() > deadline {
                timed_out.store(true, AtomicOrdering::Relaxed);
                out.push_empty(hi - lo);
                return;
            }
            match &pack {
                Some(p) => fill_chunk_frontier_tiled(
                    tables,
                    plan,
                    p,
                    dp,
                    width,
                    lo as u64,
                    hi - lo,
                    scratch,
                    out,
                ),
                None => {
                    for flat in lo..hi {
                        fill_entry(tables, plan, children, dp, flat as u64, width, scratch);
                        out.push_entry(&scratch.out);
                    }
                }
            }
        };
        if opts.parallel && size >= CHUNK {
            let parts: Vec<FTable> = (0..size.div_ceil(CHUNK))
                .into_par_iter()
                .map_init(pool::take_frontier_scratch, |scratch, c| {
                    let lo = c * CHUNK;
                    let hi = (lo + CHUNK).min(size);
                    let mut part = pool::take_ftable(hi - lo);
                    fill_chunk(scratch, &mut part, lo, hi);
                    part
                })
                .collect();
            let mut table = pool::take_ftable(size);
            for part in parts {
                table.append_table(&part);
                pool::recycle_ftable(part);
            }
            table
        } else {
            let mut scratch = pool::take_frontier_scratch();
            let mut table = pool::take_ftable(size);
            for lo in (0..size).step_by(CHUNK) {
                fill_chunk(&mut scratch, &mut table, lo, (lo + CHUNK).min(size));
            }
            table
        }
    };

    if opts.parallel {
        for (wi, wave) in structure.wavefronts().iter().enumerate() {
            let mut wave_span = trace.map(|t| t.span(phase::wavefront_name(wi)));
            let kernel_span = span_in(ktrace, phase::KERNEL);
            for &i in wave {
                let children = child_coefs(&plans, &structure, i);
                let t = fill_table(i, &children, &dp, &timed_out);
                frontier_bytes += table_bytes(&t, children.len());
                dp[i] = Some(t);
            }
            drop(kernel_span);
            wave_span.arg("tables", wave.len());
            drop(wave_span);
            if let Some(t) = trace {
                if tiled {
                    t.counter("packed_bytes", packed_bytes.load(AtomicOrdering::Relaxed));
                }
            }
            if timed_out.load(AtomicOrdering::Relaxed) {
                recycle_dp(dp);
                stats.elapsed = start.elapsed();
                return FrontierFill::Abort(SearchOutcome::Timeout { stats });
            }
            if frontier_bytes > byte_cap {
                recycle_dp(dp);
                stats.peak_table_bytes = stats.peak_table_bytes.max(frontier_bytes);
                stats.elapsed = start.elapsed();
                return FrontierFill::Abort(SearchOutcome::Oom {
                    needed_entries: frontier_bytes / DP_ENTRY_BYTES,
                    stats,
                });
            }
        }
    } else {
        let mut fill_span = span_in(trace, phase::SEQUENTIAL_FILL);
        fill_span.arg("tables", n);
        let kernel_span = span_in(ktrace, phase::KERNEL);
        for i in 0..n {
            let children = child_coefs(&plans, &structure, i);
            let t = fill_table(i, &children, &dp, &timed_out);
            frontier_bytes += table_bytes(&t, children.len());
            dp[i] = Some(t);
            if timed_out.load(AtomicOrdering::Relaxed) {
                recycle_dp(dp);
                stats.elapsed = start.elapsed();
                return FrontierFill::Abort(SearchOutcome::Timeout { stats });
            }
            if frontier_bytes > byte_cap {
                recycle_dp(dp);
                stats.peak_table_bytes = stats.peak_table_bytes.max(frontier_bytes);
                stats.elapsed = start.elapsed();
                return FrontierFill::Abort(SearchOutcome::Oom {
                    needed_entries: frontier_bytes / DP_ENTRY_BYTES,
                    stats,
                });
            }
        }
        drop(kernel_span);
        drop(fill_span);
        if let Some(t) = trace {
            if tiled {
                t.counter("packed_bytes", packed_bytes.load(AtomicOrdering::Relaxed));
            }
        }
    }
    stats.peak_table_bytes = stats.peak_table_bytes.max(frontier_bytes);

    // Combine the (singleton) root frontiers in root order — the same
    // order, and therefore the same addition tree, as the scalar root sum.
    let mut backtrack_span = span_in(trace, phase::BACKTRACK);
    backtrack_span.arg("roots", structure.roots().len());
    let mut acc = vec![Partial {
        time: 0.0,
        mem: 0,
        kids: Vec::new(),
    }];
    for &r in structure.roots() {
        let rf = dp[r].as_ref().expect("root frontier").entry_pts(0);
        let mut next: Vec<Partial> = Vec::with_capacity(acc.len() * rf.len());
        for a in &acc {
            for (pi, p) in rf.iter().enumerate() {
                let mut kids = a.kids.clone();
                kids.push(pi as u32);
                next.push(Partial {
                    time: a.time + p.time,
                    mem: a.mem + p.mem,
                    kids,
                });
            }
        }
        prune_pareto(&mut next, |p| (p.time, p.mem));
        thin_frontier(&mut next, opts.frontier_width);
        acc = next;
    }

    // Back-substitute every global Pareto point into a full strategy.
    let children_all: Vec<Vec<ChildCoef>> =
        (0..n).map(|i| child_coefs(&plans, &structure, i)).collect();
    let points: Vec<FrontierPoint> = acc
        .into_iter()
        .map(|global| {
            let mut ids = vec![u16::MAX; n];
            let mut stack: Vec<(usize, u64, u32)> = structure
                .roots()
                .iter()
                .zip(&global.kids)
                .map(|(&r, &pi)| (r, 0u64, pi))
                .collect();
            while let Some((i, flat, pi)) = stack.pop() {
                let table = dp[i].as_ref().expect("table");
                let children = &children_all[i];
                let pt = table.entry_pts(flat as usize)[pi as usize];
                ids[plans[i].vi.index()] = pt.choice;
                let kids = &table.entry_kids(flat as usize, children.len())
                    [pi as usize * children.len()..][..children.len()];
                for (ch, &kid) in children.iter().zip(kids) {
                    let base: u64 = ch
                        .parent_coef
                        .iter()
                        .enumerate()
                        .map(|(t, &coef)| {
                            let d = (flat / plans[i].strides[t]) % u64::from(plans[i].radix[t]);
                            coef * d
                        })
                        .sum();
                    let child_flat = base + ch.vi_coef * u64::from(pt.choice);
                    stack.push((ch.anchor, child_flat, kid));
                }
            }
            debug_assert!(ids.iter().all(|&c| c != u16::MAX));
            debug_assert_eq!(tables.strategy_memory_bytes(&ids), global.mem);
            FrontierPoint {
                cost: global.time,
                memory_bytes: global.mem,
                config_ids: ids,
            }
        })
        .collect();
    drop(backtrack_span);
    recycle_dp(dp);

    stats.frontier_len = points.len();
    stats.elapsed = start.elapsed();
    FrontierFill::Done(StrategyFrontier::new(points), stats)
}

/// The prune-then-frontier pipeline: dominance-prunes the tables with the
/// **memory-aware** condition forced on (a time-only dominator with more
/// memory could delete a Pareto point; the memory-aware keep set is a
/// superset of the time-only one, so min-time parity is unaffected), runs
/// the frontier fill on the compacted tables, and maps every point's
/// configuration ids back to the original id space.
pub(crate) fn run_frontier_pruned_with_structure(
    graph: &Graph,
    tables: &CostTables,
    opts: &DpOptions,
    prune: &PruneOptions,
    trace: Option<&Trace>,
    prebuilt: Option<VertexStructure>,
) -> FrontierFill {
    let mut popts = *prune;
    popts.memory_aware = true;
    let pruned = PrunedTables::build_traced(graph, tables, &popts, trace);
    let ps = *pruned.stats();
    if ps.elapsed >= opts.budget.max_time {
        let stats = SearchStats {
            max_configs: pruned.tables().max_k(),
            k_before: ps.k_before,
            prune_time: ps.elapsed,
            elapsed: ps.elapsed,
            dp_kernel: frontier_kernel_name(opts.kernel),
            ..SearchStats::default()
        };
        return FrontierFill::Abort(SearchOutcome::Timeout { stats });
    }
    let mut remaining = *opts;
    remaining.budget.max_time = opts.budget.max_time - ps.elapsed;
    match run_frontier_with_structure(graph, pruned.tables(), &remaining, trace, prebuilt) {
        FrontierFill::Done(frontier, mut stats) => {
            let points = frontier
                .points
                .into_iter()
                .map(|mut p| {
                    p.config_ids = pruned.to_original_ids(&p.config_ids);
                    p
                })
                .collect();
            stats.k_before = ps.k_before;
            stats.prune_time = ps.elapsed;
            stats.elapsed += ps.elapsed;
            FrontierFill::Done(StrategyFrontier { points }, stats)
        }
        FrontierFill::Abort(mut outcome) => {
            match &mut outcome {
                SearchOutcome::Oom { stats, .. }
                | SearchOutcome::Timeout { stats }
                | SearchOutcome::Infeasible { stats, .. } => {
                    stats.k_before = ps.k_before;
                    stats.prune_time = ps.elapsed;
                    stats.elapsed += ps.elapsed;
                }
                SearchOutcome::Found(_) => unreachable!("fill abort is never Found"),
            }
            FrontierFill::Abort(outcome)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Search;
    use pase_cost::MachineSpec;
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn fc(name: &str, ins: usize) -> Node {
        Node {
            name: name.into(),
            op: OpKind::FullyConnected,
            iter_space: vec![
                IterDim::new("b", 64, DimRole::Batch),
                IterDim::new("n", 128, DimRole::Param),
                IterDim::new("c", 128, DimRole::Reduction),
            ],
            inputs: (0..ins)
                .map(|_| TensorRef::new(vec![0, 2], vec![64, 128]))
                .collect(),
            output: TensorRef::new(vec![0, 1], vec![64, 128]),
            params: vec![TensorRef::new(vec![1, 2], vec![128, 128])],
        }
    }

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(fc("a", 0));
        let l = b.add_node(fc("l", 1));
        let r = b.add_node(fc("r", 1));
        let d = b.add_node(fc("d", 2));
        b.connect(a, l);
        b.connect(a, r);
        b.connect(l, d);
        b.connect(r, d);
        b.build().unwrap()
    }

    /// The exact frontier by exhaustive enumeration: every strategy's
    /// (cost, memory), Pareto-pruned with the same tie-breaking as the DP.
    fn brute_frontier(g: &Graph, tables: &CostTables) -> Vec<(f64, u64)> {
        let n = g.len();
        let ks: Vec<u64> = g.node_ids().map(|v| tables.k(v) as u64).collect();
        let total: u64 = ks.iter().product();
        let mut pts: Vec<(f64, u64)> = (0..total)
            .map(|flat| {
                let mut ids = vec![0u16; n];
                let mut rem = flat;
                for v in (0..n).rev() {
                    ids[v] = (rem % ks[v]) as u16;
                    rem /= ks[v];
                }
                (
                    tables.evaluate_ids(g, &ids),
                    tables.strategy_memory_bytes(&ids),
                )
            })
            .collect();
        prune_pareto(&mut pts, |&(t, m)| (t, m));
        pts
    }

    #[test]
    fn frontier_matches_exhaustive_enumeration() {
        let g = diamond();
        for p in [4u32, 8] {
            let run = Search::new(&g)
                .devices(p)
                .machine(MachineSpec::test_machine())
                .frontier()
                .frontier_width(0)
                .run();
            let f = run.frontier().expect("frontier");
            let brute = brute_frontier(&g, run.tables());
            assert_eq!(f.len(), brute.len(), "p = {p}");
            for (got, want) in f.points().iter().zip(&brute) {
                // Times agree to float identity; memory is exact. (The DP's
                // addition tree differs from evaluate_ids' flat sum, so
                // compare with an ulp-scale tolerance, not to_bits.)
                assert!(
                    (got.cost - want.0).abs() <= 1e-9 * want.0.abs(),
                    "p = {p}: {} vs {}",
                    got.cost,
                    want.0
                );
                assert_eq!(got.memory_bytes, want.1, "p = {p}");
                // Each point's ids reproduce its coordinates.
                assert_eq!(
                    run.tables().strategy_memory_bytes(&got.config_ids),
                    got.memory_bytes
                );
                let eval = run.tables().evaluate_ids(&g, &got.config_ids);
                assert!((eval - got.cost).abs() <= 1e-9 * eval.abs());
            }
        }
    }

    #[test]
    fn pruned_frontier_equals_the_unpruned_one() {
        let g = diamond();
        let plain = Search::new(&g)
            .devices(8)
            .machine(MachineSpec::test_machine())
            .frontier()
            .run();
        let pruned = Search::new(&g)
            .devices(8)
            .machine(MachineSpec::test_machine())
            .frontier()
            .pruning(PruneOptions::default())
            .run();
        let (pf, qf) = (
            plain.frontier().expect("plain"),
            pruned.frontier().expect("pruned"),
        );
        assert_eq!(pf.len(), qf.len());
        for (a, b) in pf.points().iter().zip(qf.points()) {
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.memory_bytes, b.memory_bytes);
        }
        assert!(pruned.result().expect("found").stats.k_before >= pruned.tables().max_k());
    }

    #[test]
    fn both_schedulers_produce_the_same_frontier() {
        let g = diamond();
        let seq = Search::new(&g).devices(8).parallel(false).frontier().run();
        let par = Search::new(&g).devices(8).parallel(true).frontier().run();
        let (sf, pf) = (seq.frontier().expect("seq"), par.frontier().expect("par"));
        assert_eq!(sf.len(), pf.len());
        for (a, b) in sf.points().iter().zip(pf.points()) {
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.memory_bytes, b.memory_bytes);
            assert_eq!(a.config_ids, b.config_ids);
        }
    }

    #[test]
    fn the_width_cap_keeps_both_endpoints() {
        let g = diamond();
        let exact = Search::new(&g)
            .devices(8)
            .machine(MachineSpec::test_machine())
            .frontier()
            .frontier_width(0)
            .run();
        let capped = Search::new(&g)
            .devices(8)
            .machine(MachineSpec::test_machine())
            .frontier()
            .frontier_width(2)
            .run();
        let (ef, cf) = (
            exact.frontier().expect("exact"),
            capped.frontier().expect("capped"),
        );
        assert!(cf.len() <= 2, "cap of 2 exceeded: {}", cf.len());
        // Min-time survives thinning bit-for-bit (per-state index 0 is
        // always kept), and so does the global memory floor (per-state
        // last index is always kept).
        assert_eq!(cf.min_time().cost.to_bits(), ef.min_time().cost.to_bits());
        assert_eq!(cf.min_memory_bytes(), ef.min_memory_bytes());
        // Every capped point is a real strategy reproducing its own
        // coordinates.
        for p in cf.points() {
            assert_eq!(
                capped.tables().strategy_memory_bytes(&p.config_ids),
                p.memory_bytes
            );
        }
    }

    #[test]
    fn thin_frontier_is_deterministic_and_keeps_endpoints() {
        let mut v: Vec<u32> = (0..10).collect();
        thin_frontier(&mut v, 4);
        assert_eq!(v, vec![0, 3, 6, 9]);
        let mut w: Vec<u32> = (0..3).collect();
        thin_frontier(&mut w, 4);
        assert_eq!(w, vec![0, 1, 2]);
        let mut x: Vec<u32> = (0..100).collect();
        thin_frontier(&mut x, 0);
        assert_eq!(x.len(), 100);
        let mut y: Vec<u32> = (0..100).collect();
        thin_frontier(&mut y, 1);
        assert_eq!(y, vec![0, 99], "width 1 clamps to 2 to keep the floor");
    }

    #[test]
    fn prune_pareto_is_exact_and_deterministic() {
        let mut v = vec![(2.0, 5u64), (1.0, 10), (1.0, 10), (3.0, 1), (2.5, 9)];
        prune_pareto(&mut v, |&(t, m)| (t, m));
        assert_eq!(v, vec![(1.0, 10), (2.0, 5), (3.0, 1)]);
        // NaN-free inputs only: tables are checked finite before any fill.
    }

    #[test]
    fn cheapest_within_is_exact_at_the_budget_boundary() {
        let pt = |cost: f64, memory_bytes: u64| FrontierPoint {
            cost,
            memory_bytes,
            config_ids: vec![],
        };
        let f = StrategyFrontier::new(vec![pt(1.0, 100), pt(2.0, 60), pt(4.0, 10)]);
        // A budget exactly at a point's memory admits that point (≤, not <).
        assert_eq!(f.cheapest_within(100).expect("fits").cost, 1.0);
        assert_eq!(f.cheapest_within(60).expect("fits").cost, 2.0);
        assert_eq!(f.cheapest_within(10).expect("fits").cost, 4.0);
        // One byte under a boundary falls through to the next point.
        assert_eq!(f.cheapest_within(99).expect("fits").cost, 2.0);
        assert_eq!(f.cheapest_within(59).expect("fits").cost, 4.0);
        assert_eq!(f.cheapest_within(11).expect("fits").cost, 4.0);
        // Under the memory floor: infeasible.
        assert!(f.cheapest_within(9).is_none());
        assert!(f.cheapest_within(0).is_none());
        // Unbounded budgets select the min-time point.
        assert_eq!(f.cheapest_within(u64::MAX).expect("fits").cost, 1.0);
        assert!(StrategyFrontier::default()
            .cheapest_within(u64::MAX)
            .is_none());
    }

    #[test]
    fn batched_merge_replays_the_incremental_merge() {
        // Four runs over a shared point arena, including an empty run, a
        // non-contributing run, and exact (time, mem) ties; each run is a
        // valid frontier (ascending time, strictly decreasing memory).
        let p = |time: f64, mem: u64| Pt {
            time,
            mem,
            choice: 0,
        };
        let pts = vec![
            // run 0 (base 0, 0)
            p(1.0, 100),
            p(2.0, 50),
            p(5.0, 7),
            // run 1 (base 0.5, 20): lands interleaved with run 0
            p(1.0, 90),
            p(3.0, 5),
            // run 2 (base 0, 0): exact tie with run 0's head, then dominated
            p(1.0, 100),
            p(2.5, 80),
            // run 3 (base 0, 0): fully dominated, contributes nothing
            p(1.5, 120),
            p(6.0, 60),
        ];
        let runs = [
            (0.0, 0u64, 0u32, 3u32),
            (0.5, 20, 3, 5),
            (0.0, 0, 5, 7),
            (0.0, 0, 7, 7), // empty
            (0.0, 0, 7, 9),
        ];
        for width in [0usize, 2, 3, 8] {
            let merge_runs: Vec<MergeRun> = runs
                .iter()
                .map(|&(bt, bm, head, end)| MergeRun { bt, bm, head, end })
                .collect();
            let (mut m, mut m2) = (Vec::new(), Vec::new());
            merge_pruned_runs(&merge_runs, &pts, width, &mut m, &mut m2);
            let (mut bm, mut bm2) = (Vec::new(), Vec::new());
            for (r, &(bt, base_m, head, end)) in runs.iter().enumerate() {
                let run: Vec<Cand> = (head..end)
                    .map(|h| {
                        let pt = &pts[h as usize];
                        (bt + pt.time, base_m + pt.mem, r as u32, h)
                    })
                    .collect();
                merge_run_batched(&mut bm, &mut bm2, &run, width);
            }
            assert_eq!(m, bm, "width = {width}");
        }
    }

    #[test]
    fn scalar_and_tiled_frontier_kernels_agree_bitwise() {
        let g = diamond();
        for width in [0usize, 2, 8] {
            for parallel in [false, true] {
                let scalar = Search::new(&g)
                    .devices(8)
                    .parallel(parallel)
                    .dp_kernel(DpKernel::Scalar)
                    .frontier()
                    .frontier_width(width)
                    .run();
                let tiled = Search::new(&g)
                    .devices(8)
                    .parallel(parallel)
                    .dp_kernel(DpKernel::Tiled)
                    .frontier()
                    .frontier_width(width)
                    .run();
                assert_eq!(scalar.result().expect("scalar").stats.dp_kernel, "frontier");
                assert_eq!(
                    tiled.result().expect("tiled").stats.dp_kernel,
                    "frontier-tiled"
                );
                let (sf, tf) = (
                    scalar.frontier().expect("scalar"),
                    tiled.frontier().expect("tiled"),
                );
                assert_eq!(sf.len(), tf.len(), "width = {width}");
                for (a, b) in sf.points().iter().zip(tf.points()) {
                    assert_eq!(a.cost.to_bits(), b.cost.to_bits());
                    assert_eq!(a.memory_bytes, b.memory_bytes);
                    assert_eq!(a.config_ids, b.config_ids);
                }
            }
        }
    }

    #[test]
    fn empty_graph_has_the_trivial_frontier() {
        let g = GraphBuilder::new().build().unwrap();
        let run = Search::new(&g).frontier().run();
        let f = run.frontier().expect("frontier");
        assert_eq!(f.len(), 1);
        assert_eq!(f.min_time().cost, 0.0);
        assert_eq!(f.min_memory_bytes(), 0);
        assert_eq!(run.result().expect("found").cost, 0.0);
    }
}
