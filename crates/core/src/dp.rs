//! The FindBestStrategy dynamic program (Fig. 4) over recurrence (4):
//!
//! ```text
//! R_V(i, φ) = min_{C ∈ C(v^(i))}  H_V(i, φ ∪ {(v^(i), C)})
//!                                  + Σ_{X(j) ∈ S(i)} R_V(j, φ''|D(j))
//! ```
//!
//! where `H_V(i, φ')` is the layer cost of `v^(i)` plus its transfer costs
//! with neighbors *later* in the sequence (Eq. (3)).
//!
//! ## Implementation notes
//!
//! * DP tables are **dense mixed-radix arrays**, not hash maps: `D(i)` is
//!   sorted by node id and a substrategy `φ ∈ Φ_{|D(i)}` is its flat index
//!   `Σ_t stride_t · cfg_t`. The table for position `i` has exactly
//!   `∏_{w ∈ D(i)} |C(w)|` entries — the `K^M` of the complexity analysis —
//!   so memory accounting is exact and lookups are branch-free.
//! * Child-table lookups are **linear in the parent's digits**: every
//!   vertex of a child's `D(j)` is either the parent vertex `v^(i)` itself
//!   or a member of `D(i)` (see the containment argument in the module
//!   tests), so the child index is `Σ_t A_t · digit_t + B · C` with
//!   precomputed coefficients.
//! * Tables are filled **wavefront-parallel**: the table at position `i`
//!   reads exactly the tables at `subset_anchors(i)`, so the positions form
//!   a DAG whose levels ([`VertexStructure::wavefronts`]) can each be
//!   filled concurrently — parallelism across *tables*, not just across
//!   one table's entries. Within a wave, every table is cut into fixed-size
//!   entry chunks and the chunks of all tables share one work queue, so a
//!   wave with one huge and many tiny tables still balances. Budget
//!   accounting runs sequentially in position order first (table sizes are
//!   content-independent), preserving the exact OOM/timeout semantics of a
//!   sequential fill.
//! * Each chunk decodes its first substrategy index once and then walks the
//!   mixed-radix odometer **incrementally** — per entry, only the digits
//!   that change are touched and the child-table base offsets are adjusted
//!   by the corresponding coefficient deltas, replacing the per-entry
//!   div/mod decode and coefficient dot product. Costs and choices are
//!   written straight into the table's final arrays (no intermediate
//!   tuple buffer).
//! * Budgets are enforced *before* each allocation (`Oom`) and per chunk of
//!   work (`Timeout`), reproducing Table I's failure modes without actually
//!   exhausting the machine.

use crate::budget::{SearchBudget, SearchOutcome, SearchResult, SearchStats, DP_ENTRY_BYTES};
use crate::kernel::{self, DpKernel};
use crate::ordering::{make_ordering, OrderingKind};
use crate::pool::{self, Scratch};
use crate::structure::{ConnectedSetMode, VertexStructure};
use pase_cost::{CostTables, PruneOptions, PrunedTables};
use pase_graph::{EdgeId, Graph, GraphError, NodeId};
use pase_obs::{phase, span_in, OptSpan, Trace};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::Mutex;
use std::time::Instant;

/// Entries per work chunk: the granularity of parallel scheduling and of
/// deadline checks.
const CHUNK: usize = 4096;

/// Options for the DP engine, assembled by [`crate::Search`] from its
/// builder knobs.
#[derive(Clone, Copy, Debug)]
pub struct DpOptions {
    /// Vertex ordering (GenerateSeq by default).
    pub ordering: OrderingKind,
    /// Connected-set mode: `Exact` = recurrence (4), `Prefix` = the naive
    /// recurrence (2).
    pub mode: ConnectedSetMode,
    /// Resource limits.
    pub budget: SearchBudget,
    /// Fill tables wavefront-parallel with rayon; `false` fills strictly
    /// sequentially in position order (bit-identical results either way).
    pub parallel: bool,
    /// Inner-loop implementation for the table fill (bit-identical results
    /// either way; see [`DpKernel`]).
    pub kernel: DpKernel,
    /// Frontier searches only: maximum points kept per DP state (and in
    /// the returned frontier). Per-state Pareto sets can grow
    /// combinatorially on deep graphs, so each state's frontier is
    /// deterministically thinned to this width after exact dominance
    /// pruning — both endpoints (the min-time point, preserving scalar
    /// bit-parity, and the min-memory point, preserving the feasibility
    /// floor) always survive. `0` disables thinning (exact, and
    /// potentially exponential). Ignored by scalar searches.
    pub frontier_width: usize,
}

/// Default per-state frontier width (see [`DpOptions::frontier_width`]).
pub const DEFAULT_FRONTIER_WIDTH: usize = 8;

impl Default for DpOptions {
    fn default() -> Self {
        Self {
            ordering: OrderingKind::GenerateSeq,
            mode: ConnectedSetMode::Exact,
            budget: SearchBudget::default(),
            parallel: true,
            kernel: DpKernel::default(),
            frontier_width: DEFAULT_FRONTIER_WIDTH,
        }
    }
}

/// One DP table: `R_V(i, ·)` and the argmin configurations over the dense
/// substrategy space of `D(i)`.
pub(crate) struct Table {
    /// `D(i)`, sorted by node id (canonical digit order).
    dep: Vec<NodeId>,
    /// Mixed-radix strides per digit (row-major, last digit contiguous).
    strides: Vec<u64>,
    /// `R_V(i, φ)` per flat index.
    pub(crate) costs: Vec<f64>,
    /// Argmin configuration id of `v^(i)` per flat index.
    choice: Vec<u16>,
}

impl Table {
    /// Flat index of the substrategy selecting `assignment`'s configuration
    /// for every vertex of `dep`. Both `dep` and `assignment` are sorted by
    /// node id and `assignment ⊇ dep`, so one merge walk suffices.
    fn flat_index_of(&self, assignment: &[(NodeId, u16)]) -> usize {
        let mut idx = 0u64;
        let mut a = assignment.iter();
        for (t, &w) in self.dep.iter().enumerate() {
            let cfg = loop {
                let &(n, c) = a.next().expect("assignment must cover the dependent set");
                if n == w {
                    break c;
                }
                debug_assert!(n < w, "assignment must be sorted by node id");
            };
            idx += self.strides[t] * u64::from(cfg);
        }
        idx as usize
    }
}

/// Content-independent fill plan for one position, prepared during the
/// sequential budget-accounting pass.
pub(crate) struct Plan {
    pub(crate) vi: NodeId,
    pub(crate) dep: Vec<NodeId>,
    pub(crate) radix: Vec<u32>,
    pub(crate) strides: Vec<u64>,
    pub(crate) size: u64,
    pub(crate) kv: u16,
    /// Edges from `v^(i)` to its later neighbors: (edge, digit slot of the
    /// neighbor, whether `v^(i)` is the edge's source).
    pub(crate) later_edges: Vec<(EdgeId, usize, bool)>,
}

/// Linear-lookup coefficients of one child table (connected subset):
/// `child_index = Σ_t parent_coef[t]·digit_t + vi_coef·C`.
pub(crate) struct ChildCoef {
    /// Anchor position (index into the `dp` table vector).
    pub(crate) anchor: usize,
    pub(crate) parent_coef: Vec<u64>,
    pub(crate) vi_coef: u64,
}

/// One unit of fill work: a contiguous entry range of one table, with the
/// output slices it writes.
pub(crate) struct FillChunk<'a> {
    pub(crate) plan_idx: usize,
    pub(crate) start: u64,
    pub(crate) costs: &'a mut [f64],
    pub(crate) choice: &'a mut [u16],
}

/// Return every finished table's buffers to this thread's pool (see
/// [`crate::pool`]) once the search no longer reads them.
fn recycle_tables(dp: Vec<Option<Table>>) {
    for t in dp.into_iter().flatten() {
        pool::recycle_table(t.costs, t.choice);
    }
}

/// Run FindBestStrategy with breadth-first ordering and prefix connected
/// sets — the naive §III-A baseline (recurrence (2)) used for the Table I
/// `BF` column.
pub fn naive_best_strategy(
    graph: &Graph,
    tables: &CostTables,
    budget: SearchBudget,
) -> SearchOutcome {
    crate::Search::new(graph)
        .tables(tables)
        .ordering(OrderingKind::BreadthFirst)
        .connected_sets(ConnectedSetMode::Prefix)
        .budget(budget)
        .run()
        .into_outcome()
}

/// Fill `chunk.costs`/`chunk.choice` for the entry range starting at
/// `chunk.start`, dispatching on the configured kernel. Both kernels are
/// bit-identical; see [`DpKernel`]. The tiled kernel reads the vertex's
/// shared operand pack (`packed`, built once per vertex by
/// [`kernel::pack_vertex`]); the scalar kernel ignores it. Raises the
/// odometer-overflow error a malformed plan causes.
fn fill_chunk(
    tables: &CostTables,
    plan: &Plan,
    children: &[ChildCoef],
    packed: Option<&kernel::PackedVertex>,
    dp: &[Option<Table>],
    scratch: &mut Scratch,
    chunk: &mut FillChunk<'_>,
    which: DpKernel,
) -> Result<(), GraphError> {
    match which {
        DpKernel::Scalar => fill_chunk_scalar(tables, plan, children, dp, scratch, chunk),
        DpKernel::Tiled => {
            let packed = packed.expect("tiled kernel requires a packed vertex");
            kernel::fill_chunk_tiled(tables, plan, packed, dp, scratch, chunk)
        }
    }
}

/// The scalar fill: decodes the first index once, then advances the digit
/// odometer and the child base offsets incrementally, resolving every cost
/// operand per `(entry, config)` pair through the table accessors.
fn fill_chunk_scalar(
    tables: &CostTables,
    plan: &Plan,
    children: &[ChildCoef],
    dp: &[Option<Table>],
    scratch: &mut Scratch,
    chunk: &mut FillChunk<'_>,
) -> Result<(), GraphError> {
    let n_dep = plan.dep.len();
    scratch.digits.clear();
    scratch.digits.resize(n_dep, 0);
    scratch.child_base.clear();
    scratch.child_base.resize(children.len(), 0);

    // Initial digit decode and child base offsets for the chunk's first
    // entry — the only div/mod decode in the whole chunk.
    for t in 0..n_dep {
        scratch.digits[t] = ((chunk.start / plan.strides[t]) % u64::from(plan.radix[t])) as u16;
    }
    for (b, ch) in scratch.child_base.iter_mut().zip(children) {
        *b = ch
            .parent_coef
            .iter()
            .zip(scratch.digits.iter())
            .map(|(&coef, &d)| coef * u64::from(d))
            .sum();
    }

    let vi = plan.vi;
    let kv = plan.kv;
    let len = chunk.costs.len();
    for off in 0..len {
        let mut best = f64::INFINITY;
        let mut best_c = 0u16;
        for c in 0..kv {
            let mut cost = tables.layer_cost(vi, c);
            for &(e, slot, vi_is_src) in &plan.later_edges {
                let w_cfg = scratch.digits[slot];
                cost += if vi_is_src {
                    tables.edge_cost(e, c, w_cfg)
                } else {
                    tables.edge_cost(e, w_cfg, c)
                };
            }
            for (b, ch) in scratch.child_base.iter().zip(children) {
                let idx = b + ch.vi_coef * u64::from(c);
                cost += dp[ch.anchor].as_ref().expect("child table").costs[idx as usize];
            }
            if cost < best {
                best = cost;
                best_c = c;
            }
        }
        chunk.costs[off] = best;
        chunk.choice[off] = best_c;

        if off + 1 == len {
            break;
        }
        // Advance the odometer: bump the last digit; on wrap, carry. Each
        // digit change adjusts every child base by the matching coefficient
        // delta (+coef on increment, −coef·radix on wrap-around).
        let mut t = n_dep;
        loop {
            if t == 0 {
                return Err(kernel::odometer_overflow(plan, chunk.start));
            }
            t -= 1;
            scratch.digits[t] += 1;
            for (b, ch) in scratch.child_base.iter_mut().zip(children) {
                *b += ch.parent_coef[t];
            }
            if u32::from(scratch.digits[t]) < plan.radix[t] {
                break;
            }
            scratch.digits[t] = 0;
            for (b, ch) in scratch.child_base.iter_mut().zip(children) {
                *b -= ch.parent_coef[t] * u64::from(plan.radix[t]);
            }
        }
    }
    Ok(())
}

/// Outcome of the sequential budget-accounting plan pass: either every
/// position's fill plan, or the early abort the budget forced.
pub(crate) enum PlanPass {
    Plans(Vec<Plan>),
    Abort(SearchOutcome),
}

/// The sequential budget-accounting pass shared by the scalar and frontier
/// engines. Table sizes are independent of table *contents*, so accounting
/// in position order gives exactly the OOM/timeout behavior of a fully
/// sequential fill, regardless of how the fill is later scheduled.
/// Accumulates entry/state counts into `stats`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_plans(
    graph: &Graph,
    tables: &CostTables,
    structure: &VertexStructure,
    budget: &SearchBudget,
    start: Instant,
    deadline: Instant,
    stats: &mut SearchStats,
    trace: Option<&Trace>,
) -> PlanPass {
    let n = graph.len();
    let mut plan_span = span_in(trace, phase::PLAN);
    let mut plans: Vec<Plan> = Vec::with_capacity(n);
    for i in 0..n {
        let vi = structure.vertex(i);
        let dep = structure.dependent_set(i).to_vec();

        let radix: Vec<u32> = dep.iter().map(|&w| tables.k(w) as u32).collect();
        let mut size: u64 = 1;
        for &k in &radix {
            match size.checked_mul(u64::from(k)) {
                Some(s) => size = s,
                None => {
                    stats.elapsed = start.elapsed();
                    return PlanPass::Abort(SearchOutcome::Oom {
                        needed_entries: u64::MAX,
                        stats: stats.clone(),
                    });
                }
            }
        }
        if stats.table_entries.saturating_add(size) > budget.max_table_entries {
            stats.elapsed = start.elapsed();
            return PlanPass::Abort(SearchOutcome::Oom {
                needed_entries: stats.table_entries.saturating_add(size),
                stats: stats.clone(),
            });
        }
        if Instant::now() > deadline {
            stats.elapsed = start.elapsed();
            return PlanPass::Abort(SearchOutcome::Timeout {
                stats: stats.clone(),
            });
        }
        let mut strides = vec![1u64; dep.len()];
        for t in (0..dep.len().saturating_sub(1)).rev() {
            strides[t] = strides[t + 1] * u64::from(radix[t + 1]);
        }

        let mut later_edges: Vec<(EdgeId, usize, bool)> = Vec::new();
        {
            let mut add = |e: EdgeId, other: NodeId, vi_is_src: bool| {
                if structure.position(other) > i {
                    let slot = dep
                        .binary_search(&other)
                        .expect("later neighbor must be in the dependent set");
                    later_edges.push((e, slot, vi_is_src));
                }
            };
            for &e in graph.out_edges(vi) {
                add(e, graph.edge(e).dst, true);
            }
            for &e in graph.in_edges(vi) {
                add(e, graph.edge(e).src, false);
            }
        }

        let kv = tables.k(vi) as u16;
        stats.states_evaluated += size * u64::from(kv);
        stats.table_entries += size;
        stats.peak_table_bytes = stats.table_entries.saturating_mul(DP_ENTRY_BYTES);
        plans.push(Plan {
            vi,
            dep,
            radix,
            strides,
            size,
            kv,
            later_edges,
        });
    }
    plan_span.arg("tables", n);
    plan_span.arg("entries", stats.table_entries);
    drop(plan_span);
    PlanPass::Plans(plans)
}

/// Linear-lookup coefficients of position `i`'s child tables. Needs only
/// the plans (dep + strides), never table contents — shared by the scalar
/// and frontier fills.
pub(crate) fn child_coefs(plans: &[Plan], structure: &VertexStructure, i: usize) -> Vec<ChildCoef> {
    let plan = &plans[i];
    structure
        .subset_anchors(i)
        .iter()
        .map(|&j| {
            let child = &plans[j];
            let mut parent_coef = vec![0u64; plan.dep.len()];
            let mut vi_coef = 0u64;
            for (t, &w) in child.dep.iter().enumerate() {
                if w == plan.vi {
                    vi_coef += child.strides[t];
                } else {
                    let slot = plan.dep.binary_search(&w).unwrap_or_else(|_| {
                        panic!(
                            "D(j) ⊆ D(i) ∪ {{v_i}} violated: {w} not in D({i}) of {}",
                            plan.vi
                        )
                    });
                    parent_coef[slot] += child.strides[t];
                }
            }
            ChildCoef {
                anchor: j,
                parent_coef,
                vi_coef,
            }
        })
        .collect()
}

/// The DP engine behind [`crate::Search`]: ordering + structure
/// construction, budget-accounted planning, wavefront-parallel (or
/// sequential) table fill, and back-substitution, with phase spans and a
/// `table_bytes` counter recorded into `trace` when one is given
/// (a [`pase_obs::phase::STRUCTURE`] span for ordering + structure
/// construction, [`pase_obs::phase::PLAN`] for the budget-accounting pass,
/// one `"wavefront <w>"` span per DP wavefront — or one
/// [`pase_obs::phase::SEQUENTIAL_FILL`] span when `opts.parallel` is off —
/// and [`pase_obs::phase::BACKTRACK`] for strategy extraction). Results are
/// identical with and without a trace.
///
/// Accepts a caller-supplied [`VertexStructure`] (which depends only on the
/// graph, ordering, and connected-set mode — never on the tables, so one
/// build serves the adaptive gate's estimation, a pruned DP, and an
/// unpruned DP alike). With `None` the structure is built here under the
/// usual [`pase_obs::phase::STRUCTURE`] span.
pub(crate) fn run_with_structure(
    graph: &Graph,
    tables: &CostTables,
    opts: &DpOptions,
    trace: Option<&Trace>,
    prebuilt: Option<VertexStructure>,
) -> Result<SearchOutcome, GraphError> {
    let start = Instant::now();
    let n = graph.len();
    if n == 0 {
        return Ok(SearchOutcome::Found(SearchResult {
            cost: 0.0,
            config_ids: vec![],
            stats: SearchStats {
                dp_kernel: opts.kernel.as_str(),
                ..SearchStats::default()
            },
        }));
    }
    let structure = match prebuilt {
        Some(s) => s,
        None => {
            let mut span = span_in(trace, phase::STRUCTURE);
            let order = make_ordering(graph, opts.ordering);
            let s = VertexStructure::build(graph, &order, opts.mode);
            span.arg("nodes", n);
            span.arg("wavefronts", s.wavefronts().len());
            s
        }
    };
    let deadline = start + opts.budget.max_time;

    let mut stats = SearchStats {
        max_dependent_set: structure.max_dependent_set(),
        max_configs: tables.max_k(),
        k_before: tables.max_k(),
        wavefronts: structure.wavefronts().len(),
        max_wavefront_width: structure.max_wavefront_width(),
        intern_hit_rate: tables.intern_stats().hit_rate_opt(),
        dp_kernel: opts.kernel.as_str(),
        ..SearchStats::default()
    };

    let plans = match build_plans(
        graph,
        tables,
        &structure,
        &opts.budget,
        start,
        deadline,
        &mut stats,
        trace,
    ) {
        PlanPass::Plans(p) => p,
        PlanPass::Abort(outcome) => return Ok(outcome),
    };

    // Child coefficients need only the child's *plan* (dep + strides), so
    // they are precomputable for every position up front.
    let children_of = |i: usize| -> Vec<ChildCoef> { child_coefs(&plans, &structure, i) };

    let timed_out = AtomicBool::new(false);
    let errored = AtomicBool::new(false);
    // First fill error (the kernels only fail on a malformed plan); chunks
    // observe `errored` and drain without working, like a timeout.
    let fill_error: Mutex<Option<GraphError>> = Mutex::new(None);
    // Cumulative bytes transposed into panel scratch by the tiled kernel
    // (the pase-obs `packed_bytes` counter).
    let packed_bytes = AtomicU64::new(0);
    // The kernel sub-span is only recorded for the tiled kernel.
    let ktrace = if opts.kernel == DpKernel::Tiled {
        trace
    } else {
        None
    };
    let mut dp: Vec<Option<Table>> = (0..n).map(|_| None).collect();

    // Install a finished (costs, choice) pair as position i's table.
    let finish = |dp: &mut Vec<Option<Table>>, i: usize, costs: Vec<f64>, choice: Vec<u16>| {
        let plan = &plans[i];
        dp[i] = Some(Table {
            dep: plan.dep.clone(),
            strides: plan.strides.clone(),
            costs,
            choice,
        });
    };

    let mut allocated_entries = 0u64;
    if opts.parallel {
        // Wavefront schedule: every table of a wave depends only on tables
        // of earlier waves, so all chunks of all tables in the wave go into
        // one shared work queue.
        for (wi, wave) in structure.wavefronts().iter().enumerate() {
            let mut wave_span = trace.map(|t| t.span(phase::wavefront_name(wi)));
            let wave_children: Vec<Vec<ChildCoef>> = wave.iter().map(|&i| children_of(i)).collect();
            let mut outs: Vec<(Vec<f64>, Vec<u16>)> = wave
                .iter()
                .map(|&i| pool::take_table(plans[i].size as usize))
                .collect();
            let total_entries: usize = wave.iter().map(|&i| plans[i].size as usize).sum();

            let kernel_span = span_in(ktrace, phase::KERNEL);
            // Pack each table's entry-invariant operands once, up front and
            // in parallel; every chunk of a table shares its pack.
            let wave_packed: Vec<Option<kernel::PackedVertex>> = if opts.kernel == DpKernel::Tiled {
                let dp_ref = &dp;
                (0..wave.len())
                    .into_par_iter()
                    .map(|w| {
                        Some(kernel::pack_vertex(
                            tables,
                            &plans[wave[w]],
                            &wave_children[w],
                            dp_ref,
                        ))
                    })
                    .collect()
            } else {
                wave.iter().map(|_| None).collect()
            };
            packed_bytes.fetch_add(
                wave_packed
                    .iter()
                    .flatten()
                    .map(|p| p.packed_bytes)
                    .sum::<u64>(),
                AtomicOrdering::Relaxed,
            );
            if total_entries >= CHUNK {
                let mut chunks: Vec<FillChunk<'_>> = Vec::new();
                for (w, (costs, choice)) in outs.iter_mut().enumerate() {
                    let mut start = 0u64;
                    for (cs, ch) in costs.chunks_mut(CHUNK).zip(choice.chunks_mut(CHUNK)) {
                        let len = cs.len() as u64;
                        chunks.push(FillChunk {
                            plan_idx: w,
                            start,
                            costs: cs,
                            choice: ch,
                        });
                        start += len;
                    }
                }
                let dp_ref = &dp;
                let plans_ref = &plans;
                let wave_children_ref = &wave_children;
                let wave_packed_ref = &wave_packed;
                let timed_out_ref = &timed_out;
                let errored_ref = &errored;
                let fill_error_ref = &fill_error;
                chunks
                    .into_par_iter()
                    .for_each_init(pool::take_scratch, |scratch, mut chunk| {
                        if timed_out_ref.load(AtomicOrdering::Relaxed)
                            || errored_ref.load(AtomicOrdering::Relaxed)
                        {
                            return;
                        }
                        if Instant::now() > deadline {
                            timed_out_ref.store(true, AtomicOrdering::Relaxed);
                            return;
                        }
                        let i = wave[chunk.plan_idx];
                        if let Err(e) = fill_chunk(
                            tables,
                            &plans_ref[i],
                            &wave_children_ref[chunk.plan_idx],
                            wave_packed_ref[chunk.plan_idx].as_ref(),
                            dp_ref,
                            scratch,
                            &mut chunk,
                            opts.kernel,
                        ) {
                            errored_ref.store(true, AtomicOrdering::Relaxed);
                            fill_error_ref.lock().unwrap().get_or_insert(e);
                        }
                    });
            } else {
                let mut scratch = pool::take_scratch();
                for (w, (costs, choice)) in outs.iter_mut().enumerate() {
                    if Instant::now() > deadline {
                        timed_out.store(true, AtomicOrdering::Relaxed);
                        break;
                    }
                    let i = wave[w];
                    let mut chunk = FillChunk {
                        plan_idx: w,
                        start: 0,
                        costs,
                        choice,
                    };
                    if let Err(e) = fill_chunk(
                        tables,
                        &plans[i],
                        &wave_children[w],
                        wave_packed[w].as_ref(),
                        &dp,
                        &mut scratch,
                        &mut chunk,
                        opts.kernel,
                    ) {
                        errored.store(true, AtomicOrdering::Relaxed);
                        fill_error.lock().unwrap().get_or_insert(e);
                        break;
                    }
                }
            }
            drop(kernel_span);
            wave_span.arg("tables", wave.len());
            wave_span.arg("entries", total_entries);
            drop(wave_span);
            if timed_out.load(AtomicOrdering::Relaxed) || errored.load(AtomicOrdering::Relaxed) {
                for (costs, choice) in outs {
                    pool::recycle_table(costs, choice);
                }
                recycle_tables(dp);
                if let Some(e) = fill_error.lock().unwrap().take() {
                    return Err(e);
                }
                stats.elapsed = start.elapsed();
                return Ok(SearchOutcome::Timeout { stats });
            }
            for (w, (costs, choice)) in outs.into_iter().enumerate() {
                finish(&mut dp, wave[w], costs, choice);
            }
            if let Some(t) = trace {
                allocated_entries += total_entries as u64;
                t.counter("table_bytes", allocated_entries * DP_ENTRY_BYTES);
                if opts.kernel == DpKernel::Tiled {
                    t.counter("packed_bytes", packed_bytes.load(AtomicOrdering::Relaxed));
                }
            }
        }
    } else {
        // Strictly sequential fill in position order (the wavefront
        // schedule produces bit-identical tables; this path exists for
        // measurement and as the oracle in scheduling tests).
        let mut fill_span = span_in(trace, phase::SEQUENTIAL_FILL);
        fill_span.arg("tables", n);
        fill_span.arg("entries", stats.table_entries);
        let kernel_span = span_in(ktrace, phase::KERNEL);
        let mut scratch = pool::take_scratch();
        for i in 0..n {
            let children = children_of(i);
            let packed = (opts.kernel == DpKernel::Tiled)
                .then(|| kernel::pack_vertex(tables, &plans[i], &children, &dp));
            if let Some(p) = &packed {
                packed_bytes.fetch_add(p.packed_bytes, AtomicOrdering::Relaxed);
            }
            let size = plans[i].size as usize;
            let (mut costs, mut choice) = pool::take_table(size);
            for lo in (0..size).step_by(CHUNK) {
                if Instant::now() > deadline {
                    pool::recycle_table(costs, choice);
                    recycle_tables(dp);
                    stats.elapsed = start.elapsed();
                    return Ok(SearchOutcome::Timeout { stats });
                }
                let hi = (lo + CHUNK).min(size);
                let mut chunk = FillChunk {
                    plan_idx: i,
                    start: lo as u64,
                    costs: &mut costs[lo..hi],
                    choice: &mut choice[lo..hi],
                };
                if let Err(e) = fill_chunk(
                    tables,
                    &plans[i],
                    &children,
                    packed.as_ref(),
                    &dp,
                    &mut scratch,
                    &mut chunk,
                    opts.kernel,
                ) {
                    pool::recycle_table(costs, choice);
                    recycle_tables(dp);
                    return Err(e);
                }
            }
            finish(&mut dp, i, costs, choice);
        }
        drop(kernel_span);
        if let Some(t) = trace {
            if opts.kernel == DpKernel::Tiled {
                t.counter("packed_bytes", packed_bytes.load(AtomicOrdering::Relaxed));
            }
        }
    }

    // Total minimum cost: sum of the (singleton) root tables.
    let mut backtrack_span = span_in(trace, phase::BACKTRACK);
    backtrack_span.arg("roots", structure.roots().len());
    let mut total = 0.0;
    for &r in structure.roots() {
        let t = dp[r].as_ref().expect("root table");
        debug_assert!(t.dep.is_empty(), "root must have an empty dependent set");
        total += t.costs[0];
    }

    // Back-substitution: walk from each root, assigning the stored argmin
    // configuration and recursing into the connected subsets with the
    // restricted substrategy. Assignments are kept sorted by node id so
    // lookups are binary searches / merge walks instead of linear scans.
    let mut ids = vec![u16::MAX; n];
    let mut stack: Vec<(usize, Vec<(NodeId, u16)>)> =
        structure.roots().iter().map(|&r| (r, Vec::new())).collect();
    while let Some((i, assignment)) = stack.pop() {
        let t = dp[i].as_ref().expect("table");
        let vi = structure.vertex(i);
        let flat = t.flat_index_of(&assignment);
        let c = t.choice[flat];
        ids[vi.index()] = c;
        let mut extended = assignment;
        let at = extended.partition_point(|&(w, _)| w < vi);
        extended.insert(at, (vi, c));
        for &j in structure.subset_anchors(i) {
            let child_dep = &dp[j].as_ref().expect("child").dep;
            // child_dep is sorted, so the mapped assignment stays sorted.
            let child_assignment: Vec<(NodeId, u16)> = child_dep
                .iter()
                .map(|&w| {
                    let slot = extended
                        .binary_search_by_key(&w, |&(n, _)| n)
                        .expect("child dependent set must be covered");
                    (w, extended[slot].1)
                })
                .collect();
            stack.push((j, child_assignment));
        }
    }
    debug_assert!(
        ids.iter().all(|&c| c != u16::MAX),
        "every node must be assigned"
    );
    drop(backtrack_span);
    recycle_tables(dp);

    stats.elapsed = start.elapsed();
    Ok(SearchOutcome::Found(SearchResult {
        cost: total,
        config_ids: ids,
        stats,
    }))
}

/// The prune-then-search pipeline behind [`crate::Search::pruning`]: a
/// [`pase_obs::phase::PRUNE`] span for the dominance-pruning pass plus
/// everything [`run_with_structure`] records for the DP proper.
///
/// Prunes `tables` first (see [`PrunedTables`]), runs the DP on the
/// compacted tables — every dependent-set table is `∏ |C(w)|` entries wide,
/// so the pruned `K` shrinks table sizes, fill work, and the budget
/// accounting multiplicatively — and maps the argmin configuration ids back
/// into the id space of the `tables` passed in. With `prune.epsilon == 0.0`
/// the pruning is exact and the returned cost is bit-identical to the
/// unpruned DP on the same tables; with a positive ε it is only guaranteed
/// within `(1 + ε)` of the true optimum.
///
/// `stats.k_before` reports the pre-pruning `K` (while `stats.max_configs`
/// is the pruned `K` the DP actually saw) and `stats.prune_time` the cost
/// of the pruning pass, which is *included* in the budget's wall clock and
/// in the reported `stats.elapsed`. If pruning alone exhausts the time
/// budget the outcome is [`SearchOutcome::Timeout`] — the DP is never
/// entered with a zero budget.
///
/// The caller-supplied [`VertexStructure`] (if any) is table-independent,
/// so the one the adaptive gate built for its estimate drives the pruned
/// DP unchanged.
pub(crate) fn run_pruned_with_structure(
    graph: &Graph,
    tables: &CostTables,
    opts: &DpOptions,
    prune: &PruneOptions,
    trace: Option<&Trace>,
    prebuilt: Option<VertexStructure>,
) -> Result<SearchOutcome, GraphError> {
    let pruned = PrunedTables::build_traced(graph, tables, prune, trace);
    let ps = *pruned.stats();
    if ps.elapsed >= opts.budget.max_time {
        // Pruning alone exhausted the wall clock. Report Timeout directly:
        // entering the DP with a zero remaining budget could instead trip
        // its OOM check first and mislabel the failure.
        let stats = SearchStats {
            max_configs: pruned.tables().max_k(),
            k_before: ps.k_before,
            prune_time: ps.elapsed,
            elapsed: ps.elapsed,
            dp_kernel: opts.kernel.as_str(),
            ..SearchStats::default()
        };
        return Ok(SearchOutcome::Timeout { stats });
    }
    let mut remaining = *opts;
    remaining.budget.max_time = opts.budget.max_time - ps.elapsed;
    let mut outcome = run_with_structure(graph, pruned.tables(), &remaining, trace, prebuilt)?;
    match &mut outcome {
        SearchOutcome::Found(r) => {
            r.config_ids = pruned.to_original_ids(&r.config_ids);
            r.stats.k_before = ps.k_before;
            r.stats.prune_time = ps.elapsed;
            r.stats.elapsed += ps.elapsed;
        }
        SearchOutcome::Oom { stats, .. }
        | SearchOutcome::Timeout { stats }
        | SearchOutcome::Infeasible { stats, .. } => {
            stats.k_before = ps.k_before;
            stats.prune_time = ps.elapsed;
            stats.elapsed += ps.elapsed;
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use crate::Search;
    use pase_cost::{ConfigRule, MachineSpec};
    use pase_graph::{DimRole, GraphBuilder, IterDim, Node, OpKind, TensorRef};

    fn fc(name: &str, ins: usize, b: u64, n: u64, c: u64) -> Node {
        let dims = vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("n", n, DimRole::Param),
            IterDim::new("c", c, DimRole::Reduction),
        ];
        Node {
            name: name.into(),
            op: OpKind::FullyConnected,
            iter_space: dims,
            inputs: (0..ins)
                .map(|_| TensorRef::new(vec![0, 2], vec![b, c]))
                .collect(),
            output: TensorRef::new(vec![0, 1], vec![b, n]),
            params: vec![TensorRef::new(vec![1, 2], vec![n, c])],
        }
    }

    /// fc1 → fc2 → fc3 chain with distinct shapes.
    fn chain3() -> Graph {
        let mut bld = GraphBuilder::new();
        let a = bld.add_node(fc("fc1", 0, 64, 128, 256));
        let b = bld.add_node(fc("fc2", 1, 64, 256, 128));
        let c = bld.add_node(fc("fc3", 1, 64, 64, 256));
        bld.connect(a, b);
        bld.connect(b, c);
        bld.build().unwrap()
    }

    /// Diamond: fc1 → {fc2, fc3} → concat-like fc4 (two inputs).
    fn diamond() -> Graph {
        let mut bld = GraphBuilder::new();
        let a = bld.add_node(fc("a", 0, 64, 128, 128));
        let b = bld.add_node(fc("b", 1, 64, 128, 128));
        let c = bld.add_node(fc("c", 1, 64, 128, 128));
        let d = bld.add_node(fc("d", 2, 64, 128, 128));
        bld.connect(a, b);
        bld.connect(a, c);
        bld.connect(b, d);
        bld.connect(c, d);
        bld.build().unwrap()
    }

    fn check_against_brute(g: &Graph, p: u32) {
        let tables = CostTables::build(g, ConfigRule::new(p), &MachineSpec::test_machine());
        let (bf_cost, _) = brute_force(g, &tables);
        for (label, opts) in [
            ("generate-seq/exact", DpOptions::default()),
            (
                "bfs/prefix",
                DpOptions {
                    ordering: OrderingKind::BreadthFirst,
                    mode: ConnectedSetMode::Prefix,
                    ..DpOptions::default()
                },
            ),
            (
                "random/exact",
                DpOptions {
                    ordering: OrderingKind::Random { seed: 7 },
                    ..DpOptions::default()
                },
            ),
        ] {
            let r = Search::new(g)
                .tables(&tables)
                .dp_options(opts)
                .run()
                .expect_found(label);
            assert!(
                (r.cost - bf_cost).abs() <= 1e-6 * bf_cost.abs().max(1.0),
                "{label}: DP cost {} != brute-force {}",
                r.cost,
                bf_cost
            );
            // The extracted strategy must evaluate to exactly the DP cost.
            let eval = tables.evaluate_ids(g, &r.config_ids);
            assert!(
                (eval - r.cost).abs() <= 1e-6 * r.cost.abs().max(1.0),
                "{label}: extracted strategy evaluates to {} but DP claims {}",
                eval,
                r.cost
            );
        }
    }

    #[test]
    fn dp_matches_brute_force_on_chain() {
        check_against_brute(&chain3(), 4);
    }

    #[test]
    fn dp_matches_brute_force_on_diamond() {
        check_against_brute(&diamond(), 4);
    }

    #[test]
    fn dp_matches_brute_force_on_disconnected_graph() {
        let mut bld = GraphBuilder::new();
        let a = bld.add_node(fc("a", 0, 64, 128, 128));
        let b = bld.add_node(fc("b", 1, 64, 128, 128));
        bld.connect(a, b);
        let _ = bld.add_node(fc("solo", 0, 64, 256, 64));
        let g = bld.build().unwrap();
        check_against_brute(&g, 4);
    }

    #[test]
    fn oom_budget_aborts_cleanly() {
        let g = diamond();
        let tables = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        let run = Search::new(&g)
            .tables(&tables)
            .budget(SearchBudget::with_max_entries(2))
            .run();
        match run.into_outcome() {
            SearchOutcome::Oom { needed_entries, .. } => assert!(needed_entries > 2),
            other => panic!("expected OOM, got {}", other.tag()),
        }
    }

    #[test]
    fn timeout_budget_aborts_cleanly() {
        let g = diamond();
        let tables = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        let outcome = Search::new(&g)
            .tables(&tables)
            .budget(SearchBudget::with_max_time(std::time::Duration::ZERO))
            .run()
            .into_outcome();
        match outcome {
            SearchOutcome::Timeout { .. } => {}
            other => panic!("expected timeout, got {}", other.tag()),
        }
    }

    #[test]
    fn empty_graph_is_trivially_solved() {
        let g = GraphBuilder::new().build().unwrap();
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let r = Search::new(&g).tables(&tables).run().expect_found("empty");
        assert_eq!(r.cost, 0.0);
        assert!(r.config_ids.is_empty());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let g = diamond();
        let tables = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        let par = Search::new(&g)
            .tables(&tables)
            .run()
            .expect_found("parallel");
        let ser = Search::new(&g)
            .tables(&tables)
            .parallel(false)
            .run()
            .expect_found("serial");
        assert_eq!(par.cost, ser.cost);
        assert_eq!(par.config_ids, ser.config_ids);
    }

    #[test]
    fn wavefront_and_sequential_schedules_agree_on_benchmarks() {
        // The wavefront schedule must be a pure reordering of the work: on
        // every paper benchmark model the costs AND the extracted per-node
        // configuration ids must match the sequential fill exactly.
        for bench in pase_models::Benchmark::all() {
            let g = bench.build();
            let tables = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
            let wavefront = Search::new(&g)
                .tables(&tables)
                .run()
                .expect_found(bench.name());
            let sequential = Search::new(&g)
                .tables(&tables)
                .parallel(false)
                .run()
                .expect_found(bench.name());
            assert_eq!(
                wavefront.cost.to_bits(),
                sequential.cost.to_bits(),
                "{}: wavefront cost {} != sequential cost {}",
                bench.name(),
                wavefront.cost,
                sequential.cost
            );
            assert_eq!(
                wavefront.config_ids,
                sequential.config_ids,
                "{}: schedules disagree on the argmin strategy",
                bench.name()
            );
            assert!(wavefront.stats.wavefronts > 0);
            assert!(wavefront.stats.max_wavefront_width >= 1);
        }
    }

    #[test]
    fn naive_helper_equals_efficient_result() {
        let g = chain3();
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let eff = Search::new(&g)
            .tables(&tables)
            .run()
            .expect_found("efficient");
        let naive = naive_best_strategy(&g, &tables, SearchBudget::default()).expect_found("naive");
        assert!((eff.cost - naive.cost).abs() <= 1e-9 * eff.cost);
    }

    #[test]
    fn prefix_mode_is_ordering_agnostic() {
        // Recurrence (2)'s single-child form is exact for *any* vertex
        // ordering — including ones that interleave two chains before
        // their join (this graph caught a components-based prefix
        // implementation double-counting shared sub-solutions).
        let mut bld = GraphBuilder::new();
        let a0 = bld.add_node(fc("a0", 0, 32, 64, 64));
        let a1 = bld.add_node(fc("a1", 1, 32, 64, 64));
        let b0 = bld.add_node(fc("b0", 0, 32, 64, 64));
        let b1 = bld.add_node(fc("b1", 1, 32, 64, 64));
        let hub = bld.add_node(fc("hub", 2, 32, 64, 64));
        bld.connect(a0, a1);
        bld.connect(b0, b1);
        bld.connect(a1, hub);
        bld.connect(b1, hub);
        let g = bld.build().unwrap();
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let exact = Search::new(&g).tables(&tables).run().expect_found("exact");
        for ordering in [
            OrderingKind::GenerateSeq,
            OrderingKind::BreadthFirst,
            OrderingKind::Random { seed: 5 },
        ] {
            let got = Search::new(&g)
                .tables(&tables)
                .ordering(ordering)
                .connected_sets(ConnectedSetMode::Prefix)
                .run()
                .expect_found("prefix")
                .cost;
            assert!(
                (got - exact.cost).abs() <= 1e-9 * exact.cost,
                "{ordering:?}: prefix {got} vs exact {}",
                exact.cost
            );
        }
    }

    #[test]
    fn stats_are_populated() {
        let g = diamond();
        // Force interning despite the tiny graph so the hit-rate stat is
        // exercised (diamond is below the default size gate).
        let tables = CostTables::build_with(
            &g,
            ConfigRule::new(4),
            &MachineSpec::test_machine(),
            &pase_cost::TableOptions {
                intern_min_nodes: 0,
                ..pase_cost::TableOptions::default()
            },
        );
        let r = Search::new(&g).tables(&tables).run().expect_found("stats");
        assert!(r.stats.states_evaluated > 0);
        assert!(r.stats.table_entries > 0);
        assert!(r.stats.max_configs > 0);
        assert_eq!(r.stats.k_before, r.stats.max_configs);
        assert!(r.stats.wavefronts > 0);
        assert!(r.stats.max_wavefront_width >= 1);
        // Diamond has repeated structures (b/c identical), so the interned
        // build must report sharing.
        assert!(r.stats.intern_hit_rate.expect("interning ran") > 0.0);
        assert_eq!(r.stats.dp_kernel, DpKernel::default().as_str());
    }

    #[test]
    fn skipped_interning_reports_no_hit_rate() {
        // Diamond is below the default `intern_min_nodes` size gate, so the
        // interning pass never runs — the hit rate must be absent, not a
        // misleading 0%.
        let g = diamond();
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let r = Search::new(&g).tables(&tables).run().expect_found("gated");
        assert_eq!(r.stats.intern_hit_rate, None);
    }

    #[test]
    fn scalar_and_tiled_kernels_agree_bitwise() {
        for g in [chain3(), diamond()] {
            let tables = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
            let scalar = Search::new(&g)
                .tables(&tables)
                .dp_kernel(DpKernel::Scalar)
                .run()
                .expect_found("scalar");
            let tiled = Search::new(&g)
                .tables(&tables)
                .dp_kernel(DpKernel::Tiled)
                .run()
                .expect_found("tiled");
            assert_eq!(scalar.cost.to_bits(), tiled.cost.to_bits());
            assert_eq!(scalar.config_ids, tiled.config_ids);
            assert_eq!(scalar.stats.dp_kernel, "scalar");
            assert_eq!(tiled.stats.dp_kernel, "tiled");
        }
    }

    #[test]
    fn tiled_search_records_kernel_span_and_packed_bytes() {
        use pase_obs::Trace;
        let g = diamond();
        let tables = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        let trace = Trace::new();
        Search::new(&g)
            .tables(&tables)
            .dp_kernel(DpKernel::Tiled)
            .trace(&trace)
            .run()
            .expect_found("tiled traced");
        let names: Vec<String> = trace.spans().iter().map(|s| s.name.clone()).collect();
        assert!(names.iter().any(|n| n == phase::KERNEL), "spans: {names:?}");
        // Diamond has at least one later edge with the vertex on the source
        // side, so the tiled kernel must report transposed panel bytes.
        assert!(trace
            .counters()
            .iter()
            .any(|c| c.name == "packed_bytes" && c.value > 0));

        // The scalar kernel records neither.
        let trace = Trace::new();
        Search::new(&g)
            .tables(&tables)
            .dp_kernel(DpKernel::Scalar)
            .trace(&trace)
            .run()
            .expect_found("scalar traced");
        assert!(!trace.spans().iter().any(|s| s.name == phase::KERNEL));
        assert!(!trace.counters().iter().any(|c| c.name == "packed_bytes"));
    }

    #[test]
    fn budget_exhausted_during_pruning_is_a_timeout() {
        // Regression: a zero time budget used to be passed on to the DP as
        // a saturated-to-zero remaining budget; the failure must instead be
        // reported as Timeout before the DP is entered, with the pruning
        // time accounted in the stats.
        let g = diamond();
        let tables = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        let outcome = Search::new(&g)
            .tables(&tables)
            .budget(SearchBudget::with_max_time(std::time::Duration::ZERO))
            .pruning(PruneOptions::default())
            .run()
            .into_outcome();
        match outcome {
            SearchOutcome::Timeout { stats } => {
                assert!(stats.prune_time > std::time::Duration::ZERO);
                assert_eq!(stats.elapsed, stats.prune_time);
                assert!(stats.k_before > 0);
                // The DP never ran: no states were evaluated.
                assert_eq!(stats.states_evaluated, 0);
            }
            other => panic!("expected timeout, got {}", other.tag()),
        }
    }

    #[test]
    fn pruned_search_elapsed_includes_prune_time() {
        let g = diamond();
        let tables = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        let r = Search::new(&g)
            .tables(&tables)
            .pruning(PruneOptions::default())
            .run()
            .expect_found("pruned");
        assert!(r.stats.prune_time > std::time::Duration::ZERO);
        assert!(
            r.stats.elapsed >= r.stats.prune_time,
            "elapsed {:?} must include prune_time {:?}",
            r.stats.elapsed,
            r.stats.prune_time
        );
    }

    #[test]
    fn peak_table_bytes_tracks_real_entry_size() {
        use crate::budget::DP_ENTRY_BYTES;
        let g = diamond();
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let r = Search::new(&g).tables(&tables).run().expect_found("peak");
        // Tables are never freed before back-substitution, so the peak is
        // exactly the total accounted entries times the real entry size.
        assert!(r.stats.table_entries > 0);
        assert_eq!(
            r.stats.peak_table_bytes,
            r.stats.table_entries * DP_ENTRY_BYTES
        );
    }

    #[test]
    fn traced_search_records_pipeline_spans() {
        use pase_obs::Trace;
        let g = diamond();
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let trace = Trace::new();
        let r = Search::new(&g)
            .tables(&tables)
            .trace(&trace)
            .run()
            .expect_found("traced");
        let spans = trace.spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&phase::STRUCTURE), "spans: {names:?}");
        assert!(names.contains(&phase::PLAN), "spans: {names:?}");
        assert!(names.contains(&phase::BACKTRACK), "spans: {names:?}");
        let waves = names.iter().filter(|n| phase::is_wavefront(n)).count();
        assert_eq!(waves, r.stats.wavefronts, "one span per DP wavefront");
        // The table-memory counter was sampled after each wave and ends at
        // the accounted total.
        let samples: Vec<u64> = trace
            .counters()
            .iter()
            .filter(|c| c.name == "table_bytes")
            .map(|c| c.value)
            .collect();
        assert_eq!(samples.len(), r.stats.wavefronts);
        assert_eq!(samples.last().copied(), Some(r.stats.peak_table_bytes));
        assert!(samples.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn traced_sequential_fill_records_fill_span() {
        use pase_obs::Trace;
        let g = chain3();
        let tables = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        let trace = Trace::new();
        Search::new(&g)
            .tables(&tables)
            .parallel(false)
            .trace(&trace)
            .run()
            .expect_found("sequential traced");
        let names: Vec<String> = trace.spans().iter().map(|s| s.name.clone()).collect();
        assert!(names.iter().any(|n| n == phase::SEQUENTIAL_FILL));
        assert!(!names.iter().any(|n| phase::is_wavefront(n)));
    }

    #[test]
    fn traced_pruned_search_records_prune_span() {
        use pase_obs::Trace;
        let g = diamond();
        let tables = CostTables::build(&g, ConfigRule::new(8), &MachineSpec::test_machine());
        let trace = Trace::new();
        let r = Search::new(&g)
            .tables(&tables)
            .pruning(PruneOptions::default())
            .trace(&trace)
            .run()
            .expect_found("pruned traced");
        let names: Vec<String> = trace.spans().iter().map(|s| s.name.clone()).collect();
        assert!(names.iter().any(|n| n == phase::PRUNE), "spans: {names:?}");
        // The disjoint pipeline spans must account for (nearly) all of the
        // reported elapsed time; they are a partition of the run, so their
        // sum cannot exceed it either.
        let sum = trace.span_time_where(|n| {
            n == phase::PRUNE
                || n == phase::STRUCTURE
                || n == phase::PLAN
                || n == phase::BACKTRACK
                || phase::is_wavefront(n)
        });
        assert!(
            sum <= r.stats.elapsed * 11 / 10,
            "span sum {sum:?} exceeds elapsed {:?}",
            r.stats.elapsed
        );
    }

    #[test]
    fn pruned_search_is_bit_identical_and_back_maps() {
        for g in [chain3(), diamond()] {
            for p in [4u32, 8] {
                let tables =
                    CostTables::build(&g, ConfigRule::new(p), &MachineSpec::test_machine());
                let plain = Search::new(&g).tables(&tables).run().expect_found("plain");
                let pruned = Search::new(&g)
                    .tables(&tables)
                    .pruning(PruneOptions::default())
                    .run()
                    .expect_found("pruned");
                assert_eq!(
                    pruned.cost.to_bits(),
                    plain.cost.to_bits(),
                    "p = {p}: pruned cost {} != unpruned {}",
                    pruned.cost,
                    plain.cost
                );
                // Back-mapped ids index the *original* tables and evaluate
                // to the optimum there (up to summation-order rounding).
                let eval = tables.evaluate_ids(&g, &pruned.config_ids);
                assert!(
                    (eval - plain.cost).abs() <= 1e-9 * plain.cost.abs().max(1.0),
                    "back-mapped strategy evaluates to {eval}, optimum {}",
                    plain.cost
                );
                assert!(pruned.stats.k_before >= pruned.stats.max_configs);
                assert!(pruned.stats.k_before > 0);
            }
        }
    }
}
