//! Machine-readable search reports.
//!
//! A [`SearchReport`] aggregates one search invocation — what was searched,
//! how it ended, the [`SearchStats`], and a per-phase wall-time breakdown
//! derived from a [`pase_obs::Trace`] — into a stable JSON object. The CLI
//! embeds it in `--json` output and `bench_search` emits one per
//! `(model, devices)` cell, so Table I-style runs can be diffed and plotted
//! without scraping log text.

use crate::budget::{SearchOutcome, SearchStats};
use pase_obs::{json, phase, Trace};
use std::fmt::Write;
use std::time::Duration;

/// Version of every persisted JSON artifact of the search stack — the
/// [`SearchReport`] wire/`--json` format and the strategy cache's on-disk
/// entries. Consumers must reject artifacts whose `schema_version` differs
/// (see [`crate::Error::SchemaVersion`]); bump this whenever a persisted
/// field changes shape or meaning.
///
/// Version history: 2 made `stats.intern_hit_rate` nullable (`null` =
/// interning never ran, distinct from a measured 0%) and added
/// `stats.dp_kernel`. 3 added the frontier fields
/// (`stats.frontier_len`, `stats.peak_strategy_bytes`) and the
/// `"infeasible"` outcome tag of memory-constrained searches. 4
/// introduced topology-aware device meshes: `stats.mesh_axes`, the wire
/// protocol's inline `"machine"` object, and a cache key that hashes the
/// full mesh-axis list instead of three scalar machine rates.
pub const SCHEMA_VERSION: u64 = 4;

/// Aggregated wall time of one pipeline phase.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseReport {
    /// Phase name (a [`pase_obs::phase`] constant; per-wavefront fill
    /// spans are folded into a single `"dp_fill"` entry).
    pub name: String,
    /// Summed duration of the phase's spans.
    pub time: Duration,
    /// Number of spans folded into this entry (1 for ordinary phases, the
    /// wavefront count for `"dp_fill"`).
    pub spans: usize,
}

/// One search invocation, ready for JSON serialization.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchReport {
    /// Model name (e.g. `"transformer"`).
    pub model: String,
    /// Device count the strategy was searched for.
    pub devices: u32,
    /// Outcome tag: `"ok"`, `"OOM"`, `"timeout"`, or `"infeasible"`.
    pub outcome: String,
    /// Optimal cost in FLOP units (`None` unless the outcome is `"ok"`).
    pub cost: Option<f64>,
    /// The search statistics.
    pub stats: SearchStats,
    /// Per-phase wall-time breakdown (empty when no trace was recorded).
    pub phases: Vec<PhaseReport>,
}

impl SearchReport {
    /// Build a report from a search outcome plus the trace that observed
    /// it (pass `None` when tracing was off — `phases` stays empty).
    pub fn new(
        model: impl Into<String>,
        devices: u32,
        outcome: &SearchOutcome,
        trace: Option<&Trace>,
    ) -> Self {
        Self {
            model: model.into(),
            devices,
            outcome: outcome.tag().to_string(),
            cost: outcome.found().map(|r| r.cost),
            stats: outcome.stats().clone(),
            phases: trace.map(phase_breakdown).unwrap_or_default(),
        }
    }

    /// Serialize as a JSON object (one line per field, stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        let _ = write!(out, "\"schema_version\": {SCHEMA_VERSION}");
        let _ = write!(out, ", \"model\": \"{}\"", json::escape(&self.model));
        let _ = write!(out, ", \"devices\": {}", self.devices);
        let _ = write!(out, ", \"outcome\": \"{}\"", json::escape(&self.outcome));
        match self.cost {
            Some(c) => {
                let _ = write!(out, ", \"cost\": {}", json::number(c));
            }
            None => out.push_str(", \"cost\": null"),
        }
        let s = &self.stats;
        let _ = write!(
            out,
            ", \"stats\": {{\"max_dependent_set\": {}, \"max_configs\": {}, \
             \"k_before\": {}, \"prune_time\": {}, \"table_entries\": {}, \
             \"peak_table_bytes\": {}, \"states_evaluated\": {}, \
             \"wavefronts\": {}, \"max_wavefront_width\": {}, \
             \"intern_hit_rate\": {}, \"dp_kernel\": \"{}\", \
             \"prune_skipped\": {}, \
             \"gate_dp_est\": {}, \"gate_prune_est\": {}, \
             \"frontier_len\": {}, \"peak_strategy_bytes\": {}, \
             \"mesh_axes\": {}, \"elapsed\": {}}}",
            s.max_dependent_set,
            s.max_configs,
            s.k_before,
            json::number(s.prune_time.as_secs_f64()),
            s.table_entries,
            s.peak_table_bytes,
            s.states_evaluated,
            s.wavefronts,
            s.max_wavefront_width,
            s.intern_hit_rate
                .map_or_else(|| "null".to_string(), |h| json::number(h).to_string()),
            json::escape(s.dp_kernel),
            s.prune_skipped,
            s.gate_dp_est,
            s.gate_prune_est,
            s.frontier_len,
            s.peak_strategy_bytes,
            s.mesh_axes,
            json::number(s.elapsed.as_secs_f64())
        );
        out.push_str(", \"phases\": {");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{}\": {{\"time\": {}, \"spans\": {}}}",
                json::escape(&p.name),
                json::number(p.time.as_secs_f64()),
                p.spans
            );
        }
        out.push_str("}}");
        out
    }
}

/// Fold a trace's spans into per-phase totals, with the per-wavefront fill
/// spans collapsed into one `"dp_fill"` entry. Phases appear in first-seen
/// (pipeline) order.
fn phase_breakdown(trace: &Trace) -> Vec<PhaseReport> {
    let mut phases: Vec<PhaseReport> = Vec::new();
    for span in trace.spans() {
        let name = if phase::is_wavefront(&span.name) {
            "dp_fill"
        } else {
            span.name.as_str()
        };
        match phases.iter_mut().find(|p| p.name == name) {
            Some(p) => {
                p.time += span.dur;
                p.spans += 1;
            }
            None => phases.push(PhaseReport {
                name: name.to_string(),
                time: span.dur,
                spans: 1,
            }),
        }
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::SearchResult;

    fn found_outcome() -> SearchOutcome {
        SearchOutcome::Found(SearchResult {
            cost: 42.5,
            config_ids: vec![0, 1],
            stats: SearchStats {
                table_entries: 100,
                peak_table_bytes: 1000,
                wavefronts: 2,
                elapsed: Duration::from_millis(5),
                ..SearchStats::default()
            },
        })
    }

    #[test]
    fn report_captures_outcome_and_phases() {
        let trace = Trace::new();
        trace.span(phase::STRUCTURE).finish();
        trace.span(phase::wavefront_name(0)).finish();
        trace.span(phase::wavefront_name(1)).finish();
        trace.span(phase::BACKTRACK).finish();
        let r = SearchReport::new("mlp", 8, &found_outcome(), Some(&trace));
        assert_eq!(r.outcome, "ok");
        assert_eq!(r.cost, Some(42.5));
        let fill = r.phases.iter().find(|p| p.name == "dp_fill").unwrap();
        assert_eq!(fill.spans, 2);
        assert!(r.phases.iter().any(|p| p.name == phase::STRUCTURE));
    }

    #[test]
    fn json_is_stable_and_parseable_shape() {
        let r = SearchReport::new("trans\"former", 64, &found_outcome(), None);
        let js = r.to_json();
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.starts_with("{\"schema_version\": 4"));
        assert!(js.contains("\"mesh_axes\": 0"));
        assert!(js.contains("\"model\": \"trans\\\"former\""));
        assert!(js.contains("\"devices\": 64"));
        assert!(js.contains("\"cost\": 42.5"));
        assert!(js.contains("\"peak_table_bytes\": 1000"));
        // Interning never ran for these stats: absent, not 0.
        assert!(js.contains("\"intern_hit_rate\": null"));
        assert!(js.contains("\"phases\": {}"));
        assert_eq!(js.matches('{').count(), js.matches('}').count());
    }

    #[test]
    fn measured_hit_rate_and_kernel_are_reported() {
        let outcome = SearchOutcome::Found(SearchResult {
            cost: 1.0,
            config_ids: vec![0],
            stats: SearchStats {
                intern_hit_rate: Some(0.25),
                dp_kernel: "tiled",
                ..SearchStats::default()
            },
        });
        let js = SearchReport::new("m", 8, &outcome, None).to_json();
        assert!(js.contains("\"intern_hit_rate\": 0.25"));
        assert!(js.contains("\"dp_kernel\": \"tiled\""));
    }

    #[test]
    fn frontier_fields_and_infeasible_tag_are_reported() {
        let inf = SearchOutcome::Infeasible {
            min_memory_bytes: 123,
            stats: SearchStats {
                frontier_len: 4,
                ..SearchStats::default()
            },
        };
        let js = SearchReport::new("m", 8, &inf, None).to_json();
        assert!(js.contains("\"outcome\": \"infeasible\""));
        assert!(js.contains("\"cost\": null"));
        assert!(js.contains("\"frontier_len\": 4"));
        assert!(js.contains("\"peak_strategy_bytes\": 0"));
    }

    #[test]
    fn failed_outcome_has_null_cost() {
        let oom = SearchOutcome::Oom {
            needed_entries: 7,
            stats: SearchStats::default(),
        };
        let js = SearchReport::new("m", 8, &oom, None).to_json();
        assert!(js.contains("\"outcome\": \"OOM\""));
        assert!(js.contains("\"cost\": null"));
    }
}
