//! VGG-16 (Simonyan & Zisserman 2014) — an additional CNN for the zoo.
//!
//! Structurally between AlexNet and Inception: a deep convolutional path
//! with *enormous* fully-connected layers (the fc6 weight alone is 102M
//! parameters), making it the classic showcase for OWT-style hybrid
//! parallelism — and a good stress test for the search's handling of
//! extreme compute/parameter imbalance.

use crate::ops;
use pase_graph::{Graph, GraphBuilder, NodeId};

/// Problem sizes for [`vgg16`].
#[derive(Clone, Copy, Debug)]
pub struct VggConfig {
    /// Mini-batch size.
    pub batch: u64,
    /// Output classes.
    pub classes: u64,
}

impl VggConfig {
    /// ImageNet configuration, batch 128.
    pub fn paper() -> Self {
        Self {
            batch: 128,
            classes: 1000,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn tiny() -> Self {
        Self {
            batch: 8,
            classes: 16,
        }
    }
}

/// Build the VGG-16 computation graph.
pub fn vgg16(cfg: &VggConfig) -> Graph {
    let b = cfg.batch;
    let mut g = GraphBuilder::new();
    let mut prev: Option<NodeId> = None;
    let mut c_in = 3u64;
    let mut h = 224u64;
    let connect = |g: &mut GraphBuilder, prev: &mut Option<NodeId>, id: NodeId| {
        if let Some(p) = *prev {
            g.connect(p, id);
        }
        *prev = Some(id);
    };
    // (stage channels, convs per stage) — the classic 2-2-3-3-3 layout.
    for (stage, &(ch, convs)) in [(64u64, 2usize), (128, 2), (256, 3), (512, 3), (512, 3)]
        .iter()
        .enumerate()
    {
        for i in 0..convs {
            let id = g.add_node(ops::conv2d(
                &format!("conv{}_{}", stage + 1, i + 1),
                b,
                c_in,
                h,
                h,
                ch,
                3,
                3,
                1,
            ));
            connect(&mut g, &mut prev, id);
            c_in = ch;
        }
        h /= 2;
        let flatten = stage == 4;
        let id = g.add_node(ops::pool2d(
            &format!("pool{}", stage + 1),
            b,
            ch,
            h,
            h,
            2,
            2,
            flatten,
        ));
        connect(&mut g, &mut prev, id);
    }
    let fc6 = g.add_node(ops::fully_connected("fc6", b, 4096, 512 * 49));
    connect(&mut g, &mut prev, fc6);
    let fc7 = g.add_node(ops::fully_connected("fc7", b, 4096, 4096));
    connect(&mut g, &mut prev, fc7);
    let fc8 = g.add_node(ops::fully_connected("fc8", b, cfg.classes, 4096));
    connect(&mut g, &mut prev, fc8);
    let sm = g.add_node(ops::softmax2("softmax", b, cfg.classes));
    connect(&mut g, &mut prev, sm);
    g.build().expect("vgg graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::is_weakly_connected;

    #[test]
    fn vgg16_is_a_path_with_the_right_depth() {
        let g = vgg16(&VggConfig::paper());
        // 13 convs + 5 pools + 3 fcs + softmax
        assert_eq!(g.len(), 22);
        assert!(is_weakly_connected(&g));
        crate::validate_edge_tensors(&g, 0.01).unwrap();
    }

    #[test]
    fn parameters_match_literature() {
        // ≈ 138M parameters, dominated by fc6 (25088 × 4096).
        let g = vgg16(&VggConfig::paper());
        let params = g.total_params();
        assert!((1.2e8..1.6e8).contains(&params), "params = {params:.3e}");
        let fc6 = g.nodes().iter().find(|n| n.name == "fc6").unwrap();
        assert!(fc6.param_elements() > 1e8);
    }

    #[test]
    fn flops_match_literature() {
        // ≈ 31 GFLOPs/sample forward (2 × 15.5 GMACs).
        let g = vgg16(&VggConfig::paper());
        let per_sample = g.nodes().iter().map(|n| n.fwd_flops()).sum::<f64>() / 128.0;
        assert!((2e10..5e10).contains(&per_sample), "fwd = {per_sample:.3e}");
    }
}
