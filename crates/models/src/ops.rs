//! Node constructors shared by all zoo models.
//!
//! Each constructor builds a [`Node`] with the iteration-space and
//! tensor-map conventions of the paper's Table II legend:
//!
//! | op            | dims      | meaning                                        |
//! |---------------|-----------|------------------------------------------------|
//! | conv / pool   | `bchwnrs` | batch, in-ch, height, width, out-ch, filter h/w |
//! | fc (2-d)      | `bnc`     | batch, out-features, in-features               |
//! | softmax       | `bn` / `bsv` | batch, classes / batch, seq, vocab          |
//! | embedding     | `bsdv`    | batch, seq, embed dim, vocab                   |
//! | LSTM operator | `lbsde`   | layers, batch, seq, input dim, hidden dim      |
//! | attention     | `bshck`   | batch, seq, heads, query ch, key/value ch      |
//! | feed-forward  | `bsde`    | batch, seq, model dim, hidden dim              |
//! | projection    | `bsvd`    | batch, seq, vocab, model dim                   |
//!
//! Sequence-to-sequence activations flow as rank-3 `(b, s, d)` tensors with
//! the model dimension mapped to the producing op's most natural iteration
//! dim (heads for attention). Feature-map activations flow as rank-4
//! `(b, c, h, w)` tensors; the `flatten` flag on pooling collapses the
//! output to rank-2 `(b, c·h·w)` for the CNN → FC boundary.

use pase_graph::{DimRole, IterDim, Node, OpKind, TensorRef};

/// 2-D convolution node: `b×c_in×h_in×w_in → b×c_out×h_out×w_out` with a
/// `k_h×k_w` filter and the given stride. `h_out`/`w_out` are the *output*
/// spatial extents (the iteration space ranges over output positions).
#[allow(clippy::too_many_arguments)]
pub fn conv2d(
    name: &str,
    b: u64,
    c_in: u64,
    h_out: u64,
    w_out: u64,
    c_out: u64,
    k_h: u32,
    k_w: u32,
    stride: u32,
) -> Node {
    let h_in = h_out * u64::from(stride);
    let w_in = w_out * u64::from(stride);
    Node {
        name: name.into(),
        op: OpKind::Conv2d {
            kernel_h: k_h,
            kernel_w: k_w,
            stride,
        },
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("c", c_in, DimRole::Reduction),
            IterDim::new("h", h_out, DimRole::Spatial),
            IterDim::new("w", w_out, DimRole::Spatial),
            IterDim::new("n", c_out, DimRole::Param),
            IterDim::fixed("r", u64::from(k_h), DimRole::Reduction),
            IterDim::fixed("s", u64::from(k_w), DimRole::Reduction),
        ],
        inputs: vec![TensorRef::new(vec![0, 1, 2, 3], vec![b, c_in, h_in, w_in])],
        output: TensorRef::new(vec![0, 4, 2, 3], vec![b, c_out, h_out, w_out]),
        params: vec![TensorRef::new(
            vec![4, 1, 5, 6],
            vec![c_out, c_in, u64::from(k_h), u64::from(k_w)],
        )],
    }
}

/// 2-D pooling node over `(b, c, h, w)`; `flatten` collapses the output to
/// rank-2 `(b, c·h·w)` for feeding a fully-connected layer.
#[allow(clippy::too_many_arguments)]
pub fn pool2d(
    name: &str,
    b: u64,
    c: u64,
    h_out: u64,
    w_out: u64,
    kernel: u32,
    stride: u32,
    flatten: bool,
) -> Node {
    let h_in = h_out * u64::from(stride);
    let w_in = w_out * u64::from(stride);
    let output = if flatten {
        TensorRef::new(vec![0, 1], vec![b, c * h_out * w_out])
    } else {
        TensorRef::new(vec![0, 1, 2, 3], vec![b, c, h_out, w_out])
    };
    Node {
        name: name.into(),
        op: OpKind::Pool2d { kernel, stride },
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("c", c, DimRole::Param),
            IterDim::new("h", h_out, DimRole::Spatial),
            IterDim::new("w", w_out, DimRole::Spatial),
        ],
        inputs: vec![TensorRef::new(vec![0, 1, 2, 3], vec![b, c, h_in, w_in])],
        output,
        params: vec![],
    }
}

/// Batch-normalization (+ fused activation) node over `(b, c, h, w)`.
pub fn batch_norm(name: &str, b: u64, c: u64, h: u64, w: u64) -> Node {
    Node {
        name: name.into(),
        op: OpKind::BatchNorm,
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("c", c, DimRole::Param),
            IterDim::new("h", h, DimRole::Spatial),
            IterDim::new("w", w, DimRole::Spatial),
        ],
        inputs: vec![TensorRef::new(vec![0, 1, 2, 3], vec![b, c, h, w])],
        output: TensorRef::new(vec![0, 1, 2, 3], vec![b, c, h, w]),
        params: vec![TensorRef::new(vec![1], vec![2 * c])], // scale + shift
    }
}

/// Channel-axis concatenation of `input_channels.len()` feature maps.
pub fn concat_channels(name: &str, b: u64, input_channels: &[u64], h: u64, w: u64) -> Node {
    let c_out: u64 = input_channels.iter().sum();
    Node {
        name: name.into(),
        op: OpKind::Concat,
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("c", c_out, DimRole::Param),
            IterDim::new("h", h, DimRole::Spatial),
            IterDim::new("w", w, DimRole::Spatial),
        ],
        inputs: input_channels
            .iter()
            .map(|&ci| TensorRef::new(vec![0, 1, 2, 3], vec![b, ci, h, w]))
            .collect(),
        output: TensorRef::new(vec![0, 1, 2, 3], vec![b, c_out, h, w]),
        params: vec![],
    }
}

/// Fully-connected layer over a rank-2 activation: `(b, c) → (b, n)`.
pub fn fully_connected(name: &str, b: u64, n: u64, c: u64) -> Node {
    Node {
        name: name.into(),
        op: OpKind::FullyConnected,
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("n", n, DimRole::Param),
            IterDim::new("c", c, DimRole::Reduction),
        ],
        inputs: vec![TensorRef::new(vec![0, 2], vec![b, c])],
        output: TensorRef::new(vec![0, 1], vec![b, n]),
        params: vec![TensorRef::new(vec![1, 2], vec![n, c])],
    }
}

/// Classification softmax over `(b, n)`.
pub fn softmax2(name: &str, b: u64, n: u64) -> Node {
    Node {
        name: name.into(),
        op: OpKind::Softmax,
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("n", n, DimRole::Param),
        ],
        inputs: vec![TensorRef::new(vec![0, 1], vec![b, n])],
        output: TensorRef::new(vec![0, 1], vec![b, n]),
        params: vec![],
    }
}

/// Sequence softmax over `(b, s, v)` (the LM / NMT output, Table II's
/// `bsv`).
pub fn softmax_seq(name: &str, b: u64, s: u64, v: u64) -> Node {
    Node {
        name: name.into(),
        op: OpKind::Softmax,
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("s", s, DimRole::Spatial),
            IterDim::new("v", v, DimRole::Param),
        ],
        inputs: vec![TensorRef::new(vec![0, 1, 2], vec![b, s, v])],
        output: TensorRef::new(vec![0, 1, 2], vec![b, s, v]),
        params: vec![],
    }
}

/// Embedding lookup `(b, s) → (b, s, d)` over a `v × d` table, modeled as a
/// one-hot × table GEMM with `v` as the contraction dim (Table II's
/// `bsdv`). Graph sources: no tensor inputs (token ids come from the data
/// pipeline).
pub fn embedding(name: &str, b: u64, s: u64, d: u64, v: u64) -> Node {
    Node {
        name: name.into(),
        op: OpKind::Embedding,
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("s", s, DimRole::Spatial),
            IterDim::new("d", d, DimRole::Param),
            IterDim::new("v", v, DimRole::Reduction),
        ],
        inputs: vec![],
        output: TensorRef::new(vec![0, 1, 2], vec![b, s, d]),
        params: vec![TensorRef::new(vec![3, 2], vec![v, d])],
    }
}

/// The whole multi-layer LSTM stack as a *single vertex* (§IV-A) with
/// iteration space `(l, b, s, d, e)`: splitting `l`/`s` captures
/// intra-operator pipeline parallelism.
pub fn lstm(name: &str, l: u32, b: u64, s: u64, d: u64, e: u64) -> Node {
    Node {
        name: name.into(),
        op: OpKind::Lstm { layers: l },
        iter_space: vec![
            IterDim::new("l", u64::from(l), DimRole::Pipeline),
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("s", s, DimRole::Pipeline),
            IterDim::new("d", d, DimRole::Reduction),
            IterDim::new("e", e, DimRole::Param),
        ],
        inputs: vec![TensorRef::new(vec![1, 2, 3], vec![b, s, d])],
        output: TensorRef::new(vec![1, 2, 4], vec![b, s, e]),
        // 4 gate matrices over (d + e) × e per layer ≈ l × d × 8e elements
        // (weights are indexed by layer, input dim and hidden dim).
        params: vec![TensorRef::new(
            vec![0, 3, 4],
            vec![u64::from(l), d + e, 4 * e],
        )],
    }
}

/// Fused multi-head attention block over `(b, s, h, c, k)` (Table II's
/// `bshck`): QKV projections, scores, context, output projection.
/// `extra_memory_input` adds a second `(b, s, d)` input for decoder
/// cross-attention (keys/values from the encoder output).
pub fn attention(
    name: &str,
    b: u64,
    s: u64,
    heads: u64,
    c_q: u64,
    c_kv: u64,
    extra_memory_input: bool,
) -> Node {
    let seq_in = TensorRef::new(vec![0, 1, 2], vec![b, s, heads * c_q]);
    let mut inputs = vec![seq_in.clone()];
    if extra_memory_input {
        inputs.push(seq_in);
    }
    Node {
        name: name.into(),
        op: OpKind::Attention,
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("s", s, DimRole::Spatial),
            IterDim::new("h", heads, DimRole::Param),
            IterDim::new("c", c_q, DimRole::Param),
            IterDim::new("k", c_kv, DimRole::Reduction),
        ],
        inputs,
        output: TensorRef::new(vec![0, 1, 2], vec![b, s, heads * c_q]),
        // Q, K, V, O projection blocks per head: 4 · d_model per (c, k).
        params: vec![TensorRef::new(
            vec![2, 3, 4],
            vec![heads, c_q, 4 * heads * c_kv],
        )],
    }
}

/// Position-wise feed-forward block over `(b, s, d, e)` (Table II's
/// `bsde`): two GEMMs `d → e → d`.
pub fn feed_forward(name: &str, b: u64, s: u64, d: u64, e: u64) -> Node {
    Node {
        name: name.into(),
        op: OpKind::FeedForward,
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("s", s, DimRole::Spatial),
            IterDim::new("d", d, DimRole::Param),
            IterDim::new("e", e, DimRole::Reduction),
        ],
        inputs: vec![TensorRef::new(vec![0, 1, 2], vec![b, s, d])],
        output: TensorRef::new(vec![0, 1, 2], vec![b, s, d]),
        params: vec![TensorRef::new(vec![2, 3], vec![d, 2 * e])],
    }
}

/// Final vocabulary projection `(b, s, e) → (b, s, v)` (Table II's `bsvd`).
pub fn projection(name: &str, b: u64, s: u64, v: u64, d: u64) -> Node {
    Node {
        name: name.into(),
        op: OpKind::FullyConnected,
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("s", s, DimRole::Spatial),
            IterDim::new("v", v, DimRole::Param),
            IterDim::new("d", d, DimRole::Reduction),
        ],
        inputs: vec![TensorRef::new(vec![0, 1, 3], vec![b, s, d])],
        output: TensorRef::new(vec![0, 1, 2], vec![b, s, v]),
        params: vec![TensorRef::new(vec![2, 3], vec![v, d])],
    }
}

/// Residual add / generic elementwise node over `(b, s, d)` with `ins`
/// inputs.
pub fn add_seq(name: &str, b: u64, s: u64, d: u64, ins: usize) -> Node {
    Node {
        name: name.into(),
        op: OpKind::Elementwise {
            flops_per_point: 1.0,
        },
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("s", s, DimRole::Spatial),
            IterDim::new("d", d, DimRole::Param),
        ],
        inputs: (0..ins)
            .map(|_| TensorRef::new(vec![0, 1, 2], vec![b, s, d]))
            .collect(),
        output: TensorRef::new(vec![0, 1, 2], vec![b, s, d]),
        params: vec![],
    }
}

/// Elementwise add over feature maps `(b, c, h, w)` (ResNet skip joins).
pub fn add_maps(name: &str, b: u64, c: u64, h: u64, w: u64, ins: usize) -> Node {
    Node {
        name: name.into(),
        op: OpKind::Elementwise {
            flops_per_point: 1.0,
        },
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("c", c, DimRole::Param),
            IterDim::new("h", h, DimRole::Spatial),
            IterDim::new("w", w, DimRole::Spatial),
        ],
        inputs: (0..ins)
            .map(|_| TensorRef::new(vec![0, 1, 2, 3], vec![b, c, h, w]))
            .collect(),
        output: TensorRef::new(vec![0, 1, 2, 3], vec![b, c, h, w]),
        params: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_flops_match_standard_formula() {
        // 2 · b · c · h · w · n · r · s forward FLOPs
        let n = conv2d("c", 32, 16, 28, 28, 64, 3, 3, 1);
        let expect = 2.0 * 32.0 * 16.0 * 28.0 * 28.0 * 64.0 * 9.0;
        assert_eq!(n.fwd_flops(), expect);
        assert_eq!(n.param_elements(), 64.0 * 16.0 * 9.0);
        assert_eq!(n.dims_string(), "bchwnrs");
    }

    #[test]
    fn strided_conv_input_is_larger() {
        let n = conv2d("c", 8, 3, 112, 112, 64, 7, 7, 2);
        assert_eq!(n.inputs[0].sizes[2], 224);
        assert_eq!(n.output.sizes[2], 112);
    }

    #[test]
    fn flattened_pool_output_is_rank_two() {
        let p = pool2d("p", 8, 256, 6, 6, 3, 2, true);
        assert_eq!(p.output.rank(), 2);
        assert_eq!(p.output.sizes[1], 256 * 36);
        // ... and maps the channel iteration dim
        assert_eq!(p.output.dims[1], 1);
    }

    #[test]
    fn concat_sums_channels() {
        let c = concat_channels("cat", 8, &[64, 96, 32], 35, 35);
        assert_eq!(c.inputs.len(), 3);
        assert_eq!(c.output.sizes[1], 192);
        assert_eq!(c.fwd_flops(), 0.0);
    }

    #[test]
    fn lstm_param_count_is_plausible() {
        // 2 layers, d=e=1024: 2 × (2048 × 4096) ≈ 16.8M
        let n = lstm("l", 2, 64, 40, 1024, 1024);
        assert_eq!(n.param_elements(), 2.0 * 2048.0 * 4096.0);
        assert_eq!(n.dims_string(), "lbsde");
    }

    #[test]
    fn attention_shapes_line_up() {
        let a = attention("a", 64, 128, 16, 64, 64, false);
        assert_eq!(a.output.sizes, vec![64, 128, 1024]);
        assert_eq!(a.dims_string(), "bshck");
        let x = attention("x", 64, 128, 16, 64, 64, true);
        assert_eq!(x.inputs.len(), 2);
    }

    #[test]
    fn embedding_and_projection_share_vocab_layout() {
        let e = embedding("e", 64, 40, 1024, 32768);
        let p = projection("p", 64, 40, 32768, 1024);
        assert_eq!(e.param_elements(), p.param_elements());
        assert_eq!(e.dims_string(), "bsdv");
        assert_eq!(p.dims_string(), "bsvd");
    }

    #[test]
    fn seq_ops_are_rank_three_compatible() {
        // A transformer residual chain must have matching tensor ranks.
        let a = attention("a", 8, 16, 4, 8, 8, false);
        let add = add_seq("add", 8, 16, 32, 2);
        let f = feed_forward("f", 8, 16, 32, 128);
        assert_eq!(a.output.rank(), add.inputs[0].rank());
        assert_eq!(add.output.rank(), f.inputs[0].rank());
    }
}
