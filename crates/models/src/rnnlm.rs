//! RNNLM (Mikolov et al. 2010) — §IV benchmark (c).
//!
//! A two-layer LSTM language model on the Billion-Word benchmark. Following
//! §IV-A, the *entire* recurrent stack (layers × timesteps) is represented
//! as a single vertex with the five-dimensional iteration space
//! `(l, b, s, d, e)`, so the computation graph reduces to a simple path:
//! embedding → LSTM → projection → softmax. Splitting the `l`/`s`
//! dimensions of the LSTM vertex captures intra-operator pipeline
//! parallelism (cf. Table II's `(2, 4, 1, 2, 2)` configuration at p = 32).

use crate::ops;
use pase_graph::{Graph, GraphBuilder};

/// Problem sizes for [`rnnlm`].
#[derive(Clone, Copy, Debug)]
pub struct RnnlmConfig {
    /// Mini-batch size (paper: 64).
    pub batch: u64,
    /// Unrolled sequence length (FlexFlow's unroll factor: 40).
    pub seq: u64,
    /// Embedding dimension.
    pub embed: u64,
    /// LSTM hidden dimension.
    pub hidden: u64,
    /// Vocabulary size (Billion-Word is ~800k; we use a power-of-two
    /// 32k shortlist — standard for sampled-softmax LM training — so that
    /// vocabulary splits stay aligned).
    pub vocab: u64,
    /// Number of stacked LSTM layers.
    pub layers: u32,
}

impl RnnlmConfig {
    /// The paper's evaluation configuration.
    pub fn paper() -> Self {
        Self {
            batch: 64,
            seq: 40,
            embed: 1024,
            hidden: 2048,
            vocab: 32768,
            layers: 2,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn tiny() -> Self {
        Self {
            batch: 8,
            seq: 8,
            embed: 64,
            hidden: 128,
            vocab: 512,
            layers: 2,
        }
    }
}

/// Build the RNNLM computation graph with the recurrence **unrolled** the
/// way FlexFlow models it (§IV-A: "the recurrent dimension is unrolled
/// (we use a unroll factor of 40 …) and each iteration is represented as a
/// vertex in the graph").
///
/// Per timestep: an embedding lookup feeding a lattice of LSTM-cell
/// vertices (`layers × seq` cells, each with recurrent and vertical
/// edges), gathered into the projection + softmax head. Compared to the
/// single-vertex representation this multiplies the graph size (~30×) and
/// loses the ability to express intra-operator pipeline parallelism — the
/// two advantages §IV-A claims for the 5-d iteration-space encoding. The
/// ablation harness quantifies both.
pub fn rnnlm_unrolled(cfg: &RnnlmConfig) -> Graph {
    use pase_graph::{DimRole, IterDim, Node, OpKind, TensorRef};
    let (b, s, d, e, v) = (cfg.batch, cfg.seq, cfg.embed, cfg.hidden, cfg.vocab);
    let mut g = GraphBuilder::new();

    // One embedding lookup per timestep (iteration space (b, d, v)).
    let embeds: Vec<_> = (0..s)
        .map(|t| {
            g.add_node(Node {
                name: format!("embed[t{t}]"),
                op: OpKind::Embedding,
                iter_space: vec![
                    IterDim::new("b", b, DimRole::Batch),
                    IterDim::new("d", d, DimRole::Param),
                    IterDim::new("v", v, DimRole::Reduction),
                ],
                inputs: vec![],
                output: TensorRef::new(vec![0, 1], vec![b, d]),
                params: vec![TensorRef::new(vec![2, 1], vec![v, d])],
            })
        })
        .collect();

    // The cell lattice: cell(l, t) ← cell(l, t−1) (recurrent) and
    // cell(l−1, t) / embed(t) (vertical).
    let cell = |l: u32, t: u64, in_dim: u64| Node {
        name: format!("lstm[l{l},t{t}]"),
        op: OpKind::Lstm { layers: 1 },
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("d", in_dim, DimRole::Reduction),
            IterDim::new("e", e, DimRole::Param),
        ],
        inputs: vec![
            TensorRef::new(vec![0, 1], vec![b, in_dim]), // from below
            TensorRef::new(vec![0, 2], vec![b, e]),      // recurrent
        ],
        output: TensorRef::new(vec![0, 2], vec![b, e]),
        params: vec![TensorRef::new(vec![1, 2], vec![in_dim + e, 4 * e])],
    };
    let mut prev_layer = embeds;
    let mut top = Vec::new();
    for l in 0..cfg.layers {
        let in_dim = if l == 0 { d } else { e };
        let mut row = Vec::with_capacity(s as usize);
        for t in 0..s {
            let mut node = cell(l, t, in_dim);
            if t == 0 {
                node.inputs.pop(); // no recurrent edge into the first step
            }
            let id = g.add_node(node);
            g.connect(prev_layer[t as usize], id);
            if t > 0 {
                g.connect(row[t as usize - 1], id);
            }
            row.push(id);
        }
        top = row.clone();
        prev_layer = row;
    }

    // Gather the top row back into a (b, s, e) sequence tensor.
    let gather = g.add_node(Node {
        name: "gather".into(),
        op: OpKind::Concat,
        iter_space: vec![
            IterDim::new("b", b, DimRole::Batch),
            IterDim::new("s", s, DimRole::Spatial),
            IterDim::new("e", e, DimRole::Param),
        ],
        inputs: (0..s)
            .map(|_| TensorRef::new(vec![0, 2], vec![b, e]))
            .collect(),
        output: TensorRef::new(vec![0, 1, 2], vec![b, s, e]),
        params: vec![],
    });
    for id in top {
        g.connect(id, gather);
    }

    let proj = g.add_node(ops::projection("fc", b, s, v, e));
    g.connect(gather, proj);
    let sm = g.add_node(ops::softmax_seq("softmax", b, s, v));
    g.connect(proj, sm);
    g.build().expect("unrolled rnnlm graph is well-formed")
}

/// Build the RNNLM computation graph (a 4-node path).
pub fn rnnlm(cfg: &RnnlmConfig) -> Graph {
    let mut g = GraphBuilder::new();
    let embed = g.add_node(ops::embedding(
        "embedding",
        cfg.batch,
        cfg.seq,
        cfg.embed,
        cfg.vocab,
    ));
    let lstm = g.add_node(ops::lstm(
        "lstm", cfg.layers, cfg.batch, cfg.seq, cfg.embed, cfg.hidden,
    ));
    let proj = g.add_node(ops::projection(
        "fc", cfg.batch, cfg.seq, cfg.vocab, cfg.hidden,
    ));
    let sm = g.add_node(ops::softmax_seq("softmax", cfg.batch, cfg.seq, cfg.vocab));
    g.connect(embed, lstm);
    g.connect(lstm, proj);
    g.connect(proj, sm);
    g.build().expect("rnnlm graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::{is_weakly_connected, GraphStats, OpKind};

    #[test]
    fn rnnlm_is_a_four_node_path() {
        let g = rnnlm(&RnnlmConfig::paper());
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(is_weakly_connected(&g));
        assert_eq!(GraphStats::of(&g).degrees.max, 2);
    }

    #[test]
    fn lstm_is_a_single_five_dimensional_vertex() {
        let g = rnnlm(&RnnlmConfig::paper());
        let lstm = g
            .nodes()
            .iter()
            .find(|n| matches!(n.op, OpKind::Lstm { .. }))
            .unwrap();
        assert_eq!(lstm.dims_string(), "lbsde");
        assert_eq!(lstm.dim_size("l"), Some(2));
        assert_eq!(lstm.dim_size("s"), Some(40));
    }

    #[test]
    fn embedding_dominates_parameters() {
        // With a 32k vocab and d=1024, the embedding + projection tables
        // (2 × 33.5M) dwarf the LSTM weights (≈ 50M vs 25M total scale).
        let g = rnnlm(&RnnlmConfig::paper());
        let embed = g.nodes().iter().find(|n| n.name == "embedding").unwrap();
        let lstm = g.nodes().iter().find(|n| n.name == "lstm").unwrap();
        assert!(embed.param_elements() > 3e7);
        assert!(lstm.param_elements() > 1e7);
    }

    #[test]
    fn edges_are_rank_consistent() {
        crate::validate_edge_tensors(&rnnlm(&RnnlmConfig::paper()), 0.01).unwrap();
        crate::validate_edge_tensors(&rnnlm(&RnnlmConfig::tiny()), 0.01).unwrap();
    }

    #[test]
    fn unrolled_graph_matches_flexflow_scale() {
        // §IV-A: unroll factor 40 with 2 layers → s embeds + l·s cells +
        // gather + fc + softmax.
        let cfg = RnnlmConfig::paper();
        let g = rnnlm_unrolled(&cfg);
        assert_eq!(
            g.len() as u64,
            cfg.seq + u64::from(cfg.layers) * cfg.seq + 3,
            "40 + 80 + 3 vertices"
        );
        assert!(pase_graph::is_weakly_connected(&g));
        crate::validate_edge_tensors(&g, 0.01).unwrap();
        // The gather vertex has degree s + 1.
        let max_deg = g.node_ids().map(|v| g.degree(v)).max().unwrap();
        assert_eq!(max_deg as u64, cfg.seq + 1);
    }

    #[test]
    fn unrolled_and_single_vertex_have_comparable_work() {
        // Same model, two graph encodings: total FLOPs within ~2×
        // (the coarse per-op coefficients differ slightly).
        let cfg = RnnlmConfig::tiny();
        let single = rnnlm(&cfg).total_step_flops();
        let unrolled = rnnlm_unrolled(&cfg).total_step_flops();
        let ratio = single.max(unrolled) / single.min(unrolled);
        assert!(ratio < 2.5, "flops ratio = {ratio}");
        // ... and identical parameter counts for the embedding/projection.
        let gs = rnnlm(&cfg);
        let gu = rnnlm_unrolled(&cfg);
        let find = |g: &pase_graph::Graph, n: &str| {
            g.nodes()
                .iter()
                .find(|x| x.name == n)
                .map(|x| x.param_elements())
                .unwrap()
        };
        assert_eq!(find(&gs, "fc"), find(&gu, "fc"));
    }
}
