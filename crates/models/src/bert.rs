//! BERT-style encoder-only Transformer (Devlin et al. 2018) — an
//! additional zoo model exercising the "future work" direction of applying
//! the search to newer architectures: a pure self-attention stack without
//! the decoder's long-live-range cross edges, so dependent sets stay at 2
//! even though the model is attention-heavy.

use crate::ops;
use pase_graph::{Graph, GraphBuilder};

/// Problem sizes for [`bert_encoder`].
#[derive(Clone, Copy, Debug)]
pub struct BertConfig {
    /// Mini-batch size.
    pub batch: u64,
    /// Sequence length.
    pub seq: u64,
    /// Model dimension.
    pub d_model: u64,
    /// Attention heads.
    pub heads: u64,
    /// Feed-forward hidden dimension.
    pub d_ff: u64,
    /// Vocabulary size.
    pub vocab: u64,
    /// Encoder layers.
    pub layers: usize,
}

impl BertConfig {
    /// BERT-large-like configuration.
    pub fn paper() -> Self {
        Self {
            batch: 64,
            seq: 128,
            d_model: 1024,
            heads: 16,
            d_ff: 4096,
            vocab: 32768,
            layers: 24,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn tiny() -> Self {
        Self {
            batch: 8,
            seq: 16,
            d_model: 64,
            heads: 4,
            d_ff: 128,
            vocab: 512,
            layers: 2,
        }
    }
}

/// Build the BERT-style encoder graph (embedding → N × (attention + FFN
/// with residuals) → MLM projection + softmax).
pub fn bert_encoder(cfg: &BertConfig) -> Graph {
    let (b, s, d) = (cfg.batch, cfg.seq, cfg.d_model);
    let hd = cfg.d_model / cfg.heads;
    let mut g = GraphBuilder::new();
    let embed = g.add_node(ops::embedding("embed", b, s, d, cfg.vocab));
    let mut cur = embed;
    for l in 0..cfg.layers {
        let attn = g.add_node(ops::attention(
            &format!("l{l}/attn"),
            b,
            s,
            cfg.heads,
            hd,
            hd,
            false,
        ));
        g.connect(cur, attn);
        let add1 = g.add_node(ops::add_seq(&format!("l{l}/add1"), b, s, d, 2));
        g.connect(cur, add1);
        g.connect(attn, add1);
        let ffn = g.add_node(ops::feed_forward(&format!("l{l}/ffn"), b, s, d, cfg.d_ff));
        g.connect(add1, ffn);
        let add2 = g.add_node(ops::add_seq(&format!("l{l}/add2"), b, s, d, 2));
        g.connect(add1, add2);
        g.connect(ffn, add2);
        cur = add2;
    }
    let proj = g.add_node(ops::projection("mlm_head", b, s, cfg.vocab, d));
    g.connect(cur, proj);
    let sm = g.add_node(ops::softmax_seq("softmax", b, s, cfg.vocab));
    g.connect(proj, sm);
    g.build().expect("bert graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::is_weakly_connected;

    #[test]
    fn structure_scales_with_layers() {
        let cfg = BertConfig::paper();
        let g = bert_encoder(&cfg);
        assert_eq!(g.len(), 1 + 4 * cfg.layers + 2);
        assert!(is_weakly_connected(&g));
        crate::validate_edge_tensors(&g, 0.01).unwrap();
    }

    #[test]
    fn parameters_match_bert_large_scale() {
        // BERT-large ≈ 340M (with a 32k-vocab embedding).
        let g = bert_encoder(&BertConfig::paper());
        let params = g.total_params();
        assert!((2.5e8..5e8).contains(&params), "params = {params:.3e}");
    }

    #[test]
    fn dependent_sets_stay_small_without_cross_attention() {
        use crate::validate_edge_tensors;
        let g = bert_encoder(&BertConfig::paper());
        validate_edge_tensors(&g, 0.01).unwrap();
        // residual diamonds only → GenerateSeq keeps |D| ≤ 2
        let max_deg = g.node_ids().map(|v| g.degree(v)).max().unwrap();
        assert!(
            max_deg <= 4,
            "no long-live-range vertices, max degree {max_deg}"
        );
    }
}
