//! InceptionV3 (Szegedy et al. 2015) — §IV benchmark (b).
//!
//! A deep CNN whose inception modules *split* the activation into parallel
//! branches and *concatenate* them at the end, producing the paper's
//! signature structure: a mostly sparse graph with a few high-degree nodes
//! (the module-input fan-outs and the concats — nodes 171/193 in the
//! paper's Fig. 5). With batch-norm modeled as its own node per
//! convolution, the graph has ≈ 219 nodes, matching the paper's reported
//! 218.
//!
//! Breadth-first ordering reaches dependent sets of ~10 here (hence the
//! Table I OOM); GenerateSeq keeps `|D(i)| ≤ 2`.

use crate::ops;
use pase_graph::{Graph, GraphBuilder, NodeId};

/// Problem sizes for [`inception_v3`].
#[derive(Clone, Copy, Debug)]
pub struct InceptionConfig {
    /// Mini-batch size (paper: 128).
    pub batch: u64,
    /// Output classes (ImageNet-1K: 1000).
    pub classes: u64,
}

impl InceptionConfig {
    /// The paper's evaluation configuration.
    pub fn paper() -> Self {
        Self {
            batch: 128,
            classes: 1000,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn tiny() -> Self {
        Self {
            batch: 16,
            classes: 64,
        }
    }
}

/// Builder-internal handle: a node id plus its output channel count.
#[derive(Clone, Copy)]
struct T {
    id: NodeId,
    ch: u64,
}

struct Ctx {
    g: GraphBuilder,
    b: u64,
    counter: usize,
}

impl Ctx {
    /// conv + batch-norm pair; returns the BN node as the branch output.
    #[allow(clippy::too_many_arguments)]
    fn conv_bn(
        &mut self,
        tag: &str,
        input: T,
        h_out: u64,
        w_out: u64,
        c_out: u64,
        k_h: u32,
        k_w: u32,
        stride: u32,
    ) -> T {
        self.counter += 1;
        let name = format!("{tag}_{}", self.counter);
        let conv = self.g.add_node(ops::conv2d(
            &format!("{name}/conv"),
            self.b,
            input.ch,
            h_out,
            w_out,
            c_out,
            k_h,
            k_w,
            stride,
        ));
        self.g.connect(input.id, conv);
        let bn = self.g.add_node(ops::batch_norm(
            &format!("{name}/bn"),
            self.b,
            c_out,
            h_out,
            w_out,
        ));
        self.g.connect(conv, bn);
        T { id: bn, ch: c_out }
    }

    fn pool(&mut self, tag: &str, input: T, h_out: u64, w_out: u64, kernel: u32, stride: u32) -> T {
        self.counter += 1;
        let p = self.g.add_node(ops::pool2d(
            &format!("{tag}_{}", self.counter),
            self.b,
            input.ch,
            h_out,
            w_out,
            kernel,
            stride,
            false,
        ));
        self.g.connect(input.id, p);
        T {
            id: p,
            ch: input.ch,
        }
    }

    fn concat(&mut self, tag: &str, inputs: &[T], h: u64, w: u64) -> T {
        self.counter += 1;
        let channels: Vec<u64> = inputs.iter().map(|t| t.ch).collect();
        let c = self.g.add_node(ops::concat_channels(
            &format!("{tag}_{}", self.counter),
            self.b,
            &channels,
            h,
            w,
        ));
        for t in inputs {
            self.g.connect(t.id, c);
        }
        T {
            id: c,
            ch: channels.iter().sum(),
        }
    }
}

/// InceptionA (35×35 grid): 1×1, 5×5, double-3×3 and pool branches.
fn inception_a(ctx: &mut Ctx, input: T, pool_ch: u64) -> T {
    let (h, w) = (35, 35);
    let b1 = ctx.conv_bn("A/b1x1", input, h, w, 64, 1, 1, 1);
    let b5 = ctx.conv_bn("A/b5x5a", input, h, w, 48, 1, 1, 1);
    let b5 = ctx.conv_bn("A/b5x5b", b5, h, w, 64, 5, 5, 1);
    let b3 = ctx.conv_bn("A/b3x3a", input, h, w, 64, 1, 1, 1);
    let b3 = ctx.conv_bn("A/b3x3b", b3, h, w, 96, 3, 3, 1);
    let b3 = ctx.conv_bn("A/b3x3c", b3, h, w, 96, 3, 3, 1);
    let bp = ctx.pool("A/pool", input, h, w, 3, 1);
    let bp = ctx.conv_bn("A/bpool", bp, h, w, pool_ch, 1, 1, 1);
    ctx.concat("A/concat", &[b1, b5, b3, bp], h, w)
}

/// InceptionB (grid reduction 35 → 17).
fn inception_b(ctx: &mut Ctx, input: T) -> T {
    let (h, w) = (17, 17);
    let b3 = ctx.conv_bn("B/b3x3", input, h, w, 384, 3, 3, 2);
    let bd = ctx.conv_bn("B/bdbl_a", input, 35, 35, 64, 1, 1, 1);
    let bd = ctx.conv_bn("B/bdbl_b", bd, 35, 35, 96, 3, 3, 1);
    let bd = ctx.conv_bn("B/bdbl_c", bd, h, w, 96, 3, 3, 2);
    let bp = ctx.pool("B/pool", input, h, w, 3, 2);
    ctx.concat("B/concat", &[b3, bd, bp], h, w)
}

/// InceptionC (17×17 grid, factorized 7×7 convolutions).
fn inception_c(ctx: &mut Ctx, input: T, c7: u64) -> T {
    let (h, w) = (17, 17);
    let b1 = ctx.conv_bn("C/b1x1", input, h, w, 192, 1, 1, 1);
    let b7 = ctx.conv_bn("C/b7a", input, h, w, c7, 1, 1, 1);
    let b7 = ctx.conv_bn("C/b7b", b7, h, w, c7, 1, 7, 1);
    let b7 = ctx.conv_bn("C/b7c", b7, h, w, 192, 7, 1, 1);
    let bd = ctx.conv_bn("C/bda", input, h, w, c7, 1, 1, 1);
    let bd = ctx.conv_bn("C/bdb", bd, h, w, c7, 7, 1, 1);
    let bd = ctx.conv_bn("C/bdc", bd, h, w, c7, 1, 7, 1);
    let bd = ctx.conv_bn("C/bdd", bd, h, w, c7, 7, 1, 1);
    let bd = ctx.conv_bn("C/bde", bd, h, w, 192, 1, 7, 1);
    let bp = ctx.pool("C/pool", input, h, w, 3, 1);
    let bp = ctx.conv_bn("C/bpool", bp, h, w, 192, 1, 1, 1);
    ctx.concat("C/concat", &[b1, b7, bd, bp], h, w)
}

/// InceptionD (grid reduction 17 → 8).
fn inception_d(ctx: &mut Ctx, input: T) -> T {
    let (h, w) = (8, 8);
    let b3 = ctx.conv_bn("D/b3a", input, 17, 17, 192, 1, 1, 1);
    let b3 = ctx.conv_bn("D/b3b", b3, h, w, 320, 3, 3, 2);
    let b7 = ctx.conv_bn("D/b7a", input, 17, 17, 192, 1, 1, 1);
    let b7 = ctx.conv_bn("D/b7b", b7, 17, 17, 192, 1, 7, 1);
    let b7 = ctx.conv_bn("D/b7c", b7, 17, 17, 192, 7, 1, 1);
    let b7 = ctx.conv_bn("D/b7d", b7, h, w, 192, 3, 3, 2);
    let bp = ctx.pool("D/pool", input, h, w, 3, 2);
    ctx.concat("D/concat", &[b3, b7, bp], h, w)
}

/// InceptionE (8×8 grid, the module of the paper's Fig. 5): branches split
/// *again* internally (1×3 / 3×1 pairs joined by inner concats).
fn inception_e(ctx: &mut Ctx, input: T) -> T {
    let (h, w) = (8, 8);
    let b1 = ctx.conv_bn("E/b1x1", input, h, w, 320, 1, 1, 1);
    let b3 = ctx.conv_bn("E/b3a", input, h, w, 384, 1, 1, 1);
    let b3l = ctx.conv_bn("E/b3b1", b3, h, w, 384, 1, 3, 1);
    let b3r = ctx.conv_bn("E/b3b2", b3, h, w, 384, 3, 1, 1);
    let b3 = ctx.concat("E/concat3", &[b3l, b3r], h, w);
    let bd = ctx.conv_bn("E/bda", input, h, w, 448, 1, 1, 1);
    let bd = ctx.conv_bn("E/bdb", bd, h, w, 384, 3, 3, 1);
    let bdl = ctx.conv_bn("E/bdc1", bd, h, w, 384, 1, 3, 1);
    let bdr = ctx.conv_bn("E/bdc2", bd, h, w, 384, 3, 1, 1);
    let bd = ctx.concat("E/concatd", &[bdl, bdr], h, w);
    let bp = ctx.pool("E/pool", input, h, w, 3, 1);
    let bp = ctx.conv_bn("E/bpool", bp, h, w, 192, 1, 1, 1);
    ctx.concat("E/concat", &[b1, b3, bd, bp], h, w)
}

/// Build the InceptionV3 computation graph.
pub fn inception_v3(cfg: &InceptionConfig) -> Graph {
    let mut ctx = Ctx {
        g: GraphBuilder::new(),
        b: cfg.batch,
        counter: 0,
    };
    // Stem: 299×299×3 input.
    let stem = {
        let conv1 = ctx.g.add_node(ops::conv2d(
            "stem/conv1",
            cfg.batch,
            3,
            149,
            149,
            32,
            3,
            3,
            2,
        ));
        let bn1 = ctx
            .g
            .add_node(ops::batch_norm("stem/bn1", cfg.batch, 32, 149, 149));
        ctx.g.connect(conv1, bn1);
        let mut cur = T { id: bn1, ch: 32 };
        cur = ctx.conv_bn("stem/conv2", cur, 147, 147, 32, 3, 3, 1);
        cur = ctx.conv_bn("stem/conv3", cur, 147, 147, 64, 3, 3, 1);
        cur = ctx.pool("stem/pool1", cur, 73, 73, 3, 2);
        cur = ctx.conv_bn("stem/conv4", cur, 73, 73, 80, 1, 1, 1);
        cur = ctx.conv_bn("stem/conv5", cur, 71, 71, 192, 3, 3, 1);
        ctx.pool("stem/pool2", cur, 35, 35, 3, 2)
    };

    let a1 = inception_a(&mut ctx, stem, 32);
    let a2 = inception_a(&mut ctx, a1, 64);
    let a3 = inception_a(&mut ctx, a2, 64);
    let b1 = inception_b(&mut ctx, a3);
    let c1 = inception_c(&mut ctx, b1, 128);
    let c2 = inception_c(&mut ctx, c1, 160);
    let c3 = inception_c(&mut ctx, c2, 160);
    let c4 = inception_c(&mut ctx, c3, 192);
    let d1 = inception_d(&mut ctx, c4);
    let e1 = inception_e(&mut ctx, d1);
    let e2 = inception_e(&mut ctx, e1);

    // Head: global average pool (flattened) → fc → softmax.
    let gap = ctx.g.add_node(ops::pool2d(
        "head/avgpool",
        cfg.batch,
        e2.ch,
        1,
        1,
        8,
        8,
        true,
    ));
    ctx.g.connect(e2.id, gap);
    let fc = ctx.g.add_node(ops::fully_connected(
        "head/fc",
        cfg.batch,
        cfg.classes,
        e2.ch,
    ));
    ctx.g.connect(gap, fc);
    let sm = ctx
        .g
        .add_node(ops::softmax2("head/softmax", cfg.batch, cfg.classes));
    ctx.g.connect(fc, sm);

    ctx.g.build().expect("inception graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::{is_weakly_connected, GraphStats};

    #[test]
    fn node_count_matches_paper_scale() {
        // §III-C: "the computation graph of InceptionV3 has 218 nodes".
        let g = inception_v3(&InceptionConfig::paper());
        assert!(
            (210..=226).contains(&g.len()),
            "expected ≈218 nodes, got {}",
            g.len()
        );
        assert!(is_weakly_connected(&g));
    }

    #[test]
    fn degree_distribution_matches_paper_shape() {
        // §III-C: most nodes have degree < 5, a handful have degree ≥ 5
        // (module fan-outs and concats).
        let g = inception_v3(&InceptionConfig::paper());
        let stats = GraphStats::of(&g);
        assert!(
            (8..=22).contains(&stats.degrees.high_degree),
            "high-degree nodes = {}",
            stats.degrees.high_degree
        );
        let low = g.len() - stats.degrees.high_degree;
        assert!(low as f64 / g.len() as f64 > 0.9);
    }

    #[test]
    fn channels_flow_consistently() {
        let g = inception_v3(&InceptionConfig::paper());
        crate::validate_edge_tensors(&g, 0.25).unwrap();
    }

    #[test]
    fn final_concat_feeds_classifier_with_2048_channels() {
        let g = inception_v3(&InceptionConfig::paper());
        let fc = g.nodes().iter().find(|n| n.name == "head/fc").unwrap();
        assert_eq!(fc.dim_size("c"), Some(2048));
    }

    #[test]
    fn flops_match_inception_scale() {
        // InceptionV3 ≈ 5.7 GFLOPs/sample forward (2 × 2.85 GMACs).
        let g = inception_v3(&InceptionConfig::paper());
        let per_sample = g.nodes().iter().map(|n| n.fwd_flops()).sum::<f64>() / 128.0;
        assert!(
            (3e9..1.2e10).contains(&per_sample),
            "per-sample fwd flops = {per_sample:.3e}"
        );
    }

    #[test]
    fn param_count_matches_literature() {
        // ≈ 24–27M parameters.
        let g = inception_v3(&InceptionConfig::paper());
        let params = g.total_params();
        assert!((2e7..3.2e7).contains(&params), "params = {params:.3e}");
    }
}
