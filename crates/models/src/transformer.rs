//! Transformer NMT (Vaswani et al. 2017) — §IV benchmark (d).
//!
//! An encoder–decoder translation model (WMT EN→DE). Attention and
//! feed-forward blocks are modeled at module granularity (as Table II
//! reports them), with residual-add nodes providing the skip structure.
//! The final encoder output feeds the cross-attention of *every* decoder
//! layer — the high-degree, long-live-range vertex §IV-A blames for the
//! Transformer's larger search times: no ordering can shrink its dependent
//! sets as effectively as InceptionV3's local concats.

use crate::ops;
use pase_graph::{Graph, GraphBuilder, NodeId};

/// Problem sizes for [`transformer`].
#[derive(Clone, Copy, Debug)]
pub struct TransformerConfig {
    /// Mini-batch size (paper: 64).
    pub batch: u64,
    /// Sequence length.
    pub seq: u64,
    /// Model dimension `d_model = heads × head_dim`.
    pub d_model: u64,
    /// Attention heads.
    pub heads: u64,
    /// Feed-forward hidden dimension.
    pub d_ff: u64,
    /// Vocabulary size.
    pub vocab: u64,
    /// Encoder / decoder layer count.
    pub layers: usize,
}

impl TransformerConfig {
    /// Transformer-big-like configuration used for evaluation.
    pub fn paper() -> Self {
        Self {
            batch: 64,
            seq: 128,
            d_model: 1024,
            heads: 16,
            d_ff: 4096,
            vocab: 32768,
            layers: 6,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn tiny() -> Self {
        Self {
            batch: 8,
            seq: 16,
            d_model: 64,
            heads: 4,
            d_ff: 128,
            vocab: 512,
            layers: 2,
        }
    }

    fn head_dim(&self) -> u64 {
        self.d_model / self.heads
    }
}

/// Build the Transformer computation graph.
pub fn transformer(cfg: &TransformerConfig) -> Graph {
    assert_eq!(cfg.d_model % cfg.heads, 0, "d_model must divide into heads");
    let (b, s, d) = (cfg.batch, cfg.seq, cfg.d_model);
    let hd = cfg.head_dim();
    let mut g = GraphBuilder::new();

    // Encoder.
    let src_embed = g.add_node(ops::embedding("enc/embed", b, s, d, cfg.vocab));
    let mut enc = src_embed;
    for l in 0..cfg.layers {
        let attn = g.add_node(ops::attention(
            &format!("enc{l}/self_attn"),
            b,
            s,
            cfg.heads,
            hd,
            hd,
            false,
        ));
        g.connect(enc, attn);
        let add1 = g.add_node(ops::add_seq(&format!("enc{l}/add1"), b, s, d, 2));
        g.connect(enc, add1);
        g.connect(attn, add1);
        let ffn = g.add_node(ops::feed_forward(&format!("enc{l}/ffn"), b, s, d, cfg.d_ff));
        g.connect(add1, ffn);
        let add2 = g.add_node(ops::add_seq(&format!("enc{l}/add2"), b, s, d, 2));
        g.connect(add1, add2);
        g.connect(ffn, add2);
        enc = add2;
    }
    let enc_out: NodeId = enc;

    // Decoder: every layer's cross-attention reads the encoder output.
    let tgt_embed = g.add_node(ops::embedding("dec/embed", b, s, d, cfg.vocab));
    let mut dec = tgt_embed;
    for l in 0..cfg.layers {
        let self_attn = g.add_node(ops::attention(
            &format!("dec{l}/self_attn"),
            b,
            s,
            cfg.heads,
            hd,
            hd,
            false,
        ));
        g.connect(dec, self_attn);
        let add1 = g.add_node(ops::add_seq(&format!("dec{l}/add1"), b, s, d, 2));
        g.connect(dec, add1);
        g.connect(self_attn, add1);
        let cross = g.add_node(ops::attention(
            &format!("dec{l}/cross_attn"),
            b,
            s,
            cfg.heads,
            hd,
            hd,
            true,
        ));
        g.connect(add1, cross);
        g.connect(enc_out, cross); // the long-live-range edge
        let add2 = g.add_node(ops::add_seq(&format!("dec{l}/add2"), b, s, d, 2));
        g.connect(add1, add2);
        g.connect(cross, add2);
        let ffn = g.add_node(ops::feed_forward(&format!("dec{l}/ffn"), b, s, d, cfg.d_ff));
        g.connect(add2, ffn);
        let add3 = g.add_node(ops::add_seq(&format!("dec{l}/add3"), b, s, d, 2));
        g.connect(add2, add3);
        g.connect(ffn, add3);
        dec = add3;
    }

    // Output head.
    let proj = g.add_node(ops::projection("fc", b, s, cfg.vocab, d));
    g.connect(dec, proj);
    let sm = g.add_node(ops::softmax_seq("softmax", b, s, cfg.vocab));
    g.connect(proj, sm);

    g.build().expect("transformer graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::{is_weakly_connected, GraphStats};

    #[test]
    fn node_count_scales_with_layers() {
        let cfg = TransformerConfig::paper();
        let g = transformer(&cfg);
        // embed×2 + enc(4/layer) + dec(6/layer) + fc + softmax
        assert_eq!(g.len(), 2 + 4 * cfg.layers + 6 * cfg.layers + 2);
        assert!(is_weakly_connected(&g));
    }

    #[test]
    fn encoder_output_has_high_degree_and_long_live_range() {
        let cfg = TransformerConfig::paper();
        let g = transformer(&cfg);
        let enc_out = g
            .iter()
            .find(|(_, n)| n.name == format!("enc{}/add2", cfg.layers - 1))
            .map(|(id, _)| id)
            .unwrap();
        // feeds all 6 cross-attentions plus its own in-edges
        assert!(
            g.degree(enc_out) >= cfg.layers + 2,
            "degree = {}",
            g.degree(enc_out)
        );
        let stats = GraphStats::of(&g);
        assert!(stats.degrees.max >= cfg.layers + 2);
    }

    #[test]
    fn edges_are_rank_consistent() {
        crate::validate_edge_tensors(&transformer(&TransformerConfig::paper()), 0.01).unwrap();
        crate::validate_edge_tensors(&transformer(&TransformerConfig::tiny()), 0.01).unwrap();
    }

    #[test]
    fn parameter_count_matches_transformer_big_scale() {
        // Transformer-big ≈ 210M params (with 32k vocab embeddings).
        let g = transformer(&TransformerConfig::paper());
        let params = g.total_params();
        assert!((1.5e8..4e8).contains(&params), "params = {params:.3e}");
    }

    #[test]
    fn tiny_config_is_small_enough_for_tests() {
        let g = transformer(&TransformerConfig::tiny());
        assert!(g.len() <= 30);
    }
}
