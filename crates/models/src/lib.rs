//! # pase-models — the model zoo (PaSE §IV benchmarks)
//!
//! Computation-graph builders for the paper's four evaluation benchmarks,
//! plus the DenseNet limitation study (§V) and extra models used by
//! examples and tests:
//!
//! | model | graph structure | paper role |
//! |---|---|---|
//! | [`alexnet`] | 12-node path | benchmark (a) |
//! | [`inception_v3`] | ≈219 nodes, local fan-out/concat | benchmark (b), Fig. 5 |
//! | [`rnnlm`] | 4-node path (LSTM as one 5-d vertex) | benchmark (c) |
//! | [`transformer`] | enc–dec with long-live-range encoder output | benchmark (d) |
//! | [`densenet`] | uniformly dense blocks | §V limitation |
//! | [`rnnlm_unrolled`] | FlexFlow-style unrolled cell lattice | §IV-A ablation |
//! | [`resnet`], [`vgg16`], [`bert_encoder`], [`mlp`] | extra zoo models | examples & tests |
//!
//! All builders take a config struct with `paper()` (evaluation shapes) and
//! `tiny()` (test shapes) constructors, and every graph passes
//! [`validate_edge_tensors`].

#![warn(missing_docs)]

mod alexnet;
mod bert;
mod densenet;
mod gnmt;
mod inception;
mod mlp;
pub mod ops;
mod resnet;
mod rnnlm;
mod transformer;
mod validate;
mod vgg;

pub use alexnet::{alexnet, AlexNetConfig};
pub use bert::{bert_encoder, BertConfig};
pub use densenet::{densenet, DenseNetConfig};
pub use gnmt::{gnmt, GnmtConfig};
pub use inception::{inception_v3, InceptionConfig};
pub use mlp::{mlp, MlpConfig};
pub use resnet::{resnet, ResNetConfig};
pub use rnnlm::{rnnlm, rnnlm_unrolled, RnnlmConfig};
pub use transformer::{transformer, TransformerConfig};
pub use validate::validate_edge_tensors;
pub use vgg::{vgg16, VggConfig};

use pase_graph::Graph;

/// The paper's four evaluation benchmarks (§IV), used by the experiment
/// harness to sweep Tables I–II and Fig. 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Benchmark {
    /// AlexNet, batch 128 (path graph).
    AlexNet,
    /// InceptionV3, batch 128 (sparse with high-degree concats).
    InceptionV3,
    /// RNNLM, batch 64 (single-vertex LSTM).
    Rnnlm,
    /// Transformer NMT, batch 64 (encoder–decoder).
    Transformer,
}

impl Benchmark {
    /// All four benchmarks in the paper's column order.
    pub fn all() -> [Benchmark; 4] {
        [
            Benchmark::AlexNet,
            Benchmark::InceptionV3,
            Benchmark::Rnnlm,
            Benchmark::Transformer,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::AlexNet => "AlexNet",
            Benchmark::InceptionV3 => "InceptionV3",
            Benchmark::Rnnlm => "RNNLM",
            Benchmark::Transformer => "Transformer",
        }
    }

    /// Build the paper-scale computation graph (single-device mini-batch:
    /// 128 for the CNNs, 64 for RNNLM/Transformer).
    pub fn build(&self) -> Graph {
        self.build_for(1)
    }

    /// Build the computation graph for a `p`-device run under the standard
    /// weak-scaling throughput protocol: the global mini-batch is the
    /// paper's per-benchmark batch (128 CNNs / 64 LM+NMT) *per device*.
    /// This is the batch regime in which the paper's modest (≤ 1.85× /
    /// ≤ 4×) advantages over data parallelism arise — with a fixed global
    /// batch, data parallelism at p = 32+ would be implausibly starved.
    pub fn build_for(&self, p: u32) -> Graph {
        let p = u64::from(p.max(1));
        match self {
            Benchmark::AlexNet => alexnet(&AlexNetConfig {
                batch: 128 * p,
                ..AlexNetConfig::paper()
            }),
            Benchmark::InceptionV3 => inception_v3(&InceptionConfig {
                batch: 128 * p,
                ..InceptionConfig::paper()
            }),
            Benchmark::Rnnlm => rnnlm(&RnnlmConfig {
                batch: 64 * p,
                ..RnnlmConfig::paper()
            }),
            Benchmark::Transformer => transformer(&TransformerConfig {
                batch: 64 * p,
                ..TransformerConfig::paper()
            }),
        }
    }

    /// Build the reduced test-scale computation graph.
    pub fn build_tiny(&self) -> Graph {
        match self {
            Benchmark::AlexNet => alexnet(&AlexNetConfig::tiny()),
            Benchmark::InceptionV3 => inception_v3(&InceptionConfig::tiny()),
            Benchmark::Rnnlm => rnnlm(&RnnlmConfig::tiny()),
            Benchmark::Transformer => transformer(&TransformerConfig::tiny()),
        }
    }
}

/// Every model name [`build_named`] resolves, in display order — the shared
/// vocabulary of the CLI's `--model` flag and the planner service's
/// `"model"` request field.
pub const MODEL_NAMES: [&str; 11] = [
    "alexnet",
    "inception",
    "rnnlm",
    "rnnlm-unrolled",
    "gnmt",
    "transformer",
    "densenet",
    "resnet",
    "vgg",
    "bert",
    "mlp",
];

/// Build a zoo model by name at its paper-scale configuration for a
/// `p`-device run. With `weak_scaling` the global mini-batch is scaled by
/// `p` (the throughput protocol of §IV); otherwise the paper's fixed batch
/// is used regardless of `p`.
///
/// Returns `Err` with the unknown name for anything outside
/// [`MODEL_NAMES`].
pub fn build_named(name: &str, p: u32, weak_scaling: bool) -> Result<Graph, String> {
    let scale = |b: u64| {
        if weak_scaling {
            b * u64::from(p.max(1))
        } else {
            b
        }
    };
    Ok(match name {
        "alexnet" => alexnet(&AlexNetConfig {
            batch: scale(128),
            ..AlexNetConfig::paper()
        }),
        "inception" => inception_v3(&InceptionConfig {
            batch: scale(128),
            ..InceptionConfig::paper()
        }),
        "rnnlm" => rnnlm(&RnnlmConfig {
            batch: scale(64),
            ..RnnlmConfig::paper()
        }),
        "rnnlm-unrolled" => rnnlm_unrolled(&RnnlmConfig {
            batch: scale(64),
            ..RnnlmConfig::paper()
        }),
        "transformer" => transformer(&TransformerConfig {
            batch: scale(64),
            ..TransformerConfig::paper()
        }),
        "densenet" => densenet(&DenseNetConfig {
            batch: scale(128),
            ..DenseNetConfig::paper()
        }),
        "resnet" => resnet(&ResNetConfig {
            batch: scale(128),
            ..ResNetConfig::paper()
        }),
        "gnmt" => gnmt(&GnmtConfig {
            batch: scale(64),
            ..GnmtConfig::paper()
        }),
        "vgg" => vgg16(&VggConfig {
            batch: scale(128),
            ..VggConfig::paper()
        }),
        "bert" => bert_encoder(&BertConfig {
            batch: scale(64),
            ..BertConfig::paper()
        }),
        "mlp" => mlp(&MlpConfig {
            batch: scale(64),
            ..Default::default()
        }),
        other => return Err(format!("unknown model '{other}'")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_builds_and_validates() {
        for b in Benchmark::all() {
            let g = b.build();
            assert!(!g.is_empty(), "{} is empty", b.name());
            assert!(
                pase_graph::is_weakly_connected(&g),
                "{} disconnected",
                b.name()
            );
            validate_edge_tensors(&g, 0.25).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        }
    }

    #[test]
    fn benchmark_names_are_stable() {
        let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec!["AlexNet", "InceptionV3", "RNNLM", "Transformer"]
        );
    }

    #[test]
    fn every_named_model_builds() {
        for name in MODEL_NAMES {
            let g = build_named(name, 4, false).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!g.is_empty(), "{name} is empty");
        }
        assert!(build_named("nope", 4, false).is_err());
    }

    #[test]
    fn weak_scaling_multiplies_the_batch() {
        let fixed = build_named("mlp", 8, false).unwrap();
        let weak = build_named("mlp", 8, true).unwrap();
        let batch = |g: &Graph| g.nodes()[0].iter_space[0].size;
        assert_eq!(batch(&weak), 8 * batch(&fixed));
    }
}
