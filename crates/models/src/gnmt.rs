//! GNMT-style seq2seq model (Wu et al. 2016) — the system behind the
//! paper's motivating anecdote ("GNMT takes around 6 days to train on
//! WMT EN→FR with 96 K80 GPUs") and the source of the RNN expert strategy
//! (§IV: layer-pipeline × data parallelism).
//!
//! Modeled with the single-vertex LSTM encoding: an 8-layer encoder stack,
//! a first decoder layer, an attention bridge reading the encoder output,
//! and a 7-layer upper decoder stack, followed by the projection head.

use crate::ops;
use pase_graph::{Graph, GraphBuilder};

/// Problem sizes for [`gnmt`].
#[derive(Clone, Copy, Debug)]
pub struct GnmtConfig {
    /// Mini-batch size.
    pub batch: u64,
    /// Source/target sequence length.
    pub seq: u64,
    /// Embedding dimension.
    pub embed: u64,
    /// LSTM hidden dimension.
    pub hidden: u64,
    /// Vocabulary size.
    pub vocab: u64,
    /// Encoder LSTM layers (the decoder uses 1 + (layers − 1)).
    pub layers: u32,
}

impl GnmtConfig {
    /// GNMT-8 configuration at the paper's LM scales.
    pub fn paper() -> Self {
        Self {
            batch: 64,
            seq: 40,
            embed: 1024,
            hidden: 1024,
            vocab: 32768,
            layers: 8,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn tiny() -> Self {
        Self {
            batch: 8,
            seq: 8,
            embed: 64,
            hidden: 64,
            vocab: 512,
            layers: 2,
        }
    }
}

/// Build the GNMT computation graph.
pub fn gnmt(cfg: &GnmtConfig) -> Graph {
    let (b, s, d, e, v) = (cfg.batch, cfg.seq, cfg.embed, cfg.hidden, cfg.vocab);
    let mut g = GraphBuilder::new();
    let src_embed = g.add_node(ops::embedding("enc/embed", b, s, d, v));
    let enc = g.add_node(ops::lstm("enc/lstm", cfg.layers, b, s, d, e));
    g.connect(src_embed, enc);

    let tgt_embed = g.add_node(ops::embedding("dec/embed", b, s, d, v));
    let dec_bottom = g.add_node(ops::lstm("dec/lstm0", 1, b, s, d, e));
    g.connect(tgt_embed, dec_bottom);

    // Attention bridge: queries from the bottom decoder layer, keys/values
    // from the encoder output (a single "head" of width e).
    let attn = g.add_node(ops::attention("dec/attention", b, s, 1, e, e, true));
    g.connect(dec_bottom, attn);
    g.connect(enc, attn);

    let dec_top = g.add_node(ops::lstm("dec/lstm_stack", cfg.layers - 1, b, s, e, e));
    g.connect(attn, dec_top);

    let proj = g.add_node(ops::projection("fc", b, s, v, e));
    g.connect(dec_top, proj);
    let sm = g.add_node(ops::softmax_seq("softmax", b, s, v));
    g.connect(proj, sm);
    g.build().expect("gnmt graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::is_weakly_connected;

    #[test]
    fn gnmt_structure() {
        let g = gnmt(&GnmtConfig::paper());
        assert_eq!(g.len(), 8);
        assert!(is_weakly_connected(&g));
        crate::validate_edge_tensors(&g, 0.01).unwrap();
    }

    #[test]
    fn encoder_output_feeds_the_attention_bridge() {
        let g = gnmt(&GnmtConfig::paper());
        let enc = g
            .iter()
            .find(|(_, n)| n.name == "enc/lstm")
            .map(|(id, _)| id)
            .unwrap();
        let attn = g
            .iter()
            .find(|(_, n)| n.name == "dec/attention")
            .map(|(id, _)| id)
            .unwrap();
        assert!(g.neighbors(enc).contains(&attn));
    }

    #[test]
    fn params_match_gnmt_scale() {
        // GNMT-8 with a 32k vocab: embeddings 2×33.5M + projection 33.5M +
        // 15 LSTM layers ≈ 0.2–0.3B.
        let g = gnmt(&GnmtConfig::paper());
        let params = g.total_params();
        assert!((1.5e8..4e8).contains(&params), "params = {params:.3e}");
    }

    #[test]
    fn search_handles_gnmt() {
        use pase_cost::{ConfigRule, CostTables, MachineSpec};
        let g = gnmt(&GnmtConfig::tiny());
        let t = CostTables::build(&g, ConfigRule::new(4), &MachineSpec::test_machine());
        assert!(t.max_k() > 1);
    }
}
