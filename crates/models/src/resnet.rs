//! ResNet (He et al. 2016) — an additional zoo model for examples and
//! tests: basic residual blocks with skip-connection adds give a moderately
//! structured graph between AlexNet's path and Inception's fan-outs.

use crate::ops;
use pase_graph::{Graph, GraphBuilder, NodeId};

/// Problem sizes for [`resnet`].
#[derive(Clone, Copy, Debug)]
pub struct ResNetConfig {
    /// Mini-batch size.
    pub batch: u64,
    /// Residual blocks per stage (ResNet-18 uses 2).
    pub blocks_per_stage: usize,
    /// Output classes.
    pub classes: u64,
}

impl ResNetConfig {
    /// A ResNet-18-like configuration.
    pub fn paper() -> Self {
        Self {
            batch: 128,
            blocks_per_stage: 2,
            classes: 1000,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn tiny() -> Self {
        Self {
            batch: 8,
            blocks_per_stage: 1,
            classes: 16,
        }
    }
}

struct Stage {
    id: NodeId,
    ch: u64,
    h: u64,
}

/// Build a ResNet-style computation graph.
pub fn resnet(cfg: &ResNetConfig) -> Graph {
    let b = cfg.batch;
    let mut g = GraphBuilder::new();
    let conv1 = g.add_node(ops::conv2d("conv1", b, 3, 56, 56, 64, 7, 7, 4));
    let bn1 = g.add_node(ops::batch_norm("bn1", b, 64, 56, 56));
    g.connect(conv1, bn1);
    let mut cur = Stage {
        id: bn1,
        ch: 64,
        h: 56,
    };

    for (stage, &ch) in [64u64, 128, 256, 512].iter().enumerate() {
        for blk in 0..cfg.blocks_per_stage {
            let downsample = stage > 0 && blk == 0;
            let (h_out, stride) = if downsample {
                (cur.h / 2, 2)
            } else {
                (cur.h, 1)
            };
            let tag = format!("s{stage}b{blk}");
            let c1 = g.add_node(ops::conv2d(
                &format!("{tag}/conv1"),
                b,
                cur.ch,
                h_out,
                h_out,
                ch,
                3,
                3,
                stride,
            ));
            g.connect(cur.id, c1);
            let n1 = g.add_node(ops::batch_norm(&format!("{tag}/bn1"), b, ch, h_out, h_out));
            g.connect(c1, n1);
            let c2 = g.add_node(ops::conv2d(
                &format!("{tag}/conv2"),
                b,
                ch,
                h_out,
                h_out,
                ch,
                3,
                3,
                1,
            ));
            g.connect(n1, c2);
            let n2 = g.add_node(ops::batch_norm(&format!("{tag}/bn2"), b, ch, h_out, h_out));
            g.connect(c2, n2);
            // Skip path: identity, or a 1×1 projection when shapes change.
            let skip = if downsample || cur.ch != ch {
                let p = g.add_node(ops::conv2d(
                    &format!("{tag}/proj"),
                    b,
                    cur.ch,
                    h_out,
                    h_out,
                    ch,
                    1,
                    1,
                    stride,
                ));
                g.connect(cur.id, p);
                p
            } else {
                cur.id
            };
            let add = g.add_node(ops::add_maps(&format!("{tag}/add"), b, ch, h_out, h_out, 2));
            g.connect(n2, add);
            g.connect(skip, add);
            cur = Stage {
                id: add,
                ch,
                h: h_out,
            };
        }
    }

    let gap = g.add_node(ops::pool2d(
        "head/gap",
        b,
        cur.ch,
        1,
        1,
        cur.h as u32,
        cur.h as u32,
        true,
    ));
    g.connect(cur.id, gap);
    let fc = g.add_node(ops::fully_connected("head/fc", b, cfg.classes, cur.ch));
    g.connect(gap, fc);
    let sm = g.add_node(ops::softmax2("head/softmax", b, cfg.classes));
    g.connect(fc, sm);
    g.build().expect("resnet graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::is_weakly_connected;

    #[test]
    fn resnet18_structure() {
        let g = resnet(&ResNetConfig::paper());
        assert!(is_weakly_connected(&g));
        // 2 stem + 8 blocks × (4 or 5 nodes) + 3 head
        assert!((35..=50).contains(&g.len()), "nodes = {}", g.len());
    }

    #[test]
    fn skip_connections_create_degree_three_nodes() {
        let g = resnet(&ResNetConfig::paper());
        let max_deg = g.node_ids().map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg >= 3);
    }

    #[test]
    fn edges_are_rank_consistent() {
        crate::validate_edge_tensors(&resnet(&ResNetConfig::paper()), 0.01).unwrap();
        crate::validate_edge_tensors(&resnet(&ResNetConfig::tiny()), 0.01).unwrap();
    }

    #[test]
    fn params_match_resnet18_scale() {
        let g = resnet(&ResNetConfig::paper());
        let params = g.total_params();
        assert!((8e6..2e7).contains(&params), "params = {params:.3e}");
    }
}
