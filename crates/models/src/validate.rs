//! Model-graph validation helpers.

use pase_graph::Graph;

/// Check that every edge's producer output and consumer input describe the
/// same tensor: equal rank, and per-dimension extents within `slack`
/// relative tolerance (strided convolutions/poolings round their inferred
/// input extents, e.g. a 3×3/2 pooling of a 55-wide map reads 54-of-55
/// rows, so exact equality is deliberately not required).
pub fn validate_edge_tensors(g: &Graph, slack: f64) -> Result<(), String> {
    for e in g.edges() {
        let src = g.node(e.src);
        let dst = g.node(e.dst);
        let out = &src.output;
        let inp = &dst.inputs[e.dst_slot as usize];
        if out.rank() != inp.rank() {
            return Err(format!(
                "rank mismatch on '{}' → '{}' slot {}: {} vs {}",
                src.name,
                dst.name,
                e.dst_slot,
                out.rank(),
                inp.rank()
            ));
        }
        for t in 0..out.rank() {
            let a = out.sizes[t] as f64;
            let b = inp.sizes[t] as f64;
            let ratio = if a > b { a / b } else { b / a };
            if ratio > 1.0 + slack {
                return Err(format!(
                    "size mismatch on '{}' → '{}' slot {} dim {}: {} vs {}",
                    src.name, dst.name, e.dst_slot, t, out.sizes[t], inp.sizes[t]
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use pase_graph::GraphBuilder;

    #[test]
    fn accepts_matched_chain() {
        let mut b = GraphBuilder::new();
        let c1 = b.add_node(ops::conv2d("c1", 8, 3, 32, 32, 16, 3, 3, 1));
        let c2 = b.add_node(ops::conv2d("c2", 8, 16, 32, 32, 32, 3, 3, 1));
        b.connect(c1, c2);
        let g = b.build().unwrap();
        assert!(validate_edge_tensors(&g, 0.15).is_ok());
    }

    #[test]
    fn rejects_rank_mismatch() {
        let mut b = GraphBuilder::new();
        let c1 = b.add_node(ops::conv2d("c1", 8, 3, 32, 32, 16, 3, 3, 1));
        let f = b.add_node(ops::fully_connected("fc", 8, 10, 16 * 32 * 32));
        b.connect(c1, f);
        let g = b.build().unwrap();
        assert!(validate_edge_tensors(&g, 0.15).is_err());
    }

    #[test]
    fn rejects_gross_size_mismatch() {
        let mut b = GraphBuilder::new();
        let c1 = b.add_node(ops::conv2d("c1", 8, 3, 32, 32, 16, 3, 3, 1));
        let c2 = b.add_node(ops::conv2d("c2", 8, 64, 32, 32, 32, 3, 3, 1)); // expects 64 ch
        b.connect(c1, c2);
        let g = b.build().unwrap();
        assert!(validate_edge_tensors(&g, 0.15).is_err());
    }
}
