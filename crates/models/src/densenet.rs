//! DenseNet (Huang et al. 2017) — the §V limitation study.
//!
//! Inside a dense block every layer consumes the concatenation of *all*
//! previous layers' outputs, so the block's connectivity is uniformly
//! dense. The paper calls this out explicitly: "there do exist a few DNNs
//! (such as DenseNet) whose graphs are uniformly dense. No possible
//! arrangement of vertices can effectively reduce the size M for such
//! graphs" — the ablation harness uses this model to demonstrate exactly
//! that blow-up.

use crate::ops;
use pase_graph::{Graph, GraphBuilder, NodeId};

/// Problem sizes for [`densenet`].
#[derive(Clone, Copy, Debug)]
pub struct DenseNetConfig {
    /// Mini-batch size.
    pub batch: u64,
    /// Layers per dense block.
    pub block_layers: usize,
    /// Number of dense blocks.
    pub blocks: usize,
    /// Growth rate (channels added per layer).
    pub growth: u64,
    /// Output classes.
    pub classes: u64,
}

impl DenseNetConfig {
    /// A DenseNet-121-flavored configuration (reduced blocks so the
    /// ablation fits in a test run; connectivity density is what matters).
    pub fn paper() -> Self {
        Self {
            batch: 128,
            block_layers: 6,
            blocks: 2,
            growth: 32,
            classes: 1000,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn tiny() -> Self {
        Self {
            batch: 8,
            block_layers: 3,
            blocks: 1,
            growth: 8,
            classes: 16,
        }
    }
}

/// Build a DenseNet-style computation graph.
pub fn densenet(cfg: &DenseNetConfig) -> Graph {
    let b = cfg.batch;
    let mut g = GraphBuilder::new();
    let mut h = 28u64;
    let stem = g.add_node(ops::conv2d("stem", b, 3, h, h, 2 * cfg.growth, 3, 3, 1));
    let mut carried: Vec<(NodeId, u64)> = vec![(stem, 2 * cfg.growth)];

    for blk in 0..cfg.blocks {
        for l in 0..cfg.block_layers {
            // concat of everything produced so far in this block
            let channels: Vec<u64> = carried.iter().map(|&(_, c)| c).collect();
            let cat = g.add_node(ops::concat_channels(
                &format!("b{blk}/l{l}/concat"),
                b,
                &channels,
                h,
                h,
            ));
            for &(id, _) in &carried {
                g.connect(id, cat);
            }
            let total: u64 = channels.iter().sum();
            let conv = g.add_node(ops::conv2d(
                &format!("b{blk}/l{l}/conv"),
                b,
                total,
                h,
                h,
                cfg.growth,
                3,
                3,
                1,
            ));
            g.connect(cat, conv);
            carried.push((conv, cfg.growth));
        }
        // Transition: compress to half the channels, halve the grid.
        let channels: Vec<u64> = carried.iter().map(|&(_, c)| c).collect();
        let cat = g.add_node(ops::concat_channels(
            &format!("b{blk}/trans/concat"),
            b,
            &channels,
            h,
            h,
        ));
        for &(id, _) in &carried {
            g.connect(id, cat);
        }
        let total: u64 = channels.iter().sum();
        h /= 2;
        let trans = g.add_node(ops::conv2d(
            &format!("b{blk}/trans/conv"),
            b,
            total,
            h,
            h,
            total / 2,
            1,
            1,
            2,
        ));
        g.connect(cat, trans);
        carried = vec![(trans, total / 2)];
    }

    let (last, ch) = carried[0];
    let gap = g.add_node(ops::pool2d(
        "head/gap", b, ch, 1, 1, h as u32, h as u32, true,
    ));
    g.connect(last, gap);
    let fc = g.add_node(ops::fully_connected("head/fc", b, cfg.classes, ch));
    g.connect(gap, fc);
    let sm = g.add_node(ops::softmax2("head/softmax", b, cfg.classes));
    g.connect(fc, sm);
    g.build().expect("densenet graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::{is_weakly_connected, GraphStats};

    #[test]
    fn dense_blocks_create_high_degree_everywhere() {
        let g = densenet(&DenseNetConfig::paper());
        assert!(is_weakly_connected(&g));
        let stats = GraphStats::of(&g);
        // every conv output feeds many later concats
        assert!(stats.degrees.max >= 6, "max degree = {}", stats.degrees.max);
        assert!(stats.degrees.high_degree >= 10);
    }

    #[test]
    fn edges_are_rank_consistent() {
        crate::validate_edge_tensors(&densenet(&DenseNetConfig::paper()), 0.01).unwrap();
        crate::validate_edge_tensors(&densenet(&DenseNetConfig::tiny()), 0.01).unwrap();
    }

    #[test]
    fn tiny_variant_is_small() {
        let g = densenet(&DenseNetConfig::tiny());
        assert!(g.len() < 20);
    }
}
