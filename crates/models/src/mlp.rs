//! A configurable multi-layer perceptron — the "hello world" model used by
//! the quickstart example, tests, and property-based harnesses.

use crate::ops;
use pase_graph::{Graph, GraphBuilder};

/// Problem sizes for [`mlp`].
#[derive(Clone, Debug)]
pub struct MlpConfig {
    /// Mini-batch size.
    pub batch: u64,
    /// Input feature width.
    pub input: u64,
    /// Hidden layer widths, in order.
    pub hidden: Vec<u64>,
    /// Output classes.
    pub classes: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            batch: 64,
            input: 1024,
            hidden: vec![4096, 4096],
            classes: 1000,
        }
    }
}

/// Build an MLP: a chain of fully-connected layers ending in a softmax.
pub fn mlp(cfg: &MlpConfig) -> Graph {
    let mut g = GraphBuilder::new();
    let mut widths = vec![cfg.input];
    widths.extend(&cfg.hidden);
    widths.push(cfg.classes);
    let mut prev = None;
    for (i, pair) in widths.windows(2).enumerate() {
        let ins = usize::from(prev.is_some());
        let node = ops::fully_connected(&format!("fc{i}"), cfg.batch, pair[1], pair[0]);
        let node = pase_graph::Node {
            inputs: node.inputs[..ins].to_vec(),
            ..node
        };
        let id = g.add_node(node);
        if let Some(p) = prev {
            g.connect(p, id);
        }
        prev = Some(id);
    }
    let sm = g.add_node(ops::softmax2("softmax", cfg.batch, cfg.classes));
    g.connect(prev.expect("at least one layer"), sm);
    g.build().expect("mlp graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::is_weakly_connected;

    #[test]
    fn default_mlp_is_a_path() {
        let g = mlp(&MlpConfig::default());
        assert_eq!(g.len(), 4); // 3 fc + softmax
        assert!(is_weakly_connected(&g));
        crate::validate_edge_tensors(&g, 0.01).unwrap();
    }

    #[test]
    fn depth_scales_with_hidden_layers() {
        let g = mlp(&MlpConfig {
            hidden: vec![128; 5],
            ..MlpConfig::default()
        });
        assert_eq!(g.len(), 7);
    }

    #[test]
    fn single_layer_mlp_works() {
        let g = mlp(&MlpConfig {
            hidden: vec![],
            ..MlpConfig::default()
        });
        assert_eq!(g.len(), 2);
    }
}
