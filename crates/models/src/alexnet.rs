//! AlexNet (Krizhevsky et al. 2012) — §IV benchmark (a).
//!
//! A simple *path graph*: five convolutions (with interspersed pooling)
//! followed by three fully-connected layers and a softmax. Because every
//! layer connects only to the next, dependent sets have size ≤ 1 under any
//! reasonable ordering and even the naive recurrence is fast (Table I).

use crate::ops;
use pase_graph::{Graph, GraphBuilder};

/// Problem sizes for [`alexnet`].
#[derive(Clone, Copy, Debug)]
pub struct AlexNetConfig {
    /// Mini-batch size (the paper uses 128 for CNNs).
    pub batch: u64,
    /// Number of output classes (ImageNet-1K: 1000).
    pub classes: u64,
}

impl AlexNetConfig {
    /// The paper's evaluation configuration: batch 128, ImageNet-1K.
    pub fn paper() -> Self {
        Self {
            batch: 128,
            classes: 1000,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn tiny() -> Self {
        Self {
            batch: 16,
            classes: 64,
        }
    }
}

/// Build the AlexNet computation graph.
pub fn alexnet(cfg: &AlexNetConfig) -> Graph {
    let b = cfg.batch;
    let mut g = GraphBuilder::new();
    // conv1: 3 → 64, 11×11 stride 4 (224 → 55, modeled as stride-4 55×55)
    let conv1 = g.add_node(ops::conv2d("conv1", b, 3, 55, 55, 64, 11, 11, 4));
    let pool1 = g.add_node(ops::pool2d("pool1", b, 64, 27, 27, 3, 2, false));
    let conv2 = g.add_node(ops::conv2d("conv2", b, 64, 27, 27, 192, 5, 5, 1));
    let pool2 = g.add_node(ops::pool2d("pool2", b, 192, 13, 13, 3, 2, false));
    let conv3 = g.add_node(ops::conv2d("conv3", b, 192, 13, 13, 384, 3, 3, 1));
    let conv4 = g.add_node(ops::conv2d("conv4", b, 384, 13, 13, 256, 3, 3, 1));
    let conv5 = g.add_node(ops::conv2d("conv5", b, 256, 13, 13, 256, 3, 3, 1));
    let pool5 = g.add_node(ops::pool2d("pool5", b, 256, 6, 6, 2, 2, true));
    let fc1 = g.add_node(ops::fully_connected("fc1", b, 4096, 256 * 36));
    let fc2 = g.add_node(ops::fully_connected("fc2", b, 4096, 4096));
    let fc3 = g.add_node(ops::fully_connected("fc3", b, cfg.classes, 4096));
    let softmax = g.add_node(ops::softmax2("softmax", b, cfg.classes));
    for w in [
        conv1, pool1, conv2, pool2, conv3, conv4, conv5, pool5, fc1, fc2, fc3, softmax,
    ]
    .windows(2)
    {
        g.connect(w[0], w[1]);
    }
    g.build().expect("alexnet graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pase_graph::{is_weakly_connected, GraphStats};

    #[test]
    fn alexnet_is_a_path_graph() {
        let g = alexnet(&AlexNetConfig::paper());
        assert_eq!(g.len(), 12);
        assert_eq!(g.edge_count(), 11);
        assert!(is_weakly_connected(&g));
        let stats = GraphStats::of(&g);
        assert_eq!(stats.degrees.max, 2);
        assert_eq!(stats.degrees.high_degree, 0);
    }

    #[test]
    fn alexnet_flops_are_in_the_expected_range() {
        // AlexNet forward pass ≈ 0.7–1.5 GFLOPs/sample; with batch 128 and
        // fwd+bwd factor, a step is in the hundreds of GFLOPs.
        let g = alexnet(&AlexNetConfig::paper());
        let per_sample_fwd = g.nodes().iter().map(|n| n.fwd_flops()).sum::<f64>() / 128.0;
        assert!(
            (5e8..5e9).contains(&per_sample_fwd),
            "per-sample fwd flops = {per_sample_fwd:.3e}"
        );
    }

    #[test]
    fn alexnet_params_match_literature_scale() {
        // ≈ 61M parameters, dominated by fc1 (9216 × 4096 ≈ 37.7M).
        let g = alexnet(&AlexNetConfig::paper());
        let params = g.total_params();
        assert!((5e7..8e7).contains(&params), "params = {params:.3e}");
    }

    #[test]
    fn tensor_ranks_line_up_across_every_edge() {
        let g = alexnet(&AlexNetConfig::paper());
        crate::validate_edge_tensors(&g, 0.15).unwrap();
        let t = alexnet(&AlexNetConfig::tiny());
        crate::validate_edge_tensors(&t, 0.15).unwrap();
    }
}
