//! The planner service's wire protocol: newline-delimited JSON.
//!
//! A client sends one JSON object per line and receives one JSON object per
//! line in return. Requests name a model from [`pase_models::MODEL_NAMES`]
//! and a machine — a registry profile from [`MachineSpec::by_name`] or an
//! inline [`DeviceMesh`] object; responses embed a full
//! [`pase_core::SearchReport`] plus the strategy and cache metadata.
//!
//! ## Request
//!
//! ```json
//! {"model": "alexnet", "devices": 8, "machine": "1080ti",
//!  "weak_scaling": true, "prune": true, "epsilon": 0.0,
//!  "budget_entries": 268435456, "budget_seconds": 600.0,
//!  "deadline_ms": 30000}
//! ```
//!
//! Only `"model"` is required. Defaults: 8 devices, the `1080ti` profile,
//! weak scaling on, pruning off, prune gate `"on"`, the standard
//! [`SearchBudget`], and the server's configured per-request deadline.
//! `"prune_gate"` may be `"on"`, `"off"`, or `"auto"` (the adaptive gate;
//! never changes the returned optimum, only whether the dominance prune
//! runs). `"dp_kernel"` may be `"scalar"` or `"tiled"` (default) and
//! selects the DP fill kernel for fresh searches — an execution knob like
//! parallelism that never changes the returned optimum, so it does not
//! partition the cache; `stats.dp_kernel` in the embedded report records
//! which kernel actually ran.
//!
//! `"machine"` also accepts an **inline object** (schema_version 4+)
//! instead of a profile name — either a scalar machine
//! (`{"name": "a100", "peak_flops": 1e13, "link_bandwidth": 2e10}`,
//! costed as a flat single-axis mesh, bit-identical to the scalar model)
//! or a hierarchical device mesh with axes innermost first:
//!
//! ```json
//! {"model": "alexnet", "machine": {"name": "pod", "axes": [
//!   {"name": "gpu",  "size": 8, "bandwidth": 2e10, "peak_flops": 1e13,
//!    "alpha": 5e-6},
//!   {"name": "node", "size": 4, "bandwidth": 3e9,  "peak_flops": 1e13,
//!    "alpha": 15e-6}]}}
//! ```
//!
//! Inline machines are validated up front: non-finite or non-positive
//! rates and empty axis lists are protocol errors, and an unknown profile
//! *name* is a protocol error listing the known registry. Distinct meshes
//! cache separately — the cache key hashes every axis.
//!
//! Two optional fields select the **frontier family** of searches:
//! `"max_memory_bytes": N` asks for the fastest strategy whose peak
//! per-device memory fits in `N` bytes, and `"frontier": true` asks for
//! the whole `(step time, peak memory)` Pareto frontier. Either one makes
//! the server run (and cache) a frontier search; the cache key excludes
//! the budget, so any number of `max_memory_bytes` variants of the same
//! search are answered from one cached frontier by point selection — only
//! the first costs a DP fill.
//!
//! ## Response
//!
//! ```json
//! {"schema_version": 4, "cached": false, "cache_key": "9a3f…",
//!  "cost": 1.23e9, "strategy": [0, 4, 2],
//!  "report": {"schema_version": 4, "model": "alexnet", …}}
//! ```
//!
//! or, on failure, `{"schema_version": 4, "error": "…"}`.
//!
//! Frontier-family responses add `"peak_memory_bytes"` (the selected
//! strategy's peak per-device memory) and `"infeasible"`; when no point
//! fits the requested budget, `"infeasible"` is `true`, `"cost"` and
//! `"strategy"` are `null`, and `"min_memory_bytes"` reports the smallest
//! peak memory any strategy achieves. A `"frontier": true` request
//! additionally gets the full frontier as
//! `"frontier": [{"cost": …, "memory_bytes": …, "strategy": […]}, …]`,
//! sorted by increasing cost / strictly decreasing memory.
//!
//! ## Batch
//!
//! `{"batch": [{"model": "mlp", "devices": 4}, {"model": "alexnet"}, …]}`
//! runs up to [`MAX_BATCH`] searches and answers them as **one** response
//! array written in a single syscall:
//!
//! ```json
//! {"schema_version": 4, "batch": [{"cached": false, …}, {"cached": true, …}]}
//! ```
//!
//! Elements are answered in order through the same cache/singleflight
//! path as single requests, so a batch of N identical queries costs one
//! search plus N−1 cache hits. Batches parse strictly: one malformed
//! element rejects the whole line with an error naming its index.
//!
//! ## Stats
//!
//! `{"stats": true}` returns the server's counters instead of running a
//! search:
//!
//! ```json
//! {"schema_version": 4, "stats": {"requests": 120, "cache_hits": 80,
//!  "cache_misses": 25, "coalesced": 15, "in_flight": 2, "entries": 31,
//!  "cache_bytes": 48123}}
//! ```
//!
//! `coalesced` counts requests answered by waiting on another request's
//! identical in-flight search (the singleflight layer); `in_flight` is the
//! number of searches running at the instant of the probe; `entries` is
//! the in-memory strategy-cache population and `cache_bytes` its
//! approximate resident footprint (the byte-weighted LRU's accounting
//! unit).

use pase_core::{DpKernel, Error, FrontierPoint, PruneGate, SearchBudget, SCHEMA_VERSION};
use pase_cost::{DeviceMesh, MachineSpec};
use pase_obs::json;
use std::fmt::Write as _;
use std::time::Duration;

/// Maximum number of search requests in one `{"batch": […]}` line. Bounds
/// the time a single wire request can hold a worker; clients wanting more
/// split into multiple batch lines.
pub const MAX_BATCH: usize = 1024;

/// One parsed request line: a strategy search, a batch of searches, or a
/// stats probe.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestKind {
    /// A strategy-search request.
    Search(Box<Request>),
    /// A `{"batch": […]}` request: several searches answered as one
    /// response array in one write.
    Batch(Vec<Request>),
    /// A `{"stats": true}` counter probe.
    Stats,
}

impl RequestKind {
    /// Parse one request line, dispatching on the `"batch"` / `"stats"`
    /// markers. A batch is parsed strictly: any malformed element rejects
    /// the whole line with an error naming the element index, so a client
    /// never has to correlate partial failures.
    pub fn parse(line: &str) -> Result<Self, Error> {
        let v = json::parse(line).map_err(Error::Protocol)?;
        if let Some(b) = v.get("batch") {
            let elems = b
                .as_array()
                .ok_or_else(|| Error::Protocol("\"batch\" must be an array".into()))?;
            if elems.is_empty() {
                return Err(Error::Protocol("\"batch\" must not be empty".into()));
            }
            if elems.len() > MAX_BATCH {
                return Err(Error::Protocol(format!(
                    "\"batch\" holds {} requests, the limit is {MAX_BATCH}",
                    elems.len()
                )));
            }
            let requests = elems
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    Request::from_value(e)
                        .map_err(|err| Error::Protocol(format!("batch[{i}]: {err}")))
                })
                .collect::<Result<Vec<Request>, Error>>()?;
            return Ok(RequestKind::Batch(requests));
        }
        if let Some(s) = v.get("stats") {
            return match s.as_bool() {
                Some(true) => Ok(RequestKind::Stats),
                _ => Err(Error::Protocol("\"stats\" must be true".into())),
            };
        }
        Request::from_value(&v).map(|r| RequestKind::Search(Box::new(r)))
    }
}

/// A parsed, validated planner request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Model name (must resolve via [`pase_models::build_named`]).
    pub model: String,
    /// Device count `p` (default 8).
    pub devices: u32,
    /// Machine model: a named profile's flat mesh, or an inline
    /// hierarchical mesh (default: the GTX 1080 Ti profile's flat mesh).
    pub machine: DeviceMesh,
    /// Scale the global mini-batch by `p` (default true, the §IV
    /// throughput protocol).
    pub weak_scaling: bool,
    /// Run dominance pruning before the DP (default false).
    pub prune: bool,
    /// Prune slack ε (default 0.0 = exact; only meaningful with `prune`).
    pub epsilon: f64,
    /// When to run the prune: `"on"` (iff `prune`), `"off"`, or `"auto"`
    /// (the adaptive gate; default `"on"`).
    pub prune_gate: PruneGate,
    /// Search budget (entry cap / wall clock from the request, with the
    /// time cap still subject to the server's per-request deadline).
    pub budget: SearchBudget,
    /// Explicit per-request deadline, if the client sent one.
    pub deadline: Option<Duration>,
    /// Peak per-device memory cap for the returned strategy, in bytes
    /// (`None` = unconstrained). Selects the frontier search family.
    pub max_memory_bytes: Option<u64>,
    /// Return the whole `(step time, peak memory)` Pareto frontier.
    pub frontier: bool,
    /// DP fill kernel override (`"scalar"` / `"tiled"`; `None` = the
    /// engine default, the tiled microkernel). An execution knob like
    /// parallelism — both kernels return a bit-identical optimum — so it
    /// is *not* part of the cache key; the response report's
    /// `stats.dp_kernel` records which kernel actually filled the cached
    /// entry.
    pub dp_kernel: Option<DpKernel>,
}

impl Request {
    /// Whether this request runs the frontier DP (either facet of it).
    pub fn wants_frontier(&self) -> bool {
        self.frontier || self.max_memory_bytes.is_some()
    }
}

impl Request {
    /// Parse one request line. Unknown models/machines and malformed JSON
    /// become [`Error::UnknownName`] / [`Error::Protocol`].
    pub fn parse(line: &str) -> Result<Self, Error> {
        let v = json::parse(line).map_err(Error::Protocol)?;
        Self::from_value(&v)
    }

    /// Parse one already-parsed request object (a top-level line or one
    /// element of a `"batch"` array).
    pub fn from_value(v: &json::Value) -> Result<Self, Error> {
        let model = v
            .get("model")
            .and_then(|m| m.as_str())
            .ok_or_else(|| Error::Protocol("request must have a string \"model\" field".into()))?
            .to_string();
        if !pase_models::MODEL_NAMES.contains(&model.as_str()) {
            return Err(Error::UnknownName {
                kind: "model",
                name: model,
            });
        }
        let devices = match v.get("devices") {
            Some(d) => d
                .as_u64()
                .and_then(|d| u32::try_from(d).ok())
                .filter(|&d| d >= 1)
                .ok_or_else(|| Error::Protocol("\"devices\" must be a positive integer".into()))?,
            None => 8,
        };
        let machine = parse_machine(v.get("machine"))?;
        let bool_field = |name: &str, default: bool| match v.get(name) {
            Some(b) => b
                .as_bool()
                .ok_or_else(|| Error::Protocol(format!("\"{name}\" must be a boolean"))),
            None => Ok(default),
        };
        let mut budget = SearchBudget::default();
        if let Some(e) = v.get("budget_entries") {
            budget.max_table_entries = e
                .as_u64()
                .ok_or_else(|| Error::Protocol("\"budget_entries\" must be an integer".into()))?;
        }
        if let Some(s) = v.get("budget_seconds") {
            // try_from_secs_f64 rejects NaN, negatives, and values that
            // overflow Duration — from_secs_f64 would panic on those.
            budget.max_time = s
                .as_f64()
                .and_then(|secs| Duration::try_from_secs_f64(secs).ok())
                .ok_or_else(|| {
                    Error::Protocol("\"budget_seconds\" must be a finite number ≥ 0".into())
                })?;
        }
        let deadline = match v.get("deadline_ms") {
            Some(d) => Some(Duration::from_millis(d.as_u64().ok_or_else(|| {
                Error::Protocol("\"deadline_ms\" must be an integer".into())
            })?)),
            None => None,
        };
        let epsilon = match v.get("epsilon") {
            Some(e) => e
                .as_f64()
                .filter(|e| *e >= 0.0)
                .ok_or_else(|| Error::Protocol("\"epsilon\" must be a number ≥ 0".into()))?,
            None => 0.0,
        };
        let prune_gate = match v.get("prune_gate") {
            Some(g) => g.as_str().and_then(PruneGate::parse).ok_or_else(|| {
                Error::Protocol("\"prune_gate\" must be \"auto\", \"on\", or \"off\"".into())
            })?,
            None => PruneGate::On,
        };
        let dp_kernel = match v.get("dp_kernel") {
            Some(k) => Some(k.as_str().and_then(DpKernel::parse).ok_or_else(|| {
                Error::Protocol("\"dp_kernel\" must be \"scalar\" or \"tiled\"".into())
            })?),
            None => None,
        };
        let max_memory_bytes = match v.get("max_memory_bytes") {
            Some(b) => Some(b.as_u64().ok_or_else(|| {
                Error::Protocol("\"max_memory_bytes\" must be a non-negative integer".into())
            })?),
            None => None,
        };
        Ok(Request {
            model,
            devices,
            machine,
            weak_scaling: bool_field("weak_scaling", true)?,
            prune: bool_field("prune", false)?,
            epsilon,
            prune_gate,
            budget,
            deadline,
            max_memory_bytes,
            frontier: bool_field("frontier", false)?,
            dp_kernel,
        })
    }
}

/// Resolve the `"machine"` field of a request: absent = the default
/// GTX 1080 Ti flat mesh, a string = a registry profile's flat mesh, an
/// object = an inline scalar-machine or hierarchical-mesh description
/// (validated — hostile rates are protocol errors, not poisoned tables).
/// Unknown profile names list the known registry so clients can
/// self-correct.
fn parse_machine(v: Option<&json::Value>) -> Result<DeviceMesh, Error> {
    let Some(m) = v else {
        return Ok(DeviceMesh::flat(&MachineSpec::gtx1080ti()));
    };
    if let Some(name) = m.as_str() {
        return match MachineSpec::by_name(name) {
            Some(spec) => Ok(DeviceMesh::flat(&spec)),
            None => Err(Error::Protocol(format!(
                "unknown machine '{name}'; known profiles: {}",
                MachineSpec::known_names().join(", ")
            ))),
        };
    }
    DeviceMesh::from_json_value(m).map_err(|e| {
        Error::Protocol(format!(
            "\"machine\" must be a profile name or a machine/mesh object: {e}"
        ))
    })
}

/// Render a success response line (no trailing newline) into `out`,
/// appending — clear the buffer first to reuse it across requests (the
/// serve workers hold one buffer each instead of allocating per response).
///
/// `report_json` is spliced in verbatim — it is already a JSON object —
/// and `strategy` is `Some` only when the search found an optimum.
pub fn write_response_json(
    out: &mut String,
    cache_key: u64,
    cached: bool,
    cost: Option<f64>,
    strategy: Option<&[u16]>,
    report_json: &str,
) {
    out.reserve(128 + report_json.len());
    let _ = write!(
        out,
        "{{\"schema_version\": {SCHEMA_VERSION}, \"cached\": {cached}, \
         \"cache_key\": \"{cache_key:016x}\", \"cost\": "
    );
    match cost {
        Some(c) => out.push_str(&json::number(c)),
        None => out.push_str("null"),
    }
    out.push_str(", \"strategy\": ");
    match strategy {
        Some(ids) => {
            out.push('[');
            for (i, id) in ids.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{id}");
            }
            out.push(']');
        }
        None => out.push_str("null"),
    }
    let _ = write!(out, ", \"report\": {report_json}}}");
}

/// Render a frontier-family success response line (no trailing newline)
/// into `out`, appending. `picked` is the selected Pareto point as
/// `(cost, peak_memory_bytes, strategy)`, or `None` when no point fits the
/// requested budget — then `min_memory_bytes` (the frontier's smallest
/// peak memory) is reported alongside `"infeasible": true`. `frontier` is
/// `Some` only when the client asked for the full Pareto set.
pub fn write_frontier_response_json(
    out: &mut String,
    cache_key: u64,
    cached: bool,
    picked: Option<(f64, u64, &[u16])>,
    min_memory_bytes: u64,
    frontier: Option<&[FrontierPoint]>,
    report_json: &str,
) {
    out.reserve(192 + report_json.len());
    let _ = write!(
        out,
        "{{\"schema_version\": {SCHEMA_VERSION}, \"cached\": {cached}, \
         \"cache_key\": \"{cache_key:016x}\", \"cost\": "
    );
    let write_ids = |out: &mut String, ids: &[u16]| {
        out.push('[');
        for (i, id) in ids.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{id}");
        }
        out.push(']');
    };
    match picked {
        Some((cost, peak, ids)) => {
            out.push_str(&json::number(cost));
            out.push_str(", \"strategy\": ");
            write_ids(out, ids);
            let _ = write!(
                out,
                ", \"peak_memory_bytes\": {peak}, \"infeasible\": false"
            );
        }
        None => {
            let _ = write!(
                out,
                "null, \"strategy\": null, \"peak_memory_bytes\": null, \
                 \"infeasible\": true, \"min_memory_bytes\": {min_memory_bytes}"
            );
        }
    }
    if let Some(points) = frontier {
        out.push_str(", \"frontier\": [");
        for (i, p) in points.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"cost\": {}, \"memory_bytes\": {}, \"strategy\": ",
                json::number(p.cost),
                p.memory_bytes
            );
            write_ids(out, &p.config_ids);
            out.push('}');
        }
        out.push(']');
    }
    let _ = write!(out, ", \"report\": {report_json}}}");
}

/// [`write_response_json`] into a fresh `String`.
pub fn response_json(
    cache_key: u64,
    cached: bool,
    cost: Option<f64>,
    strategy: Option<&[u16]>,
    report_json: &str,
) -> String {
    let mut out = String::new();
    write_response_json(&mut out, cache_key, cached, cost, strategy, report_json);
    out
}

/// Render an error response line (no trailing newline) into `out`,
/// appending.
pub fn write_error_json(out: &mut String, err: &Error) {
    let _ = write!(
        out,
        "{{\"schema_version\": {SCHEMA_VERSION}, \"error\": \"{}\"}}",
        json::escape(&err.to_string())
    );
}

/// [`write_error_json`] into a fresh `String`.
pub fn error_json(err: &Error) -> String {
    let mut out = String::new();
    write_error_json(&mut out, err);
    out
}

/// Open the envelope of a batch response: every per-request response
/// object is appended between [`write_batch_open`] and
/// [`write_batch_close`], comma-separated by the caller, and the whole
/// array goes to the client as one line in one write.
pub fn write_batch_open(out: &mut String) {
    let _ = write!(out, "{{\"schema_version\": {SCHEMA_VERSION}, \"batch\": [");
}

/// Close the batch-response envelope opened by [`write_batch_open`].
pub fn write_batch_close(out: &mut String) {
    out.push_str("]}");
}

/// Render the `stats` response line (no trailing newline) into `out`,
/// appending. Field meanings are documented in the module docs.
#[allow(clippy::too_many_arguments)]
pub fn write_stats_json(
    out: &mut String,
    requests: u64,
    hits: u64,
    misses: u64,
    coalesced: u64,
    in_flight: u64,
    entries: u64,
    cache_bytes: u64,
) {
    let _ = write!(
        out,
        "{{\"schema_version\": {SCHEMA_VERSION}, \"stats\": {{\
         \"requests\": {requests}, \"cache_hits\": {hits}, \
         \"cache_misses\": {misses}, \"coalesced\": {coalesced}, \
         \"in_flight\": {in_flight}, \"entries\": {entries}, \
         \"cache_bytes\": {cache_bytes}}}}}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_uses_defaults() {
        let r = Request::parse("{\"model\": \"alexnet\"}").unwrap();
        assert_eq!(r.model, "alexnet");
        assert_eq!(r.devices, 8);
        assert_eq!(r.machine, DeviceMesh::flat(&MachineSpec::gtx1080ti()));
        assert!(r.weak_scaling);
        assert!(!r.prune);
        assert_eq!(r.budget, SearchBudget::default());
        assert_eq!(r.deadline, None);
        assert_eq!(r.max_memory_bytes, None);
        assert!(!r.frontier && !r.wants_frontier());
        assert_eq!(r.dp_kernel, None);
    }

    #[test]
    fn dp_kernel_field_parses_and_rejects_unknown_values() {
        let r = Request::parse("{\"model\": \"mlp\", \"dp_kernel\": \"scalar\"}").unwrap();
        assert_eq!(r.dp_kernel, Some(DpKernel::Scalar));
        let r = Request::parse("{\"model\": \"mlp\", \"dp_kernel\": \"tiled\"}").unwrap();
        assert_eq!(r.dp_kernel, Some(DpKernel::Tiled));
        for bad in [
            "{\"model\": \"mlp\", \"dp_kernel\": \"vectorized\"}",
            "{\"model\": \"mlp\", \"dp_kernel\": 1}",
        ] {
            assert!(
                matches!(Request::parse(bad), Err(Error::Protocol(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn frontier_fields_parse_and_select_the_frontier_family() {
        let r = Request::parse("{\"model\": \"mlp\", \"max_memory_bytes\": 1000000}").unwrap();
        assert_eq!(r.max_memory_bytes, Some(1_000_000));
        assert!(!r.frontier);
        assert!(r.wants_frontier());
        let r = Request::parse("{\"model\": \"mlp\", \"frontier\": true}").unwrap();
        assert!(r.frontier && r.wants_frontier());
        assert_eq!(r.max_memory_bytes, None);
        for bad in [
            "{\"model\": \"mlp\", \"max_memory_bytes\": -1}",
            "{\"model\": \"mlp\", \"max_memory_bytes\": \"lots\"}",
            "{\"model\": \"mlp\", \"frontier\": 1}",
        ] {
            assert!(
                matches!(Request::parse(bad), Err(Error::Protocol(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn full_request_round_trips_every_field() {
        let r = Request::parse(
            "{\"model\": \"mlp\", \"devices\": 4, \"machine\": \"test\", \
             \"weak_scaling\": false, \"prune\": true, \"epsilon\": 0.25, \
             \"budget_entries\": 1024, \"budget_seconds\": 1.5, \
             \"deadline_ms\": 250}",
        )
        .unwrap();
        assert_eq!(r.devices, 4);
        assert_eq!(r.machine, DeviceMesh::flat(&MachineSpec::test_machine()));
        assert!(!r.weak_scaling);
        assert!(r.prune);
        assert_eq!(r.epsilon, 0.25);
        assert_eq!(r.budget.max_table_entries, 1024);
        assert_eq!(r.budget.max_time, Duration::from_secs_f64(1.5));
        assert_eq!(r.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn bad_requests_are_rejected_with_specific_errors() {
        assert!(matches!(
            Request::parse("not json"),
            Err(Error::Protocol(_))
        ));
        assert!(matches!(
            Request::parse("{\"devices\": 8}"),
            Err(Error::Protocol(_))
        ));
        assert!(matches!(
            Request::parse("{\"model\": \"gpt5\"}"),
            Err(Error::UnknownName { kind: "model", .. })
        ));
        // Unknown machine names are protocol errors that list the
        // registry, so a client can self-correct without a docs lookup.
        let err = Request::parse("{\"model\": \"mlp\", \"machine\": \"abacus\"}").unwrap_err();
        assert!(matches!(err, Error::Protocol(_)), "{err}");
        let msg = err.to_string();
        for known in MachineSpec::known_names() {
            assert!(msg.contains(&known), "{msg} must list '{known}'");
        }
        assert!(matches!(
            Request::parse("{\"model\": \"mlp\", \"devices\": 0}"),
            Err(Error::Protocol(_))
        ));
        // Values Duration cannot represent must be a protocol error, not a
        // from_secs_f64 panic that kills the worker thread.
        for bad in [
            "{\"model\": \"mlp\", \"budget_seconds\": 1e20}",
            "{\"model\": \"mlp\", \"budget_seconds\": -1}",
        ] {
            assert!(
                matches!(Request::parse(bad), Err(Error::Protocol(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn inline_machine_objects_parse_in_both_shapes() {
        // A scalar machine object becomes its flat single-axis mesh.
        let r = Request::parse(
            "{\"model\": \"mlp\", \"machine\": {\"name\": \"a100\", \
             \"peak_flops\": 1e13, \"link_bandwidth\": 2e10, \
             \"internode_bandwidth\": 3e9}}",
        )
        .unwrap();
        assert_eq!(r.machine.axes.len(), 1);
        assert_eq!(r.machine.name, "a100");
        assert_eq!(r.machine.axes[0].bandwidth, 2e10);

        // A hierarchical mesh keeps every axis, innermost first.
        let r = Request::parse(
            "{\"model\": \"mlp\", \"machine\": {\"name\": \"pod\", \"axes\": [\
             {\"name\": \"gpu\", \"size\": 8, \"bandwidth\": 2e10, \
              \"peak_flops\": 1e13, \"alpha\": 5e-6}, \
             {\"name\": \"node\", \"size\": 4, \"bandwidth\": 3e9, \
              \"peak_flops\": 1e13, \"alpha\": 1.5e-5}]}}",
        )
        .unwrap();
        assert_eq!(r.machine.axes.len(), 2);
        assert_eq!(r.machine.axes[0].name, "gpu");
        assert_eq!(r.machine.axes[1].size, 4);
        assert_eq!(r.machine.total_devices(), 32);
    }

    #[test]
    fn hostile_inline_machines_are_protocol_errors() {
        // Regression: a zero-bandwidth or non-finite inline machine must be
        // rejected at the parse boundary, never reach a table build, and
        // never panic the worker.
        for bad in [
            // zero bandwidth → infinite comm cost
            "{\"model\": \"mlp\", \"machine\": {\"name\": \"x\", \
             \"peak_flops\": 1.0, \"link_bandwidth\": 0.0}}",
            // empty axis list
            "{\"model\": \"mlp\", \"machine\": {\"name\": \"x\", \"axes\": []}}",
            // zero-size axis
            "{\"model\": \"mlp\", \"machine\": {\"name\": \"x\", \"axes\": [\
             {\"name\": \"a\", \"size\": 0, \"bandwidth\": 1.0, \
              \"peak_flops\": 1.0}]}}",
            // negative alpha
            "{\"model\": \"mlp\", \"machine\": {\"name\": \"x\", \"axes\": [\
             {\"name\": \"a\", \"size\": 2, \"bandwidth\": 1.0, \
              \"peak_flops\": 1.0, \"alpha\": -1.0}]}}",
            // not a string or object at all
            "{\"model\": \"mlp\", \"machine\": 42}",
        ] {
            assert!(
                matches!(Request::parse(bad), Err(Error::Protocol(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn stats_requests_and_gate_values_parse() {
        assert_eq!(
            RequestKind::parse("{\"stats\": true}").unwrap(),
            RequestKind::Stats
        );
        assert!(matches!(
            RequestKind::parse("{\"stats\": 1}"),
            Err(Error::Protocol(_))
        ));
        match RequestKind::parse("{\"model\": \"mlp\", \"prune_gate\": \"auto\"}").unwrap() {
            RequestKind::Search(r) => assert_eq!(r.prune_gate, PruneGate::Auto),
            other => panic!("expected a search request, got {other:?}"),
        }
        assert_eq!(
            Request::parse("{\"model\": \"mlp\"}").unwrap().prune_gate,
            PruneGate::On
        );
        assert!(matches!(
            Request::parse("{\"model\": \"mlp\", \"prune_gate\": \"maybe\"}"),
            Err(Error::Protocol(_))
        ));
    }

    #[test]
    fn stats_response_shape() {
        let mut out = String::new();
        write_stats_json(&mut out, 10, 5, 3, 2, 1, 4, 2048);
        let v = json::parse(&out).unwrap();
        let stats = v.get("stats").expect("stats object");
        assert_eq!(stats.get("requests").and_then(|x| x.as_u64()), Some(10));
        assert_eq!(stats.get("cache_hits").and_then(|x| x.as_u64()), Some(5));
        assert_eq!(stats.get("cache_misses").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(stats.get("coalesced").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(stats.get("in_flight").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(stats.get("entries").and_then(|x| x.as_u64()), Some(4));
        assert_eq!(
            stats.get("cache_bytes").and_then(|x| x.as_u64()),
            Some(2048)
        );
    }

    #[test]
    fn frontier_responses_are_valid_json_in_every_shape() {
        let points = vec![
            FrontierPoint {
                cost: 1.0,
                memory_bytes: 900,
                config_ids: vec![1, 2],
            },
            FrontierPoint {
                cost: 2.0,
                memory_bytes: 400,
                config_ids: vec![0, 0],
            },
        ];

        // A budgeted request: selected point, no frontier array.
        let mut out = String::new();
        write_frontier_response_json(
            &mut out,
            9,
            true,
            Some((2.0, 400, &[0, 0])),
            400,
            None,
            "{}",
        );
        let v = json::parse(&out).unwrap();
        assert_eq!(v.get("cost").and_then(|c| c.as_f64()), Some(2.0));
        assert_eq!(
            v.get("peak_memory_bytes").and_then(|p| p.as_u64()),
            Some(400)
        );
        assert_eq!(v.get("infeasible").and_then(|i| i.as_bool()), Some(false));
        assert!(v.get("frontier").is_none());
        assert!(v.get("min_memory_bytes").is_none());

        // An infeasible budget: null cost/strategy, the floor reported.
        let mut out = String::new();
        write_frontier_response_json(&mut out, 9, true, None, 400, None, "{}");
        let v = json::parse(&out).unwrap();
        assert!(v.get("cost").unwrap().as_f64().is_none());
        assert!(v.get("strategy").unwrap().as_array().is_none());
        assert_eq!(v.get("infeasible").and_then(|i| i.as_bool()), Some(true));
        assert_eq!(
            v.get("min_memory_bytes").and_then(|m| m.as_u64()),
            Some(400)
        );

        // A frontier request: the full Pareto set rides along.
        let mut out = String::new();
        write_frontier_response_json(
            &mut out,
            9,
            false,
            Some((1.0, 900, &[1, 2])),
            400,
            Some(&points),
            "{}",
        );
        let v = json::parse(&out).unwrap();
        let f = v.get("frontier").and_then(|f| f.as_array()).expect("array");
        assert_eq!(f.len(), 2);
        assert_eq!(f[1].get("memory_bytes").and_then(|m| m.as_u64()), Some(400));
        assert_eq!(
            f[0].get("strategy")
                .and_then(|s| s.as_array())
                .map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn batch_requests_parse_in_order_with_per_element_defaults() {
        let kind = RequestKind::parse(
            "{\"batch\": [{\"model\": \"mlp\", \"devices\": 4}, \
             {\"model\": \"alexnet\"}]}",
        )
        .unwrap();
        let reqs = match kind {
            RequestKind::Batch(reqs) => reqs,
            other => panic!("expected a batch, got {other:?}"),
        };
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].model, "mlp");
        assert_eq!(reqs[0].devices, 4);
        assert_eq!(reqs[1].model, "alexnet");
        assert_eq!(reqs[1].devices, 8, "element defaults match single requests");
    }

    #[test]
    fn malformed_batches_are_rejected_whole() {
        // Not an array, empty, element without a model, element with an
        // unknown model — each rejects the entire line.
        for bad in [
            "{\"batch\": true}",
            "{\"batch\": []}",
            "{\"batch\": [{\"devices\": 4}]}",
            "{\"batch\": [{\"model\": \"mlp\"}, {\"model\": \"gpt5\"}]}",
        ] {
            assert!(
                matches!(RequestKind::parse(bad), Err(Error::Protocol(_))),
                "{bad}"
            );
        }
        // The error names the offending element.
        let err = RequestKind::parse("{\"batch\": [{\"model\": \"mlp\"}, {\"model\": \"gpt5\"}]}")
            .unwrap_err();
        assert!(err.to_string().contains("batch[1]"), "{err}");
        // Oversized batches are refused up front.
        let mut line = String::from("{\"batch\": [");
        for i in 0..=MAX_BATCH {
            if i > 0 {
                line.push_str(", ");
            }
            line.push_str("{\"model\": \"mlp\"}");
        }
        line.push_str("]}");
        let err = RequestKind::parse(&line).unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
    }

    #[test]
    fn batch_envelope_is_valid_json() {
        let mut out = String::new();
        write_batch_open(&mut out);
        write_response_json(&mut out, 1, false, Some(1.0), Some(&[2]), "{}");
        out.push_str(", ");
        write_response_json(&mut out, 1, true, Some(1.0), Some(&[2]), "{}");
        write_batch_close(&mut out);
        let v = json::parse(&out).unwrap();
        let batch = v.get("batch").and_then(|b| b.as_array()).expect("array");
        assert_eq!(batch.len(), 2);
        assert_eq!(
            batch[0].get("cached").and_then(|c| c.as_bool()),
            Some(false)
        );
        assert_eq!(batch[1].get("cached").and_then(|c| c.as_bool()), Some(true));
    }

    #[test]
    fn buffered_writers_match_the_allocating_forms() {
        let mut buf = String::from("junk");
        buf.clear();
        write_response_json(&mut buf, 7, false, Some(1.0), Some(&[3]), "{}");
        assert_eq!(buf, response_json(7, false, Some(1.0), Some(&[3]), "{}"));
        buf.clear();
        write_error_json(&mut buf, &Error::Protocol("x".into()));
        assert_eq!(buf, error_json(&Error::Protocol("x".into())));
    }

    #[test]
    fn responses_are_valid_json() {
        let ok = response_json(0xabc, true, Some(2.5), Some(&[1, 2]), "{\"x\": 1}");
        let v = json::parse(&ok).unwrap();
        assert_eq!(v.get("cached").and_then(|c| c.as_bool()), Some(true));
        assert_eq!(
            v.get("cache_key").and_then(|k| k.as_str()),
            Some("0000000000000abc")
        );
        assert_eq!(v.get("cost").and_then(|c| c.as_f64()), Some(2.5));
        assert_eq!(
            v.get("strategy")
                .and_then(|s| s.as_array())
                .map(|a| a.len()),
            Some(2)
        );
        assert!(v.get("report").and_then(|r| r.get("x")).is_some());

        let fail = response_json(1, false, None, None, "{}");
        let v = json::parse(&fail).unwrap();
        assert!(v.get("cost").unwrap().as_f64().is_none());

        let err = error_json(&Error::Protocol("bad \"line\"".into()));
        let v = json::parse(&err).unwrap();
        assert_eq!(
            v.get("error").and_then(|e| e.as_str()),
            Some("protocol: bad \"line\"")
        );
    }
}
