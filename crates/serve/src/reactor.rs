//! A thin `epoll` readiness reactor over raw libc syscalls.
//!
//! The workspace is std-only, so instead of pulling in `mio`/`libc` this
//! module declares the four syscalls it needs (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `pipe2`) the same way
//! [`crate::install_sigint`] declares `signal(2)` — libc is always linked
//! into std binaries on Linux. Everything unsafe lives here behind a safe
//! API; the event loop in [`crate::event`] never touches a raw fd except
//! through [`Reactor`] and [`WakePipe`].
//!
//! The reactor is **level-triggered** (the epoll default): a socket with
//! unread bytes or unflushed write space keeps reporting ready, so the
//! event loop can stop reading/writing at any convenient boundary without
//! losing the wakeup — no `EPOLLET` starvation bookkeeping.

#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

// Linux ABI constants (asm-generic values; x86_64 and aarch64 agree).
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;

/// `struct epoll_event` — packed on x86_64 (12 bytes), and the packed
/// layout is ABI-compatible on the other 64-bit Linux targets as well
/// because the kernel reads it bytewise via the syscall ABI.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn last_err() -> io::Error {
    io::Error::last_os_error()
}

/// What a registration wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd accepts more bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest — a connection with a partially flushed
    /// response.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    /// Write-only interest — a half-closed connection still flushing its
    /// final response.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = 0;
        if self.readable {
            // RDHUP rides with read interest only: it is level-triggered,
            // so arming it on a write-only registration would make a
            // half-closed peer report ready forever.
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification out of [`Reactor::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Bytes (or EOF) are waiting to be read.
    pub readable: bool,
    /// The socket accepts more bytes.
    pub writable: bool,
    /// Error or hangup — the connection should be torn down after any
    /// final read drains buffered bytes.
    pub hangup: bool,
}

/// An owned `epoll` instance. Fds are registered under a caller-chosen
/// `u64` token that comes back verbatim in [`Event::token`].
pub struct Reactor {
    epfd: RawFd,
    /// Reused event buffer for [`Reactor::wait`].
    events: Vec<EpollEvent>,
}

impl Reactor {
    /// Create the epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(last_err());
        }
        Ok(Self {
            epfd,
            events: vec![EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: Option<(u64, Interest)>) -> io::Result<()> {
        let mut ev = interest.map(|(token, i)| EpollEvent {
            events: i.mask(),
            data: token,
        });
        let ptr = ev
            .as_mut()
            .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        if unsafe { epoll_ctl(self.epfd, op, fd, ptr) } < 0 {
            return Err(last_err());
        }
        Ok(())
    }

    /// Register `fd` under `token` with the given interest.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some((token, interest)))
    }

    /// Change the interest set of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some((token, interest)))
    }

    /// Remove `fd` from the interest list. (Closing the fd also removes
    /// it, but an explicit deregister keeps teardown deterministic.)
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses, then call `sink` once per ready fd. Returns the number of
    /// notifications delivered (0 on timeout). `EINTR` is reported as 0
    /// rather than an error so signal delivery never kills the loop.
    pub fn wait(&mut self, timeout: Duration, mut sink: impl FnMut(Event)) -> io::Result<usize> {
        let ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        let n = unsafe {
            epoll_wait(
                self.epfd,
                self.events.as_mut_ptr(),
                self.events.len() as i32,
                ms,
            )
        };
        if n < 0 {
            let e = last_err();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        let n = n as usize;
        for i in 0..n {
            let ev = self.events[i];
            let bits = ev.events;
            sink(Event {
                token: ev.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

/// A nonblocking self-pipe used to wake the reactor from worker threads:
/// the read end is registered in the epoll set, workers write one byte
/// after pushing a completion. Writes to a full pipe are dropped — the
/// pending byte already guarantees a wakeup.
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

/// The clonable writer half handed to worker threads.
#[derive(Clone, Copy)]
pub struct Waker {
    write_fd: RawFd,
}

impl WakePipe {
    /// Create the pipe (both ends nonblocking, close-on-exec).
    pub fn new() -> io::Result<Self> {
        let mut fds = [0i32; 2];
        if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } < 0 {
            return Err(last_err());
        }
        Ok(Self {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd to register for read interest in the reactor.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// A writer handle for worker threads. The handle borrows the pipe's
    /// lifetime logically (fd-copy), so the [`WakePipe`] must outlive the
    /// workers — the event loop joins them before dropping it.
    pub fn waker(&self) -> Waker {
        Waker {
            write_fd: self.write_fd,
        }
    }

    /// Drain all pending wake bytes (call once per readiness event).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return; // empty (EAGAIN), EOF, or a transient error
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

impl Waker {
    /// Wake the reactor. Best-effort: a full pipe already has a pending
    /// wake byte, so the dropped write is harmless.
    pub fn wake(&self) {
        let b = [1u8];
        unsafe { write(self.write_fd, b.as_ptr(), 1) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wait_times_out_when_nothing_is_ready() {
        let mut r = Reactor::new().unwrap();
        let n = r
            .wait(Duration::from_millis(10), |_| panic!("no events expected"))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn readable_socket_reports_its_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut r = Reactor::new().unwrap();
        r.register(server_side.as_raw_fd(), 42, Interest::READ)
            .unwrap();

        client.write_all(b"ping").unwrap();
        let mut seen = Vec::new();
        r.wait(Duration::from_secs(1), |ev| seen.push(ev)).unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].token, 42);
        assert!(seen[0].readable);
        assert!(!seen[0].hangup);

        // Level-triggered: unread bytes keep the fd ready.
        let n = r.wait(Duration::from_millis(50), |_| {}).unwrap();
        assert_eq!(n, 1);
        let mut buf = [0u8; 16];
        let mut s = &server_side;
        assert_eq!(s.read(&mut buf).unwrap(), 4);
        assert_eq!(r.wait(Duration::from_millis(10), |_| {}).unwrap(), 0);
    }

    #[test]
    fn hangup_is_reported_after_peer_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut r = Reactor::new().unwrap();
        r.register(server_side.as_raw_fd(), 7, Interest::READ)
            .unwrap();
        drop(client);
        let mut hangup = false;
        r.wait(Duration::from_secs(1), |ev| hangup |= ev.hangup)
            .unwrap();
        assert!(hangup);
    }

    #[test]
    fn modify_enables_write_interest_and_deregister_silences() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut r = Reactor::new().unwrap();
        let fd = server_side.as_raw_fd();
        r.register(fd, 1, Interest::READ).unwrap();
        // An idle socket with write interest is immediately writable.
        r.modify(fd, 1, Interest::READ_WRITE).unwrap();
        let mut writable = false;
        r.wait(Duration::from_secs(1), |ev| writable |= ev.writable)
            .unwrap();
        assert!(writable);
        r.deregister(fd).unwrap();
        assert_eq!(r.wait(Duration::from_millis(10), |_| {}).unwrap(), 0);
    }

    #[test]
    fn wake_pipe_wakes_and_drains() {
        let pipe = WakePipe::new().unwrap();
        let mut r = Reactor::new().unwrap();
        r.register(pipe.read_fd(), 99, Interest::READ).unwrap();
        let waker = pipe.waker();
        let t = std::thread::spawn(move || waker.wake());
        let mut woke = false;
        r.wait(Duration::from_secs(1), |ev| woke |= ev.token == 99)
            .unwrap();
        t.join().unwrap();
        assert!(woke);
        pipe.drain();
        assert_eq!(r.wait(Duration::from_millis(10), |_| {}).unwrap(), 0);
    }
}
