//! Zoo prewarm: fill the strategy cache before the first accept.
//!
//! A spec names a cross-product of `models:devices[:machines]` (each part
//! a comma-separated list, machines defaulting to the wire default GTX
//! 1080 Ti) — e.g. `mlp,resnet:4,8:test` is four cells. Every cell is
//! searched through [`crate::server::answer_search`], i.e. the normal
//! sharded singleflight lookup path, so a prewarmed server answers a
//! matching query (same model/p/machine with wire-default options) as a
//! cache hit, and the prewarm searches themselves show up as cache
//! misses in the counters and `{"stats": true}`.

use crate::protocol::Request;
use crate::server::{answer_search, Shared};
use pase_core::SearchBudget;
use pase_cost::{DeviceMesh, MachineSpec};
use pase_models::MODEL_NAMES;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Expand a `models:devices[:machines]` spec into wire-default requests
/// (weak scaling on, no pruning, default budget), one per cross-product
/// cell. Errors name the offending part.
pub fn parse_prewarm_spec(spec: &str) -> Result<Vec<Request>, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() < 2 || parts.len() > 3 {
        return Err(format!(
            "prewarm spec '{spec}' must be models:devices[:machines], \
             e.g. 'mlp,resnet:4,8:test'"
        ));
    }
    let models: Vec<&str> = parts[0].split(',').filter(|s| !s.is_empty()).collect();
    if models.is_empty() {
        return Err("prewarm spec names no models".into());
    }
    for m in &models {
        if !MODEL_NAMES.contains(m) {
            return Err(format!("prewarm spec: unknown model '{m}'"));
        }
    }
    let devices = parts[1]
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|d| {
            d.parse::<u32>()
                .ok()
                .filter(|&d| d >= 1)
                .ok_or_else(|| format!("prewarm spec: '{d}' is not a positive device count"))
        })
        .collect::<Result<Vec<u32>, String>>()?;
    if devices.is_empty() {
        return Err("prewarm spec names no device counts".into());
    }
    let machines = match parts.get(2) {
        Some(names) => names
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|n| {
                MachineSpec::by_name(n)
                    .map(|m| DeviceMesh::flat(&m))
                    .ok_or_else(|| format!("prewarm spec: unknown machine '{n}'"))
            })
            .collect::<Result<Vec<DeviceMesh>, String>>()?,
        None => vec![DeviceMesh::flat(&MachineSpec::gtx1080ti())],
    };
    if machines.is_empty() {
        return Err("prewarm spec names no machines".into());
    }

    let mut cells = Vec::with_capacity(models.len() * devices.len() * machines.len());
    for model in &models {
        for &p in &devices {
            for machine in &machines {
                cells.push(Request {
                    model: model.to_string(),
                    devices: p,
                    machine: machine.clone(),
                    weak_scaling: true,
                    prune: false,
                    epsilon: 0.0,
                    prune_gate: Default::default(),
                    budget: SearchBudget::default(),
                    deadline: None,
                    max_memory_bytes: None,
                    frontier: false,
                    dp_kernel: None,
                });
            }
        }
    }
    Ok(cells)
}

/// Search every cell of the spec with up to `cfg.workers` threads, all
/// through the singleflight lookup path (duplicate cells coalesce).
/// Returns the number of cells searched.
pub(crate) fn prewarm(spec: &str, shared: &Shared) -> Result<u64, String> {
    let cells = parse_prewarm_spec(spec)?;
    let threads = shared.cfg.workers.max(1).min(cells.len()).max(1);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut out = String::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(req) = cells.get(i) else { break };
                    out.clear();
                    // The response text is discarded; the side effect —
                    // the cache entry — is the point.
                    answer_search(req, shared, &mut out);
                }
            });
        }
    });
    Ok(cells.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_expands_the_cross_product_in_order() {
        let cells = parse_prewarm_spec("mlp,resnet:2,4:test").expect("valid spec");
        assert_eq!(cells.len(), 4);
        let names: Vec<(String, u32)> =
            cells.iter().map(|r| (r.model.clone(), r.devices)).collect();
        assert_eq!(
            names,
            [
                ("mlp".into(), 2),
                ("mlp".into(), 4),
                ("resnet".into(), 2),
                ("resnet".into(), 4)
            ]
        );
        assert!(cells.iter().all(|r| r.weak_scaling && !r.prune));
    }

    #[test]
    fn machines_default_to_the_wire_default() {
        let cells = parse_prewarm_spec("mlp:8").expect("valid spec");
        assert_eq!(cells.len(), 1);
        assert_eq!(
            cells[0].machine,
            DeviceMesh::flat(&MachineSpec::gtx1080ti())
        );
    }

    #[test]
    fn bad_specs_name_the_offending_part() {
        for (spec, needle) in [
            ("mlp", "must be models:devices"),
            ("gpt5:4", "unknown model 'gpt5'"),
            ("mlp:zero", "not a positive device count"),
            ("mlp:0", "not a positive device count"),
            ("mlp:4:abacus", "unknown machine 'abacus'"),
            (":4", "no models"),
        ] {
            let err = parse_prewarm_spec(spec).expect_err(spec);
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }
}
