//! # pase-serve — the PaSE planner service
//!
//! A std-only TCP strategy server: clients send newline-delimited JSON
//! requests naming a model, a device count `p`, a machine profile, and an
//! optional budget/deadline; the server answers with the optimal
//! parallelization strategy and a full [`pase_core::SearchReport`].
//! Repeated queries are answered from a **content-addressed strategy
//! cache** keyed by a canonical hash of everything that determines the
//! answer — graph structure (name-blind), per-node iteration spaces and
//! tensors, the [`pase_cost::ConfigRule`], the machine's measured rates,
//! `p`, and the pruning settings — with in-memory LRU eviction and
//! optional JSON persistence to a `--cache-dir`.
//!
//! ```no_run
//! use pase_serve::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default())?;
//! println!("listening on {}", server.local_addr()?);
//! #[cfg(unix)]
//! pase_serve::install_sigint(server.shutdown_handle());
//! let summary = server.run()?; // blocks until shutdown
//! eprintln!(
//!     "served {} requests ({} cache hits)",
//!     summary.requests, summary.cache_hits
//! );
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! The wire protocol is documented in [`protocol`]; the cache-key
//! derivation in [`cache`]. The CLI front-ends are `pase serve` and
//! `pase query`.

pub mod cache;
#[cfg(target_os = "linux")]
mod event;
mod prewarm;
pub mod protocol;
#[cfg(target_os = "linux")]
pub mod reactor;
mod server;
pub mod sharded;

pub use cache::{strategy_cache_key, CacheEntry, StrategyCache};
pub use prewarm::parse_prewarm_spec;
pub use protocol::{
    error_json, response_json, write_batch_close, write_batch_open, write_error_json,
    write_frontier_response_json, write_response_json, write_stats_json, Request, RequestKind,
    MAX_BATCH,
};
#[cfg(unix)]
pub use server::install_sigint;
pub use server::{FrontEnd, ServeSummary, Server, ServerConfig, ShutdownHandle};
pub use sharded::{CacheCounters, Lookup, MissGuard, ShardedCache};
